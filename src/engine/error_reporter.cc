#include "engine/error_reporter.h"

namespace saql {

void ErrorReporter::Report(const std::string& query, const Status& status) {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  std::string key = query + "\x1f" + status.ToString();
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++entries_[it->second].count;
    return;
  }
  if (entries_.size() >= max_entries_) {
    ++overflow_;
    return;
  }
  index_[key] = entries_.size();
  entries_.push_back(Entry{query, status, 1});
}

std::vector<ErrorReporter::Entry> ErrorReporter::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::string ErrorReporter::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_ == 0) return "(no errors)";
  std::string out;
  for (const Entry& e : entries_) {
    out += "[" + e.query + "] " + e.status.ToString();
    if (e.count > 1) out += " (x" + std::to_string(e.count) + ")";
    out += "\n";
  }
  if (overflow_ > 0) {
    out += "... and " + std::to_string(overflow_) +
           " more distinct errors (table full)\n";
  }
  return out;
}

void ErrorReporter::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
  overflow_ = 0;
  index_.clear();
  entries_.clear();
}

}  // namespace saql
