#include "engine/state_maintainer.h"

#include <algorithm>

#include "core/field_access.h"
#include "core/string_util.h"

namespace saql {

namespace {

/// Separator for composing multi-key group identifiers; value strings never
/// contain it.
constexpr char kKeySep = '\x1f';

}  // namespace

StateMaintainer::StateMaintainer(AnalyzedQueryPtr aq) : aq_(std::move(aq)) {}

Status StateMaintainer::Init() {
  const Query& q = *aq_->query;
  if (!q.IsStateful()) {
    return Status::Internal("StateMaintainer on a stateless query");
  }
  if (!q.window.has_value()) {
    return Status::Internal("stateful query without a window");
  }
  for (const StateField& f : q.state->fields) {
    CollectAggregateSites(*f.expr, &agg_sites_);
  }
  agg_names_.reserve(agg_sites_.size());
  for (const Expr* site : agg_sites_) {
    agg_names_.push_back(ToLower(site->callee));
    // Validate once so MakeCell cannot fail on the stream path.
    SAQL_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> probe,
                          MakeAggregator(agg_names_.back()));
    (void)probe;
  }
  if (q.window->kind == WindowSpec::Kind::kCount) {
    is_count_window_ = true;
    count_n_ = q.window->count;
  } else {
    assigner_ = std::make_unique<WindowAssigner>(*q.window);
  }
  return Status::Ok();
}

bool StateMaintainer::ResolveGroupKeys(const PatternMatch& match,
                                       std::vector<Value>* values,
                                       std::string* key) {
  values->clear();
  key->clear();
  for (const ResolvedGroupKey& k : aq_->group_keys) {
    const Event& e = match.events[static_cast<size_t>(k.pattern_index)];
    EntityRole role = k.source == ResolvedGroupKey::Source::kSubject
                          ? EntityRole::kSubject
                          : EntityRole::kObject;
    Result<Value> v =
        k.field_id != FieldId::kInvalid
            ? (k.source == ResolvedGroupKey::Source::kEvent
                   ? GetEventField(e, k.field_id)
                   : GetEntityField(e, role, k.field_id))
            : (k.source == ResolvedGroupKey::Source::kEvent
                   ? GetEventField(e, k.field)
                   : GetEntityField(e, role, k.field));
    if (!v.ok()) {
      ++stats_.eval_errors;
      return false;
    }
    if (!key->empty()) key->push_back(kKeySep);
    key->append(v->ToString());
    values->push_back(std::move(*v));
  }
  if (aq_->group_keys.empty()) {
    // `state ... { } group by` omitted entirely: one global group.
    *key = "*";
  }
  return true;
}

StateMaintainer::Cell StateMaintainer::MakeCell(
    std::vector<Value> key_values) {
  Cell cell;
  cell.key_values = std::move(key_values);
  cell.aggs.reserve(agg_sites_.size());
  for (const std::string& name : agg_names_) {
    cell.aggs.push_back(std::move(MakeAggregator(name).value()));
  }
  return cell;
}

void StateMaintainer::FoldMatch(const PatternMatch& match, Cell* cell) {
  MatchEvalContext ctx(*aq_, match);
  for (size_t i = 0; i < agg_sites_.size(); ++i) {
    const Expr* site = agg_sites_[i];
    Value input(true);  // count() with no argument counts matches
    if (!site->args.empty()) {
      Result<Value> v = EvaluateExpr(*site->args[0], ctx);
      if (!v.ok()) {
        ++stats_.eval_errors;
        continue;
      }
      input = std::move(*v);
    }
    cell->aggs[i]->Add(input);
  }
}

WindowState StateMaintainer::FinishCell(const TimeWindow& window,
                                        Cell& cell) {
  std::unordered_map<const Expr*, Value> agg_values;
  agg_values.reserve(agg_sites_.size());
  for (size_t i = 0; i < agg_sites_.size(); ++i) {
    agg_values.emplace(agg_sites_[i], cell.aggs[i]->Finish());
  }
  AggFinishContext ctx(&agg_values);
  WindowState state;
  state.window = window;
  const StateBlock& st = *aq_->query->state;
  state.fields.reserve(st.fields.size());
  for (const StateField& f : st.fields) {
    Result<Value> v = EvaluateExpr(*f.expr, ctx);
    if (!v.ok()) {
      ++stats_.eval_errors;
      state.fields.push_back(Value::Null());
    } else {
      state.fields.push_back(std::move(*v));
    }
  }
  return state;
}

void StateMaintainer::AddMatch(const PatternMatch& match) {
  ++stats_.matches_in;
  std::vector<Value> key_values;
  std::string key;
  if (!ResolveGroupKeys(match, &key_values, &key)) return;

  if (is_count_window_) {
    auto [it, inserted] = count_cells_.try_emplace(key);
    CountCell& cc = it->second;
    if (inserted || cc.count == 0) {
      cc.cell = MakeCell(key_values);
      cc.first_ts = match.last_ts;
    }
    FoldMatch(match, &cc.cell);
    cc.last_ts = match.last_ts;
    if (++cc.count >= count_n_) {
      TimeWindow w{cc.first_ts, cc.last_ts + 1};
      std::vector<ClosedGroup> groups;
      ClosedGroup g;
      g.group_key = key;
      g.key_values = std::move(cc.cell.key_values);
      g.state = FinishCell(w, cc.cell);
      groups.push_back(std::move(g));
      ++stats_.windows_closed;
      ++stats_.groups_closed;
      cc.count = 0;
      cc.cell = Cell{};
      if (close_cb_) close_cb_(w, groups);
    }
    return;
  }

  for (const TimeWindow& w : assigner_->Assign(match.last_ts)) {
    Bucket& bucket = open_[w.end];
    bucket.window = w;
    auto [it, inserted] = bucket.cells.try_emplace(key);
    if (inserted) it->second = MakeCell(key_values);
    FoldMatch(match, &it->second);
  }
  size_t open_cells = 0;
  for (const auto& [end, b] : open_) open_cells += b.cells.size();
  stats_.peak_open_cells = std::max(stats_.peak_open_cells, open_cells);
}

void StateMaintainer::CloseBucket(Bucket& bucket) {
  // Deterministic order: sort by group key.
  std::vector<std::pair<const std::string*, Cell*>> ordered;
  ordered.reserve(bucket.cells.size());
  for (auto& [key, cell] : bucket.cells) {
    ordered.emplace_back(&key, &cell);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  ++stats_.windows_closed;
  stats_.groups_closed += ordered.size();
  if (partial_cb_) {
    // Sharded mode: hand off the live aggregators; the merge stage combines
    // them with the other shards' partials before evaluating state fields.
    std::vector<PartialGroup> partials;
    partials.reserve(ordered.size());
    for (auto& [key, cell] : ordered) {
      PartialGroup pg;
      pg.group_key = *key;
      pg.key_values = std::move(cell->key_values);
      pg.aggs = std::move(cell->aggs);
      partials.push_back(std::move(pg));
    }
    partial_cb_(bucket.window, partials);
    return;
  }
  std::vector<ClosedGroup> groups;
  groups.reserve(ordered.size());
  for (auto& [key, cell] : ordered) {
    ClosedGroup g;
    g.group_key = *key;
    g.key_values = std::move(cell->key_values);
    g.state = FinishCell(bucket.window, *cell);
    groups.push_back(std::move(g));
  }
  if (close_cb_) close_cb_(bucket.window, groups);
}

void StateMaintainer::MergePartial(PartialGroup* dst, PartialGroup& src) {
  for (size_t i = 0; i < dst->aggs.size() && i < src.aggs.size(); ++i) {
    dst->aggs[i]->Merge(*src.aggs[i]);
  }
}

StateMaintainer::ClosedGroup StateMaintainer::FinishPartial(
    const TimeWindow& window, PartialGroup& pg) {
  Cell cell;
  cell.aggs = std::move(pg.aggs);
  cell.key_values = pg.key_values;
  ClosedGroup g;
  g.group_key = std::move(pg.group_key);
  g.key_values = std::move(pg.key_values);
  g.state = FinishCell(window, cell);
  return g;
}

void StateMaintainer::AdvanceWatermark(Timestamp watermark) {
  if (is_count_window_) return;
  while (!open_.empty() && open_.begin()->first <= watermark) {
    CloseBucket(open_.begin()->second);
    open_.erase(open_.begin());
  }
}

void StateMaintainer::Finish() {
  if (is_count_window_) {
    // Emit partial count windows so end-of-stream data is not lost.
    std::vector<std::string> keys;
    for (auto& [key, cc] : count_cells_) {
      if (cc.count > 0) keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) {
      CountCell& cc = count_cells_[key];
      TimeWindow w{cc.first_ts, cc.last_ts + 1};
      std::vector<ClosedGroup> groups;
      ClosedGroup g;
      g.group_key = key;
      g.key_values = std::move(cc.cell.key_values);
      g.state = FinishCell(w, cc.cell);
      groups.push_back(std::move(g));
      ++stats_.windows_closed;
      ++stats_.groups_closed;
      cc.count = 0;
      if (close_cb_) close_cb_(w, groups);
    }
    count_cells_.clear();
    return;
  }
  while (!open_.empty()) {
    CloseBucket(open_.begin()->second);
    open_.erase(open_.begin());
  }
}

}  // namespace saql
