// SaqlEngine::Session / QueryHandle: the push-driven streaming lifecycle
// behind the engine facade. Each session owns a SessionContext — its
// private query registry, scheduler/groups, executor (optionally sharded)
// lanes, alert ordering state, statistics, and recording pipeline — so any
// number of sessions run concurrently against one EngineCore, sharing only
// the global interner and the immutable analyzed queries.
//
// Single-threaded sessions drive a StreamExecutor step-wise; sharded
// sessions act as the splitter thread of a ShardedStreamExecutor,
// coordinate dynamic query add/remove across the lane replicas + merge
// replica at quiesced points, and release collected lane alerts in
// deterministic (ts, query, group, values) order as the cross-lane
// watermark aligns past them.
//
// Live interner rotation: the top of every Push is the session's quiesce
// point — it applies the rotation policy and, when the global generation
// moved (by this or any other session), re-interns every compiled
// constraint symbol and rebuilds the ConstraintIndex probe groups before
// the batch is processed. Between a rotation and a session's next push,
// matching falls back to string comparison on the generation mismatch, so
// alert output is independent of where the rotation lands.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "analysis/fleet_analysis.h"
#include "analysis/query_analysis.h"
#include "core/interner.h"
#include "engine/engine.h"
#include "engine/shard_merge.h"
#include "parser/analyzer.h"
#include "storage/durable_log.h"
#include "stream/sharded_executor.h"

namespace saql {

namespace {

/// Serialization of an alert's return values; doubles as the `return
/// distinct` row identity (matching CompiledQuery::EmitRuleMatch's key)
/// and as the last ordering tie-breaker.
std::string AlertValueKey(const Alert& alert) {
  std::string key;
  for (const auto& [label, value] : alert.values) {
    key += value.ToString();
    key += '\x1f';
  }
  return key;
}

constexpr size_t kNoMergeHandle = std::numeric_limits<size_t>::max();

}  // namespace

struct SaqlEngine::Session::SessionContext {
  /// One query of the session, alive for the session's whole lifetime
  /// (removal deactivates it and frees its execution state, but keeps the
  /// entry so handles and per-query stats survive).
  struct SessionQuery {
    std::string name;
    AnalyzedQueryPtr aq;
    /// Single mode: the executing instance. Sharded mode: the merge
    /// replica (stateful), the global-lane instance (global), or an
    /// unsubscribed stats anchor (partitionable) — mirroring the batch
    /// sharded wiring. Freed on removal.
    std::unique_ptr<CompiledQuery> primary;
    /// Sharded lane replicas, one per lane (empty for global mode).
    std::vector<std::unique_ptr<CompiledQuery>> replicas;
    CompiledQuery::ShardMode mode = CompiledQuery::ShardMode::kPartitionable;
    size_t merge_handle = kNoMergeHandle;
    bool central_distinct = false;
    bool active = true;
    size_t slot = 0;  ///< index in `queries` (== handle slot)
    CompiledQuery::QueryStats final_stats;  ///< frozen at removal/close
    AlertSink tap;                          ///< per-handle sink
    std::unique_ptr<QueryHandle> handle;
    /// Non-error lint findings from attach time (errors rejected before
    /// this record was created).
    std::vector<Diagnostic> diagnostics;
  };

  EngineCore* core = nullptr;
  Session* session = nullptr;
  SessionOptions sopts;  ///< per-session overrides, resolved in Open
  /// The core's liveness record for this session; null until Open
  /// succeeds and after Close.
  EngineCore::SessionSlot* slot = nullptr;
  bool sharded = false;
  size_t num_lanes = 1;
  Timestamp advanced_watermark = INT64_MIN;

  std::vector<std::unique_ptr<SessionQuery>> queries;
  std::unordered_map<std::string, SessionQuery*> by_name;

  // Single-threaded mode.
  std::unique_ptr<ConcurrentQueryScheduler> scheduler;
  std::unique_ptr<StreamExecutor> executor;

  // Sharded mode.
  std::unique_ptr<ShardedStreamExecutor> sharded_exec;
  std::unique_ptr<ShardMergeStage> merge;
  std::vector<std::unique_ptr<ConcurrentQueryScheduler>> lane_schedulers;
  std::unique_ptr<ConcurrentQueryScheduler> global_scheduler;
  bool have_global_lane = false;

  /// Ordered alert release state. Lane threads append to `pending` and
  /// update the applied watermarks (through the progress hooks); the
  /// session thread extracts and emits alerts whose event time every lane
  /// has aligned past. `alert_mu` guards all of it.
  std::mutex alert_mu;
  std::vector<Alert> pending;
  std::vector<Timestamp> lane_applied;
  Timestamp global_applied = INT64_MIN;
  std::set<std::pair<std::string, std::string>> distinct_seen;
  std::map<std::string, uint64_t> emitted_by_query;

  /// Durable recording (record path resolved from Options +
  /// SessionOptions). A recording failure is sticky and *non-fatal*: the
  /// session stops appending but keeps serving queries
  /// (`recording_status` carries the first error).
  std::unique_ptr<DurableLogWriter> recorder;
  Status recording_status;
  /// Record path claimed in the process-wide collision registry; empty
  /// when recording is off. Released at Close (or teardown on a failed
  /// open).
  std::string reserved_path;

  ~SessionContext() {
    // Failed-open teardown: Close() clears these on the normal path.
    if (!reserved_path.empty()) {
      EngineCore::ReleaseRecordPath(reserved_path);
    }
    if (slot != nullptr) core->UnregisterSession(slot);
  }

  // -------------------------------------------------------------------
  // Wiring.

  ConcurrentQueryScheduler::Options SchedulerOptions(bool member_index) {
    ConcurrentQueryScheduler::Options o;
    o.enable_grouping = core->options().enable_grouping;
    o.enable_member_index = member_index;
    return o;
  }

  /// This session's alert destination: the per-session sink when one was
  /// installed, the engine-wide (serialized) funnel otherwise.
  void EmitAlert(const Alert& a) {
    if (sopts.alert_sink) {
      sopts.alert_sink(a);
    } else {
      core->Emit(a);
    }
  }

  AlertSink DirectSink(SessionQuery* sq) {
    return [this, sq](const Alert& a) {
      EmitAlert(a);
      if (sq->tap) sq->tap(a);
    };
  }

  AlertSink CollectorSink() {
    return [this](const Alert& a) {
      std::lock_guard<std::mutex> lock(alert_mu);
      pending.push_back(a);
    };
  }

  /// Shares lane 0's (re)built ConstraintIndex with another lane's
  /// corresponding group — the single rule all membership-change paths
  /// (open, dynamic add, dynamic remove, rotation reindex) apply: only
  /// when member indexing is on and the groups demonstrably correspond
  /// (equal signatures; AdoptIndex additionally rejects member-count
  /// mismatches). Null-tolerant so callers can pass through "no group
  /// survived" results directly.
  void AdoptIndexFromLane0(QueryGroup* lane0_group, QueryGroup* group) {
    if (lane0_group == nullptr || group == nullptr) return;
    if (!core->options().enable_member_index) return;
    if (group->signature() == lane0_group->signature()) {
      group->AdoptIndex(lane0_group->shared_index());
    }
  }

  /// Classifies one query, wires its sinks/replicas for sharded
  /// execution, and registers stateful queries with the merge stage.
  /// Shared by session open and mid-stream AddQuery (the caller holds the
  /// pipeline quiesced in the latter case).
  Status WireShardedQuery(SessionQuery* sq) {
    CompiledQuery* q = sq->primary.get();
    q->SetErrorReporter(core->errors());
    sq->mode = q->shard_mode();
    if (sq->mode == CompiledQuery::ShardMode::kGlobal) {
      q->SetAlertSink(CollectorSink());
      return Status::Ok();
    }
    if (sq->mode == CompiledQuery::ShardMode::kPartitionableWithMerge) {
      // The primary becomes the merge replica: it holds the global group
      // histories / invariants / cluster state and emits the alerts.
      q->SetAlertSink(CollectorSink());
      sq->merge_handle = merge->RegisterQuery(q);
    } else if (q->return_distinct()) {
      sq->central_distinct = true;
    }
    sq->replicas.reserve(num_lanes);
    for (size_t s = 0; s < num_lanes; ++s) {
      SAQL_ASSIGN_OR_RETURN(
          std::unique_ptr<CompiledQuery> r,
          CompiledQuery::Create(sq->aq, sq->name, q->options()));
      r->SetErrorReporter(core->errors());
      if (sq->mode == CompiledQuery::ShardMode::kPartitionableWithMerge) {
        ShardMergeStage* m = merge.get();
        size_t handle = sq->merge_handle;
        r->ExportPartialWindows(
            [m, handle](const TimeWindow& w,
                        std::vector<StateMaintainer::PartialGroup>& groups) {
              m->AddPartials(handle, w, groups);
            });
      } else {
        r->SetAlertSink(CollectorSink());
      }
      sq->replicas.push_back(std::move(r));
    }
    return Status::Ok();
  }

  Status Open() {
    const EngineOptions& opts = core->options();

    // Resolve the recording destination: per-session override, engine
    // default, or off. Claim it in the process-wide collision registry
    // before touching the filesystem — two live writers interleaving on
    // one log would corrupt it.
    std::string record_path =
        sopts.no_record
            ? std::string()
            : (!sopts.record_path.empty() ? sopts.record_path
                                          : opts.record_path);
    if (!record_path.empty()) {
      SAQL_RETURN_IF_ERROR(EngineCore::ReserveRecordPath(record_path));
      reserved_path = record_path;
      DurableLogWriter::Options ropts;
      ropts.sync =
          !sopts.record_path.empty() ? sopts.record_sync : opts.record_sync;
      ropts.force_stale_wal =
          !sopts.record_path.empty() ? sopts.record_force : opts.record_force;
      ropts.backend = opts.file_backend;
      recorder = std::make_unique<DurableLogWriter>(record_path, ropts);
      if (!recorder->status().ok()) {
        // Degrade: the session still opens and serves queries.
        recording_status = recorder->status();
      }
    }
    const size_t shards =
        sopts.num_shards != 0 ? sopts.num_shards : opts.num_shards;
    sharded = shards > 1 || opts.force_sharded_executor ||
              sopts.force_sharded_executor;
    num_lanes =
        std::clamp<size_t>(shards, 1, ShardedStreamExecutor::kMaxShards);

    // Snapshot the engine's registered queries as this session's set,
    // compiling a fresh instance of each (sessions never share mutable
    // execution state; the analyzed queries are immutable and shared).
    for (EngineCore::RegisteredQuery& reg : core->SnapshotRegistry()) {
      auto sq = std::make_unique<SessionQuery>();
      sq->name = reg.name;
      sq->aq = reg.aq;
      SAQL_ASSIGN_OR_RETURN(
          sq->primary,
          CompiledQuery::Create(reg.aq, reg.name, opts.query_options));
      sq->slot = queries.size();
      sq->handle.reset(new QueryHandle(session, sq->slot, sq->name));
      by_name[sq->name] = sq.get();
      queries.push_back(std::move(sq));
    }

    Status st = BuildExecution();
    if (!st.ok()) return st;
    slot = core->RegisterSession();
    return Status::Ok();
  }

  Status BuildExecution() {
    const EngineOptions& opts = core->options();
    if (!sharded) {
      scheduler = std::make_unique<ConcurrentQueryScheduler>(
          SchedulerOptions(opts.enable_member_index));
      executor = std::make_unique<StreamExecutor>(
          StreamExecutor::Options{opts.enable_routing, opts.intern_strings});
      for (auto& sq : queries) {
        sq->primary->SetErrorReporter(core->errors());
        sq->primary->SetAlertSink(DirectSink(sq.get()));
        scheduler->AddQuery(sq->primary.get());
      }
      scheduler->BuildGroups();
      for (QueryGroup* g : scheduler->groups()) executor->Subscribe(g);
      executor->BeginStream();
      return Status::Ok();
    }

    ShardedStreamExecutor::Options sopts_exec;
    sopts_exec.num_shards = num_lanes;
    sopts_exec.executor = StreamExecutor::Options{opts.enable_routing,
                                                  opts.intern_strings};
    sharded_exec = std::make_unique<ShardedStreamExecutor>(sopts_exec);
    merge = std::make_unique<ShardMergeStage>(num_lanes);
    lane_applied.assign(num_lanes, INT64_MIN);

    for (auto& sq : queries) {
      Status st = WireShardedQuery(sq.get());
      if (!st.ok()) return st;
    }

    // One scheduler (query grouping) per shard lane over that shard's
    // replicas, plus one for the global lane over the primaries of
    // global-mode queries. The member-matching ConstraintIndex is built
    // once, on lane 0; every other lane's groups adopt the same immutable
    // index (lanes register the same queries in the same order, so groups
    // correspond by position and member order, and Match is const —
    // per-lane scratch lives in each lane's own QueryGroup).
    std::vector<QueryGroup*> lane0_groups;
    lane_schedulers.reserve(num_lanes);
    for (size_t s = 0; s < num_lanes; ++s) {
      auto sched = std::make_unique<ConcurrentQueryScheduler>(
          SchedulerOptions(opts.enable_member_index && s == 0));
      for (auto& sq : queries) {
        if (!sq->replicas.empty()) sched->AddQuery(sq->replicas[s].get());
      }
      sched->BuildGroups();
      std::vector<QueryGroup*> groups = sched->groups();
      if (s == 0) {
        lane0_groups = groups;
      } else {
        for (size_t j = 0; j < groups.size() && j < lane0_groups.size();
             ++j) {
          AdoptIndexFromLane0(lane0_groups[j], groups[j]);
        }
      }
      for (QueryGroup* g : groups) sharded_exec->SubscribeShard(s, g);
      lane_schedulers.push_back(std::move(sched));
    }
    bool any_global = false;
    for (auto& sq : queries) {
      any_global |= sq->mode == CompiledQuery::ShardMode::kGlobal;
    }
    if (any_global) {
      global_scheduler = std::make_unique<ConcurrentQueryScheduler>(
          SchedulerOptions(opts.enable_member_index));
      for (auto& sq : queries) {
        if (sq->mode == CompiledQuery::ShardMode::kGlobal) {
          global_scheduler->AddQuery(sq->primary.get());
        }
      }
      global_scheduler->BuildGroups();
      for (QueryGroup* g : global_scheduler->groups()) {
        sharded_exec->SubscribeGlobal(g);
      }
      have_global_lane = true;
    }

    ShardedStreamExecutor::ProgressHooks hooks;
    hooks.watermark = [this](size_t s, Timestamp ts) {
      merge->AdvanceShardWatermark(s, ts);
      std::lock_guard<std::mutex> lock(alert_mu);
      if (ts > lane_applied[s]) lane_applied[s] = ts;
    };
    hooks.finished = [this](size_t s) {
      merge->FinishShard(s);
      std::lock_guard<std::mutex> lock(alert_mu);
      lane_applied[s] = INT64_MAX;
    };
    hooks.global_watermark = [this](Timestamp ts) {
      std::lock_guard<std::mutex> lock(alert_mu);
      if (ts > global_applied) global_applied = ts;
    };
    hooks.global_finished = [this]() {
      std::lock_guard<std::mutex> lock(alert_mu);
      global_applied = INT64_MAX;
    };
    sharded_exec->SetProgressHooks(std::move(hooks));
    sharded_exec->BeginStream();
    return Status::Ok();
  }

  // -------------------------------------------------------------------
  // Live interner rotation healing.

  /// The session's quiesce-point half of a live rotation: drains the lane
  /// pipeline, re-captures every compiled constraint's symbol under the
  /// current generation, rebuilds the ConstraintIndex probe groups (lane
  /// 0 rebuilds, other lanes adopt positionally), then advances this
  /// session's reclaim barrier and lets the core free generations every
  /// session has passed. Called from the session thread with the
  /// generation already observed to have moved.
  void HealRotation(uint64_t gen) {
    if (sharded) sharded_exec->Quiesce();
    for (auto& sq : queries) {
      if (!sq->active) continue;
      if (sq->primary != nullptr) sq->primary->ReInternSymbols();
      for (auto& r : sq->replicas) r->ReInternSymbols();
    }
    if (!sharded) {
      scheduler->ReindexAllGroups();
    } else {
      if (!lane_schedulers.empty()) {
        lane_schedulers[0]->ReindexAllGroups();
        std::vector<QueryGroup*> lane0_groups = lane_schedulers[0]->groups();
        for (size_t s = 1; s < num_lanes; ++s) {
          std::vector<QueryGroup*> groups = lane_schedulers[s]->groups();
          for (size_t j = 0; j < groups.size() && j < lane0_groups.size();
               ++j) {
            AdoptIndexFromLane0(lane0_groups[j], groups[j]);
          }
        }
      }
      if (global_scheduler != nullptr) global_scheduler->ReindexAllGroups();
    }
    slot->gen_seen.store(gen, std::memory_order_release);
    core->MaybeReclaim();
  }

  /// Applies the rotation policy and heals if the generation moved (by
  /// this session's own rotation or another session's). The steady-state
  /// cost is two atomic loads.
  void RotationCheckpoint() {
    core->MaybeRotate();
    const uint64_t gen = Interner::Global().generation();
    if (gen != slot->gen_seen.load(std::memory_order_relaxed)) {
      HealRotation(gen);
    }
  }

  // -------------------------------------------------------------------
  // Ordered alert release (sharded mode).

  /// Emits every collected alert that is final: with `all` set (after
  /// FinishStream) everything, otherwise alerts whose event time is
  /// strictly below what every lane has applied — no lane can still
  /// produce an alert older than its applied watermark, so the released
  /// prefix matches the batch run's full (ts, query, group, values) sort.
  void ReleaseReadyAlerts(bool all) {
    std::vector<Alert> ready;
    {
      std::lock_guard<std::mutex> lock(alert_mu);
      if (pending.empty()) return;
      Timestamp cutoff = INT64_MAX;
      if (!all) {
        for (Timestamp w : lane_applied) cutoff = std::min(cutoff, w);
        if (have_global_lane) cutoff = std::min(cutoff, global_applied);
        if (cutoff == INT64_MIN) return;
      }
      std::vector<Alert> keep;
      for (Alert& a : pending) {
        if (all || a.ts < cutoff) {
          ready.push_back(std::move(a));
        } else {
          keep.push_back(std::move(a));
        }
      }
      pending = std::move(keep);
    }
    if (ready.empty()) return;
    // Deterministic emission: order by (event time, query, group,
    // rendered values), then apply cross-shard `return distinct`.
    std::vector<std::pair<std::string, size_t>> order;
    order.reserve(ready.size());
    for (size_t i = 0; i < ready.size(); ++i) {
      order.emplace_back(AlertValueKey(ready[i]), i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&ready](const auto& a, const auto& b) {
                       const Alert& x = ready[a.second];
                       const Alert& y = ready[b.second];
                       if (x.ts != y.ts) return x.ts < y.ts;
                       if (x.query_name != y.query_name) {
                         return x.query_name < y.query_name;
                       }
                       if (x.group != y.group) return x.group < y.group;
                       return a.first < b.first;
                     });
    for (const auto& [value_key, idx] : order) {
      const Alert& a = ready[idx];
      auto it = by_name.find(a.query_name);
      SessionQuery* sq = it == by_name.end() ? nullptr : it->second;
      if (sq != nullptr && sq->central_distinct &&
          !distinct_seen.emplace(a.query_name, value_key).second) {
        continue;  // duplicate row another shard already produced
      }
      ++emitted_by_query[a.query_name];
      EmitAlert(a);
      if (sq != nullptr && sq->tap) sq->tap(a);
    }
  }

  // -------------------------------------------------------------------
  // Streaming.

  Status Push(Event* events, size_t count) {
    RotationCheckpoint();
    if (count == 0) return Status::Ok();
    // Record-ahead: persist before query processing sees the batch, so a
    // crash never alerts on an event the log lost.
    if (recorder != nullptr && recording_status.ok()) {
      for (size_t i = 0; i < count; ++i) {
        Status st = recorder->Append(events[i]);
        if (!st.ok()) {
          recording_status = st;
          break;
        }
      }
    }
    if (!sharded) {
      executor->ProcessBatch(events, count);
      return Status::Ok();
    }
    sharded_exec->PushBatch(events, count);
    ReleaseReadyAlerts(false);
    return Status::Ok();
  }

  Status AdvanceWatermark(Timestamp ts) {
    bool advanced = sharded ? sharded_exec->AdvanceWatermark(ts)
                            : executor->AdvanceWatermark(ts);
    if (advanced) advanced_watermark = ts;
    if (sharded) ReleaseReadyAlerts(false);
    return Status::Ok();
  }

  Status Flush() {
    if (sharded) {
      sharded_exec->Quiesce();
      ReleaseReadyAlerts(false);
    }
    return Status::Ok();
  }

  Timestamp MaxEventTs() const {
    return sharded ? sharded_exec->input_max_ts() : executor->max_event_ts();
  }

  // -------------------------------------------------------------------
  // Dynamic query lifecycle.

  Result<QueryHandle*> AddQuery(AnalyzedQueryPtr aq, const std::string& name,
                                std::vector<Diagnostic>* diagnostics =
                                    nullptr) {
    if (by_name.count(name) != 0) {
      return Status::AlreadyExists("query '" + name +
                                   "' already exists in this session");
    }
    auto sq = std::make_unique<SessionQuery>();
    sq->name = name;
    sq->aq = aq;
    SAQL_ASSIGN_OR_RETURN(
        sq->primary,
        CompiledQuery::Create(aq, name, core->options().query_options));

    // Static analysis gates the attach *before* any scheduler or executor
    // wiring, so a rejected query leaves the session exactly as it was.
    std::vector<Diagnostic> findings = QueryAnalysis::Lint(*sq->primary);
    if (HasErrors(findings)) {
      if (diagnostics != nullptr) *diagnostics = findings;
      return Status::InvalidArgument(
          "query '" + name + "' rejected by static analysis:\n" +
          RenderDiagnostics(findings, "  "));
    }
    // Fleet pass against this session's live query set: duplicate /
    // subsumption findings warn on the incoming query's handle, they never
    // reject. Subsumption claims are unsound under an alert cooldown
    // (suppression timing), so they are gated on cooldown == 0.
    {
      std::vector<FleetAnalysis::Member> fleet;
      for (const auto& existing : queries) {
        fleet.push_back({existing->name, existing->aq});
      }
      FleetAnalysis::Options fleet_opts;
      fleet_opts.subsumption =
          core->options().query_options.alert_cooldown <= 0;
      std::vector<Diagnostic> fleet_findings =
          FleetAnalysis::CheckQuery(*aq, fleet, fleet_opts);
      findings.insert(findings.end(),
                      std::make_move_iterator(fleet_findings.begin()),
                      std::make_move_iterator(fleet_findings.end()));
    }
    if (diagnostics != nullptr) *diagnostics = findings;
    sq->diagnostics = std::move(findings);

    if (!sharded) {
      sq->primary->SetErrorReporter(core->errors());
      sq->primary->SetAlertSink(DirectSink(sq.get()));
      bool created = false;
      QueryGroup* g = scheduler->AddQueryDynamic(sq->primary.get(), &created);
      // A new group means a new stream subscription: the executor's
      // dispatch index re-registers before the next batch. An existing
      // group keeps its subscription (the new member shares its
      // structural envelope) but had its ConstraintIndex rebuilt.
      if (created) executor->Subscribe(g);
    } else {
      // All lanes idle: replica wiring, group patching, and merge-stage
      // registration must not race the lane threads.
      sharded_exec->Quiesce();
      Status st = WireShardedQuery(sq.get());
      if (!st.ok()) return st;
      if (sq->mode == CompiledQuery::ShardMode::kGlobal) {
        if (!global_scheduler) {
          global_scheduler = std::make_unique<ConcurrentQueryScheduler>(
              SchedulerOptions(core->options().enable_member_index));
        }
        bool created = false;
        QueryGroup* g =
            global_scheduler->AddQueryDynamic(sq->primary.get(), &created);
        // May spin up the global lane thread mid-stream; the lane sees
        // the stream from this point on (attach-point semantics).
        if (created) sharded_exec->SubscribeGlobal(g);
        have_global_lane = true;
      } else {
        QueryGroup* lane0_group = nullptr;
        for (size_t s = 0; s < num_lanes; ++s) {
          bool created = false;
          QueryGroup* g = lane_schedulers[s]->AddQueryDynamic(
              sq->replicas[s].get(), &created);
          if (created) sharded_exec->SubscribeShard(s, g);
          if (s == 0) {
            lane0_group = g;  // rebuilt its index (when enabled)
          } else {
            AdoptIndexFromLane0(lane0_group, g);
          }
        }
      }
      ReleaseReadyAlerts(false);
    }

    // Session-local attach: concurrent sessions are isolated tenants, so
    // the engine-level registry (which future sessions snapshot) is not
    // touched — that is what SaqlEngine::AddQuery between sessions is
    // for.
    sq->slot = queries.size();
    sq->handle.reset(new QueryHandle(session, sq->slot, name));
    QueryHandle* h = sq->handle.get();
    by_name[name] = sq.get();
    queries.push_back(std::move(sq));
    return h;
  }

  CompiledQuery::QueryStats SumStats(const SessionQuery& sq) const {
    CompiledQuery::QueryStats total =
        sq.primary != nullptr ? sq.primary->stats()
                              : CompiledQuery::QueryStats{};
    for (const auto& r : sq.replicas) {
      const CompiledQuery::QueryStats& rs = r->stats();
      total.events_in += rs.events_in;
      total.events_past_global += rs.events_past_global;
      total.matches += rs.matches;
      total.windows_closed += rs.windows_closed;
      total.alerts += rs.alerts;
      total.eval_errors += rs.eval_errors;
    }
    return total;
  }

  Status RemoveSlot(size_t slot_index) {
    SessionQuery* sq = queries[slot_index].get();
    if (!sq->active) {
      return Status::FailedPrecondition("query '" + sq->name +
                                        "' was already removed");
    }
    if (!sharded) {
      sq->final_stats = sq->primary->stats();
      std::unique_ptr<QueryGroup> emptied;
      QueryGroup* patched = nullptr;
      scheduler->RemoveQuery(sq->primary.get(), &emptied, &patched);
      // An emptied group must leave the dispatch index before it dies.
      if (emptied) executor->Unsubscribe(emptied.get());
    } else {
      sharded_exec->Quiesce();
      sq->final_stats = SumStats(*sq);
      if (sq->mode == CompiledQuery::ShardMode::kGlobal) {
        std::unique_ptr<QueryGroup> emptied;
        QueryGroup* patched = nullptr;
        global_scheduler->RemoveQuery(sq->primary.get(), &emptied, &patched);
        if (emptied) sharded_exec->UnsubscribeGlobal(emptied.get());
      } else {
        QueryGroup* lane0_patched = nullptr;
        for (size_t s = 0; s < num_lanes; ++s) {
          std::unique_ptr<QueryGroup> emptied;
          QueryGroup* patched = nullptr;
          lane_schedulers[s]->RemoveQuery(sq->replicas[s].get(), &emptied,
                                          &patched);
          if (emptied) {
            sharded_exec->UnsubscribeShard(s, emptied.get());
          } else if (s == 0) {
            lane0_patched = patched;  // index rebuilt over the survivors
          } else {
            AdoptIndexFromLane0(lane0_patched, patched);
          }
        }
        if (sq->merge_handle != kNoMergeHandle) {
          // Pending unmerged windows are dropped, not flushed: removal
          // tears partial state down.
          merge->RemoveQuery(sq->merge_handle);
        }
      }
      ReleaseReadyAlerts(false);
    }
    sq->replicas.clear();
    sq->primary.reset();
    sq->active = false;
    return Status::Ok();
  }

  // -------------------------------------------------------------------
  // Statistics.

  CompiledQuery::QueryStats SlotStats(size_t slot_index) {
    SessionQuery* sq = queries[slot_index].get();
    CompiledQuery::QueryStats qs;
    if (!sq->active) {
      qs = sq->final_stats;
    } else if (!sharded) {
      qs = sq->primary->stats();
    } else {
      sharded_exec->Quiesce();
      qs = SumStats(*sq);
    }
    if (sharded && sq->mode == CompiledQuery::ShardMode::kPartitionable) {
      // Replicas count pre-deduplication emissions; report what actually
      // reached the sink (more may still be buffered for ordered
      // release).
      std::lock_guard<std::mutex> lock(alert_mu);
      auto it = emitted_by_query.find(sq->name);
      qs.alerts = it == emitted_by_query.end() ? 0 : it->second;
    }
    return qs;
  }

  std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
  QueryStats() {
    if (sharded && sharded_exec != nullptr) sharded_exec->Quiesce();
    std::vector<std::pair<std::string, CompiledQuery::QueryStats>> out;
    out.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      out.emplace_back(queries[i]->name, SlotStats(i));
    }
    return out;
  }

  size_t NumGroups() const {
    if (!sharded) return scheduler->num_groups();
    size_t n = lane_schedulers.empty() ? 0
                                       : lane_schedulers.front()->num_groups();
    if (global_scheduler) n += global_scheduler->num_groups();
    return n;
  }

  size_t NumIndexedGroups() const {
    if (!sharded) return scheduler->num_indexed_groups();
    size_t n = lane_schedulers.empty()
                   ? 0
                   : lane_schedulers.front()->num_indexed_groups();
    if (global_scheduler) n += global_scheduler->num_indexed_groups();
    return n;
  }

  double ForwardRatio() {
    if (!sharded) return scheduler->ForwardRatio();
    sharded_exec->Quiesce();
    uint64_t in = 0, forwarded = 0;
    auto fold = [&in, &forwarded](ConcurrentQueryScheduler* sched) {
      for (QueryGroup* g : sched->groups()) {
        in += g->stats().events_in;
        forwarded += g->stats().events_forwarded;
      }
    };
    for (auto& sched : lane_schedulers) fold(sched.get());
    if (global_scheduler) fold(global_scheduler.get());
    return in == 0 ? 0.0
                   : static_cast<double>(forwarded) /
                         static_cast<double>(in);
  }

  ExecutorStats ExecStats() {
    if (!sharded) return executor->stats();
    sharded_exec->Quiesce();
    return sharded_exec->merged_stats();
  }

  // -------------------------------------------------------------------
  // Close.

  Status Close() {
    if (recorder != nullptr) {
      Status st = recorder->Close();
      if (!st.ok() && recording_status.ok()) recording_status = st;
    }
    if (!reserved_path.empty()) {
      EngineCore::ReleaseRecordPath(reserved_path);
      reserved_path.clear();
    }
    if (!sharded) {
      executor->FinishStream();
    } else {
      sharded_exec->FinishStream();  // joins lanes; hooks all fired
      ReleaseReadyAlerts(true);
    }
    // Freeze every live query's stats (the fixups in SlotStats still
    // apply — emitted_by_query is final now).
    for (auto& sq : queries) {
      if (sq->active) {
        sq->final_stats =
            sharded ? SumStats(*sq) : sq->primary->stats();
      }
    }
    // Publish the run to the engine-level accessors (last close wins)
    // before deactivating.
    EngineCore::RunStats run;
    run.exec = ExecStats();
    run.num_groups = NumGroups();
    run.indexed_groups = NumIndexedGroups();
    run.forward_ratio = ForwardRatio();
    run.query_stats = QueryStats();
    core->PublishRun(std::move(run));
    for (auto& sq : queries) sq->active = false;
    core->UnregisterSession(slot);
    slot = nullptr;
    return Status::Ok();
  }
};

// ---------------------------------------------------------------------
// Session: thin forwarding layer over SessionContext, plus the open_
// lifecycle guard.

SaqlEngine::Session::Session(SaqlEngine* engine, SessionOptions options)
    : engine_(engine), impl_(new SessionContext()) {
  impl_->core = &engine->core_;
  impl_->session = this;
  impl_->sopts = std::move(options);
}

SaqlEngine::Session::~Session() {
  if (open_) Close();  // best effort; errors have nowhere to go
}

Status SaqlEngine::Session::OpenInternal() { return impl_->Open(); }

uint64_t SaqlEngine::Session::id() const {
  return impl_->slot != nullptr ? impl_->slot->id : 0;
}

Timestamp SaqlEngine::Session::max_event_ts() const {
  return impl_->MaxEventTs();
}

Status SaqlEngine::Session::Push(Event* events, size_t count) {
  if (!open_) return Status::FailedPrecondition("session is closed");
  return impl_->Push(events, count);
}

Status SaqlEngine::Session::AdvanceWatermark(Timestamp ts) {
  if (!open_) return Status::FailedPrecondition("session is closed");
  return impl_->AdvanceWatermark(ts);
}

Status SaqlEngine::Session::Flush() {
  if (!open_) return Status::FailedPrecondition("session is closed");
  return impl_->Flush();
}

Result<SaqlEngine::QueryHandle*> SaqlEngine::Session::AddQuery(
    const std::string& text, const std::string& name,
    std::vector<Diagnostic>* diagnostics) {
  if (!open_) return Status::FailedPrecondition("session is closed");
  SAQL_ASSIGN_OR_RETURN(AnalyzedQueryPtr aq, CompileSaql(text));
  return impl_->AddQuery(std::move(aq), name, diagnostics);
}

Result<SaqlEngine::QueryHandle*> SaqlEngine::Session::AddAnalyzedQuery(
    AnalyzedQueryPtr aq, const std::string& name,
    std::vector<Diagnostic>* diagnostics) {
  if (!open_) return Status::FailedPrecondition("session is closed");
  return impl_->AddQuery(std::move(aq), name, diagnostics);
}

Status SaqlEngine::Session::RemoveQuery(const std::string& name) {
  if (!open_) return Status::FailedPrecondition("session is closed");
  auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end()) {
    return Status::NotFound("no query named '" + name + "' in this session");
  }
  return impl_->RemoveSlot(it->second->slot);
}

SaqlEngine::QueryHandle* SaqlEngine::Session::handle(
    const std::string& name) {
  auto it = impl_->by_name.find(name);
  return it == impl_->by_name.end() ? nullptr : it->second->handle.get();
}

Status SaqlEngine::Session::Close() {
  if (!open_) return Status::FailedPrecondition("session already closed");
  open_ = false;
  return impl_->Close();
}

Timestamp SaqlEngine::Session::watermark() const {
  return impl_->advanced_watermark;
}

Status SaqlEngine::Session::recording_status() const {
  return impl_->recording_status;
}

uint64_t SaqlEngine::Session::recorded_events() const {
  return impl_->recorder != nullptr ? impl_->recorder->appended_events()
                                    : 0;
}

uint64_t SaqlEngine::Session::durable_events() const {
  return impl_->recorder != nullptr ? impl_->recorder->durable_seq() : 0;
}

ExecutorStats SaqlEngine::Session::executor_stats() const {
  return impl_->ExecStats();
}

size_t SaqlEngine::Session::num_active_queries() const {
  size_t n = 0;
  for (const auto& sq : impl_->queries) n += sq->active ? 1 : 0;
  return n;
}

size_t SaqlEngine::Session::num_groups() const { return impl_->NumGroups(); }

size_t SaqlEngine::Session::num_indexed_groups() const {
  return impl_->NumIndexedGroups();
}

double SaqlEngine::Session::forward_ratio() const {
  return impl_->ForwardRatio();
}

std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
SaqlEngine::Session::query_stats() const {
  return impl_->QueryStats();
}

// ---------------------------------------------------------------------
// QueryHandle.

bool SaqlEngine::QueryHandle::active() const {
  return session_->impl_->queries[slot_]->active;
}

CompiledQuery::QueryStats SaqlEngine::QueryHandle::stats() const {
  return session_->impl_->SlotStats(slot_);
}

void SaqlEngine::QueryHandle::SetAlertSink(AlertSink sink) {
  session_->impl_->queries[slot_]->tap = std::move(sink);
}

const std::vector<Diagnostic>& SaqlEngine::QueryHandle::diagnostics() const {
  return session_->impl_->queries[slot_]->diagnostics;
}

Status SaqlEngine::QueryHandle::Cancel() {
  if (!session_->open_) {
    return Status::FailedPrecondition("session is closed");
  }
  return session_->impl_->RemoveSlot(slot_);
}

}  // namespace saql
