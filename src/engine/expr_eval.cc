#include "engine/expr_eval.h"

#include <cmath>

#include "core/like_matcher.h"
#include "core/string_util.h"
#include "parser/analyzer.h"

namespace saql {

Result<Value> EvalContext::ResolveAggregate(const Expr& call) const {
  (void)call;
  return Status::RuntimeError("aggregate evaluated outside a window close");
}

namespace {

bool HasWildcard(const std::string& s) {
  return s.find('%') != std::string::npos ||
         s.find('_') != std::string::npos;
}

/// Equality with LIKE upgrade for wildcard strings.
bool ValuesEqual(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    if (HasWildcard(b.AsString())) {
      return LikeMatcher(b.AsString()).Matches(a.AsString());
    }
    if (HasWildcard(a.AsString())) {
      return LikeMatcher(a.AsString()).Matches(b.AsString());
    }
    // Entity names compare case-insensitively throughout SAQL.
    return ToLower(a.AsString()) == ToLower(b.AsString());
  }
  return a.Equals(b);
}

Result<Value> EvalBinary(const Expr& e, const EvalContext& ctx);
Result<Value> EvalUnary(const Expr& e, const EvalContext& ctx);
Result<Value> EvalCall(const Expr& e, const EvalContext& ctx);

}  // namespace

Result<Value> EvaluateExpr(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kRef:
      return ctx.ResolveRef(expr);
    case ExprKind::kCall:
      return EvalCall(expr, ctx);
    case ExprKind::kBinary:
      return EvalBinary(expr, ctx);
    case ExprKind::kUnary:
      return EvalUnary(expr, ctx);
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvaluateBool(const Expr& expr, const EvalContext& ctx) {
  SAQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr, ctx));
  return v.Truthy();
}

namespace {

Result<Value> EvalBinary(const Expr& e, const EvalContext& ctx) {
  // Short-circuit logical operators; null acts as false.
  if (e.bin_op == BinOp::kAnd) {
    SAQL_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*e.lhs, ctx));
    if (!l.Truthy()) return Value(false);
    SAQL_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*e.rhs, ctx));
    return Value(r.Truthy());
  }
  if (e.bin_op == BinOp::kOr) {
    SAQL_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*e.lhs, ctx));
    if (l.Truthy()) return Value(true);
    SAQL_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*e.rhs, ctx));
    return Value(r.Truthy());
  }

  SAQL_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*e.lhs, ctx));
  SAQL_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*e.rhs, ctx));

  switch (e.bin_op) {
    case BinOp::kEq:
      if (l.is_null() || r.is_null()) return Value(false);
      return Value(ValuesEqual(l, r));
    case BinOp::kNe:
      if (l.is_null() || r.is_null()) return Value(false);
      return Value(!ValuesEqual(l, r));
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (l.is_null() || r.is_null()) return Value(false);
      SAQL_ASSIGN_OR_RETURN(int c, l.Compare(r));
      switch (e.bin_op) {
        case BinOp::kLt:
          return Value(c < 0);
        case BinOp::kLe:
          return Value(c <= 0);
        case BinOp::kGt:
          return Value(c > 0);
        default:
          return Value(c >= 0);
      }
    }
    case BinOp::kIn:
      if (l.is_null() || r.is_null()) return Value(false);
      return ValueIn(l, r);
    case BinOp::kUnion:
      return ValueUnion(l, r);
    case BinOp::kDiff:
      return ValueDiff(l, r);
    case BinOp::kIntersect:
      return ValueIntersect(l, r);
    case BinOp::kAdd:
      if (l.is_null() || r.is_null()) return Value::Null();
      return ValueAdd(l, r);
    case BinOp::kSub:
      if (l.is_null() || r.is_null()) return Value::Null();
      return ValueSub(l, r);
    case BinOp::kMul:
      if (l.is_null() || r.is_null()) return Value::Null();
      return ValueMul(l, r);
    case BinOp::kDiv:
      if (l.is_null() || r.is_null()) return Value::Null();
      return ValueDiv(l, r);
    case BinOp::kMod:
      if (l.is_null() || r.is_null()) return Value::Null();
      return ValueMod(l, r);
    case BinOp::kAnd:
    case BinOp::kOr:
      break;  // handled above
  }
  return Status::Internal("bad binary operator");
}

Result<Value> EvalUnary(const Expr& e, const EvalContext& ctx) {
  SAQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.lhs, ctx));
  switch (e.un_op) {
    case UnOp::kNot:
      return Value(!v.Truthy());
    case UnOp::kNeg: {
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value(-v.AsInt());
      SAQL_ASSIGN_OR_RETURN(double d, v.ToDouble());
      return Value(-d);
    }
    case UnOp::kSize:
      return ValueSize(v);
  }
  return Status::Internal("bad unary operator");
}

Result<Value> EvalCall(const Expr& e, const EvalContext& ctx) {
  std::string callee = ToLower(e.callee);
  if (IsAggregateFunction(callee)) {
    return ctx.ResolveAggregate(e);
  }
  auto num_arg = [&](int i) -> Result<double> {
    SAQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.args[static_cast<size_t>(i)], ctx));
    if (v.is_null()) return Status::NotFound("null argument");
    return v.ToDouble();
  };
  if (callee == "abs") {
    Result<double> a = num_arg(0);
    if (!a.ok()) return Value::Null();
    return Value(std::fabs(*a));
  }
  if (callee == "sqrt") {
    Result<double> a = num_arg(0);
    if (!a.ok()) return Value::Null();
    if (*a < 0) return Status::RuntimeError("sqrt of negative number");
    return Value(std::sqrt(*a));
  }
  if (callee == "log") {
    Result<double> a = num_arg(0);
    if (!a.ok()) return Value::Null();
    if (*a <= 0) return Status::RuntimeError("log of non-positive number");
    return Value(std::log(*a));
  }
  if (callee == "exp") {
    Result<double> a = num_arg(0);
    if (!a.ok()) return Value::Null();
    return Value(std::exp(*a));
  }
  if (callee == "min2" || callee == "max2") {
    Result<double> a = num_arg(0);
    Result<double> b = num_arg(1);
    if (!a.ok() || !b.ok()) return Value::Null();
    return Value(callee == "min2" ? std::min(*a, *b) : std::max(*a, *b));
  }
  if (callee == "pow") {
    Result<double> a = num_arg(0);
    Result<double> b = num_arg(1);
    if (!a.ok() || !b.ok()) return Value::Null();
    return Value(std::pow(*a, *b));
  }
  return Status::RuntimeError("unknown function '" + e.callee + "'");
}

}  // namespace

}  // namespace saql
