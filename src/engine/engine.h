#ifndef SAQL_ENGINE_ENGINE_H_
#define SAQL_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/alert.h"
#include "engine/compiled_query.h"
#include "engine/error_reporter.h"
#include "engine/scheduler.h"
#include "storage/file_backend.h"
#include "storage/wal.h"
#include "stream/event_source.h"
#include "stream/stream_executor.h"

namespace saql {

/// The SAQL anomaly query engine (Fig. 1 of the paper): the public facade
/// tying together the parser, multievent matcher, state maintainer,
/// concurrent query scheduler, and error reporter.
///
/// The engine is a *deployed* stream-querying service: monitoring events
/// arrive continuously, and analysts submit, inspect, and retract anomaly
/// queries against the live stream. The primary API is therefore a
/// push-driven **session**:
///
/// ```
///   SaqlEngine engine;
///   engine.SetAlertSink([](const Alert& a) { std::cout << a.ToString(); });
///   engine.AddQuery(query_text, "exfiltration");           // before open
///   auto session = engine.OpenSession().value();
///   session->Push(batch.data(), batch.size());             // live events
///   session->AdvanceWatermark(max_event_ts);               // close windows
///   auto h = session->AddQuery(other_text, "lateral");     // mid-stream
///   (*h)->SetAlertSink(per_query_sink);                    // per-query tap
///   session->RemoveQuery("exfiltration");                  // retract
///   session->Close();
/// ```
///
/// Sessions honor every engine option: with `Options::num_shards > 1` a
/// session runs the full hash-partitioned lane pipeline (pushes are split
/// across lanes, watermark alignment and the cross-shard window merge work
/// exactly as in a batch run, and dynamic add/remove is coordinated across
/// all lane replicas plus the merge replica). Sessions are sequential —
/// one open session per engine at a time, but a closed session may be
/// followed by a new `OpenSession()`, which recompiles the registered
/// queries with fresh stream state (and applies the
/// `Options::interner_rotate_bytes` rotation policy, see below).
///
/// `Run(source)` is retained as a thin convenience wrapper: it opens a
/// session, pushes the source to exhaustion (advancing the watermark to
/// the max event time after each batch), and closes — alerts and
/// per-query statistics are bit-identical to driving the session by hand
/// with any batch split. `Run` keeps its historical one-shot contract:
/// calling it twice, or calling it on an engine whose sessions are in
/// use, returns `FailedPrecondition` (long-lived deployments use
/// `OpenSession`).
class SaqlEngine {
 public:
  struct Options {
    /// Group compatible queries under the master-dependent-query scheme.
    bool enable_grouping = true;
    /// Route events through the executor's (object type, op) dispatch
    /// index so groups only see events their master pattern can match;
    /// disabled = broadcast delivery (the ablation baseline).
    bool enable_routing = true;
    /// Intern hot event strings once per batch before dispatch.
    bool intern_strings = true;
    /// Member-side matching through a shared per-group `ConstraintIndex`:
    /// the group's member constraint conjunctions are factored into
    /// deduplicated predicate slots at BuildGroups time (exact interned
    /// equality collapses to one symbol probe per field, residuals
    /// evaluate once per event instead of once per member). Disabled =
    /// brute-force member loops (the differential-test and A7 ablation
    /// baseline). Alert output and per-member stats are identical either
    /// way. Dynamic session add/remove rebuilds the affected group's
    /// index.
    bool enable_member_index = true;
    /// Hash-partitioned parallel execution: with N > 1 the engine runs N
    /// per-shard executor lanes (events partitioned by subject entity
    /// key), replicating partitionable queries per shard and merging
    /// stateful window aggregates across shards before alert evaluation;
    /// queries whose semantics need the full ordered stream (multi-event
    /// joins, count windows) run on a single global lane. Alerts from all
    /// lanes funnel through one deterministically ordered sink. The alert
    /// multiset is identical to a single-threaded run. 1 = the
    /// single-threaded executor.
    size_t num_shards = 1;
    /// Routes even a 1-shard run through the full sharded pipeline
    /// (splitter thread, lane thread, merge stage, ordered sink). For the
    /// equivalence tests and as the honest 1-shard baseline of the
    /// shard-scaling ablation; production single-threaded runs should
    /// leave this off.
    bool force_sharded_executor = false;
    /// Interner rotation policy for long-running deployments: when
    /// `OpenSession` finds the global interner's payload bytes at or
    /// above this threshold, it calls `Interner::Global().Rotate()` and
    /// recompiles every registered query against the fresh table (symbol
    /// ids captured at compile time do not survive a rotation). Rotation
    /// only ever happens *between* sessions — never under a live stream.
    /// 0 disables the policy.
    size_t interner_rotate_bytes = 0;
    /// Compiled-query tuning.
    CompiledQuery::Options query_options;
    /// Events pulled from the source per batch (Run only; sessions batch
    /// however the caller pushes).
    size_t batch_size = 1024;
    /// Durable recording: when non-empty, every event pushed into a
    /// session is also appended to a durable log at this path (WAL +
    /// background columnar segmentation, storage/durable_log.h) before
    /// query processing sees it. Recording failures degrade gracefully:
    /// the session keeps serving queries, the recording is marked failed
    /// (`Session::recording_status()`), already-acked data stays
    /// recoverable.
    std::string record_path;
    /// WAL sync/ack policy for the recording (wal.h): `always` acks only
    /// durable events, `group` batches the fsync barrier, `none` defers
    /// durability to segment/close barriers.
    SyncPolicy record_sync;
    /// File layer for the recording (nullptr = real files); tests inject
    /// a FaultInjectionFileBackend here.
    FileBackend* file_backend = nullptr;
  };

  class Session;

  /// Live handle to one query of an open session, returned by
  /// `Session::AddQuery` and `Session::handle`. Handles are owned by the
  /// session and stay valid until the session object is destroyed —
  /// including after the query was removed, when they keep serving the
  /// final retained statistics (`active()` turns false).
  class QueryHandle {
   public:
    const std::string& name() const { return name_; }

    /// True until the query is removed (`Cancel`/`RemoveQuery`) or the
    /// session is closed.
    bool active() const;

    /// Statistics for this query: live while active (in sharded mode the
    /// sum over the query's lane replicas plus its merge replica, read at
    /// a quiesced point), frozen at their final values after removal.
    CompiledQuery::QueryStats stats() const;

    /// Additional per-query alert tap: every alert this query emits is
    /// delivered here *as well as* to the engine-wide sink, from the
    /// session's thread. Pass nullptr to clear.
    void SetAlertSink(AlertSink sink);

    /// Removes the query from the session (same as
    /// `Session::RemoveQuery(name())`): group membership, dispatch-index
    /// and constraint-index slots, and partial window state are torn
    /// down; final stats stay readable through this handle.
    Status Cancel();

   private:
    friend class Session;
    QueryHandle(Session* session, size_t slot, std::string name)
        : session_(session), slot_(slot), name_(std::move(name)) {}

    Session* session_;
    size_t slot_;
    std::string name_;
  };

  /// A push-driven run over the engine's query set. Obtained from
  /// `OpenSession`; all methods must be called from one thread (the
  /// session thread — in sharded mode it doubles as the splitter).
  ///
  /// Lifecycle: `Push`/`AdvanceWatermark` stream data in;
  /// `AddQuery`/`RemoveQuery` change the live query set (a query added
  /// mid-stream sees only events pushed after its attach point; a removed
  /// query's state is torn down and its final stats retained); `Close`
  /// flushes end-of-stream (open windows, partial matches), emits any
  /// buffered sharded alerts, and publishes the run's statistics to the
  /// engine accessors. The destructor closes an open session.
  ///
  /// Watermark contract: `AdvanceWatermark(ts)` finalizes windows ending
  /// at or before `ts`. Callers must push events in non-decreasing
  /// timestamp order and not push events older than an advanced
  /// watermark; under that contract a sharded session's alert sequence is
  /// identical to the batch `Run` ordering (alerts are released in
  /// (ts, query, group, values) order once every lane has aligned past
  /// them).
  class Session {
   public:
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Delivers one batch of events to the live query set. Events are
    /// annotated in place (interned symbol ids); the buffer may be reused
    /// after the call returns. In sharded mode this blocks only on lane
    /// backpressure.
    Status Push(Event* events, size_t count);
    Status Push(EventBatch& batch) {
      return Push(batch.data(), batch.size());
    }

    /// Block-native ingest: pushes the block's rows. Columnar blocks
    /// (the v2 event-log replayer's) arrive with `Event::syms` already
    /// stamped from the block dictionary, so the per-event interning pass
    /// inside the executors reduces to a generation check. `Run` feeds
    /// sources through this.
    Status Push(EventBlock& block) {
      if (block.empty()) return Status::Ok();
      return Push(block.MutableRows(), block.size());
    }

    /// Advances event time: windows ending at or before `ts` can close.
    /// Values that do not advance the watermark are ignored.
    Status AdvanceWatermark(Timestamp ts);

    /// Sharded mode: blocks until every lane has drained its queue, then
    /// releases every alert the advanced watermarks have finalized (alerts
    /// are otherwise released opportunistically, with bounded lag, as
    /// lanes report progress). No-op in single-threaded mode, where alerts
    /// emit inline during Push.
    Status Flush();

    /// Parses, analyzes, compiles, and attaches a query mid-stream. The
    /// query joins its compatibility group (or starts a new one, with the
    /// dispatch index re-registered), the group's shared ConstraintIndex
    /// is rebuilt over the widened member list, and — in sharded mode —
    /// lane replicas plus (for stateful queries) a merge-stage
    /// registration are created across all lanes at a quiesced point. The
    /// query sees only events pushed after this call. The name must be
    /// unique within the session (including removed queries). The query
    /// is also registered with the engine, so later sessions include it.
    Result<QueryHandle*> AddQuery(const std::string& text,
                                  const std::string& name);
    Result<QueryHandle*> AddAnalyzedQuery(AnalyzedQueryPtr aq,
                                          const std::string& name);

    /// Retracts a live query: its group membership, routing/constraint
    /// index slots, lane replicas, and partial window state are torn down
    /// (pending unmerged windows are dropped, not flushed); alerts it
    /// already emitted stay queued for ordered delivery. Final
    /// `QueryStats` remain readable via its handle and `query_stats()`.
    Status RemoveQuery(const std::string& name);

    /// The handle for `name`, or nullptr when no such query was ever part
    /// of this session. Removed queries keep their (inactive) handle.
    QueryHandle* handle(const std::string& name);

    /// Ends the stream: every live query flushes end-of-stream state,
    /// sharded lanes are joined and buffered alerts released, and the
    /// run's statistics are published to the engine accessors. Idempotent
    /// error: closing twice returns FailedPrecondition.
    Status Close();

    bool open() const { return open_; }

    /// The highest watermark advanced so far (INT64_MIN before any).
    Timestamp watermark() const;

    /// Max timestamp of the events pushed so far (INT64_MIN before any) —
    /// the natural `AdvanceWatermark` argument for in-order streams.
    Timestamp max_event_ts() const;

    // Durable recording state (Options::record_path; all Ok/0 when
    // recording is off).
    /// Sticky first recording error — once non-OK the session has
    /// stopped appending to the log but keeps serving queries.
    Status recording_status() const;
    /// Events acked into the recording so far.
    uint64_t recorded_events() const;
    /// Events known durable (WAL-fsynced or in fsynced segments) —
    /// the crash-loss bound is `recorded_events() - durable_events()`.
    uint64_t durable_events() const;

    // Live statistics. In sharded mode these quiesce the lane pipeline
    // briefly to read consistent values.
    ExecutorStats executor_stats() const;
    size_t num_active_queries() const;
    size_t num_groups() const;
    size_t num_indexed_groups() const;
    double forward_ratio() const;
    /// Per-query statistics in registration order, including removed
    /// queries (their final retained stats).
    std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
    query_stats() const;

   private:
    friend class SaqlEngine;
    friend class QueryHandle;

    explicit Session(SaqlEngine* engine);

    /// Builds the session's execution state (schedulers, executors, lane
    /// replicas); called by OpenSession before the session is handed out.
    Status OpenInternal();

    struct Impl;

    SaqlEngine* engine_;
    bool open_ = false;
    std::unique_ptr<Impl> impl_;
  };

  SaqlEngine() : SaqlEngine(Options{}) {}
  explicit SaqlEngine(Options options);
  ~SaqlEngine();

  /// Parses, analyzes, and registers a query for the next session (or
  /// `Run`). The name must be unique; it labels alerts and error reports.
  /// Returns FailedPrecondition while a session is open (use
  /// `Session::AddQuery` to attach mid-stream) or after `Run` was used.
  Status AddQuery(const std::string& text, const std::string& name);

  /// Registers an already-analyzed query (same contract as `AddQuery`).
  Status AddAnalyzedQuery(AnalyzedQueryPtr aq, const std::string& name);

  /// All alerts are delivered here. Defaults to buffering in `alerts()`.
  void SetAlertSink(AlertSink sink);

  /// Opens a push-driven session over the registered queries (the set may
  /// be empty; queries can be added mid-stream). One session may be open
  /// at a time; a later `OpenSession` recompiles the registered queries
  /// with fresh stream state and applies the interner rotation policy.
  /// The returned session must not outlive the engine.
  Result<std::unique_ptr<Session>> OpenSession();

  /// Convenience batch wrapper: opens a session, pushes `source` to
  /// exhaustion, closes. One-shot — a second call (or a call after
  /// `OpenSession` was used) returns FailedPrecondition, and at least one
  /// query must be registered.
  Status Run(EventSource* source);

  /// Buffered alerts (only when no custom sink was installed).
  const std::vector<Alert>& alerts() const { return alerts_; }

  const ErrorReporter& errors() const { return errors_; }

  // Statistics of the last *closed* session (which `Run` wraps): executor
  // accounting, group structure, and per-query stats. In sharded mode the
  // executor stats are the element-wise sum over all lanes and each
  // query's stats are summed over its replicas (alerts for partitionable
  // queries count centrally emitted, post-deduplication alerts). While a
  // session is open, read the live values from the session instead.
  const ExecutorStats& executor_stats() const { return last_exec_stats_; }
  size_t num_queries() const { return registered_.size(); }
  size_t num_groups() const { return last_num_groups_; }
  /// Groups whose member matching ran through a shared ConstraintIndex
  /// (sharded mode counts each distinct index once, not per lane).
  size_t num_indexed_groups() const { return last_indexed_groups_; }
  double forward_ratio() const { return last_forward_ratio_; }
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
  query_stats() const {
    return last_query_stats_;
  }

 private:
  friend class Session;

  /// One registered query. `compiled` holds the validated instance until
  /// a session consumes it; later sessions recompile from `aq` (always
  /// after an interner rotation — compiled constraints capture symbol
  /// ids).
  struct Registered {
    std::string name;
    AnalyzedQueryPtr aq;
    std::unique_ptr<CompiledQuery> compiled;
  };

  Options options_;
  std::vector<Registered> registered_;
  ErrorReporter errors_;
  AlertSink sink_;
  std::vector<Alert> alerts_;
  bool ran_ = false;  ///< Run() was used (its documented one-shot latch)
  Session* active_session_ = nullptr;
  uint64_t sessions_opened_ = 0;

  // Published by Session::Close (see the accessor comments).
  ExecutorStats last_exec_stats_;
  size_t last_num_groups_ = 0;
  size_t last_indexed_groups_ = 0;
  double last_forward_ratio_ = 0.0;
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
      last_query_stats_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_ENGINE_H_
