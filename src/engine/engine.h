#ifndef SAQL_ENGINE_ENGINE_H_
#define SAQL_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/alert.h"
#include "engine/compiled_query.h"
#include "engine/error_reporter.h"
#include "engine/scheduler.h"
#include "stream/event_source.h"
#include "stream/stream_executor.h"

namespace saql {

/// The SAQL anomaly query engine (Fig. 1 of the paper): the public facade
/// tying together the parser, multievent matcher, state maintainer,
/// concurrent query scheduler, and error reporter.
///
/// Typical use:
/// ```
///   SaqlEngine engine;
///   engine.SetAlertSink([](const Alert& a) { std::cout << a.ToString(); });
///   auto st = engine.AddQuery(query_text, "exfiltration");
///   engine.Run(&source);
/// ```
class SaqlEngine {
 public:
  struct Options {
    /// Group compatible queries under the master-dependent-query scheme.
    bool enable_grouping = true;
    /// Route events through the executor's (object type, op) dispatch
    /// index so groups only see events their master pattern can match;
    /// disabled = broadcast delivery (the ablation baseline).
    bool enable_routing = true;
    /// Intern hot event strings once per batch before dispatch.
    bool intern_strings = true;
    /// Compiled-query tuning.
    CompiledQuery::Options query_options;
    /// Events pulled from the source per batch.
    size_t batch_size = 1024;
  };

  SaqlEngine() : SaqlEngine(Options{}) {}
  explicit SaqlEngine(Options options);

  /// Parses, analyzes, and registers a query. The name must be unique; it
  /// labels alerts and error reports.
  Status AddQuery(const std::string& text, const std::string& name);

  /// Registers an already-analyzed query.
  Status AddAnalyzedQuery(AnalyzedQueryPtr aq, const std::string& name);

  /// All alerts are delivered here. Defaults to buffering in `alerts()`.
  void SetAlertSink(AlertSink sink);

  /// Runs the engine over `source` until exhaustion. May be called once
  /// per engine instance (queries carry stream state).
  Status Run(EventSource* source);

  /// Buffered alerts (only when no custom sink was installed).
  const std::vector<Alert>& alerts() const { return alerts_; }

  const ErrorReporter& errors() const { return errors_; }
  const ExecutorStats& executor_stats() const { return executor_.stats(); }

  size_t num_queries() const { return queries_.size(); }
  size_t num_groups() const { return scheduler_.num_groups(); }
  double forward_ratio() const { return scheduler_.ForwardRatio(); }

  /// Per-query statistics, by registration order.
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
  query_stats() const;

 private:
  Options options_;
  std::vector<std::unique_ptr<CompiledQuery>> queries_;
  ConcurrentQueryScheduler scheduler_;
  StreamExecutor executor_;
  ErrorReporter errors_;
  AlertSink sink_;
  std::vector<Alert> alerts_;
  bool ran_ = false;
};

}  // namespace saql

#endif  // SAQL_ENGINE_ENGINE_H_
