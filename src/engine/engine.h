#ifndef SAQL_ENGINE_ENGINE_H_
#define SAQL_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/alert.h"
#include "engine/compiled_query.h"
#include "engine/error_reporter.h"
#include "engine/scheduler.h"
#include "stream/event_source.h"
#include "stream/stream_executor.h"

namespace saql {

/// The SAQL anomaly query engine (Fig. 1 of the paper): the public facade
/// tying together the parser, multievent matcher, state maintainer,
/// concurrent query scheduler, and error reporter.
///
/// Typical use:
/// ```
///   SaqlEngine engine;
///   engine.SetAlertSink([](const Alert& a) { std::cout << a.ToString(); });
///   auto st = engine.AddQuery(query_text, "exfiltration");
///   engine.Run(&source);
/// ```
class SaqlEngine {
 public:
  struct Options {
    /// Group compatible queries under the master-dependent-query scheme.
    bool enable_grouping = true;
    /// Route events through the executor's (object type, op) dispatch
    /// index so groups only see events their master pattern can match;
    /// disabled = broadcast delivery (the ablation baseline).
    bool enable_routing = true;
    /// Intern hot event strings once per batch before dispatch.
    bool intern_strings = true;
    /// Member-side matching through a shared per-group `ConstraintIndex`:
    /// the group's member constraint conjunctions are factored into
    /// deduplicated predicate slots at BuildGroups time (exact interned
    /// equality collapses to one symbol probe per field, residuals
    /// evaluate once per event instead of once per member). Disabled =
    /// brute-force member loops (the differential-test and A7 ablation
    /// baseline). Alert output and per-member stats are identical either
    /// way.
    bool enable_member_index = true;
    /// Hash-partitioned parallel execution: with N > 1 the engine runs N
    /// per-shard executor lanes (events partitioned by subject entity
    /// key), replicating partitionable queries per shard and merging
    /// stateful window aggregates across shards before alert evaluation;
    /// queries whose semantics need the full ordered stream (multi-event
    /// joins, count windows) run on a single global lane. Alerts from all
    /// lanes funnel through one deterministically ordered sink. The alert
    /// multiset is identical to a single-threaded run. 1 = the
    /// single-threaded executor.
    size_t num_shards = 1;
    /// Routes even a 1-shard run through the full sharded pipeline
    /// (splitter thread, lane thread, merge stage, ordered sink). For the
    /// equivalence tests and as the honest 1-shard baseline of the
    /// shard-scaling ablation; production single-threaded runs should
    /// leave this off.
    bool force_sharded_executor = false;
    /// Compiled-query tuning.
    CompiledQuery::Options query_options;
    /// Events pulled from the source per batch.
    size_t batch_size = 1024;
  };

  SaqlEngine() : SaqlEngine(Options{}) {}
  explicit SaqlEngine(Options options);

  /// Parses, analyzes, and registers a query. The name must be unique; it
  /// labels alerts and error reports.
  Status AddQuery(const std::string& text, const std::string& name);

  /// Registers an already-analyzed query.
  Status AddAnalyzedQuery(AnalyzedQueryPtr aq, const std::string& name);

  /// All alerts are delivered here. Defaults to buffering in `alerts()`.
  void SetAlertSink(AlertSink sink);

  /// Runs the engine over `source` until exhaustion. May be called once
  /// per engine instance (queries carry stream state).
  Status Run(EventSource* source);

  /// Buffered alerts (only when no custom sink was installed).
  const std::vector<Alert>& alerts() const { return alerts_; }

  const ErrorReporter& errors() const { return errors_; }
  /// Executor accounting; in sharded mode, the element-wise sum over all
  /// lanes (routed-skip parity holds lane by lane, so also for the sum).
  const ExecutorStats& executor_stats() const {
    return sharded_ran_ ? sharded_exec_stats_ : executor_.stats();
  }

  size_t num_queries() const { return queries_.size(); }
  size_t num_groups() const {
    return sharded_ran_ ? sharded_num_groups_ : scheduler_.num_groups();
  }
  /// Groups whose member matching ran through a shared ConstraintIndex
  /// (sharded mode counts each distinct index once, not per lane).
  size_t num_indexed_groups() const {
    return sharded_ran_ ? sharded_indexed_groups_
                        : scheduler_.num_indexed_groups();
  }
  double forward_ratio() const {
    return sharded_ran_ ? sharded_forward_ratio_ : scheduler_.ForwardRatio();
  }

  /// Per-query statistics, by registration order. In sharded mode each
  /// query's stats are summed over its shard replicas (plus its merge
  /// replica for stateful queries); `alerts` counts centrally emitted
  /// alerts, after cross-shard `return distinct` deduplication.
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
  query_stats() const;

 private:
  /// The N-lane partitioned run behind Options::num_shards > 1.
  Status RunSharded(EventSource* source);

  Options options_;
  std::vector<std::unique_ptr<CompiledQuery>> queries_;
  ConcurrentQueryScheduler scheduler_;
  StreamExecutor executor_;
  ErrorReporter errors_;
  AlertSink sink_;
  std::vector<Alert> alerts_;
  bool ran_ = false;

  // Aggregated results of a sharded run (see RunSharded).
  bool sharded_ran_ = false;
  ExecutorStats sharded_exec_stats_;
  size_t sharded_num_groups_ = 0;
  size_t sharded_indexed_groups_ = 0;
  double sharded_forward_ratio_ = 0.0;
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
      sharded_query_stats_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_ENGINE_H_
