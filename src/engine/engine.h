#ifndef SAQL_ENGINE_ENGINE_H_
#define SAQL_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "engine/alert.h"
#include "engine/compiled_query.h"
#include "engine/engine_core.h"
#include "engine/error_reporter.h"
#include "engine/scheduler.h"
#include "storage/file_backend.h"
#include "storage/wal.h"
#include "stream/event_source.h"
#include "stream/stream_executor.h"

namespace saql {

/// The SAQL anomaly query engine (Fig. 1 of the paper): the public facade
/// tying together the parser, multievent matcher, state maintainer,
/// concurrent query scheduler, and error reporter.
///
/// The engine is a *deployed* stream-querying service: monitoring events
/// arrive continuously, and analysts submit, inspect, and retract anomaly
/// queries against the live stream. The primary API is therefore a
/// push-driven **session**:
///
/// ```
///   SaqlEngine engine;
///   engine.SetAlertSink([](const Alert& a) { std::cout << a.ToString(); });
///   engine.AddQuery(query_text, "exfiltration");           // before open
///   auto session = engine.OpenSession().value();
///   session->Push(batch.data(), batch.size());             // live events
///   session->AdvanceWatermark(max_event_ts);               // close windows
///   auto h = session->AddQuery(other_text, "lateral");     // mid-stream
///   (*h)->SetAlertSink(per_query_sink);                    // per-query tap
///   session->RemoveQuery("exfiltration");                  // retract
///   session->Close();
/// ```
///
/// **Sessions are concurrent.** `OpenSession` may be called any number of
/// times; the resulting sessions run simultaneously from independent
/// threads, one driving thread per session (each session's own methods
/// keep their single-caller-thread contract). Sessions are fully isolated
/// tenants — each owns its query registry snapshot, scheduler and groups,
/// dispatch index, executor (optionally sharded) lanes, statistics, alert
/// ordering state, and recording pipeline — and share exactly the
/// process-wide pieces that are safe to share: the global string
/// `Interner` (lock-free read path) and the immutable analyzed-query
/// handles. Each session's alert sequence and per-query `QueryStats` are
/// bit-identical to the same session run solo. Per-session options
/// (`SessionOptions`: lane count, record path, alert sink) override the
/// engine defaults at `OpenSession`; two live sessions must not record to
/// the same path (the second open fails cleanly).
///
/// Sessions honor every engine option: with `Options::num_shards > 1` a
/// session runs the full hash-partitioned lane pipeline (pushes are split
/// across lanes, watermark alignment and the cross-shard window merge work
/// exactly as in a batch run, and dynamic add/remove is coordinated across
/// all lane replicas plus the merge replica). A session opened after
/// others closed starts from fresh stream state, recompiling the
/// registered queries.
///
/// Interner rotation (`Options::interner_rotate_bytes`) runs live: when
/// the global table's payload crosses the threshold — checked at
/// `OpenSession` and at every session push — the table rotates *under*
/// open sessions. Each open session re-interns its compiled constraint
/// symbols and rebuilds its index probe groups at its own next quiesce
/// point (the top of its next push); until then matching falls back to
/// string comparison on the generation mismatch, so alert output is
/// unaffected by where the rotation lands in the stream.
///
/// `Run(source)` is retained as a thin convenience wrapper: it opens a
/// session, pushes the source to exhaustion (advancing the watermark to
/// the max event time after each batch), and closes — alerts and
/// per-query statistics are bit-identical to driving the session by hand
/// with any batch split. `Run` keeps its historical one-shot contract:
/// calling it twice, or calling it on an engine whose sessions are in
/// use, returns `FailedPrecondition` (long-lived deployments use
/// `OpenSession`).
class SaqlEngine {
 public:
  /// Engine-wide configuration (see engine_core.h for the fields).
  using Options = EngineOptions;

  class Session;

  /// Live handle to one query of an open session, returned by
  /// `Session::AddQuery` and `Session::handle`. Handles are owned by the
  /// session and stay valid until the session object is destroyed —
  /// including after the query was removed, when they keep serving the
  /// final retained statistics (`active()` turns false). Call only from
  /// the owning session's thread.
  class QueryHandle {
   public:
    const std::string& name() const { return name_; }

    /// True until the query is removed (`Cancel`/`RemoveQuery`) or the
    /// session is closed.
    bool active() const;

    /// Statistics for this query: live while active (in sharded mode the
    /// sum over the query's lane replicas plus its merge replica, read at
    /// a quiesced point), frozen at their final values after removal.
    CompiledQuery::QueryStats stats() const;

    /// Additional per-query alert tap: every alert this query emits is
    /// delivered here *as well as* to the session's sink, from the
    /// session's thread. Pass nullptr to clear.
    void SetAlertSink(AlertSink sink);

    /// Removes the query from the session (same as
    /// `Session::RemoveQuery(name())`): group membership, dispatch-index
    /// and constraint-index slots, and partial window state are torn
    /// down; final stats stay readable through this handle.
    Status Cancel();

    /// Non-error static-analysis findings recorded when the query was
    /// attached (warnings, hints, and placement notes — error findings
    /// reject at AddQuery and never produce a handle).
    const std::vector<Diagnostic>& diagnostics() const;

   private:
    friend class Session;
    QueryHandle(Session* session, size_t slot, std::string name)
        : session_(session), slot_(slot), name_(std::move(name)) {}

    Session* session_;
    size_t slot_;
    std::string name_;
  };

  /// A push-driven run over the engine's query set. Obtained from
  /// `OpenSession`; all methods must be called from one thread (the
  /// session thread — in sharded mode it doubles as the splitter).
  /// Different sessions of one engine run from different threads
  /// concurrently.
  ///
  /// Lifecycle: `Push`/`AdvanceWatermark` stream data in;
  /// `AddQuery`/`RemoveQuery` change this session's live query set (a
  /// query added mid-stream sees only events pushed after its attach
  /// point and belongs to this session only; a removed query's state is
  /// torn down and its final stats retained); `Close` flushes
  /// end-of-stream (open windows, partial matches), emits any buffered
  /// sharded alerts, and publishes the run's statistics to the engine
  /// accessors (last close wins). The destructor closes an open session.
  ///
  /// Watermark contract: `AdvanceWatermark(ts)` finalizes windows ending
  /// at or before `ts`. Callers must push events in non-decreasing
  /// timestamp order and not push events older than an advanced
  /// watermark; under that contract a sharded session's alert sequence is
  /// identical to the batch `Run` ordering (alerts are released in
  /// (ts, query, group, values) order once every lane has aligned past
  /// them).
  class Session {
   public:
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Engine-assigned session id (unique per engine, dense from 1) —
    /// the handle the shell and stats use to address one of several
    /// concurrently open sessions.
    uint64_t id() const;

    /// Delivers one batch of events to the live query set. Events are
    /// annotated in place (interned symbol ids); the buffer may be reused
    /// after the call returns. In sharded mode this blocks only on lane
    /// backpressure.
    Status Push(Event* events, size_t count);
    Status Push(EventBatch& batch) {
      return Push(batch.data(), batch.size());
    }

    /// Block-native ingest: pushes the block's rows. Columnar blocks
    /// (the v2 event-log replayer's) arrive with `Event::syms` already
    /// stamped from the block dictionary, so the per-event interning pass
    /// inside the executors reduces to a generation check. `Run` feeds
    /// sources through this.
    Status Push(EventBlock& block) {
      if (block.empty()) return Status::Ok();
      return Push(block.MutableRows(), block.size());
    }

    /// Advances event time: windows ending at or before `ts` can close.
    /// Values that do not advance the watermark are ignored.
    Status AdvanceWatermark(Timestamp ts);

    /// Sharded mode: blocks until every lane has drained its queue, then
    /// releases every alert the advanced watermarks have finalized (alerts
    /// are otherwise released opportunistically, with bounded lag, as
    /// lanes report progress). No-op in single-threaded mode, where alerts
    /// emit inline during Push.
    Status Flush();

    /// Parses, analyzes, compiles, and attaches a query mid-stream. The
    /// query joins its compatibility group (or starts a new one, with the
    /// dispatch index re-registered), the group's shared ConstraintIndex
    /// is rebuilt over the widened member list, and — in sharded mode —
    /// lane replicas plus (for stateful queries) a merge-stage
    /// registration are created across all lanes at a quiesced point. The
    /// query sees only events pushed after this call, and belongs to
    /// this session alone (concurrent sessions are isolated tenants; use
    /// `SaqlEngine::AddQuery` between sessions for queries every later
    /// session should include). The name must be unique within the
    /// session (including removed queries).
    /// Static analysis runs between compilation and wiring: error-severity
    /// diagnostics (unsatisfiable constraints, dead patterns) reject the
    /// query with the session state untouched; the remaining findings
    /// attach to the returned handle (`QueryHandle::diagnostics`). When
    /// `diagnostics` is non-null it receives the full finding list either
    /// way — on rejection this is how callers render the findings.
    Result<QueryHandle*> AddQuery(const std::string& text,
                                  const std::string& name,
                                  std::vector<Diagnostic>* diagnostics =
                                      nullptr);
    Result<QueryHandle*> AddAnalyzedQuery(AnalyzedQueryPtr aq,
                                          const std::string& name,
                                          std::vector<Diagnostic>*
                                              diagnostics = nullptr);

    /// Retracts a live query: its group membership, routing/constraint
    /// index slots, lane replicas, and partial window state are torn down
    /// (pending unmerged windows are dropped, not flushed); alerts it
    /// already emitted stay queued for ordered delivery. Final
    /// `QueryStats` remain readable via its handle and `query_stats()`.
    Status RemoveQuery(const std::string& name);

    /// The handle for `name`, or nullptr when no such query was ever part
    /// of this session. Removed queries keep their (inactive) handle.
    QueryHandle* handle(const std::string& name);

    /// Ends the stream: every live query flushes end-of-stream state,
    /// sharded lanes are joined and buffered alerts released, and the
    /// run's statistics are published to the engine accessors. Idempotent
    /// error: closing twice returns FailedPrecondition.
    Status Close();

    bool open() const { return open_; }

    /// The highest watermark advanced so far (INT64_MIN before any).
    Timestamp watermark() const;

    /// Max timestamp of the events pushed so far (INT64_MIN before any) —
    /// the natural `AdvanceWatermark` argument for in-order streams.
    Timestamp max_event_ts() const;

    // Durable recording state (record path from Options/SessionOptions;
    // all Ok/0 when recording is off).
    /// Sticky first recording error — once non-OK the session has
    /// stopped appending to the log but keeps serving queries.
    Status recording_status() const;
    /// Events acked into the recording so far.
    uint64_t recorded_events() const;
    /// Events known durable (WAL-fsynced or in fsynced segments) —
    /// the crash-loss bound is `recorded_events() - durable_events()`.
    uint64_t durable_events() const;

    // Live statistics. In sharded mode these quiesce the lane pipeline
    // briefly to read consistent values.
    ExecutorStats executor_stats() const;
    size_t num_active_queries() const;
    size_t num_groups() const;
    size_t num_indexed_groups() const;
    double forward_ratio() const;
    /// Per-query statistics in registration order, including removed
    /// queries (their final retained stats).
    std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
    query_stats() const;

   private:
    friend class SaqlEngine;
    friend class QueryHandle;

    Session(SaqlEngine* engine, SessionOptions options);

    /// Builds the session's execution state (schedulers, executors, lane
    /// replicas); called by OpenSession before the session is handed out.
    Status OpenInternal();

    struct SessionContext;

    SaqlEngine* engine_;
    bool open_ = false;
    std::unique_ptr<SessionContext> impl_;
  };

  SaqlEngine() : SaqlEngine(Options{}) {}
  explicit SaqlEngine(Options options);
  ~SaqlEngine();

  /// Parses, analyzes, and registers a query for sessions opened later
  /// (or `Run`). The name must be unique; it labels alerts and error
  /// reports. Returns FailedPrecondition while any session is open (use
  /// `Session::AddQuery` to attach mid-stream) or after `Run` was used.
  ///
  /// Registration runs static analysis (`QueryAnalysis::Lint`):
  /// error-severity findings reject with InvalidArgument. Pass
  /// `diagnostics` to receive every finding (also on rejection);
  /// warnings/hints/notes never reject.
  Status AddQuery(const std::string& text, const std::string& name,
                  std::vector<Diagnostic>* diagnostics = nullptr);

  /// Registers an already-analyzed query (same contract as `AddQuery`).
  Status AddAnalyzedQuery(AnalyzedQueryPtr aq, const std::string& name,
                          std::vector<Diagnostic>* diagnostics = nullptr);

  /// All alerts are delivered here unless a session installs its own
  /// sink (`SessionOptions::alert_sink`). Defaults to buffering in
  /// `alerts()`. The sink is called with a lock held that serializes
  /// concurrent sessions' emissions; install before opening sessions.
  void SetAlertSink(AlertSink sink);

  /// Opens a push-driven session over the registered queries (the set may
  /// be empty; queries can be added mid-stream). Any number of sessions
  /// may be open concurrently, each driven from its own thread; every
  /// session compiles its own query instances against fresh stream
  /// state. Applies the interner rotation policy. The returned session
  /// must not outlive the engine.
  Result<std::unique_ptr<Session>> OpenSession() {
    return OpenSession(SessionOptions{});
  }

  /// Opens a session with per-session overrides (lane count, record
  /// path, alert sink — see SessionOptions).
  Result<std::unique_ptr<Session>> OpenSession(SessionOptions options);

  /// Convenience batch wrapper: opens a session, pushes `source` to
  /// exhaustion, closes. One-shot — a second call (or a call after
  /// `OpenSession` was used) returns FailedPrecondition, and at least one
  /// query must be registered.
  Status Run(EventSource* source);

  /// Buffered alerts (only when no custom sink was installed). Read when
  /// no session is emitting — e.g. after the sessions closed.
  const std::vector<Alert>& alerts() const { return core_.alerts(); }

  const ErrorReporter& errors() const { return core_.errors(); }

  /// Open sessions right now.
  size_t session_count() const { return core_.session_count(); }

  // Statistics of the last *closed* session (which `Run` wraps): executor
  // accounting, group structure, and per-query stats. In sharded mode the
  // executor stats are the element-wise sum over all lanes and each
  // query's stats are summed over its replicas (alerts for partitionable
  // queries count centrally emitted, post-deduplication alerts). With
  // concurrent sessions the last `Close` wins; read per-session live
  // values from the sessions instead.
  const ExecutorStats& executor_stats() const {
    return core_.last_run().exec;
  }
  size_t num_queries() const { return core_.num_queries(); }
  size_t num_groups() const { return core_.last_run().num_groups; }
  /// Groups whose member matching ran through a shared ConstraintIndex
  /// (sharded mode counts each distinct index once, not per lane).
  size_t num_indexed_groups() const {
    return core_.last_run().indexed_groups;
  }
  double forward_ratio() const { return core_.last_run().forward_ratio; }
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
  query_stats() const {
    return core_.last_run().query_stats;
  }

 private:
  friend class Session;

  EngineCore core_;
  bool ran_ = false;  ///< Run() was used (its documented one-shot latch)
};

}  // namespace saql

#endif  // SAQL_ENGINE_ENGINE_H_
