#ifndef SAQL_ENGINE_COMPILED_QUERY_H_
#define SAQL_ENGINE_COMPILED_QUERY_H_

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/alert.h"
#include "engine/compiled_pattern.h"
#include "engine/error_reporter.h"
#include "engine/eval_contexts.h"
#include "engine/multievent_matcher.h"
#include "engine/state_maintainer.h"
#include "parser/analyzer.h"
#include "stream/stream_executor.h"

namespace saql {

/// An executable SAQL query: the full pipeline from stream events to
/// alerts. Wraps the multievent matcher, state maintainer, invariant
/// trainer, cluster stage, and alert evaluation behind the
/// `EventProcessor` interface so it can subscribe to a `StreamExecutor`
/// directly or through a scheduler group.
class CompiledQuery final : public EventProcessor {
 public:
  struct Options {
    /// Horizon for rule-query partial matches without a window.
    Duration match_horizon = 24 * kHour;
    size_t max_partial_matches = 100000;
    /// Minimum event-time spacing between alerts of the same (query,
    /// group) pair; 0 disables. Controls alert fatigue for continuously
    /// firing stateful queries (a production SOC requirement: the first
    /// detection matters, the 500th repeat does not).
    Duration alert_cooldown = 0;
  };

  struct QueryStats {
    uint64_t events_in = 0;
    uint64_t events_past_global = 0;  ///< passed global constraints
    uint64_t matches = 0;             ///< complete pattern matches
    uint64_t windows_closed = 0;
    uint64_t alerts = 0;
    uint64_t eval_errors = 0;
  };

  /// Compiles an analyzed query. `name` identifies the query in alerts and
  /// error reports.
  static Result<std::unique_ptr<CompiledQuery>> Create(
      AnalyzedQueryPtr aq, std::string name, Options options);
  static Result<std::unique_ptr<CompiledQuery>> Create(AnalyzedQueryPtr aq,
                                                       std::string name) {
    return Create(std::move(aq), std::move(name), Options{});
  }

  /// Sets the alert destination (required before running).
  void SetAlertSink(AlertSink sink) { sink_ = std::move(sink); }

  /// Attaches a shared error reporter (optional; errors are counted in
  /// stats regardless).
  void SetErrorReporter(ErrorReporter* reporter) { reporter_ = reporter; }

  // EventProcessor:
  void OnEvent(const Event& event) override;
  void OnWatermark(Timestamp ts) override;
  void OnFinish() override;
  /// Structural envelope for the executor's dispatch index: the union of
  /// this query's pattern shapes (same shapes a scheduler group built from
  /// this query would declare).
  RoutingInterest Interest() const override;
  /// Keeps `QueryStats::events_in` comparable to broadcast delivery when
  /// the query subscribes to a routed executor directly (without a group).
  void OnRoutedSkip(uint64_t count) override { stats_.events_in += count; }

  /// True when `event` matches the structural shape of any pattern (used by
  /// the concurrent-query scheduler's shared master filter).
  bool StructuralMatchAny(const Event& event) const;

  /// The compiled patterns, in declaration order.
  const std::vector<CompiledPattern>& patterns() const { return patterns_; }

  /// The compiled whole-event (global) constraints — read by the group's
  /// shared `ConstraintIndex` at BuildGroups time.
  const std::vector<CompiledConstraint>& global_constraints() const {
    return global_constraints_;
  }

  /// Index-driven delivery for single-pattern members of an indexed group:
  /// the group evaluated this member's constraint conjunction through the
  /// shared `ConstraintIndex` and hands over only the events that fully
  /// matched, plus the counts needed to keep `QueryStats` identical to
  /// brute-force delivery (`events_in` = events the member would have been
  /// handed, `failed_global` = how many of those failed its global
  /// constraints). Events in `matched` are in stream order.
  void OnIndexedDelivery(uint64_t events_in, uint64_t failed_global,
                         const EventRefs& matched);

  const std::string& name() const { return name_; }
  const AnalyzedQuery& analyzed() const { return *aq_; }
  const QueryStats& stats() const { return stats_; }

  /// Signature of the query's structural shape; queries with equal
  /// signatures are semantically compatible for scheduler grouping.
  std::string GroupSignature() const;

  /// Re-captures every constraint's interned symbol from the current
  /// interner generation. Called by the owning session at its quiesce
  /// point after a live rotation; until then matching falls back to the
  /// (always correct) string paths on the generation mismatch. Not
  /// thread-safe against concurrent OnEvent on the same instance.
  void ReInternSymbols();

  // Sharded execution support -----------------------------------------

  /// How this query can run under a sharded executor that hash-partitions
  /// events by subject entity key.
  enum class ShardMode {
    /// Pure per-event semantics: independent replicas per shard emit
    /// alerts directly (`return distinct` is re-deduplicated centrally by
    /// the alert collector).
    kPartitionable,
    /// Stateful over a time window: shard replicas fold per-shard partial
    /// window aggregates; a merge stage combines them across shards and
    /// evaluates history/invariant/cluster/alert once, globally.
    kPartitionableWithMerge,
    /// Must observe the full ordered stream on a single lane: multi-event
    /// joins (shared entities may span shards), count windows (close on
    /// global match counts), stateless alert cooldowns.
    kGlobal,
  };
  ShardMode shard_mode() const;

  /// The analyzed query, shareable across shard replicas (immutable).
  const AnalyzedQueryPtr& analyzed_ptr() const { return aq_; }
  const Options& options() const { return options_; }
  bool return_distinct() const { return aq_->query->return_distinct; }

  /// Turns this instance into a shard replica: stateful window closes emit
  /// partial aggregate state through `cb` (from the shard's lane thread)
  /// instead of evaluating alerts locally. Stateful queries only.
  void ExportPartialWindows(StateMaintainer::PartialCallback cb);

  /// Merge-replica side: evaluates the state fields of one cross-shard
  /// merged partial group.
  StateMaintainer::ClosedGroup FinishPartialGroup(
      const TimeWindow& window, StateMaintainer::PartialGroup& pg);

  /// Merge-replica side: runs history/invariant/cluster/alert evaluation
  /// over one merged window, exactly as a local window close would have.
  void ConsumeMergedWindow(const TimeWindow& window,
                           std::vector<StateMaintainer::ClosedGroup>& groups);

 private:
  CompiledQuery(AnalyzedQueryPtr aq, std::string name, Options options);

  Status Init();

  /// Rule-query path: a complete pattern match arrived.
  void EmitRuleMatch(const PatternMatch& match);

  /// Stateful path: one window closed with its groups.
  void OnWindowClose(const TimeWindow& window,
                     std::vector<StateMaintainer::ClosedGroup>& groups);

  void ReportError(const Status& status);

  /// Per-group retained state across windows.
  struct GroupHistory {
    std::deque<WindowState> history;  ///< front = newest closed window
    std::vector<Value> key_values;
    std::vector<Value> invariant_env;  ///< by invariant var index
    size_t windows_seen = 0;
  };

  /// Runs invariant init statements for a new group.
  void InitInvariantEnv(GroupHistory* gh);
  /// Runs invariant update statements for one group.
  void UpdateInvariant(GroupHistory* gh);

  /// Applies the cooldown policy; returns false when the alert should be
  /// suppressed.
  bool PassesCooldown(const std::string& group, Timestamp ts);

  AnalyzedQueryPtr aq_;
  std::string name_;
  Options options_;
  AlertSink sink_;
  ErrorReporter* reporter_ = nullptr;
  std::unordered_map<std::string, Timestamp> last_alert_ts_;

  std::vector<CompiledConstraint> global_constraints_;
  std::vector<CompiledPattern> patterns_;
  std::unique_ptr<MultieventMatcher> matcher_;  ///< multi-pattern queries
  std::unique_ptr<StateMaintainer> state_;      ///< stateful queries
  std::unordered_map<std::string, GroupHistory> groups_;
  std::set<std::string> distinct_seen_;  ///< for `return distinct`

  QueryStats stats_;
  std::vector<PatternMatch> scratch_matches_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_COMPILED_QUERY_H_
