#include "engine/scheduler.h"

#include <algorithm>

namespace saql {

void QueryGroup::OnEvent(const Event& event) {
  ++stats_.events_in;
  if (members_.empty()) return;
  // Master filter: the structural shape is shared by every member, so the
  // first member's patterns decide for the whole group.
  if (!members_.front()->StructuralMatchAny(event)) return;
  ++stats_.events_forwarded;
  if (index_ != nullptr) {
    single_event_scratch_.assign(1, &event);
    DeliverIndexed(single_event_scratch_);
    return;
  }
  for (CompiledQuery* q : members_) {
    ++stats_.member_deliveries;
    q->OnEvent(event);
  }
}

void QueryGroup::OnBatch(const EventRefs& events) {
  stats_.events_in += events.size();
  if (members_.empty()) return;
  // Run the shared master filter over the whole batch first, then hand the
  // surviving slice to each member in one batched call.
  const CompiledQuery* master = members_.front();
  forward_scratch_.clear();
  for (const Event* e : events) {
    if (master->StructuralMatchAny(*e)) forward_scratch_.push_back(e);
  }
  if (forward_scratch_.empty()) return;
  stats_.events_forwarded += forward_scratch_.size();
  if (index_ != nullptr) {
    DeliverIndexed(forward_scratch_);
    return;
  }
  for (CompiledQuery* q : members_) {
    stats_.member_deliveries += forward_scratch_.size();
    q->OnBatch(forward_scratch_);
  }
}

void QueryGroup::DeliverIndexed(const EventRefs& forwarded) {
  const size_t n = members_.size();
  const std::vector<uint64_t>& all = index_->all_members();
  member_matches_.resize(n);
  for (EventRefs& m : member_matches_) m.clear();
  member_failed_global_.assign(n, 0);
  for (const Event* e : forwarded) {
    index_->Match(*e, &match_scratch_);
    // Per-member accounting iterates only the *exceptional* bits: global
    // failures and full matches are both sparse in the many-query regime,
    // so the common case costs a handful of word compares, not one
    // counter update per member per event.
    for (size_t w = 0; w < all.size(); ++w) {
      uint64_t failed = all[w] & ~match_scratch_.passed_global[w];
      while (failed != 0) {
        size_t i = w * 64 + static_cast<size_t>(__builtin_ctzll(failed));
        ++member_failed_global_[i];
        failed &= failed - 1;
      }
      uint64_t matched = match_scratch_.matched[w];
      while (matched != 0) {
        size_t i = w * 64 + static_cast<size_t>(__builtin_ctzll(matched));
        member_matches_[i].push_back(e);
        matched &= matched - 1;
      }
    }
  }
  // Member-major delivery, exactly like the brute-force OnBatch loop, so
  // alert emission order is identical with the index on or off.
  for (size_t i = 0; i < n; ++i) {
    stats_.member_deliveries += member_matches_[i].size();
    members_[i]->OnIndexedDelivery(forwarded.size(), member_failed_global_[i],
                                   member_matches_[i]);
  }
}

RoutingInterest QueryGroup::Interest() const {
  RoutingInterest interest;
  if (members_.empty()) return interest;  // default: everything (harmless)
  // The envelope is the union of the master's per-pattern shapes — exactly
  // the set of (object type, op) pairs StructuralMatchAny can accept, so
  // routed delivery forwards the same events the master filter would.
  for (const CompiledPattern& p : members_.front()->patterns()) {
    interest.Add(p.object_type(), p.ops());
  }
  return interest;
}

void QueryGroup::OnWatermark(Timestamp ts) {
  for (CompiledQuery* q : members_) {
    q->OnWatermark(ts);
  }
}

void QueryGroup::OnFinish() {
  for (CompiledQuery* q : members_) {
    q->OnFinish();
  }
}

void ConcurrentQueryScheduler::AddQuery(CompiledQuery* query) {
  queries_.push_back(query);
}

void ConcurrentQueryScheduler::BuildGroups() {
  groups_.clear();
  by_signature_.clear();
  if (!options_.enable_grouping) {
    for (CompiledQuery* q : queries_) {
      auto group = std::make_unique<QueryGroup>(q->name());
      group->AddMember(q);
      groups_.push_back(std::move(group));
    }
    return;  // one member per group: nothing for an index to share
  }
  for (CompiledQuery* q : queries_) {
    std::string sig = q->GroupSignature();
    auto it = by_signature_.find(sig);
    if (it == by_signature_.end()) {
      auto group = std::make_unique<QueryGroup>(sig);
      it = by_signature_.emplace(sig, group.get()).first;
      groups_.push_back(std::move(group));
    }
    it->second->AddMember(q);
  }
  if (options_.enable_member_index) {
    for (auto& g : groups_) {
      if (g->size() >= options_.min_index_members) g->BuildIndex();
    }
  }
}

void ConcurrentQueryScheduler::ReindexGroup(QueryGroup* group) {
  if (options_.enable_member_index &&
      group->size() >= options_.min_index_members) {
    group->BuildIndex();
  } else {
    group->DropIndex();
  }
}

QueryGroup* ConcurrentQueryScheduler::AddQueryDynamic(CompiledQuery* query,
                                                      bool* created) {
  queries_.push_back(query);
  *created = false;
  if (!options_.enable_grouping) {
    auto group = std::make_unique<QueryGroup>(query->name());
    group->AddMember(query);
    groups_.push_back(std::move(group));
    *created = true;
    return groups_.back().get();
  }
  std::string sig = query->GroupSignature();
  auto it = by_signature_.find(sig);
  if (it == by_signature_.end()) {
    auto group = std::make_unique<QueryGroup>(sig);
    it = by_signature_.emplace(sig, group.get()).first;
    groups_.push_back(std::move(group));
    *created = true;
  }
  it->second->AddMember(query);
  ReindexGroup(it->second);
  return it->second;
}

bool ConcurrentQueryScheduler::RemoveQuery(
    CompiledQuery* query, std::unique_ptr<QueryGroup>* emptied,
    QueryGroup** patched) {
  emptied->reset();
  *patched = nullptr;
  auto qit = std::find(queries_.begin(), queries_.end(), query);
  if (qit == queries_.end()) return false;
  queries_.erase(qit);
  for (auto git = groups_.begin(); git != groups_.end(); ++git) {
    QueryGroup* g = git->get();
    if (!g->RemoveMember(query)) continue;
    if (g->size() == 0) {
      by_signature_.erase(g->signature());
      *emptied = std::move(*git);
      groups_.erase(git);
    } else {
      ReindexGroup(g);
      *patched = g;
    }
    return true;
  }
  return true;
}

size_t ConcurrentQueryScheduler::num_indexed_groups() const {
  size_t n = 0;
  for (const auto& g : groups_) {
    if (g->index() != nullptr) ++n;
  }
  return n;
}

std::vector<QueryGroup*> ConcurrentQueryScheduler::groups() {
  std::vector<QueryGroup*> out;
  out.reserve(groups_.size());
  for (auto& g : groups_) out.push_back(g.get());
  return out;
}

double ConcurrentQueryScheduler::ForwardRatio() const {
  uint64_t in = 0, forwarded = 0;
  for (const auto& g : groups_) {
    in += g->stats().events_in;
    forwarded += g->stats().events_forwarded;
  }
  if (in == 0) return 0.0;
  return static_cast<double>(forwarded) / static_cast<double>(in);
}

}  // namespace saql
