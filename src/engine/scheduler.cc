#include "engine/scheduler.h"

namespace saql {

void QueryGroup::OnEvent(const Event& event) {
  ++stats_.events_in;
  if (members_.empty()) return;
  // Master filter: the structural shape is shared by every member, so the
  // first member's patterns decide for the whole group.
  if (!members_.front()->StructuralMatchAny(event)) return;
  ++stats_.events_forwarded;
  for (CompiledQuery* q : members_) {
    ++stats_.member_deliveries;
    q->OnEvent(event);
  }
}

void QueryGroup::OnWatermark(Timestamp ts) {
  for (CompiledQuery* q : members_) {
    q->OnWatermark(ts);
  }
}

void QueryGroup::OnFinish() {
  for (CompiledQuery* q : members_) {
    q->OnFinish();
  }
}

void ConcurrentQueryScheduler::AddQuery(CompiledQuery* query) {
  queries_.push_back(query);
}

void ConcurrentQueryScheduler::BuildGroups() {
  groups_.clear();
  if (!options_.enable_grouping) {
    for (CompiledQuery* q : queries_) {
      auto group = std::make_unique<QueryGroup>(q->name());
      group->AddMember(q);
      groups_.push_back(std::move(group));
    }
    return;
  }
  std::map<std::string, QueryGroup*> by_signature;
  for (CompiledQuery* q : queries_) {
    std::string sig = q->GroupSignature();
    auto it = by_signature.find(sig);
    if (it == by_signature.end()) {
      auto group = std::make_unique<QueryGroup>(sig);
      it = by_signature.emplace(sig, group.get()).first;
      groups_.push_back(std::move(group));
    }
    it->second->AddMember(q);
  }
}

std::vector<QueryGroup*> ConcurrentQueryScheduler::groups() {
  std::vector<QueryGroup*> out;
  out.reserve(groups_.size());
  for (auto& g : groups_) out.push_back(g.get());
  return out;
}

double ConcurrentQueryScheduler::ForwardRatio() const {
  uint64_t in = 0, forwarded = 0;
  for (const auto& g : groups_) {
    in += g->stats().events_in;
    forwarded += g->stats().events_forwarded;
  }
  if (in == 0) return 0.0;
  return static_cast<double>(forwarded) / static_cast<double>(in);
}

}  // namespace saql
