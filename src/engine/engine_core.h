#ifndef SAQL_ENGINE_ENGINE_CORE_H_
#define SAQL_ENGINE_ENGINE_CORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/alert.h"
#include "engine/compiled_query.h"
#include "engine/error_reporter.h"
#include "parser/analyzer.h"
#include "storage/file_backend.h"
#include "storage/wal.h"

namespace saql {

/// Engine-wide configuration, shared by every session the engine opens.
/// (Aliased as `SaqlEngine::Options` — see engine.h for the facade.)
struct EngineOptions {
  /// Group compatible queries under the master-dependent-query scheme.
  bool enable_grouping = true;
  /// Route events through the executor's (object type, op) dispatch
  /// index so groups only see events their master pattern can match;
  /// disabled = broadcast delivery (the ablation baseline).
  bool enable_routing = true;
  /// Intern hot event strings once per batch before dispatch.
  bool intern_strings = true;
  /// Member-side matching through a shared per-group `ConstraintIndex`:
  /// the group's member constraint conjunctions are factored into
  /// deduplicated predicate slots at BuildGroups time (exact interned
  /// equality collapses to one symbol probe per field, residuals
  /// evaluate once per event instead of once per member). Disabled =
  /// brute-force member loops (the differential-test and A7 ablation
  /// baseline). Alert output and per-member stats are identical either
  /// way. Dynamic session add/remove rebuilds the affected group's
  /// index.
  bool enable_member_index = true;
  /// Hash-partitioned parallel execution: with N > 1 each session runs N
  /// per-shard executor lanes (events partitioned by subject entity
  /// key), replicating partitionable queries per shard and merging
  /// stateful window aggregates across shards before alert evaluation;
  /// queries whose semantics need the full ordered stream (multi-event
  /// joins, count windows) run on a single global lane. Alerts from all
  /// lanes funnel through one deterministically ordered sink. The alert
  /// multiset is identical to a single-threaded run. 1 = the
  /// single-threaded executor. Sessions can override per session.
  size_t num_shards = 1;
  /// Routes even a 1-shard run through the full sharded pipeline
  /// (splitter thread, lane thread, merge stage, ordered sink). For the
  /// equivalence tests and as the honest 1-shard baseline of the
  /// shard-scaling ablation; production single-threaded runs should
  /// leave this off.
  bool force_sharded_executor = false;
  /// Interner rotation policy for long-running deployments: when the
  /// global interner's payload bytes reach this threshold, the engine
  /// rotates the table — at `OpenSession` when no stream is live, and
  /// **under live sessions** at the next push (each open session then
  /// re-interns its compiled constraint symbols and rebuilds its index
  /// probe groups at its own next quiesce point; events and constraints
  /// carry the generation their symbol ids were issued under, so
  /// matching stays correct through the transition via the string
  /// fallback). 0 disables the policy.
  size_t interner_rotate_bytes = 0;
  /// Compiled-query tuning.
  CompiledQuery::Options query_options;
  /// Events pulled from the source per batch (Run only; sessions batch
  /// however the caller pushes).
  size_t batch_size = 1024;
  /// Durable recording: when non-empty, every event pushed into a
  /// session is also appended to a durable log at this path (WAL +
  /// background columnar segmentation, storage/durable_log.h) before
  /// query processing sees it. Recording failures degrade gracefully:
  /// the session keeps serving queries, the recording is marked failed
  /// (`Session::recording_status()`), already-acked data stays
  /// recoverable. With concurrent sessions, each session needs its own
  /// path (override per session) — a second session opening the same
  /// live path fails its `OpenSession`.
  std::string record_path;
  /// WAL sync/ack policy for the recording (wal.h): `always` acks only
  /// durable events, `group` batches the fsync barrier, `none` defers
  /// durability to segment/close barriers.
  SyncPolicy record_sync;
  /// Clean up leftover `.wal.<N>` files from an unrecovered earlier
  /// incarnation of the record path instead of refusing to open over
  /// them (the recording equivalent of `--force`; the stale WAL data is
  /// lost). Off by default: an unrecovered log is evidence of a crash
  /// and silently discarding its tail would defeat the durability
  /// contract — run recovery first.
  bool record_force = false;
  /// File layer for the recording (nullptr = real files); tests inject
  /// a FaultInjectionFileBackend here.
  FileBackend* file_backend = nullptr;
};

/// Per-session overrides of the engine-wide defaults, for multi-tenant
/// deployments where concurrently open sessions need different lane
/// counts, recording destinations, or alert destinations.
struct SessionOptions {
  /// Shard lanes for this session; 0 = the engine default.
  size_t num_shards = 0;
  /// Force the sharded pipeline for this session (OR'd with the engine
  /// default).
  bool force_sharded_executor = false;
  /// Recording destination for this session; empty = the engine
  /// default. Two live sessions must not record to the same path.
  std::string record_path;
  /// Disables recording for this session even when the engine default
  /// sets a path.
  bool no_record = false;
  /// WAL sync policy when `record_path` is set here (otherwise the
  /// engine default applies).
  SyncPolicy record_sync;
  /// Stale-WAL cleanup for `record_path` set here (see
  /// EngineOptions::record_force).
  bool record_force = false;
  /// Alert destination for this session; null = the engine-wide sink.
  /// Called from this session's thread only, so per-session sinks need
  /// no locking of their own.
  AlertSink alert_sink;
};

/// The process-wide, concurrency-safe half of the engine: options, the
/// query registry, compilation, the shared alert funnel, and the open
/// session registry with the live interner-rotation machinery. Every
/// mutable member is guarded — any number of sessions may run against one
/// core from independent threads. Per-session execution state (scheduler,
/// groups, executor lanes, dispatch index, stats, recording) lives in the
/// session's own `SessionContext` (session.cc) and is never shared.
class EngineCore {
 public:
  /// One registered query, snapshot by each session at open.
  struct RegisteredQuery {
    std::string name;
    AnalyzedQueryPtr aq;  ///< immutable, shared across sessions
  };

  /// Liveness record of one open session. Owned by the core; handed to
  /// the session at open. `gen_seen` is the interner generation the
  /// session has provably healed past (re-interned constraints, rebuilt
  /// indexes) — the reclaim barrier for retired interner generations.
  struct SessionSlot {
    uint64_t id = 0;
    std::atomic<uint64_t> gen_seen{0};
  };

  explicit EngineCore(EngineOptions options);

  const EngineOptions& options() const { return options_; }
  ErrorReporter* errors() { return &errors_; }
  const ErrorReporter& errors() const { return errors_; }

  // Query registry ----------------------------------------------------

  /// Validates (by compiling) and registers a query under `name`.
  /// Sessions opened later include it; open sessions are unaffected
  /// (use Session::AddQuery to attach mid-stream).
  Status RegisterQuery(AnalyzedQueryPtr aq, const std::string& name);

  /// The registered queries at this instant (shared AnalyzedQuery
  /// handles; safe to compile from concurrently).
  std::vector<RegisteredQuery> SnapshotRegistry() const;

  size_t num_queries() const;

  // Alert funnel ------------------------------------------------------

  /// Installs the engine-wide sink (default: buffer into `alerts()`).
  /// Not safe to call with sessions emitting.
  void SetAlertSink(AlertSink sink);

  /// Delivers one alert to the engine-wide sink. Thread-safe: sessions
  /// without a per-session sink emit through here, and their threads are
  /// serialized so multi-session output does not interleave mid-alert.
  void Emit(const Alert& a);

  /// Alerts buffered by the default sink. Read when no session is
  /// emitting (e.g. after close).
  const std::vector<Alert>& alerts() const { return alerts_; }

  // Session registry --------------------------------------------------

  /// Registers a new open session: assigns its id and stamps its
  /// `gen_seen` with the current interner generation.
  SessionSlot* RegisterSession();

  /// Removes a closed session from the registry (its slot dies here).
  void UnregisterSession(SessionSlot* slot);

  /// Open sessions right now.
  size_t session_count() const;

  /// Sessions ever opened (the Run() freshness guard).
  uint64_t sessions_opened() const;

  // Live interner rotation --------------------------------------------

  /// Applies the rotation policy: rotates the global interner when its
  /// payload bytes have reached `interner_rotate_bytes`. Called by every
  /// session at the top of each push and by `OpenSession`; the fast path
  /// (policy off or under budget) is two atomic loads. Returns whether a
  /// rotation happened.
  bool MaybeRotate();

  /// Frees retired interner generations every open session has healed
  /// past (min over the slots' `gen_seen`; with no sessions open,
  /// everything below the current generation). Called by sessions after
  /// advancing their own `gen_seen`. Returns the payload bytes freed.
  size_t MaybeReclaim();

  // Record-path collision guard ---------------------------------------

  /// Claims `path` for one live recording; AlreadyExists when another
  /// live session (in this process) is recording there. Process-wide —
  /// two engines in one process contend too, which is the point.
  static Status ReserveRecordPath(const std::string& path);
  static void ReleaseRecordPath(const std::string& path);

  // Last-closed-session statistics ------------------------------------

  struct RunStats {
    ExecutorStats exec;
    size_t num_groups = 0;
    size_t indexed_groups = 0;
    double forward_ratio = 0.0;
    std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
        query_stats;
  };

  /// Publishes a closing session's stats (last close wins).
  void PublishRun(RunStats stats);

  /// The last published stats. The reference is stable (members are
  /// updated in place under the stats mutex); read it when no session is
  /// closing, e.g. after the engine quiesced.
  const RunStats& last_run() const { return last_run_; }

 private:
  const EngineOptions options_;
  ErrorReporter errors_;

  mutable std::mutex registry_mu_;
  std::vector<RegisteredQuery> registered_;

  std::mutex sink_mu_;
  AlertSink sink_;
  std::vector<Alert> alerts_;

  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::unique_ptr<SessionSlot>> sessions_;
  uint64_t next_session_id_ = 1;
  std::atomic<uint64_t> sessions_opened_{0};

  std::mutex rotate_mu_;  ///< serializes policy checks against Rotate

  mutable std::mutex stats_mu_;
  RunStats last_run_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_ENGINE_CORE_H_
