#include "engine/compiled_pattern.h"

#include "core/interner.h"
#include "core/string_util.h"

namespace saql {

CompiledConstraint::CompiledConstraint(std::string field, ConstraintOp op,
                                       Value value)
    : field_(std::move(field)), op_(op), value_(std::move(value)) {
  field_id_ = ResolveEventFieldId(field_);
  CompileValue();
}

CompiledConstraint::CompiledConstraint(std::string field, ConstraintOp op,
                                       Value value, EntityType entity_type)
    : field_(std::move(field)), op_(op), value_(std::move(value)) {
  field_id_ = ResolveEntityFieldId(entity_type, field_);
  CompileValue();
}

void CompiledConstraint::CompileValue() {
  if (value_.is_string() &&
      (op_ == ConstraintOp::kEq || op_ == ConstraintOp::kNe)) {
    like_.emplace(value_.AsString());
    // Wildcard-free equality on an internable attribute: capture the
    // expected symbol so interned events compare ids, not strings. The
    // generation stamp gates the fast path — after a rotation, events
    // carry new-generation ids and the comparison must not mix eras.
    if (like_->is_exact()) {
      sym_ = Interner::Global().InternStamped(value_.AsString(), &sym_gen_);
    }
  }
}

void CompiledConstraint::ReIntern() {
  if (like_.has_value() && like_->is_exact()) {
    sym_ = Interner::Global().InternStamped(value_.AsString(), &sym_gen_);
  }
}

bool CompiledConstraint::CompareResolved(const Value& actual) const {
  if (actual.is_null()) return false;
  switch (op_) {
    case ConstraintOp::kEq:
      if (like_.has_value() && actual.is_string()) {
        return like_->Matches(actual.AsString());
      }
      return actual.Equals(value_);
    case ConstraintOp::kNe:
      if (like_.has_value() && actual.is_string()) {
        return !like_->Matches(actual.AsString());
      }
      return !actual.Equals(value_);
    case ConstraintOp::kLt:
    case ConstraintOp::kLe:
    case ConstraintOp::kGt:
    case ConstraintOp::kGe: {
      Result<int> c = actual.Compare(value_);
      if (!c.ok()) return false;
      switch (op_) {
        case ConstraintOp::kLt:
          return *c < 0;
        case ConstraintOp::kLe:
          return *c <= 0;
        case ConstraintOp::kGt:
          return *c > 0;
        default:
          return *c >= 0;
      }
    }
  }
  return false;
}

bool CompiledConstraint::CompareString(const std::string& actual) const {
  if (op_ == ConstraintOp::kEq) return like_->Matches(actual);
  return !like_->Matches(actual);
}

bool CompiledConstraint::MatchesEntity(const Event& event,
                                       EntityRole role) const {
  if (field_id_ == FieldId::kInvalid) {
    // Field unknown for the bound entity type (or unbound constraint from a
    // hand-built pattern): the string-keyed read reports NotFound → false.
    Result<Value> v = GetEntityField(event, role, field_);
    if (!v.ok()) return false;
    return CompareResolved(*v);
  }
  if (sym_ != 0 && event.syms.gen == static_cast<uint32_t>(sym_gen_)) {
    uint32_t actual = GetEntitySymbol(event, role, field_id_);
    if (actual != 0) {
      return op_ == ConstraintOp::kEq ? actual == sym_ : actual != sym_;
    }
  }
  if (like_.has_value()) {
    if (const std::string* s =
            GetEntityStringFieldPtr(event, role, field_id_)) {
      return CompareString(*s);
    }
  }
  Result<Value> v = GetEntityField(event, role, field_id_);
  if (!v.ok()) return false;
  return CompareResolved(*v);
}

bool CompiledConstraint::MatchesEvent(const Event& event) const {
  if (field_id_ == FieldId::kInvalid) {
    Result<Value> v = GetEventField(event, field_);
    if (!v.ok()) return false;
    return CompareResolved(*v);
  }
  if (sym_ != 0 && event.syms.gen == static_cast<uint32_t>(sym_gen_)) {
    uint32_t actual = GetEventSymbol(event, field_id_);
    if (actual != 0) {
      return op_ == ConstraintOp::kEq ? actual == sym_ : actual != sym_;
    }
  }
  if (like_.has_value()) {
    if (const std::string* s = GetEventStringFieldPtr(event, field_id_)) {
      return CompareString(*s);
    }
  }
  Result<Value> v = GetEventField(event, field_id_);
  if (!v.ok()) return false;
  return CompareResolved(*v);
}

CompiledPattern::CompiledPattern(const EventPatternDecl& decl)
    : ops_(decl.ops), object_type_(decl.object.type) {
  for (const AttrConstraint& c : decl.subject.constraints) {
    subject_constraints_.emplace_back(c.field, c.op, c.value,
                                      EntityType::kProcess);
  }
  for (const AttrConstraint& c : decl.object.constraints) {
    object_constraints_.emplace_back(c.field, c.op, c.value,
                                     decl.object.type);
  }
}

bool CompiledPattern::Matches(const Event& event) const {
  if (!StructuralMatch(event)) return false;
  for (const CompiledConstraint& c : subject_constraints_) {
    if (!c.MatchesEntity(event, EntityRole::kSubject)) return false;
  }
  for (const CompiledConstraint& c : object_constraints_) {
    if (!c.MatchesEntity(event, EntityRole::kObject)) return false;
  }
  return true;
}

void CompiledPattern::ReInternSymbols() {
  for (CompiledConstraint& c : subject_constraints_) c.ReIntern();
  for (CompiledConstraint& c : object_constraints_) c.ReIntern();
}

std::string CompiledPattern::StructuralSignature() const {
  return std::string("proc|") + std::to_string(ops_) + "|" +
         EntityTypeName(object_type_);
}

std::string EntityKeyOf(const Event& event, EntityRole role) {
  if (role == EntityRole::kSubject) {
    return event.agent_id + "/p" + std::to_string(event.subject.pid);
  }
  switch (event.object_type) {
    case EntityType::kProcess:
      return event.agent_id + "/p" + std::to_string(event.obj_proc.pid);
    case EntityType::kFile:
      return event.agent_id + "/f" + ToLower(event.obj_file.path);
    case EntityType::kNetwork:
      return "n" + event.obj_net.dst_ip + ":" +
             std::to_string(event.obj_net.dst_port);
  }
  return "?";
}

}  // namespace saql
