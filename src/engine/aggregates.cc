#include "engine/aggregates.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "core/string_util.h"

namespace saql {

namespace {

class SumAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    Result<double> d = v.ToDouble();
    if (!d.ok()) return;
    sum_ += *d;
    all_int_ = all_int_ && v.is_int();
    ++count_;
  }
  void Merge(const Aggregator& other) override {
    const auto& o = static_cast<const SumAggregator&>(other);
    sum_ += o.sum_;
    all_int_ = all_int_ && o.all_int_;
    count_ += o.count_;
  }
  Value Finish() const override {
    if (all_int_) return Value(static_cast<int64_t>(sum_));
    return Value(sum_);
  }

 private:
  double sum_ = 0;
  bool all_int_ = true;
  size_t count_ = 0;
};

class AvgAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    Result<double> d = v.ToDouble();
    if (!d.ok()) return;
    sum_ += *d;
    ++count_;
  }
  void Merge(const Aggregator& other) override {
    const auto& o = static_cast<const AvgAggregator&>(other);
    sum_ += o.sum_;
    count_ += o.count_;
  }
  Value Finish() const override {
    if (count_ == 0) return Value::Null();
    return Value(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0;
  size_t count_ = 0;
};

class CountAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (!v.is_null()) ++count_;
  }
  void Merge(const Aggregator& other) override {
    count_ += static_cast<const CountAggregator&>(other).count_;
  }
  Value Finish() const override {
    return Value(static_cast<int64_t>(count_));
  }

 private:
  size_t count_ = 0;
};

class MinAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    if (best_.is_null()) {
      best_ = v;
      return;
    }
    Result<int> c = v.Compare(best_);
    if (c.ok() && *c < 0) best_ = v;
  }
  void Merge(const Aggregator& other) override {
    Add(static_cast<const MinAggregator&>(other).best_);
  }
  Value Finish() const override { return best_; }

 private:
  Value best_;
};

class MaxAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    if (best_.is_null()) {
      best_ = v;
      return;
    }
    Result<int> c = v.Compare(best_);
    if (c.ok() && *c > 0) best_ = v;
  }
  void Merge(const Aggregator& other) override {
    Add(static_cast<const MaxAggregator&>(other).best_);
  }
  Value Finish() const override { return best_; }

 private:
  Value best_;
};

class StdDevAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    Result<double> d = v.ToDouble();
    if (!d.ok()) return;
    ++count_;
    double delta = *d - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (*d - mean_);
  }
  void Merge(const Aggregator& other) override {
    // Chan et al. parallel Welford combine.
    const auto& o = static_cast<const StdDevAggregator&>(other);
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(o.count_);
    double delta = o.mean_ - mean_;
    double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += o.m2_ + delta * delta * na * nb / n;
    count_ += o.count_;
  }
  Value Finish() const override {
    if (count_ < 2) return Value(0.0);
    return Value(std::sqrt(m2_ / static_cast<double>(count_)));
  }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

class SetAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    set_.insert(v.ToString());
  }
  void Merge(const Aggregator& other) override {
    const auto& o = static_cast<const SetAggregator&>(other);
    set_.insert(o.set_.begin(), o.set_.end());
  }
  Value Finish() const override { return Value(set_); }

 private:
  StringSet set_;
};

class CountDistinctAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    set_.insert(v.ToString());
  }
  void Merge(const Aggregator& other) override {
    const auto& o = static_cast<const CountDistinctAggregator&>(other);
    set_.insert(o.set_.begin(), o.set_.end());
  }
  Value Finish() const override {
    return Value(static_cast<int64_t>(set_.size()));
  }

 private:
  StringSet set_;
};

class MedianAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    Result<double> d = v.ToDouble();
    if (!d.ok()) return;
    samples_.push_back(*d);
  }
  void Merge(const Aggregator& other) override {
    const auto& o = static_cast<const MedianAggregator&>(other);
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
  }
  Value Finish() const override {
    if (samples_.empty()) return Value::Null();
    std::vector<double> sorted = samples_;
    size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(mid),
                     sorted.end());
    double hi = sorted[mid];
    if (sorted.size() % 2 == 1) return Value(hi);
    double lo =
        *std::max_element(sorted.begin(), sorted.begin() + static_cast<long>(mid));
    return Value((lo + hi) / 2.0);
  }

 private:
  std::vector<double> samples_;
};

/// Most frequent value in the window; ties break toward the smallest
/// value so results are deterministic.
class TopAggregator : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    ++counts_[v.ToString()];
  }
  void Merge(const Aggregator& other) override {
    for (const auto& [value, count] :
         static_cast<const TopAggregator&>(other).counts_) {
      counts_[value] += count;
    }
  }
  Value Finish() const override {
    if (counts_.empty()) return Value::Null();
    const std::string* best = nullptr;
    size_t best_count = 0;
    for (const auto& [value, count] : counts_) {
      if (count > best_count) {
        best = &value;
        best_count = count;
      }
    }
    return Value(*best);
  }

 private:
  std::map<std::string, size_t> counts_;
};

}  // namespace

Result<std::unique_ptr<Aggregator>> MakeAggregator(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "sum") return std::unique_ptr<Aggregator>(new SumAggregator());
  if (n == "avg") return std::unique_ptr<Aggregator>(new AvgAggregator());
  if (n == "count") return std::unique_ptr<Aggregator>(new CountAggregator());
  if (n == "min") return std::unique_ptr<Aggregator>(new MinAggregator());
  if (n == "max") return std::unique_ptr<Aggregator>(new MaxAggregator());
  if (n == "stddev") {
    return std::unique_ptr<Aggregator>(new StdDevAggregator());
  }
  if (n == "set") return std::unique_ptr<Aggregator>(new SetAggregator());
  if (n == "count_distinct") {
    return std::unique_ptr<Aggregator>(new CountDistinctAggregator());
  }
  if (n == "median") {
    return std::unique_ptr<Aggregator>(new MedianAggregator());
  }
  if (n == "top") return std::unique_ptr<Aggregator>(new TopAggregator());
  return Status::InvalidArgument("unknown aggregate '" + name + "'");
}

}  // namespace saql
