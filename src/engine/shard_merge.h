#ifndef SAQL_ENGINE_SHARD_MERGE_H_
#define SAQL_ENGINE_SHARD_MERGE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/compiled_query.h"
#include "engine/state_maintainer.h"

namespace saql {

/// Cross-shard window merge for stateful queries under the sharded
/// executor. Shard replicas export *partial* window states (live
/// aggregators, one per (window, group) cell the shard saw); this stage
/// combines partials of the same (query, window, group) across shards with
/// `Aggregator::Merge`, and once every shard's watermark has passed a
/// window's end — the alignment rule — evaluates the merged window on the
/// query's merge replica: state fields once, then the usual group history /
/// invariant / cluster / alert pipeline, as if a single-threaded run had
/// closed that window.
///
/// Alignment: a window [s, e) is ready when min over shards of the last
/// reported lane watermark is ≥ e. Shard lanes report progress through the
/// sharded executor's `ProgressHooks`, which fire *after* the lane's query
/// groups processed the watermark, so every partial for windows ≤ W has
/// been added before the lane reports W. A finished lane reports +inf, so
/// end-of-stream flushes deterministically.
///
/// Thread safety: all entry points are called from shard lane threads and
/// serialize on one mutex. Merged-window evaluation (and the alerts it
/// emits) therefore runs on whichever lane thread aligned the watermark,
/// one window at a time, in (window end, registration order) per query.
class ShardMergeStage {
 public:
  explicit ShardMergeStage(size_t num_shards);

  /// Registers a stateful query's merge replica (not owned). Returns the
  /// query handle to use in `AddPartials`. Call before the stream starts,
  /// or mid-stream while the lane pipeline is quiesced (a session adding
  /// a query dynamically).
  size_t RegisterQuery(CompiledQuery* merge_replica);

  /// Tears down one query's merge state: pending (un-evaluated) partial
  /// windows are dropped — not flushed — and later AddPartials calls for
  /// this handle are ignored. Call while the lane pipeline is quiesced;
  /// the handle is not reused.
  void RemoveQuery(size_t query);

  /// Folds one shard's partial groups for `window` into the pending merge
  /// state. Called from lane threads (thread-safe); moves the aggregators
  /// out of `groups`.
  void AddPartials(size_t query, const TimeWindow& window,
                   std::vector<StateMaintainer::PartialGroup>& groups);

  /// One shard lane observed watermark `ts`; evaluates every pending
  /// window ending at or before the new aligned (min-over-shards)
  /// watermark.
  void AdvanceShardWatermark(size_t shard, Timestamp ts);

  /// One shard lane finished its stream (watermark jumps to +inf).
  void FinishShard(size_t shard);

  /// Windows evaluated after merging.
  uint64_t merged_windows() const { return merged_windows_; }

 private:
  struct PendingWindow {
    TimeWindow window;
    /// group key → merged partial, ordered for deterministic evaluation.
    std::map<std::string, StateMaintainer::PartialGroup> groups;
  };

  struct QueryState {
    CompiledQuery* replica = nullptr;
    /// Keyed by (end, start) so draining sweeps windows in close order.
    std::map<std::pair<Timestamp, Timestamp>, PendingWindow> pending;
  };

  /// Evaluates all windows ready under the aligned watermark. Requires
  /// `mu_` held.
  void DrainReadyLocked();

  std::mutex mu_;
  std::vector<Timestamp> shard_watermarks_;
  std::vector<QueryState> queries_;
  uint64_t merged_windows_ = 0;
};

}  // namespace saql

#endif  // SAQL_ENGINE_SHARD_MERGE_H_
