#include "engine/engine_core.h"

#include <algorithm>
#include <set>

#include "core/interner.h"

namespace saql {

namespace {

/// Process-wide set of record paths with a live writer session. Static
/// function scope so two SaqlEngine instances in one process contend
/// correctly.
std::mutex& RecordPathMutex() {
  static std::mutex mu;
  return mu;
}

std::set<std::string>& LiveRecordPaths() {
  static std::set<std::string> paths;
  return paths;
}

}  // namespace

EngineCore::EngineCore(EngineOptions options)
    : options_(std::move(options)) {
  sink_ = [this](const Alert& a) { alerts_.push_back(a); };
}

Status EngineCore::RegisterQuery(AnalyzedQueryPtr aq,
                                 const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const RegisteredQuery& r : registered_) {
    if (r.name == name) {
      return Status::AlreadyExists("query '" + name +
                                   "' is already registered");
    }
  }
  // Compile to validate: sessions compile their own instances at open,
  // so the validated instance is discarded here.
  SAQL_ASSIGN_OR_RETURN(
      std::unique_ptr<CompiledQuery> q,
      CompiledQuery::Create(aq, name, options_.query_options));
  (void)q;
  registered_.push_back(RegisteredQuery{name, std::move(aq)});
  return Status::Ok();
}

std::vector<EngineCore::RegisteredQuery> EngineCore::SnapshotRegistry()
    const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return registered_;
}

size_t EngineCore::num_queries() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return registered_.size();
}

void EngineCore::SetAlertSink(AlertSink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

void EngineCore::Emit(const Alert& a) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_(a);
}

EngineCore::SessionSlot* EngineCore::RegisterSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto slot = std::make_unique<SessionSlot>();
  slot->id = next_session_id_++;
  slot->gen_seen.store(Interner::Global().generation(),
                       std::memory_order_relaxed);
  SessionSlot* out = slot.get();
  sessions_.emplace(out->id, std::move(slot));
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void EngineCore::UnregisterSession(SessionSlot* slot) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(slot->id);
}

size_t EngineCore::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

uint64_t EngineCore::sessions_opened() const {
  return sessions_opened_.load(std::memory_order_relaxed);
}

bool EngineCore::MaybeRotate() {
  if (options_.interner_rotate_bytes == 0) return false;
  Interner& interner = Interner::Global();
  if (interner.payload_bytes() < options_.interner_rotate_bytes) {
    return false;
  }
  std::lock_guard<std::mutex> lock(rotate_mu_);
  // Re-check under the lock: another session may have rotated between
  // the lock-free check and here — don't rotate a just-emptied table.
  if (interner.payload_bytes() < options_.interner_rotate_bytes) {
    return false;
  }
  interner.Rotate();
  return true;
}

size_t EngineCore::MaybeReclaim() {
  uint64_t min_gen = Interner::Global().generation();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& [id, slot] : sessions_) {
      min_gen = std::min(
          min_gen, slot->gen_seen.load(std::memory_order_acquire));
    }
  }
  return Interner::Global().ReclaimBefore(min_gen);
}

Status EngineCore::ReserveRecordPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(RecordPathMutex());
  if (!LiveRecordPaths().insert(path).second) {
    return Status::AlreadyExists(
        "another live session is recording to '" + path +
        "'; concurrent sessions need distinct record paths");
  }
  return Status::Ok();
}

void EngineCore::ReleaseRecordPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(RecordPathMutex());
  LiveRecordPaths().erase(path);
}

void EngineCore::PublishRun(RunStats stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  last_run_ = std::move(stats);
}

}  // namespace saql
