#include "engine/shard_merge.h"

#include <algorithm>
#include <limits>

namespace saql {

ShardMergeStage::ShardMergeStage(size_t num_shards)
    : shard_watermarks_(num_shards, INT64_MIN) {}

size_t ShardMergeStage::RegisterQuery(CompiledQuery* merge_replica) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryState qs;
  qs.replica = merge_replica;
  queries_.push_back(std::move(qs));
  return queries_.size() - 1;
}

void ShardMergeStage::RemoveQuery(size_t query) {
  std::lock_guard<std::mutex> lock(mu_);
  queries_[query].replica = nullptr;
  queries_[query].pending.clear();
}

void ShardMergeStage::AddPartials(
    size_t query, const TimeWindow& window,
    std::vector<StateMaintainer::PartialGroup>& groups) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queries_[query].replica == nullptr) return;  // removed mid-stream
  PendingWindow& pw =
      queries_[query].pending[{window.end, window.start}];
  pw.window = window;
  for (StateMaintainer::PartialGroup& pg : groups) {
    auto [it, inserted] = pw.groups.try_emplace(pg.group_key);
    if (inserted) {
      it->second = std::move(pg);
    } else {
      StateMaintainer::MergePartial(&it->second, pg);
    }
  }
}

void ShardMergeStage::AdvanceShardWatermark(size_t shard, Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ts <= shard_watermarks_[shard]) return;
  shard_watermarks_[shard] = ts;
  DrainReadyLocked();
}

void ShardMergeStage::FinishShard(size_t shard) {
  AdvanceShardWatermark(shard, std::numeric_limits<Timestamp>::max());
}

void ShardMergeStage::DrainReadyLocked() {
  Timestamp aligned = std::numeric_limits<Timestamp>::max();
  for (Timestamp wm : shard_watermarks_) aligned = std::min(aligned, wm);
  if (aligned == INT64_MIN) return;
  for (QueryState& qs : queries_) {
    if (qs.replica == nullptr) continue;  // removed mid-stream
    while (!qs.pending.empty() &&
           qs.pending.begin()->first.first <= aligned) {
      PendingWindow pw = std::move(qs.pending.begin()->second);
      qs.pending.erase(qs.pending.begin());
      // std::map iteration gives group-key order — the same deterministic
      // order a single-threaded close (StateMaintainer::CloseBucket)
      // produces.
      std::vector<StateMaintainer::ClosedGroup> groups;
      groups.reserve(pw.groups.size());
      for (auto& [key, pg] : pw.groups) {
        groups.push_back(qs.replica->FinishPartialGroup(pw.window, pg));
      }
      ++merged_windows_;
      qs.replica->ConsumeMergedWindow(pw.window, groups);
    }
  }
}

}  // namespace saql
