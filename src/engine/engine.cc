#include "engine/engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>

#include "engine/shard_merge.h"
#include "parser/analyzer.h"
#include "stream/sharded_executor.h"

namespace saql {

SaqlEngine::SaqlEngine(Options options)
    : options_(options),
      scheduler_(ConcurrentQueryScheduler::Options{
          options.enable_grouping, options.enable_member_index}),
      executor_(StreamExecutor::Options{options.enable_routing,
                                        options.intern_strings}) {
  sink_ = [this](const Alert& a) { alerts_.push_back(a); };
}

Status SaqlEngine::AddQuery(const std::string& text,
                            const std::string& name) {
  SAQL_ASSIGN_OR_RETURN(AnalyzedQueryPtr aq, CompileSaql(text));
  return AddAnalyzedQuery(std::move(aq), name);
}

Status SaqlEngine::AddAnalyzedQuery(AnalyzedQueryPtr aq,
                                    const std::string& name) {
  if (ran_) {
    return Status::InvalidArgument(
        "cannot add queries after the engine has run");
  }
  for (const auto& q : queries_) {
    if (q->name() == name) {
      return Status::AlreadyExists("query '" + name +
                                   "' is already registered");
    }
  }
  SAQL_ASSIGN_OR_RETURN(
      std::unique_ptr<CompiledQuery> q,
      CompiledQuery::Create(std::move(aq), name, options_.query_options));
  q->SetErrorReporter(&errors_);
  q->SetAlertSink([this](const Alert& a) { sink_(a); });
  queries_.push_back(std::move(q));
  return Status::Ok();
}

void SaqlEngine::SetAlertSink(AlertSink sink) { sink_ = std::move(sink); }

Status SaqlEngine::Run(EventSource* source) {
  if (ran_) {
    return Status::InvalidArgument("engine already ran");
  }
  if (queries_.empty()) {
    return Status::InvalidArgument("no queries registered");
  }
  ran_ = true;
  if (options_.num_shards > 1 || options_.force_sharded_executor) {
    return RunSharded(source);
  }
  for (auto& q : queries_) {
    scheduler_.AddQuery(q.get());
  }
  scheduler_.BuildGroups();
  for (QueryGroup* g : scheduler_.groups()) {
    executor_.Subscribe(g);
  }
  executor_.Run(source, options_.batch_size);
  return Status::Ok();
}

namespace {

/// Serialization of an alert's return values; doubles as the `return
/// distinct` row identity (matching CompiledQuery::EmitRuleMatch's key)
/// and as the last ordering tie-breaker.
std::string AlertValueKey(const Alert& alert) {
  std::string key;
  for (const auto& [label, value] : alert.values) {
    key += value.ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

Status SaqlEngine::RunSharded(EventSource* source) {
  // Same clamp the executor applies, so replica wiring and lane count
  // agree (num_shards=0 with force_sharded_executor must still mean one
  // lane, and a runaway count must not spawn unbounded threads).
  const size_t n = std::clamp<size_t>(options_.num_shards, 1,
                                      ShardedStreamExecutor::kMaxShards);
  sharded_ran_ = true;

  ShardedStreamExecutor::Options sopts;
  sopts.num_shards = n;
  sopts.executor = StreamExecutor::Options{options_.enable_routing,
                                           options_.intern_strings};
  ShardedStreamExecutor sharded(sopts);
  ShardMergeStage merge(n);

  // All lanes and the merge stage funnel alerts here; ordering and
  // cross-shard `return distinct` are applied once, after the run.
  std::mutex alert_mu;
  std::vector<Alert> collected;
  AlertSink collect = [&alert_mu, &collected](const Alert& a) {
    std::lock_guard<std::mutex> lock(alert_mu);
    collected.push_back(a);
  };

  // Classify queries and build the per-shard replicas.
  std::vector<CompiledQuery::ShardMode> modes;
  modes.reserve(queries_.size());
  std::vector<std::vector<std::unique_ptr<CompiledQuery>>> replicas(
      queries_.size());
  std::set<std::string> central_distinct;  // queries deduped centrally
  std::vector<CompiledQuery*> global_queries;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    CompiledQuery* q = queries_[qi].get();
    CompiledQuery::ShardMode mode = q->shard_mode();
    modes.push_back(mode);
    if (mode == CompiledQuery::ShardMode::kGlobal) {
      q->SetAlertSink(collect);
      global_queries.push_back(q);
      continue;
    }
    size_t handle = 0;
    if (mode == CompiledQuery::ShardMode::kPartitionableWithMerge) {
      // The original query becomes the merge replica: it holds the global
      // group histories / invariants / cluster state and emits the alerts.
      q->SetAlertSink(collect);
      handle = merge.RegisterQuery(q);
    } else if (q->return_distinct()) {
      central_distinct.insert(q->name());
    }
    replicas[qi].reserve(n);
    for (size_t s = 0; s < n; ++s) {
      SAQL_ASSIGN_OR_RETURN(
          std::unique_ptr<CompiledQuery> r,
          CompiledQuery::Create(q->analyzed_ptr(), q->name(), q->options()));
      r->SetErrorReporter(&errors_);
      if (mode == CompiledQuery::ShardMode::kPartitionableWithMerge) {
        r->ExportPartialWindows(
            [&merge, handle](const TimeWindow& w,
                             std::vector<StateMaintainer::PartialGroup>&
                                 groups) { merge.AddPartials(handle, w, groups); });
      } else {
        r->SetAlertSink(collect);
      }
      replicas[qi].push_back(std::move(r));
    }
  }

  // The merge stage aligns on lane progress: the hooks run on the lane
  // thread after the groups' window closes, so partials always precede
  // the watermark that covers them.
  sharded.SetProgressHooks(ShardedStreamExecutor::ProgressHooks{
      [&merge](size_t s, Timestamp ts) { merge.AdvanceShardWatermark(s, ts); },
      [&merge](size_t s) { merge.FinishShard(s); }});

  // One scheduler (query grouping) per shard lane over that shard's
  // replicas, plus one for the global lane over the original queries.
  // The member-matching ConstraintIndex is built once, on lane 0; every
  // other lane's groups adopt the same immutable index (lanes register the
  // same queries in the same order, so groups correspond by position and
  // member order, and Match is const — per-lane scratch lives in each
  // lane's own QueryGroup).
  std::vector<std::unique_ptr<ConcurrentQueryScheduler>> schedulers;
  schedulers.reserve(n + 1);
  std::vector<QueryGroup*> lane0_groups;
  for (size_t s = 0; s < n; ++s) {
    auto sched = std::make_unique<ConcurrentQueryScheduler>(
        ConcurrentQueryScheduler::Options{
            options_.enable_grouping,
            options_.enable_member_index && s == 0});
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (!replicas[qi].empty()) sched->AddQuery(replicas[qi][s].get());
    }
    sched->BuildGroups();
    std::vector<QueryGroup*> groups = sched->groups();
    if (s == 0) {
      lane0_groups = groups;
    } else if (options_.enable_member_index) {
      for (size_t j = 0; j < groups.size() && j < lane0_groups.size(); ++j) {
        if (groups[j]->signature() == lane0_groups[j]->signature()) {
          groups[j]->AdoptIndex(lane0_groups[j]->shared_index());
        }
      }
    }
    for (QueryGroup* g : groups) sharded.SubscribeShard(s, g);
    schedulers.push_back(std::move(sched));
  }
  if (!global_queries.empty()) {
    auto sched = std::make_unique<ConcurrentQueryScheduler>(
        ConcurrentQueryScheduler::Options{options_.enable_grouping,
                                          options_.enable_member_index});
    for (CompiledQuery* q : global_queries) sched->AddQuery(q);
    sched->BuildGroups();
    for (QueryGroup* g : sched->groups()) sharded.SubscribeGlobal(g);
    schedulers.push_back(std::move(sched));
  }

  sharded.Run(source, options_.batch_size);

  // Deterministic single-sink emission: order by (event time, query,
  // group, rendered values), then apply cross-shard `return distinct`.
  std::vector<std::pair<std::string, size_t>> order;
  order.reserve(collected.size());
  for (size_t i = 0; i < collected.size(); ++i) {
    order.emplace_back(AlertValueKey(collected[i]), i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&collected](const auto& a, const auto& b) {
                     const Alert& x = collected[a.second];
                     const Alert& y = collected[b.second];
                     if (x.ts != y.ts) return x.ts < y.ts;
                     if (x.query_name != y.query_name) {
                       return x.query_name < y.query_name;
                     }
                     if (x.group != y.group) return x.group < y.group;
                     return a.first < b.first;
                   });
  std::set<std::pair<std::string, std::string>> distinct_seen;
  std::map<std::string, uint64_t> emitted_by_query;
  for (const auto& [value_key, idx] : order) {
    const Alert& a = collected[idx];
    if (central_distinct.count(a.query_name) &&
        !distinct_seen.emplace(a.query_name, value_key).second) {
      continue;  // duplicate row another shard already produced
    }
    ++emitted_by_query[a.query_name];
    sink_(a);
  }

  // Aggregate statistics across lanes.
  sharded_exec_stats_ = sharded.merged_stats();
  sharded_num_groups_ = 0;
  sharded_indexed_groups_ = 0;
  if (!schedulers.empty()) {
    sharded_num_groups_ = schedulers.front()->num_groups();
    sharded_indexed_groups_ = schedulers.front()->num_indexed_groups();
    if (!global_queries.empty()) {
      sharded_num_groups_ += schedulers.back()->num_groups();
      sharded_indexed_groups_ += schedulers.back()->num_indexed_groups();
    }
  }
  uint64_t fr_in = 0, fr_forwarded = 0;
  for (auto& sched : schedulers) {
    for (QueryGroup* g : sched->groups()) {
      fr_in += g->stats().events_in;
      fr_forwarded += g->stats().events_forwarded;
    }
  }
  sharded_forward_ratio_ =
      fr_in == 0 ? 0.0
                 : static_cast<double>(fr_forwarded) /
                       static_cast<double>(fr_in);

  sharded_query_stats_.clear();
  sharded_query_stats_.reserve(queries_.size());
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    CompiledQuery::QueryStats total = queries_[qi]->stats();
    for (const auto& r : replicas[qi]) {
      const CompiledQuery::QueryStats& rs = r->stats();
      total.events_in += rs.events_in;
      total.events_past_global += rs.events_past_global;
      total.matches += rs.matches;
      total.windows_closed += rs.windows_closed;
      total.alerts += rs.alerts;
      total.eval_errors += rs.eval_errors;
    }
    if (modes[qi] == CompiledQuery::ShardMode::kPartitionable) {
      // Replicas count pre-deduplication emissions; report what actually
      // reached the sink.
      auto it = emitted_by_query.find(queries_[qi]->name());
      total.alerts = it == emitted_by_query.end() ? 0 : it->second;
    }
    sharded_query_stats_.emplace_back(queries_[qi]->name(), total);
  }
  return Status::Ok();
}

std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
SaqlEngine::query_stats() const {
  if (sharded_ran_) return sharded_query_stats_;
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>> out;
  out.reserve(queries_.size());
  for (const auto& q : queries_) {
    out.emplace_back(q->name(), q->stats());
  }
  return out;
}

}  // namespace saql
