#include "engine/engine.h"

#include "analysis/fleet_analysis.h"
#include "analysis/query_analysis.h"
#include "core/interner.h"
#include "parser/analyzer.h"

namespace saql {

SaqlEngine::SaqlEngine(Options options) : core_(std::move(options)) {}

SaqlEngine::~SaqlEngine() = default;

Status SaqlEngine::AddQuery(const std::string& text, const std::string& name,
                            std::vector<Diagnostic>* diagnostics) {
  SAQL_ASSIGN_OR_RETURN(AnalyzedQueryPtr aq, CompileSaql(text));
  return AddAnalyzedQuery(std::move(aq), name, diagnostics);
}

Status SaqlEngine::AddAnalyzedQuery(AnalyzedQueryPtr aq,
                                    const std::string& name,
                                    std::vector<Diagnostic>* diagnostics) {
  if (ran_) {
    return Status::FailedPrecondition(
        "engine already ran: Run() is one-shot; register queries before "
        "Run, or use OpenSession() for long-lived deployments");
  }
  if (core_.session_count() > 0) {
    return Status::FailedPrecondition(
        "sessions are open: use Session::AddQuery to attach a query "
        "mid-stream (engine-level registration covers future sessions "
        "only)");
  }
  // Static analysis gates registration: a provably broken query (UNSAT
  // constraints, dead pattern) never reaches a session. The throwaway
  // compilation mirrors RegisterQuery's own validation compile.
  {
    SAQL_ASSIGN_OR_RETURN(
        std::unique_ptr<CompiledQuery> compiled,
        CompiledQuery::Create(aq, name, core_.options().query_options));
    std::vector<Diagnostic> findings = QueryAnalysis::Lint(*compiled);
    if (HasErrors(findings)) {
      std::string rendered = RenderDiagnostics(findings, "  ");
      if (diagnostics != nullptr) *diagnostics = std::move(findings);
      return Status::InvalidArgument("query '" + name +
                                     "' rejected by static analysis:\n" +
                                     rendered);
    }
    // Fleet pass: warn (never reject) when the new query duplicates or
    // subsumes an already-registered one. Subsumption claims are disabled
    // under a nonzero alert cooldown, whose suppression timing breaks the
    // alert-containment argument (see FleetAnalysis).
    std::vector<FleetAnalysis::Member> fleet;
    for (EngineCore::RegisteredQuery& reg : core_.SnapshotRegistry()) {
      fleet.push_back({reg.name, reg.aq});
    }
    FleetAnalysis::Options fleet_opts;
    fleet_opts.subsumption =
        core_.options().query_options.alert_cooldown <= 0;
    std::vector<Diagnostic> fleet_findings =
        FleetAnalysis::CheckQuery(*aq, fleet, fleet_opts);
    findings.insert(findings.end(),
                    std::make_move_iterator(fleet_findings.begin()),
                    std::make_move_iterator(fleet_findings.end()));
    if (diagnostics != nullptr) *diagnostics = std::move(findings);
  }
  return core_.RegisterQuery(std::move(aq), name);
}

void SaqlEngine::SetAlertSink(AlertSink sink) {
  core_.SetAlertSink(std::move(sink));
}

Result<std::unique_ptr<SaqlEngine::Session>> SaqlEngine::OpenSession(
    SessionOptions options) {
  if (ran_) {
    return Status::FailedPrecondition(
        "engine already ran: Run() is one-shot and final; use sessions "
        "from the start for multi-run lifecycles");
  }
  // Interner rotation policy, no-stream edition: rotating here (instead
  // of at this session's first push) lets the fresh compilations below
  // capture current-generation symbols directly. Rotation under other
  // live sessions is safe — they heal at their own next push.
  core_.MaybeRotate();
  auto session =
      std::unique_ptr<Session>(new Session(this, std::move(options)));
  Status st = session->OpenInternal();
  if (!st.ok()) return st;
  session->open_ = true;
  return session;
}

Status SaqlEngine::Run(EventSource* source) {
  if (ran_) {
    return Status::FailedPrecondition(
        "SaqlEngine::Run is one-shot and this engine already ran; use "
        "OpenSession() for repeated or long-lived runs");
  }
  if (core_.session_count() > 0) {
    return Status::FailedPrecondition(
        "a session is open; push events through it instead of Run");
  }
  if (core_.sessions_opened() > 0) {
    return Status::FailedPrecondition(
        "this engine is driven through sessions; Run's one-shot contract "
        "applies to fresh engines only");
  }
  if (core_.num_queries() == 0) {
    return Status::InvalidArgument("no queries registered");
  }
  SAQL_ASSIGN_OR_RETURN(std::unique_ptr<Session> session, OpenSession());
  ran_ = true;
  while (EventBlock* block = source->NextBlock(core_.options().batch_size)) {
    if (block->empty()) continue;
    Status st = session->Push(*block);
    if (!st.ok()) return st;
    st = session->AdvanceWatermark(session->max_event_ts());
    if (!st.ok()) return st;
  }
  return session->Close();
}

}  // namespace saql
