#include "engine/engine.h"

#include "core/interner.h"
#include "parser/analyzer.h"

namespace saql {

SaqlEngine::SaqlEngine(Options options) : options_(std::move(options)) {
  sink_ = [this](const Alert& a) { alerts_.push_back(a); };
}

SaqlEngine::~SaqlEngine() = default;

Status SaqlEngine::AddQuery(const std::string& text,
                            const std::string& name) {
  SAQL_ASSIGN_OR_RETURN(AnalyzedQueryPtr aq, CompileSaql(text));
  return AddAnalyzedQuery(std::move(aq), name);
}

Status SaqlEngine::AddAnalyzedQuery(AnalyzedQueryPtr aq,
                                    const std::string& name) {
  if (ran_) {
    return Status::FailedPrecondition(
        "engine already ran: Run() is one-shot; register queries before "
        "Run, or use OpenSession() for long-lived deployments");
  }
  if (active_session_ != nullptr) {
    return Status::FailedPrecondition(
        "a session is open: use Session::AddQuery to attach a query "
        "mid-stream");
  }
  for (const Registered& r : registered_) {
    if (r.name == name) {
      return Status::AlreadyExists("query '" + name +
                                   "' is already registered");
    }
  }
  // Compile now to validate (and to serve the first session without a
  // recompile).
  SAQL_ASSIGN_OR_RETURN(
      std::unique_ptr<CompiledQuery> q,
      CompiledQuery::Create(aq, name, options_.query_options));
  registered_.push_back(Registered{name, std::move(aq), std::move(q)});
  return Status::Ok();
}

void SaqlEngine::SetAlertSink(AlertSink sink) { sink_ = std::move(sink); }

Result<std::unique_ptr<SaqlEngine::Session>> SaqlEngine::OpenSession() {
  if (ran_) {
    return Status::FailedPrecondition(
        "engine already ran: Run() is one-shot and final; use sessions "
        "from the start for multi-run lifecycles");
  }
  if (active_session_ != nullptr) {
    return Status::FailedPrecondition(
        "a session is already open; close it before opening another");
  }
  // Interner rotation policy: only ever between sessions, never under a
  // live stream. Rotation invalidates the symbol ids compiled constraints
  // captured, so every cached compilation is discarded below.
  bool rotated = false;
  if (options_.interner_rotate_bytes > 0 &&
      Interner::Global().stats().bytes >= options_.interner_rotate_bytes) {
    Interner::Global().Rotate();
    rotated = true;
  }
  for (Registered& reg : registered_) {
    if (reg.compiled == nullptr || rotated) {
      SAQL_ASSIGN_OR_RETURN(
          reg.compiled,
          CompiledQuery::Create(reg.aq, reg.name, options_.query_options));
    }
  }
  auto session = std::unique_ptr<Session>(new Session(this));
  Status st = session->OpenInternal();
  if (!st.ok()) return st;
  session->open_ = true;
  active_session_ = session.get();
  ++sessions_opened_;
  return session;
}

Status SaqlEngine::Run(EventSource* source) {
  if (ran_) {
    return Status::FailedPrecondition(
        "SaqlEngine::Run is one-shot and this engine already ran; use "
        "OpenSession() for repeated or long-lived runs");
  }
  if (active_session_ != nullptr) {
    return Status::FailedPrecondition(
        "a session is open; push events through it instead of Run");
  }
  if (sessions_opened_ > 0) {
    return Status::FailedPrecondition(
        "this engine is driven through sessions; Run's one-shot contract "
        "applies to fresh engines only");
  }
  if (registered_.empty()) {
    return Status::InvalidArgument("no queries registered");
  }
  SAQL_ASSIGN_OR_RETURN(std::unique_ptr<Session> session, OpenSession());
  ran_ = true;
  while (EventBlock* block = source->NextBlock(options_.batch_size)) {
    if (block->empty()) continue;
    Status st = session->Push(*block);
    if (!st.ok()) return st;
    st = session->AdvanceWatermark(session->max_event_ts());
    if (!st.ok()) return st;
  }
  return session->Close();
}

}  // namespace saql
