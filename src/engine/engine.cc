#include "engine/engine.h"

#include "parser/analyzer.h"

namespace saql {

SaqlEngine::SaqlEngine(Options options)
    : options_(options),
      scheduler_(ConcurrentQueryScheduler::Options{options.enable_grouping}),
      executor_(StreamExecutor::Options{options.enable_routing,
                                        options.intern_strings}) {
  sink_ = [this](const Alert& a) { alerts_.push_back(a); };
}

Status SaqlEngine::AddQuery(const std::string& text,
                            const std::string& name) {
  SAQL_ASSIGN_OR_RETURN(AnalyzedQueryPtr aq, CompileSaql(text));
  return AddAnalyzedQuery(std::move(aq), name);
}

Status SaqlEngine::AddAnalyzedQuery(AnalyzedQueryPtr aq,
                                    const std::string& name) {
  if (ran_) {
    return Status::InvalidArgument(
        "cannot add queries after the engine has run");
  }
  for (const auto& q : queries_) {
    if (q->name() == name) {
      return Status::AlreadyExists("query '" + name +
                                   "' is already registered");
    }
  }
  SAQL_ASSIGN_OR_RETURN(
      std::unique_ptr<CompiledQuery> q,
      CompiledQuery::Create(std::move(aq), name, options_.query_options));
  q->SetErrorReporter(&errors_);
  q->SetAlertSink([this](const Alert& a) { sink_(a); });
  queries_.push_back(std::move(q));
  return Status::Ok();
}

void SaqlEngine::SetAlertSink(AlertSink sink) { sink_ = std::move(sink); }

Status SaqlEngine::Run(EventSource* source) {
  if (ran_) {
    return Status::InvalidArgument("engine already ran");
  }
  if (queries_.empty()) {
    return Status::InvalidArgument("no queries registered");
  }
  ran_ = true;
  for (auto& q : queries_) {
    scheduler_.AddQuery(q.get());
  }
  scheduler_.BuildGroups();
  for (QueryGroup* g : scheduler_.groups()) {
    executor_.Subscribe(g);
  }
  executor_.Run(source, options_.batch_size);
  return Status::Ok();
}

std::vector<std::pair<std::string, CompiledQuery::QueryStats>>
SaqlEngine::query_stats() const {
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>> out;
  out.reserve(queries_.size());
  for (const auto& q : queries_) {
    out.emplace_back(q->name(), q->stats());
  }
  return out;
}

}  // namespace saql
