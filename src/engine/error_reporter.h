#ifndef SAQL_ENGINE_ERROR_REPORTER_H_
#define SAQL_ENGINE_ERROR_REPORTER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"

namespace saql {

/// The paper's error reporter (§II-C): collects query-compile and runtime
/// errors during execution without interrupting the stream. Identical
/// errors are deduplicated with a count; the table is bounded so a
/// pathological query cannot exhaust memory with distinct messages.
///
/// Thread-safe: shard replicas running on different lanes of a sharded
/// executor share one reporter.
class ErrorReporter {
 public:
  struct Entry {
    std::string query;
    Status status;
    uint64_t count = 0;
  };

  explicit ErrorReporter(size_t max_entries = 1000)
      : max_entries_(max_entries) {}

  /// Records `status` (must be non-OK) attributed to `query`.
  void Report(const std::string& query, const Status& status);

  /// All distinct errors, in first-seen order.
  std::vector<Entry> entries() const;

  /// Total reports, including deduplicated and overflowed ones.
  uint64_t total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  bool empty() const { return total() == 0; }

  /// Multi-line rendering for the CLI.
  std::string ToString() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  size_t max_entries_;
  uint64_t total_ = 0;
  uint64_t overflow_ = 0;
  std::map<std::string, size_t> index_;  // dedupe key -> position
  std::vector<Entry> entries_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_ERROR_REPORTER_H_
