#include "engine/constraint_index.h"

#include <string>
#include <unordered_map>

#include "core/interner.h"
#include "core/string_util.h"
#include "engine/compiled_query.h"

namespace saql {

namespace {

inline size_t WordsFor(size_t members) { return (members + 63) / 64; }

inline void SetBit(std::vector<uint64_t>* bits, size_t i) {
  (*bits)[i / 64] |= uint64_t{1} << (i % 64);
}

inline void AndNot(std::vector<uint64_t>* dst,
                   const std::vector<uint64_t>& clear) {
  for (size_t w = 0; w < dst->size(); ++w) (*dst)[w] &= ~clear[w];
}

inline bool Intersects(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  for (size_t w = 0; w < a.size(); ++w) {
    if ((a[w] & b[w]) != 0) return true;
  }
  return false;
}

/// True when (side, field) can carry an interned symbol on events that
/// passed through `InternEventStrings` — the condition for resolving exact
/// equality with one symbol probe. Must mirror GetEntitySymbol /
/// GetEventSymbol (core/field_access.cc).
bool SymbolCapable(ConstraintIndex::Side side, FieldId field) {
  switch (side) {
    case ConstraintIndex::Side::kSubject:
      return field == FieldId::kExeName || field == FieldId::kName ||
             field == FieldId::kUser;
    case ConstraintIndex::Side::kObject:
      return field == FieldId::kExeName || field == FieldId::kUser ||
             field == FieldId::kPath || field == FieldId::kName;
    case ConstraintIndex::Side::kEvent:
      switch (field) {
        case FieldId::kAgentId:
        case FieldId::kSubjectExeName:
        case FieldId::kSubjectUser:
        case FieldId::kObjectExeName:
        case FieldId::kObjectUser:
        case FieldId::kObjectPath:
        case FieldId::kObjectName:
          return true;
        default:
          return false;
      }
  }
  return false;
}

/// Identity of a predicate for cross-member deduplication. String values of
/// eq/ne constraints are lowered because SAQL string equality is
/// case-insensitive — `"CMD.exe"` and `"cmd.exe"` are the same predicate.
std::string SlotKey(ConstraintIndex::Side side, const CompiledConstraint& c) {
  std::string key;
  key += static_cast<char>('0' + static_cast<int>(side));
  key += static_cast<char>('0' + static_cast<int>(c.op()));
  key += static_cast<char>('0' + static_cast<int>(c.field_id()));
  if (c.field_id() == FieldId::kInvalid) {
    // Unresolved fields evaluate through their spelling; resolved ones go
    // entirely through the id, so aliases (`path` / `name`) share a slot.
    key += c.field();
  }
  key += '\x1f';
  key += static_cast<char>('0' + static_cast<int>(c.value().kind()));
  if (c.value().is_string() &&
      (c.op() == ConstraintOp::kEq || c.op() == ConstraintOp::kNe)) {
    key += ToLower(c.value().AsString());
  } else {
    key += c.value().ToString();
  }
  return key;
}

}  // namespace

std::shared_ptr<const ConstraintIndex> ConstraintIndex::Build(
    const std::vector<CompiledQuery*>& members) {
  if (members.size() < 2) return nullptr;  // nothing to share
  for (const CompiledQuery* q : members) {
    if (q->patterns().size() != 1) return nullptr;  // multievent matcher
  }

  std::shared_ptr<ConstraintIndex> index(new ConstraintIndex());
  index->num_members_ = members.size();
  index->built_gen_ = Interner::Global().generation();
  const size_t words = WordsFor(members.size());
  index->all_members_.assign(words, 0);
  for (size_t i = 0; i < members.size(); ++i) {
    SetBit(&index->all_members_, i);
  }

  std::unordered_map<std::string, uint32_t> slot_ids;
  auto add = [&](size_t member, Side side, const CompiledConstraint& c) {
    ++index->total_constraints_;
    auto [it, inserted] =
        slot_ids.emplace(SlotKey(side, c), index->slots_.size());
    if (inserted) {
      index->slots_.push_back(Slot{c, side, std::vector<uint64_t>(words, 0)});
    }
    SetBit(&index->slots_[it->second].members, member);
  };
  for (size_t i = 0; i < members.size(); ++i) {
    for (const CompiledConstraint& c : members[i]->global_constraints()) {
      add(i, Side::kEvent, c);
    }
    const CompiledPattern& p = members[i]->patterns()[0];
    for (const CompiledConstraint& c : p.subject_constraints()) {
      add(i, Side::kSubject, c);
    }
    for (const CompiledConstraint& c : p.object_constraints()) {
      add(i, Side::kObject, c);
    }
  }

  // Classify: exact interned equality on a symbol-carrying field joins the
  // (side, field) probe group; everything else is a residual slot.
  std::unordered_map<uint32_t, size_t> probe_of;  // (side<<8|field) → index
  std::vector<ProbeGroup> probes;
  for (uint32_t s = 0; s < index->slots_.size(); ++s) {
    const Slot& slot = index->slots_[s];
    const bool probeable =
        slot.constraint.op() == ConstraintOp::kEq &&
        slot.constraint.symbol() != 0 &&
        // A symbol from an older interner generation than the index is
        // built against would probe against ids from the wrong era; such
        // slots stay residual until the owning session re-interns its
        // constraints and rebuilds.
        slot.constraint.symbol_generation() == index->built_gen_ &&
        slot.constraint.field_id() != FieldId::kInvalid &&
        SymbolCapable(slot.side, slot.constraint.field_id());
    if (!probeable) {
      if (slot.side == Side::kEvent) {
        index->global_residuals_.push_back(s);
      } else {
        index->entity_residuals_.push_back(s);
      }
      continue;
    }
    ++index->probe_slots_;
    uint32_t pk = (static_cast<uint32_t>(slot.side) << 8) |
                  static_cast<uint32_t>(slot.constraint.field_id());
    auto [it, inserted] = probe_of.emplace(pk, probes.size());
    if (inserted) {
      ProbeGroup g;
      g.side = slot.side;
      g.field = slot.constraint.field_id();
      g.all_members.assign(words, 0);
      probes.push_back(std::move(g));
    }
    ProbeGroup& g = probes[it->second];
    // Distinct slots in a group have distinct symbols by construction: the
    // dedup key lowers eq string values exactly like the interner does.
    g.pos_by_symbol.emplace(slot.constraint.symbol(),
                            static_cast<uint32_t>(g.slots.size()));
    g.slots.push_back(s);
    for (size_t w = 0; w < words; ++w) g.all_members[w] |= slot.members[w];
  }
  for (ProbeGroup& g : probes) {
    g.refuted_on_hit.resize(g.slots.size());
    for (size_t k = 0; k < g.slots.size(); ++k) {
      g.refuted_on_hit[k].assign(words, 0);
      for (size_t j = 0; j < g.slots.size(); ++j) {
        if (j == k) continue;
        const std::vector<uint64_t>& m = index->slots_[g.slots[j]].members;
        for (size_t w = 0; w < words; ++w) g.refuted_on_hit[k][w] |= m[w];
      }
    }
  }
  for (ProbeGroup& g : probes) {
    if (g.side == Side::kEvent) {
      index->global_probes_.push_back(std::move(g));
    } else {
      index->entity_probes_.push_back(std::move(g));
    }
  }
  return index;
}

bool ConstraintIndex::EvalSlot(const Slot& slot, const Event& event) const {
  switch (slot.side) {
    case Side::kEvent:
      return slot.constraint.MatchesEvent(event);
    case Side::kSubject:
      return slot.constraint.MatchesEntity(event, EntityRole::kSubject);
    case Side::kObject:
      return slot.constraint.MatchesEntity(event, EntityRole::kObject);
  }
  return false;
}

void ConstraintIndex::ApplyProbeGroup(const ProbeGroup& group,
                                      const Event& event,
                                      std::vector<uint64_t>* matched) const {
  if (!Intersects(group.all_members, *matched)) return;
  uint32_t sym = 0;
  if (event.syms.gen == static_cast<uint32_t>(built_gen_)) {
    sym = group.side == Side::kEvent
              ? GetEventSymbol(event, group.field)
              : GetEntitySymbol(event,
                                group.side == Side::kSubject
                                    ? EntityRole::kSubject
                                    : EntityRole::kObject,
                                group.field);
  }
  if (sym == 0) {
    // Un-interned event (or the field carries no symbol for this object
    // type): fall back to the constraints' own evaluation, which handles
    // the string-compare path exactly like brute force.
    for (uint32_t s : group.slots) {
      const Slot& slot = slots_[s];
      if (Intersects(slot.members, *matched) && !EvalSlot(slot, event)) {
        AndNot(matched, slot.members);
      }
    }
    return;
  }
  auto it = group.pos_by_symbol.find(sym);
  if (it == group.pos_by_symbol.end()) {
    // No member's expected value matches: refute every member that tests
    // this field for equality.
    AndNot(matched, group.all_members);
    return;
  }
  // Exactly one slot is satisfied; every member requiring any *other*
  // slot of this group is refuted (including members that also require
  // the hit slot — contradictory conjunctions).
  AndNot(matched, group.refuted_on_hit[it->second]);
}

void ConstraintIndex::ApplyResidual(const Slot& slot, const Event& event,
                                    std::vector<uint64_t>* matched) const {
  if (!Intersects(slot.members, *matched)) return;
  if (!EvalSlot(slot, event)) AndNot(matched, slot.members);
}

void ConstraintIndex::Match(const Event& event, MatchResult* result) const {
  result->matched = all_members_;
  for (const ProbeGroup& g : global_probes_) {
    ApplyProbeGroup(g, event, &result->matched);
  }
  for (uint32_t s : global_residuals_) {
    ApplyResidual(slots_[s], event, &result->matched);
  }
  result->passed_global = result->matched;
  for (const ProbeGroup& g : entity_probes_) {
    ApplyProbeGroup(g, event, &result->matched);
  }
  for (uint32_t s : entity_residuals_) {
    ApplyResidual(slots_[s], event, &result->matched);
  }
}

}  // namespace saql
