#ifndef SAQL_ENGINE_AGGREGATES_H_
#define SAQL_ENGINE_AGGREGATES_H_

#include <memory>
#include <string>

#include "core/result.h"
#include "core/value.h"

namespace saql {

/// Incremental aggregate over the events matched into one (group, window)
/// cell of the state maintainer. One instance per aggregate call site per
/// cell; `Add` runs on the stream path, `Finish` at window close.
///
/// Every aggregator also carries a *mergeable* form: `Merge` absorbs the
/// state of another instance of the same concrete type, such that
/// merge(A, B).Finish() equals feeding A's and B's inputs into one
/// instance. This is what lets a sharded executor fold per-shard partial
/// window states into one global state before alert evaluation.
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Folds one input value in. Null inputs are ignored (an event without
  /// the attribute contributes nothing).
  virtual void Add(const Value& v) = 0;

  /// Absorbs `other`, which must be the same concrete aggregator type
  /// (instances of the same call site from different shards always are).
  virtual void Merge(const Aggregator& other) = 0;

  /// The aggregate result for the window. Empty windows produce the
  /// aggregate's natural zero (0 for count/sum, null for avg/min/max,
  /// empty set for set()).
  virtual Value Finish() const = 0;
};

/// Creates an aggregator by function name ("avg", "sum", "count", "min",
/// "max", "stddev", "set", "count_distinct"); names are those accepted by
/// `IsAggregateFunction`.
Result<std::unique_ptr<Aggregator>> MakeAggregator(const std::string& name);

}  // namespace saql

#endif  // SAQL_ENGINE_AGGREGATES_H_
