#ifndef SAQL_ENGINE_STATE_MAINTAINER_H_
#define SAQL_ENGINE_STATE_MAINTAINER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "engine/aggregates.h"
#include "engine/eval_contexts.h"
#include "engine/multievent_matcher.h"
#include "parser/analyzer.h"
#include "stream/window.h"

namespace saql {

/// The paper's state maintainer (§II-C): for a stateful query it buckets
/// matched events into sliding windows, maintains per-group aggregates
/// inside each window, and finalizes window states when event time passes
/// the window end.
///
/// Time windows are closed by `AdvanceWatermark`; all groups of one window
/// close together (which is what lets the cluster stage compare peers).
/// Count windows (`#count(N)`) close per group as soon as the group
/// accumulates N matches.
class StateMaintainer {
 public:
  /// One group's finalized state for a closing window.
  struct ClosedGroup {
    std::string group_key;          ///< canonical key (join of key values)
    std::vector<Value> key_values;  ///< by AnalyzedQuery::group_keys order
    WindowState state;
  };

  /// Invoked once per closing window with every group that had matches in
  /// it. `groups` is mutable so the caller can move values out.
  using CloseCallback =
      std::function<void(const TimeWindow&, std::vector<ClosedGroup>&)>;

  /// One group's *unfinished* state for a closing window: the live
  /// aggregators, state fields not yet evaluated. This is the shard-local
  /// partial a sharded executor ships to its merge stage; partials of the
  /// same (window, group) from different shards combine with `MergePartial`
  /// and the state fields are evaluated once, globally, by `FinishPartial`.
  struct PartialGroup {
    std::string group_key;          ///< canonical key (join of key values)
    std::vector<Value> key_values;  ///< by AnalyzedQuery::group_keys order
    std::vector<std::unique_ptr<Aggregator>> aggs;  ///< by agg site index
  };

  /// Invoked once per closing time window with every group's partial state.
  /// `groups` is mutable so the caller can move the aggregators out.
  using PartialCallback =
      std::function<void(const TimeWindow&, std::vector<PartialGroup>&)>;

  struct Stats {
    uint64_t matches_in = 0;
    uint64_t windows_closed = 0;
    uint64_t groups_closed = 0;
    uint64_t eval_errors = 0;
    size_t peak_open_cells = 0;
  };

  explicit StateMaintainer(AnalyzedQueryPtr aq);

  /// Builds aggregate call-site tables. Must be called once before use.
  Status Init();

  void SetCloseCallback(CloseCallback cb) { close_cb_ = std::move(cb); }

  /// Diverts time-window closes into partial form: when set, a closing
  /// window emits `PartialGroup`s through `cb` instead of finalized
  /// `ClosedGroup`s through the close callback. Count windows (`#count(N)`)
  /// close on per-group match counts and are not shard-partitionable; they
  /// keep using the regular close callback regardless.
  void SetPartialCallback(PartialCallback cb) { partial_cb_ = std::move(cb); }

  /// Merges `src` into `dst`, aggregate by aggregate (both must come from
  /// the same query, so call-site order agrees).
  static void MergePartial(PartialGroup* dst, PartialGroup& src);

  /// Evaluates the state fields of a (merged) partial group — exactly what
  /// a local window close would have produced had all the partials' inputs
  /// been folded into this maintainer. Requires `Init()`.
  ClosedGroup FinishPartial(const TimeWindow& window, PartialGroup& pg);

  /// Folds one pattern match into its window(s) and group.
  void AddMatch(const PatternMatch& match);

  /// Closes all time windows ending at or before `watermark`.
  void AdvanceWatermark(Timestamp watermark);

  /// Closes everything still open (end of stream).
  void Finish();

  const Stats& stats() const { return stats_; }

 private:
  /// Live aggregation state of one (window, group) cell.
  struct Cell {
    std::vector<std::unique_ptr<Aggregator>> aggs;  // by agg site index
    std::vector<Value> key_values;
  };

  struct Bucket {
    TimeWindow window;
    std::unordered_map<std::string, Cell> cells;
  };

  /// Running count-window state of one group.
  struct CountCell {
    Cell cell;
    int64_t count = 0;
    Timestamp first_ts = 0;
    Timestamp last_ts = 0;
  };

  /// Computes group key values for a match; returns false on eval error.
  bool ResolveGroupKeys(const PatternMatch& match,
                        std::vector<Value>* values, std::string* key);

  Cell MakeCell(std::vector<Value> key_values);
  void FoldMatch(const PatternMatch& match, Cell* cell);
  WindowState FinishCell(const TimeWindow& window, Cell& cell);
  void CloseBucket(Bucket& bucket);

  AnalyzedQueryPtr aq_;
  CloseCallback close_cb_;
  PartialCallback partial_cb_;
  /// Aggregate call sites across all state fields, in field order.
  std::vector<const Expr*> agg_sites_;
  /// Aggregate function name per site (lowercase).
  std::vector<std::string> agg_names_;

  bool is_count_window_ = false;
  int64_t count_n_ = 0;
  std::unique_ptr<WindowAssigner> assigner_;

  /// Open time windows keyed by window end (ordered so closing sweeps in
  /// time order).
  std::map<Timestamp, Bucket> open_;
  /// Open count windows per group.
  std::unordered_map<std::string, CountCell> count_cells_;

  Stats stats_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_STATE_MAINTAINER_H_
