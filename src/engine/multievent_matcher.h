#ifndef SAQL_ENGINE_MULTIEVENT_MATCHER_H_
#define SAQL_ENGINE_MULTIEVENT_MATCHER_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/event.h"
#include "engine/compiled_pattern.h"
#include "parser/analyzer.h"

namespace saql {

/// A complete match of all event patterns of a query.
struct PatternMatch {
  /// Matched events indexed by *declaration-order* pattern index.
  std::vector<Event> events;
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
};

/// The paper's multievent matcher (§II-C): matches stream events against
/// the query's event patterns, honouring
///  - per-pattern attribute constraints,
///  - shared entity variables across patterns (Query 1's `f1` must be the
///    same file in evt2 and evt3),
///  - the `with evt1 -> evt2` temporal order with optional per-step gap
///    bounds.
///
/// Implementation: NFA-style partial matches with skip-till-any-match
/// semantics — an event extending a partial match *forks* it, so
/// alternative combinations still complete. Memory is bounded by
/// `Options::max_partial_matches` (drops are counted) and by pruning
/// partials older than the match horizon.
class MultieventMatcher {
 public:
  struct Options {
    /// Partials whose first event is older than this are pruned. Queries
    /// with a window use the window length instead when smaller.
    Duration match_horizon = 24 * kHour;
    /// Hard cap on live partial matches.
    size_t max_partial_matches = 100000;
  };

  struct Stats {
    uint64_t events_in = 0;
    uint64_t partials_created = 0;
    uint64_t partials_dropped = 0;  ///< dropped at the cap
    uint64_t matches = 0;
    size_t peak_partials = 0;
  };

  /// `aq` supplies pattern order, shared variables and gap bounds;
  /// `patterns` are the compiled patterns in declaration order (not owned;
  /// must outlive the matcher).
  MultieventMatcher(AnalyzedQueryPtr aq,
                    const std::vector<CompiledPattern>* patterns,
                    Options options);

  /// Feeds one event (already past global constraints); appends completed
  /// matches to `out`.
  void OnEvent(const Event& event, std::vector<PatternMatch>* out);

  /// Drops partials that can no longer complete by `watermark`.
  void Prune(Timestamp watermark);

  const Stats& stats() const { return stats_; }
  size_t live_partials() const { return partials_.size(); }

 private:
  struct Partial {
    std::vector<Event> events;       // by declaration index
    std::vector<bool> filled;
    int filled_count = 0;
    int next_step = 0;               // position in temporal_order (ordered)
    Timestamp first_ts = 0;
    Timestamp last_ts = 0;
    std::unordered_map<std::string, std::string> bindings;  // var -> key
  };

  /// Tries to place `event` into slot `pattern_idx` of `p`; returns false
  /// when constraints or bindings reject it. On success fills a copy.
  bool TryExtend(const Partial& p, int pattern_idx, const Event& event,
                 Partial* out) const;

  /// True if `event`'s entity keys are consistent with `bindings`; records
  /// new keys into `bindings`.
  bool BindVars(int pattern_idx, const Event& event,
                std::unordered_map<std::string, std::string>* bindings) const;

  void Emit(const Partial& p, std::vector<PatternMatch>* out);

  AnalyzedQueryPtr aq_;
  const std::vector<CompiledPattern>* patterns_;
  Options options_;
  Duration horizon_;
  std::list<Partial> partials_;
  Stats stats_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_MULTIEVENT_MATCHER_H_
