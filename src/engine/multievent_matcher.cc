#include "engine/multievent_matcher.h"

#include <algorithm>

namespace saql {

MultieventMatcher::MultieventMatcher(
    AnalyzedQueryPtr aq, const std::vector<CompiledPattern>* patterns,
    Options options)
    : aq_(std::move(aq)), patterns_(patterns), options_(options) {
  horizon_ = options_.match_horizon;
  const Query& q = *aq_->query;
  if (q.window.has_value() && q.window->kind == WindowSpec::Kind::kTime &&
      q.window->length < horizon_) {
    horizon_ = q.window->length;
  }
}

bool MultieventMatcher::BindVars(
    int pattern_idx, const Event& event,
    std::unordered_map<std::string, std::string>* bindings) const {
  const EventPatternDecl& decl =
      aq_->query->patterns[static_cast<size_t>(pattern_idx)];
  struct VarRole {
    const std::string* var;
    EntityRole role;
  };
  const VarRole roles[2] = {{&decl.subject.var, EntityRole::kSubject},
                            {&decl.object.var, EntityRole::kObject}};
  for (const VarRole& vr : roles) {
    // Only variables occurring in more than one pattern constrain identity;
    // skipping singletons keeps the hot path free of key construction.
    auto occ = aq_->entity_vars.find(*vr.var);
    if (occ == aq_->entity_vars.end() || occ->second.size() < 2) continue;
    std::string key = EntityKeyOf(event, vr.role);
    auto [it, inserted] = bindings->emplace(*vr.var, key);
    if (!inserted && it->second != key) return false;
  }
  return true;
}

bool MultieventMatcher::TryExtend(const Partial& p, int pattern_idx,
                                  const Event& event, Partial* out) const {
  if (!(*patterns_)[static_cast<size_t>(pattern_idx)].Matches(event)) {
    return false;
  }
  // Gap bound between consecutive ordered steps.
  if (aq_->ordered && p.filled_count > 0) {
    size_t step = static_cast<size_t>(p.next_step);
    if (step > 0 && step - 1 < aq_->temporal_gaps.size()) {
      Duration gap = aq_->temporal_gaps[step - 1];
      if (gap > 0 && event.ts - p.last_ts > gap) return false;
    }
  }
  *out = p;
  if (!BindVars(pattern_idx, event, &out->bindings)) return false;
  out->events[static_cast<size_t>(pattern_idx)] = event;
  out->filled[static_cast<size_t>(pattern_idx)] = true;
  ++out->filled_count;
  if (out->filled_count == 1) out->first_ts = event.ts;
  out->last_ts = std::max(out->last_ts, event.ts);
  ++out->next_step;
  return true;
}

void MultieventMatcher::Emit(const Partial& p,
                             std::vector<PatternMatch>* out) {
  PatternMatch m;
  m.events = p.events;
  m.first_ts = p.first_ts;
  m.last_ts = p.last_ts;
  out->push_back(std::move(m));
  ++stats_.matches;
}

void MultieventMatcher::OnEvent(const Event& event,
                                std::vector<PatternMatch>* out) {
  ++stats_.events_in;
  const int n = aq_->NumPatterns();
  std::vector<Partial> extensions;

  if (aq_->ordered) {
    // Each partial waits for exactly one next step.
    for (const Partial& p : partials_) {
      int pattern_idx =
          aq_->temporal_order[static_cast<size_t>(p.next_step)];
      Partial ext;
      if (TryExtend(p, pattern_idx, event, &ext)) {
        extensions.push_back(std::move(ext));
      }
    }
    // Start a fresh partial at step 0.
    Partial fresh;
    fresh.events.resize(static_cast<size_t>(n));
    fresh.filled.assign(static_cast<size_t>(n), false);
    Partial ext;
    if (TryExtend(fresh, aq_->temporal_order[0], event, &ext)) {
      extensions.push_back(std::move(ext));
    }
  } else {
    // Unordered: the event may fill any unfilled slot.
    for (const Partial& p : partials_) {
      for (int i = 0; i < n; ++i) {
        if (p.filled[static_cast<size_t>(i)]) continue;
        Partial ext;
        if (TryExtend(p, i, event, &ext)) {
          extensions.push_back(std::move(ext));
        }
      }
    }
    Partial fresh;
    fresh.events.resize(static_cast<size_t>(n));
    fresh.filled.assign(static_cast<size_t>(n), false);
    for (int i = 0; i < n; ++i) {
      Partial ext;
      if (TryExtend(fresh, i, event, &ext)) {
        extensions.push_back(std::move(ext));
      }
    }
  }

  for (Partial& ext : extensions) {
    if (ext.filled_count == n) {
      Emit(ext, out);
      continue;
    }
    if (partials_.size() >= options_.max_partial_matches) {
      ++stats_.partials_dropped;
      continue;
    }
    partials_.push_back(std::move(ext));
    ++stats_.partials_created;
  }
  stats_.peak_partials = std::max(stats_.peak_partials, partials_.size());
}

void MultieventMatcher::Prune(Timestamp watermark) {
  Timestamp cutoff = watermark - horizon_;
  for (auto it = partials_.begin(); it != partials_.end();) {
    bool dead = it->first_ts < cutoff;
    // An ordered partial whose next step has a gap bound is dead once the
    // bound has lapsed — nothing arriving later can extend it.
    if (!dead && aq_->ordered && it->filled_count > 0) {
      size_t step = static_cast<size_t>(it->next_step);
      if (step > 0 && step - 1 < aq_->temporal_gaps.size()) {
        Duration gap = aq_->temporal_gaps[step - 1];
        if (gap > 0 && watermark - it->last_ts > gap) dead = true;
      }
    }
    if (dead) {
      it = partials_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace saql
