#ifndef SAQL_ENGINE_EVAL_CONTEXTS_H_
#define SAQL_ENGINE_EVAL_CONTEXTS_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/expr_eval.h"
#include "engine/multievent_matcher.h"
#include "parser/analyzer.h"
#include "stream/window.h"

namespace saql {

/// One window's computed state for one group: the values of the query's
/// state fields (`ss.avg_amount`, ...).
struct WindowState {
  TimeWindow window;
  std::vector<Value> fields;  ///< indexed by AnalyzedQuery::state_field_index
};

/// Result of the cluster stage for one group in one window.
struct ClusterOutcome {
  bool valid = false;  ///< false when the query has no cluster stage
  bool outlier = false;
  int cluster_id = -1;
  int cluster_size = 0;
};

/// Context for expressions evaluated against one complete pattern match:
/// rule-query alert/return clauses and aggregate arguments. Entity
/// variables and event aliases resolve into the matched events.
class MatchEvalContext : public EvalContext {
 public:
  MatchEvalContext(const AnalyzedQuery& aq, const PatternMatch& match)
      : aq_(aq), match_(match) {}

  Result<Value> ResolveRef(const Expr& ref) const override;

 private:
  const AnalyzedQuery& aq_;
  const PatternMatch& match_;
};

/// Context for expressions evaluated at window close: stateful alert /
/// return clauses, invariant statements, and cluster point expressions.
///
/// `ss[k]` resolves into `history` (front = the window being closed);
/// indices beyond the retained history resolve to null. Group-by keys
/// resolve to the group's key values; invariant variables to the group's
/// invariant environment; `cluster.*` to the cluster outcome.
class WindowEvalContext : public EvalContext {
 public:
  WindowEvalContext(const AnalyzedQuery& aq,
                    const std::deque<WindowState>* history,
                    const std::vector<Value>* group_key_values,
                    const std::vector<Value>* invariant_env,
                    const ClusterOutcome* cluster)
      : aq_(aq),
        history_(history),
        group_key_values_(group_key_values),
        invariant_env_(invariant_env),
        cluster_(cluster) {}

  Result<Value> ResolveRef(const Expr& ref) const override;

 private:
  const AnalyzedQuery& aq_;
  const std::deque<WindowState>* history_;
  const std::vector<Value>* group_key_values_;
  const std::vector<Value>* invariant_env_;  ///< may be null
  const ClusterOutcome* cluster_;            ///< may be null
};

/// Context that substitutes pre-computed aggregate results when evaluating
/// state-field expressions at window close. Keyed by call-site pointer
/// identity (each aggregate call in the AST is a distinct site).
class AggFinishContext : public EvalContext {
 public:
  explicit AggFinishContext(
      const std::unordered_map<const Expr*, Value>* agg_values)
      : agg_values_(agg_values) {}

  Result<Value> ResolveRef(const Expr& ref) const override;
  Result<Value> ResolveAggregate(const Expr& call) const override;

 private:
  const std::unordered_map<const Expr*, Value>* agg_values_;
};

/// Collects the aggregate call sites of `expr` in evaluation order.
void CollectAggregateSites(const Expr& expr, std::vector<const Expr*>* out);

}  // namespace saql

#endif  // SAQL_ENGINE_EVAL_CONTEXTS_H_
