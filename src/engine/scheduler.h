#ifndef SAQL_ENGINE_SCHEDULER_H_
#define SAQL_ENGINE_SCHEDULER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/compiled_query.h"
#include "engine/constraint_index.h"
#include "stream/stream_executor.h"

namespace saql {

/// A group of semantically compatible queries under the paper's
/// master-dependent-query scheme (§II-C). Queries whose event patterns
/// share the same structural shape (subject type, operation set, object
/// type per pattern) are grouped; the group subscribes to the stream
/// *once*, the master's structural matcher filters events, and only events
/// that structurally match are handed to the member queries — which then
/// apply their residual attribute constraints.
///
/// This is where the scheme's saving comes from: N compatible queries cost
/// one stream subscription and one structural match per event instead of
/// N full evaluations of irrelevant events. The group additionally exports
/// the master's op-mask × object-type envelope as its `RoutingInterest`,
/// so the executor's dispatch index skips the group entirely for events
/// that could never pass the master filter; skipped events are still
/// accounted in `events_in` to keep the stats comparable to broadcast
/// delivery.
class QueryGroup final : public EventProcessor {
 public:
  struct GroupStats {
    uint64_t events_in = 0;  ///< delivered + routed-away events
    uint64_t events_forwarded = 0;   ///< passed the shared master filter
    uint64_t member_deliveries = 0;  ///< events handed to member queries
  };

  explicit QueryGroup(std::string signature)
      : signature_(std::move(signature)) {}

  /// Adds a member. The first member becomes the master whose structural
  /// shape drives the shared filter (all members share it by construction).
  void AddMember(CompiledQuery* query) { members_.push_back(query); }

  /// Removes a member (a session retracting a query mid-stream); returns
  /// whether it was present. The caller owns index consistency: call
  /// `BuildIndex`/`DropIndex` (or `AdoptIndex` on replica lanes) after the
  /// membership change — the previous index still reflects the old member
  /// list and is dropped here to fail safe (brute force is always
  /// correct).
  bool RemoveMember(CompiledQuery* query) {
    for (auto it = members_.begin(); it != members_.end(); ++it) {
      if (*it == query) {
        members_.erase(it);
        index_.reset();
        return true;
      }
    }
    return false;
  }

  /// Builds the shared member-matching `ConstraintIndex` over the current
  /// members (BuildGroups time, or after a dynamic membership change). No-op
  /// — brute-force member delivery — when the group is not indexable (see
  /// ConstraintIndex::Build).
  void BuildIndex() { index_ = ConstraintIndex::Build(members_); }

  /// Reverts to brute-force member delivery.
  void DropIndex() { index_.reset(); }

  /// Adopts an index built for an identical member list (a sharded lane
  /// reusing the first lane's immutable index). Ignores nullptr; rejects a
  /// member-count mismatch by keeping brute-force delivery.
  void AdoptIndex(std::shared_ptr<const ConstraintIndex> index) {
    if (index != nullptr && index->num_members() == members_.size()) {
      index_ = std::move(index);
    }
  }

  /// The shared index, or nullptr when this group delivers brute-force.
  const ConstraintIndex* index() const { return index_.get(); }
  std::shared_ptr<const ConstraintIndex> shared_index() const {
    return index_;
  }

  void OnEvent(const Event& event) override;
  void OnBatch(const EventRefs& events) override;
  void OnWatermark(Timestamp ts) override;
  void OnFinish() override;
  RoutingInterest Interest() const override;
  void OnRoutedSkip(uint64_t count) override { stats_.events_in += count; }

  const std::string& signature() const { return signature_; }
  size_t size() const { return members_.size(); }
  const CompiledQuery* master() const {
    return members_.empty() ? nullptr : members_.front();
  }
  const GroupStats& stats() const { return stats_; }

 private:
  /// Index-driven delivery of one forwarded slice: evaluates the shared
  /// index per event and hands each member only its matching events, with
  /// exact per-member stats accounting.
  void DeliverIndexed(const EventRefs& forwarded);

  std::string signature_;
  std::vector<CompiledQuery*> members_;
  GroupStats stats_;
  /// Scratch for batched member forwarding, reused across batches.
  EventRefs forward_scratch_;
  /// Shared constraint discrimination index (nullptr = brute force).
  std::shared_ptr<const ConstraintIndex> index_;
  // Reused index-delivery scratch.
  ConstraintIndex::MatchResult match_scratch_;
  std::vector<EventRefs> member_matches_;
  std::vector<uint64_t> member_failed_global_;
  EventRefs single_event_scratch_;
};

/// The paper's concurrent query scheduler: divides registered queries into
/// compatibility groups and exposes one `EventProcessor` per group. With
/// grouping disabled every query becomes its own group — the baseline the
/// evaluation compares against (one data copy per query).
class ConcurrentQueryScheduler {
 public:
  struct Options {
    bool enable_grouping = true;
    /// Build a shared `ConstraintIndex` per group at BuildGroups time so
    /// member-side matching is one index walk per event instead of one
    /// constraint-conjunction evaluation per member. Disabled = brute
    /// force (the differential-test and ablation baseline).
    bool enable_member_index = true;
    /// Smallest group that gets an index. For tiny groups the per-event
    /// bitset walk costs more than two or three direct conjunction
    /// evaluations (the A7 ablation's 8-query point); brute force stays
    /// faster until a few members share the walk. Tests drop this to 2
    /// for coverage.
    size_t min_index_members = 3;
  };

  ConcurrentQueryScheduler() : ConcurrentQueryScheduler(Options{}) {}
  explicit ConcurrentQueryScheduler(Options options) : options_(options) {}

  /// Registers a compiled query (not owned; must outlive the scheduler).
  void AddQuery(CompiledQuery* query);

  /// Builds groups from the registered queries. Must be called after all
  /// AddQuery calls and before `groups()`.
  void BuildGroups();

  /// Dynamic (post-BuildGroups) registration: patches the query into its
  /// compatibility group — an existing group when one with the same
  /// structural signature exists and grouping is enabled, a new group
  /// otherwise — and rebuilds the group's shared ConstraintIndex to cover
  /// the new member. Sets `*created` when the returned group is new (the
  /// caller must subscribe it to the executor); an existing group's
  /// stream subscription and routing interest are unchanged (members
  /// share the structural envelope by construction).
  QueryGroup* AddQueryDynamic(CompiledQuery* query, bool* created);

  /// Dynamic retraction: removes the query from its group, rebuilding (or
  /// dropping, below `min_index_members`) the group's index over the
  /// remaining members. When the group becomes empty its ownership moves
  /// into `*emptied` (so the caller can unsubscribe it from the executor
  /// before letting it die); otherwise `*patched` points at the surviving
  /// group (so sharded lane replicas can re-adopt lane 0's rebuilt
  /// index). Returns whether the query was registered.
  bool RemoveQuery(CompiledQuery* query, std::unique_ptr<QueryGroup>* emptied,
                   QueryGroup** patched);

  /// Re-derives one group's index policy after a dynamic membership
  /// change: index when enabled and the group has at least
  /// `min_index_members` members, brute force otherwise.
  void ReindexGroup(QueryGroup* group);

  /// Rebuilds every group's index against the current interner generation
  /// (the quiesce-point half of a live rotation — the session re-interns
  /// its queries' symbols first, then calls this so probe groups pick the
  /// fresh ids up). Same policy as ReindexGroup per group.
  void ReindexAllGroups() {
    for (auto& g : groups_) ReindexGroup(g.get());
  }

  /// The processors to subscribe to the stream executor.
  std::vector<QueryGroup*> groups();

  size_t num_queries() const { return queries_.size(); }
  size_t num_groups() const { return groups_.size(); }
  /// Groups whose member matching runs through a shared ConstraintIndex.
  size_t num_indexed_groups() const;

  /// Events forwarded to members across groups / events seen — the measure
  /// of how much stream data the scheme filtered out before per-query work.
  /// Events withheld by the executor's dispatch index count as seen, so the
  /// ratio is comparable whether routing is on or off.
  double ForwardRatio() const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<CompiledQuery*> queries_;
  std::vector<std::unique_ptr<QueryGroup>> groups_;
  /// Signature → group, maintained by BuildGroups and the dynamic
  /// add/remove path (grouping enabled only).
  std::map<std::string, QueryGroup*> by_signature_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_SCHEDULER_H_
