#ifndef SAQL_ENGINE_CONSTRAINT_INDEX_H_
#define SAQL_ENGINE_CONSTRAINT_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/event.h"
#include "core/field_access.h"
#include "engine/compiled_pattern.h"

namespace saql {

class CompiledQuery;

/// Shared discrimination index over the attribute constraints of one query
/// group's members (the Rete/TriggerMan-style many-query matching move).
///
/// Brute-force member matching evaluates every member's full constraint
/// conjunction per forwarded event, so the per-event cost of a group grows
/// linearly with its member count even when the members test the same or
/// overlapping predicates. The index factors the members' compiled
/// constraints into *distinct predicate slots* at build time:
///
///  - Exact (wildcard-free) string equality on an internable attribute
///    becomes a *probe group* per (role, FieldId): all such constraints on
///    that field across all members resolve with ONE hash probe of the
///    event's interned symbol — the slots of a probe group are mutually
///    exclusive, so the probe satisfies at most one slot and refutes every
///    other in two bitset operations, regardless of member count.
///  - Everything else (numeric comparisons, LIKE with wildcards, `!=`,
///    equality on non-interned attributes) becomes a *residual slot*,
///    bucketed by (role, FieldId) and evaluated ONCE per event instead of
///    once per member that tests it.
///
/// Each member records the slots its conjunction requires; `Match` starts
/// from an all-ones member bitset and clears members as slots refute, so
/// duplicate and contradictory constraints fall out naturally. The result
/// carries two bitsets — members whose *global* (whole-event) constraints
/// passed, and members whose full conjunction matched — because per-member
/// statistics (`QueryStats::events_past_global`) must stay identical to
/// brute-force evaluation.
///
/// An index is immutable after `Build` and `Match` is const and touches
/// only the event plus caller-owned scratch, so sharded executor lanes
/// share one instance (each lane's `QueryGroup` keeps its own
/// `MatchResult`).
///
/// Semantics contract, pinned by tests/constraint_index_diff_test.cc: for
/// every event and every member, `Match` agrees exactly with evaluating
/// the member's `CompiledConstraint`s directly — including on un-interned
/// events (slot evaluation falls back to the constraints' own string
/// paths, which never allocate for exact equality).
class ConstraintIndex {
 public:
  /// Where a constraint reads its attribute from.
  enum class Side : uint8_t {
    kEvent = 0,    ///< whole-event (global constraint lines)
    kSubject = 1,  ///< subject entity
    kObject = 2,   ///< object entity
  };

  /// Member bitsets of one `Match` call. Words are 64-bit, member i lives
  /// at word i/64 bit i%64. Owned by the caller and reused across events.
  struct MatchResult {
    std::vector<uint64_t> passed_global;  ///< all global constraints passed
    std::vector<uint64_t> matched;        ///< full conjunction satisfied
  };

  /// Builds the index over `members` (the group's queries, in member
  /// order). Returns nullptr when the group is not indexable: fewer than
  /// two members (nothing to share) or any member with multiple event
  /// patterns (those route through the multievent matcher, whose
  /// per-pattern candidate logic the index does not model).
  static std::shared_ptr<const ConstraintIndex> Build(
      const std::vector<CompiledQuery*>& members);

  /// Evaluates every distinct slot once against `event` and fills
  /// `result`. The structural (type/op) shape is NOT checked here — the
  /// group's master filter already guarantees it for forwarded events.
  void Match(const Event& event, MatchResult* result) const;

  size_t num_members() const { return num_members_; }
  /// Distinct predicate slots across all members.
  size_t num_slots() const { return slots_.size(); }
  /// Slots resolved by symbol probes rather than per-slot evaluation.
  size_t num_probe_slots() const { return probe_slots_; }
  /// Total member→slot requirement edges before deduplication — the
  /// constraint evaluations brute force would perform per fully-scanned
  /// event; compare with num_slots() for the sharing factor.
  size_t total_constraints() const { return total_constraints_; }

  /// All-members mask (tail bits of the last word are zero); word count is
  /// (num_members + 63) / 64.
  const std::vector<uint64_t>& all_members() const { return all_members_; }

  /// Interner generation the probe groups were built against. Events
  /// stamped under any other generation bypass the symbol probes and take
  /// the per-slot fallback (always correct); sessions rebuild their
  /// indexes at the quiesce point after a live rotation.
  uint64_t built_generation() const { return built_gen_; }

 private:
  /// One distinct predicate shared by every member whose bit is set.
  struct Slot {
    CompiledConstraint constraint;
    Side side;
    std::vector<uint64_t> members;  ///< members requiring this slot
  };

  /// All exact interned-equality slots on one (side, field): resolved by a
  /// single symbol probe per event.
  struct ProbeGroup {
    Side side;
    FieldId field = FieldId::kInvalid;
    /// Event symbol → position in `slots`.
    std::unordered_map<uint32_t, uint32_t> pos_by_symbol;
    std::vector<uint32_t> slots;  ///< for the un-interned fallback
    /// Per position: union of the *other* slots' members — the members a
    /// hit at that position refutes. This is not `all_members & ~hit`: a
    /// member with a contradictory conjunction (two different expected
    /// values on one field) sits in the hit slot AND another slot, and
    /// must still be refuted.
    std::vector<std::vector<uint64_t>> refuted_on_hit;
    std::vector<uint64_t> all_members;  ///< union of the slots' members
  };

  ConstraintIndex() = default;

  bool EvalSlot(const Slot& slot, const Event& event) const;
  void ApplyProbeGroup(const ProbeGroup& group, const Event& event,
                       std::vector<uint64_t>* matched) const;
  void ApplyResidual(const Slot& slot, const Event& event,
                     std::vector<uint64_t>* matched) const;

  size_t num_members_ = 0;
  size_t probe_slots_ = 0;
  size_t total_constraints_ = 0;
  uint64_t built_gen_ = 0;
  std::vector<uint64_t> all_members_;
  std::vector<Slot> slots_;
  // Evaluation plan: global (whole-event) predicates first — their joint
  // outcome is snapshotted as `passed_global` — then entity predicates.
  std::vector<ProbeGroup> global_probes_;
  std::vector<uint32_t> global_residuals_;
  std::vector<ProbeGroup> entity_probes_;
  std::vector<uint32_t> entity_residuals_;
};

}  // namespace saql

#endif  // SAQL_ENGINE_CONSTRAINT_INDEX_H_
