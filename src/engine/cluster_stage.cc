#include "engine/cluster_stage.h"

#include "anomaly/dbscan.h"

namespace saql {

std::vector<ClusterOutcome> RunClusterStage(
    const AnalyzedQuery& aq, const std::vector<ClusterGroupInput>& groups,
    const std::function<void(const Status&)>& on_error) {
  std::vector<ClusterOutcome> outcomes(groups.size());
  const ClusterSpec& spec = *aq.query->cluster;

  // One point per group; track which groups produced a usable point.
  std::vector<ClusterPoint> points;
  std::vector<size_t> point_group;  // point index -> group index
  points.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    WindowEvalContext ctx(aq, groups[g].history, groups[g].key_values,
                          groups[g].invariant_env, nullptr);
    ClusterPoint p;
    p.reserve(spec.points.size());
    bool ok = true;
    for (const ExprPtr& dim : spec.points) {
      Result<Value> v = EvaluateExpr(*dim, ctx);
      if (!v.ok()) {
        on_error(v.status());
        ok = false;
        break;
      }
      Result<double> d = v->ToDouble();
      if (!d.ok()) {
        // A null dimension (e.g., avg over an empty window) silently
        // excludes the group; only true errors are reported above.
        if (!v->is_null()) on_error(d.status());
        ok = false;
        break;
      }
      p.push_back(*d);
    }
    if (ok) {
      points.push_back(std::move(p));
      point_group.push_back(g);
    }
  }

  if (points.empty()) return outcomes;

  Dbscan dbscan(aq.cluster_method.eps,
                static_cast<size_t>(aq.cluster_method.min_pts),
                aq.cluster_method.euclidean ? DistanceMetric::kEuclidean
                                            : DistanceMetric::kManhattan);
  DbscanResult r = dbscan.Run(points);

  std::vector<int> cluster_sizes(static_cast<size_t>(r.num_clusters), 0);
  for (int label : r.labels) {
    if (label >= 0) ++cluster_sizes[static_cast<size_t>(label)];
  }
  for (size_t i = 0; i < points.size(); ++i) {
    ClusterOutcome& o = outcomes[point_group[i]];
    o.valid = true;
    o.outlier = r.IsOutlier(i);
    o.cluster_id = r.labels[i];
    o.cluster_size =
        r.labels[i] >= 0 ? cluster_sizes[static_cast<size_t>(r.labels[i])]
                         : 0;
  }
  return outcomes;
}

}  // namespace saql
