#include "engine/compiled_query.h"

#include <algorithm>

#include "core/string_util.h"
#include "engine/cluster_stage.h"

namespace saql {

CompiledQuery::CompiledQuery(AnalyzedQueryPtr aq, std::string name,
                             Options options)
    : aq_(std::move(aq)), name_(std::move(name)), options_(options) {}

Result<std::unique_ptr<CompiledQuery>> CompiledQuery::Create(
    AnalyzedQueryPtr aq, std::string name, Options options) {
  if (!aq) return Status::InvalidArgument("null analyzed query");
  std::unique_ptr<CompiledQuery> q(
      new CompiledQuery(std::move(aq), std::move(name), options));
  SAQL_RETURN_IF_ERROR(q->Init());
  return q;
}

Status CompiledQuery::Init() {
  const Query& q = *aq_->query;
  for (const AttrConstraint& c : q.global_constraints) {
    global_constraints_.emplace_back(c.field, c.op, c.value);
  }
  patterns_.reserve(q.patterns.size());
  for (const EventPatternDecl& p : q.patterns) {
    patterns_.emplace_back(p);
  }
  if (q.patterns.size() > 1) {
    MultieventMatcher::Options mo;
    mo.match_horizon = options_.match_horizon;
    mo.max_partial_matches = options_.max_partial_matches;
    matcher_ =
        std::make_unique<MultieventMatcher>(aq_, &patterns_, mo);
  }
  if (q.IsStateful()) {
    state_ = std::make_unique<StateMaintainer>(aq_);
    SAQL_RETURN_IF_ERROR(state_->Init());
    state_->SetCloseCallback(
        [this](const TimeWindow& w,
               std::vector<StateMaintainer::ClosedGroup>& groups) {
          OnWindowClose(w, groups);
        });
  }
  return Status::Ok();
}

bool CompiledQuery::PassesCooldown(const std::string& group, Timestamp ts) {
  if (options_.alert_cooldown <= 0) return true;
  auto [it, inserted] = last_alert_ts_.try_emplace(group, ts);
  if (inserted) return true;
  if (ts - it->second < options_.alert_cooldown) return false;
  it->second = ts;
  return true;
}

void CompiledQuery::ReportError(const Status& status) {
  ++stats_.eval_errors;
  if (reporter_ != nullptr) reporter_->Report(name_, status);
}

bool CompiledQuery::StructuralMatchAny(const Event& event) const {
  for (const CompiledPattern& p : patterns_) {
    if (p.StructuralMatch(event)) return true;
  }
  return false;
}

RoutingInterest CompiledQuery::Interest() const {
  RoutingInterest interest;
  for (const CompiledPattern& p : patterns_) {
    interest.Add(p.object_type(), p.ops());
  }
  return interest;
}

CompiledQuery::ShardMode CompiledQuery::shard_mode() const {
  // Multi-event joins correlate entities that may hash to different
  // shards; count windows close on match counts a single shard cannot
  // observe globally. Both need the full ordered stream.
  if (matcher_ != nullptr) return ShardMode::kGlobal;
  if (state_ != nullptr &&
      aq_->query->window->kind == WindowSpec::Kind::kCount) {
    return ShardMode::kGlobal;
  }
  if (state_ != nullptr) return ShardMode::kPartitionableWithMerge;
  // A stateless cooldown suppresses by global alert spacing, which
  // per-shard replicas cannot reproduce. (Stateful cooldowns run on the
  // merge replica and stay global by construction.)
  if (options_.alert_cooldown > 0) return ShardMode::kGlobal;
  return ShardMode::kPartitionable;
}

void CompiledQuery::ExportPartialWindows(
    StateMaintainer::PartialCallback cb) {
  if (state_ != nullptr) state_->SetPartialCallback(std::move(cb));
}

StateMaintainer::ClosedGroup CompiledQuery::FinishPartialGroup(
    const TimeWindow& window, StateMaintainer::PartialGroup& pg) {
  return state_->FinishPartial(window, pg);
}

void CompiledQuery::ConsumeMergedWindow(
    const TimeWindow& window,
    std::vector<StateMaintainer::ClosedGroup>& groups) {
  OnWindowClose(window, groups);
}

void CompiledQuery::ReInternSymbols() {
  for (CompiledConstraint& c : global_constraints_) c.ReIntern();
  for (CompiledPattern& p : patterns_) p.ReInternSymbols();
}

std::string CompiledQuery::GroupSignature() const {
  std::vector<std::string> sigs;
  sigs.reserve(patterns_.size());
  for (const CompiledPattern& p : patterns_) {
    sigs.push_back(p.StructuralSignature());
  }
  std::sort(sigs.begin(), sigs.end());
  return Join(sigs, "+");
}

void CompiledQuery::OnEvent(const Event& event) {
  ++stats_.events_in;
  for (const CompiledConstraint& c : global_constraints_) {
    if (!c.MatchesEvent(event)) return;
  }
  ++stats_.events_past_global;

  if (matcher_ != nullptr) {
    scratch_matches_.clear();
    matcher_->OnEvent(event, &scratch_matches_);
    for (const PatternMatch& m : scratch_matches_) {
      ++stats_.matches;
      if (state_ != nullptr) {
        state_->AddMatch(m);
      } else {
        EmitRuleMatch(m);
      }
    }
    return;
  }

  // Single-pattern fast path.
  if (!patterns_[0].Matches(event)) return;
  ++stats_.matches;
  PatternMatch m;
  m.events.push_back(event);
  m.first_ts = m.last_ts = event.ts;
  if (state_ != nullptr) {
    state_->AddMatch(m);
  } else {
    EmitRuleMatch(m);
  }
}

void CompiledQuery::OnIndexedDelivery(uint64_t events_in,
                                      uint64_t failed_global,
                                      const EventRefs& matched) {
  // Mirrors the single-pattern OnEvent path with the constraint evaluation
  // hoisted into the group's shared index; the stats transitions must stay
  // bit-identical to brute-force delivery.
  stats_.events_in += events_in;
  stats_.events_past_global += events_in - failed_global;
  for (const Event* e : matched) {
    ++stats_.matches;
    PatternMatch m;
    m.events.push_back(*e);
    m.first_ts = m.last_ts = e->ts;
    if (state_ != nullptr) {
      state_->AddMatch(m);
    } else {
      EmitRuleMatch(m);
    }
  }
}

void CompiledQuery::OnWatermark(Timestamp ts) {
  if (matcher_ != nullptr) matcher_->Prune(ts);
  if (state_ != nullptr) state_->AdvanceWatermark(ts);
}

void CompiledQuery::OnFinish() {
  if (state_ != nullptr) state_->Finish();
}

void CompiledQuery::EmitRuleMatch(const PatternMatch& match) {
  const Query& q = *aq_->query;
  MatchEvalContext ctx(*aq_, match);
  if (q.alert) {
    Result<bool> fire = EvaluateBool(*q.alert, ctx);
    if (!fire.ok()) {
      ReportError(fire.status());
      return;
    }
    if (!*fire) return;
  }
  Alert alert;
  alert.query_name = name_;
  alert.ts = match.last_ts;
  std::string distinct_key;
  for (const ReturnItem& item : q.returns) {
    Result<Value> v = EvaluateExpr(*item.expr, ctx);
    if (!v.ok()) {
      ReportError(v.status());
      v = Value::Null();
    }
    if (q.return_distinct) {
      distinct_key += v->ToString();
      distinct_key += '\x1f';
    }
    alert.values.emplace_back(item.label, std::move(*v));
  }
  if (q.return_distinct &&
      !distinct_seen_.insert(distinct_key).second) {
    return;  // duplicate result row suppressed
  }
  if (!PassesCooldown(/*group=*/"", alert.ts)) return;
  ++stats_.alerts;
  if (sink_) sink_(alert);
}

void CompiledQuery::InitInvariantEnv(GroupHistory* gh) {
  const Query& q = *aq_->query;
  gh->invariant_env.assign(aq_->invariant_vars.size(), Value::Null());
  WindowEvalContext ctx(*aq_, nullptr, &gh->key_values, &gh->invariant_env,
                        nullptr);
  for (const InvariantStmt& s : q.invariant->stmts) {
    if (!s.is_init) continue;
    Result<Value> v = EvaluateExpr(*s.expr, ctx);
    if (!v.ok()) {
      ReportError(v.status());
      continue;
    }
    auto it = std::find(aq_->invariant_vars.begin(),
                        aq_->invariant_vars.end(), s.var);
    size_t idx = static_cast<size_t>(it - aq_->invariant_vars.begin());
    gh->invariant_env[idx] = std::move(*v);
  }
}

void CompiledQuery::UpdateInvariant(GroupHistory* gh) {
  const Query& q = *aq_->query;
  WindowEvalContext ctx(*aq_, &gh->history, &gh->key_values,
                        &gh->invariant_env, nullptr);
  for (const InvariantStmt& s : q.invariant->stmts) {
    if (s.is_init) continue;
    Result<Value> v = EvaluateExpr(*s.expr, ctx);
    if (!v.ok()) {
      ReportError(v.status());
      continue;
    }
    auto it = std::find(aq_->invariant_vars.begin(),
                        aq_->invariant_vars.end(), s.var);
    size_t idx = static_cast<size_t>(it - aq_->invariant_vars.begin());
    gh->invariant_env[idx] = std::move(*v);
  }
}

void CompiledQuery::OnWindowClose(
    const TimeWindow& window,
    std::vector<StateMaintainer::ClosedGroup>& groups) {
  ++stats_.windows_closed;
  const Query& q = *aq_->query;
  const bool has_invariant = aq_->HasInvariant();
  const bool has_cluster = aq_->HasCluster();

  // Phase 1: push each group's new window state into its history.
  std::vector<GroupHistory*> histories(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    StateMaintainer::ClosedGroup& cg = groups[g];
    auto [it, inserted] = groups_.try_emplace(cg.group_key);
    GroupHistory& gh = it->second;
    if (inserted) {
      gh.key_values = cg.key_values;
      if (has_invariant) InitInvariantEnv(&gh);
    }
    gh.history.push_front(std::move(cg.state));
    size_t max_hist = static_cast<size_t>(q.state->history);
    while (gh.history.size() > max_hist) gh.history.pop_back();
    ++gh.windows_seen;
    histories[g] = &gh;
  }

  // Phase 2: cluster stage across all groups of this window.
  std::vector<ClusterOutcome> outcomes(groups.size());
  if (has_cluster) {
    std::vector<ClusterGroupInput> inputs(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      inputs[g].history = &histories[g]->history;
      inputs[g].key_values = &histories[g]->key_values;
      inputs[g].invariant_env =
          has_invariant ? &histories[g]->invariant_env : nullptr;
    }
    outcomes = RunClusterStage(
        *aq_, inputs, [this](const Status& s) { ReportError(s); });
  }

  // Phase 3: invariant training / detection and alert evaluation.
  for (size_t g = 0; g < groups.size(); ++g) {
    GroupHistory& gh = *histories[g];
    bool in_training = false;
    if (has_invariant) {
      size_t training =
          static_cast<size_t>(q.invariant->training_windows);
      in_training = gh.windows_seen <= training;
      if (in_training) {
        UpdateInvariant(&gh);
        continue;  // no alerts during training
      }
    }

    WindowEvalContext ctx(*aq_, &gh.history, &gh.key_values,
                          has_invariant ? &gh.invariant_env : nullptr,
                          has_cluster ? &outcomes[g] : nullptr);
    bool fire = true;
    if (q.alert) {
      Result<bool> r = EvaluateBool(*q.alert, ctx);
      if (!r.ok()) {
        ReportError(r.status());
        fire = false;
      } else {
        fire = *r;
      }
    }
    if (fire && PassesCooldown(groups[g].group_key, window.end)) {
      Alert alert;
      alert.query_name = name_;
      alert.ts = window.end;
      alert.window = window;
      alert.group = groups[g].group_key;
      std::replace(alert.group.begin(), alert.group.end(), '\x1f', '|');
      for (const ReturnItem& item : q.returns) {
        Result<Value> v = EvaluateExpr(*item.expr, ctx);
        if (!v.ok()) {
          ReportError(v.status());
          v = Value::Null();
        }
        alert.values.emplace_back(item.label, std::move(*v));
      }
      ++stats_.alerts;
      if (sink_) sink_(alert);
    }

    // Online invariants absorb what they just saw (after detection).
    if (has_invariant && !q.invariant->offline) {
      UpdateInvariant(&gh);
    }
  }
}

}  // namespace saql
