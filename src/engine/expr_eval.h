#ifndef SAQL_ENGINE_EXPR_EVAL_H_
#define SAQL_ENGINE_EXPR_EVAL_H_

#include "core/result.h"
#include "core/value.h"
#include "parser/ast.h"

namespace saql {

/// Resolves the free references of a SAQL expression during evaluation.
/// Different pipeline stages provide different contexts: a rule match binds
/// entity variables to matched events; a window close binds `ss[k]` to
/// window states, invariant variables, and cluster outcomes.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// Resolves a kRef node. Returning a null Value is legal and means "not
  /// available here" (e.g., `ss[2]` before two windows exist); null
  /// propagates through arithmetic and makes comparisons false.
  virtual Result<Value> ResolveRef(const Expr& ref) const = 0;

  /// Resolves a kCall node that is an aggregate (only meaningful when
  /// evaluating state-field expressions at window close, where aggregates
  /// have already been computed). Default: error.
  virtual Result<Value> ResolveAggregate(const Expr& call) const;
};

/// Evaluates `expr` under `ctx` with SQL-style null propagation:
///  - arithmetic with a null operand yields null;
///  - comparisons with a null operand yield false;
///  - `&&` / `||` / `!` treat null as false;
///  - set operators treat null as the empty set;
///  - `|null|` is 0.
///
/// String equality uses LIKE semantics when the right operand contains a
/// `%` or `_` wildcard, mirroring entity constraints.
Result<Value> EvaluateExpr(const Expr& expr, const EvalContext& ctx);

/// Evaluates `expr` and reduces it to a boolean via `Value::Truthy`
/// (errors surface as Result errors, not as false).
Result<bool> EvaluateBool(const Expr& expr, const EvalContext& ctx);

}  // namespace saql

#endif  // SAQL_ENGINE_EXPR_EVAL_H_
