#ifndef SAQL_ENGINE_ALERT_H_
#define SAQL_ENGINE_ALERT_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/time_util.h"
#include "core/value.h"
#include "stream/window.h"

namespace saql {

/// One detection alert, produced when a query's alert condition holds (or,
/// for rule-based queries without an explicit `alert`, when the event
/// pattern fully matches).
struct Alert {
  /// Name of the query that fired.
  std::string query_name;
  /// Event time of the alert: match completion time for rule queries,
  /// window end for stateful queries.
  Timestamp ts = 0;
  /// The window that triggered (stateful queries only).
  std::optional<TimeWindow> window;
  /// Rendered group key ("sqlservr.exe" or "10.2.0.9"); empty for rule
  /// queries.
  std::string group;
  /// The `return` clause items: label → value.
  std::vector<std::pair<std::string, Value>> values;

  /// One-line rendering for the CLI.
  std::string ToString() const {
    std::string out = "[" + FormatTimestamp(ts) + "] ALERT " + query_name;
    if (!group.empty()) out += " group=" + group;
    for (const auto& [label, value] : values) {
      out += " " + label + "=" + value.ToString();
    }
    return out;
  }
};

/// Receives alerts as they fire. Must be cheap; called on the stream path.
using AlertSink = std::function<void(const Alert&)>;

}  // namespace saql

#endif  // SAQL_ENGINE_ALERT_H_
