#ifndef SAQL_ENGINE_COMPILED_PATTERN_H_
#define SAQL_ENGINE_COMPILED_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/field_access.h"
#include "core/like_matcher.h"
#include "parser/ast.h"

namespace saql {

/// One compiled attribute predicate: `field op value`. Compilation
/// front-loads everything the per-event hot path would otherwise redo:
///  - the field name resolves to a `FieldId` (no string-keyed lookups),
///  - string equality pre-compiles to a `LikeMatcher`,
///  - exact (wildcard-free) equality on an interned attribute additionally
///    captures the expected symbol, so matching interned events is a
///    32-bit integer compare.
class CompiledConstraint {
 public:
  /// Whole-event constraint (global constraint lines such as
  /// `agentid = server1`); the field resolves as an event attribute.
  CompiledConstraint(std::string field, ConstraintOp op, Value value);

  /// Entity constraint bound to the entity type it applies to.
  CompiledConstraint(std::string field, ConstraintOp op, Value value,
                     EntityType entity_type);

  /// Evaluates against the entity playing `role` in `event`.
  bool MatchesEntity(const Event& event, EntityRole role) const;

  /// Evaluates against a whole-event attribute (global constraints).
  bool MatchesEvent(const Event& event) const;

  const std::string& field() const { return field_; }
  FieldId field_id() const { return field_id_; }
  ConstraintOp op() const { return op_; }
  const Value& value() const { return value_; }
  /// Interned expected symbol; nonzero only for exact (wildcard-free)
  /// string eq/ne constraints.
  uint32_t symbol() const { return sym_; }
  /// Interner generation `symbol()` was captured under. The integer fast
  /// path only fires when the event's symbols carry the same generation;
  /// otherwise matching falls back to (always correct) string comparison.
  uint64_t symbol_generation() const { return sym_gen_; }

  /// Re-captures the expected symbol from the current interner
  /// generation. Sessions call this at a quiesce point after a live
  /// rotation so the integer fast path resumes.
  void ReIntern();

 private:
  void CompileValue();

  bool CompareResolved(const Value& actual) const;
  bool CompareString(const std::string& actual) const;

  std::string field_;
  ConstraintOp op_;
  Value value_;
  std::optional<LikeMatcher> like_;  ///< set for string eq/ne constraints
  FieldId field_id_ = FieldId::kInvalid;
  uint32_t sym_ = 0;  ///< interned expected value for exact string equality
  uint64_t sym_gen_ = 0;  ///< generation sym_ was interned under
};

/// A fully compiled event pattern: structural shape (subject/object entity
/// types + operation mask) plus attribute constraints for both sides.
///
/// `StructuralMatch` is the cheap test the concurrent-query scheduler
/// shares across a query group; `Matches` adds the per-query constraints.
class CompiledPattern {
 public:
  explicit CompiledPattern(const EventPatternDecl& decl);

  /// Type/operation shape only.
  bool StructuralMatch(const Event& event) const {
    return OpMaskContains(ops_, event.op) &&
           event.object_type == object_type_;
  }

  /// Shape plus subject and object attribute constraints.
  bool Matches(const Event& event) const;

  OpMask ops() const { return ops_; }
  EntityType object_type() const { return object_type_; }
  const std::vector<CompiledConstraint>& subject_constraints() const {
    return subject_constraints_;
  }
  const std::vector<CompiledConstraint>& object_constraints() const {
    return object_constraints_;
  }

  /// A stable signature of the structural shape, used to group compatible
  /// queries ("proc|start|proc").
  std::string StructuralSignature() const;

  /// Re-captures every constraint's expected symbol after an interner
  /// rotation (see CompiledConstraint::ReIntern).
  void ReInternSymbols();

 private:
  OpMask ops_;
  EntityType object_type_;
  std::vector<CompiledConstraint> subject_constraints_;
  std::vector<CompiledConstraint> object_constraints_;
};

/// Identity key of the entity playing `role` in `event`; shared pattern
/// variables (the paper's `f1` appearing in two patterns) require equal
/// keys. Processes are identified by (host, pid), files by (host, path),
/// network connections by their remote endpoint.
std::string EntityKeyOf(const Event& event, EntityRole role);

}  // namespace saql

#endif  // SAQL_ENGINE_COMPILED_PATTERN_H_
