#include "engine/eval_contexts.h"

#include <algorithm>

#include "core/field_access.h"
#include "core/string_util.h"

namespace saql {

Result<Value> MatchEvalContext::ResolveRef(const Expr& ref) const {
  // Analyzed references carry their binding: matched-event index + FieldId.
  switch (ref.ref_kind) {
    case RefKind::kEntity: {
      const Event& e = match_.events[static_cast<size_t>(ref.ref_index)];
      Result<Value> v = GetEntityField(e, ref.ref_role, ref.ref_field);
      if (!v.ok()) return Value::Null();
      return v;
    }
    case RefKind::kEvent: {
      const Event& e = match_.events[static_cast<size_t>(ref.ref_index)];
      Result<Value> v = ref.ref_field != FieldId::kInvalid
                            ? GetEventField(e, ref.ref_field)
                            : GetEventField(e, ref.field);
      if (!v.ok()) return Value::Null();
      return v;
    }
    case RefKind::kUnresolved:
      break;  // hand-built AST: resolve by name below
    default:
      return Value::Null();  // state/group/cluster refs have no match context
  }
  // Entity variable: read the matched event it binds to.
  auto ent = aq_.entity_vars.find(ref.base);
  if (ent != aq_.entity_vars.end()) {
    const EntityBinding& b = ent->second.front();
    const Event& e = match_.events[static_cast<size_t>(b.pattern_index)];
    std::string field =
        ref.field.empty() ? DefaultFieldForEntity(b.type) : ref.field;
    Result<Value> v = GetEntityField(e, b.role, field);
    if (!v.ok()) return Value::Null();
    return v;
  }
  // Event alias.
  auto alias = aq_.alias_to_pattern.find(ref.base);
  if (alias != aq_.alias_to_pattern.end()) {
    const Event& e = match_.events[static_cast<size_t>(alias->second)];
    Result<Value> v = GetEventField(e, ref.field);
    if (!v.ok()) return Value::Null();
    return v;
  }
  return Value::Null();
}

Result<Value> WindowEvalContext::ResolveRef(const Expr& ref) const {
  // Analyzed references resolve by index, no name lookups.
  switch (ref.ref_kind) {
    case RefKind::kState: {
      size_t k = static_cast<size_t>(ref.history.value_or(0));
      if (history_ == nullptr || k >= history_->size()) return Value::Null();
      return (*history_)[k].fields[static_cast<size_t>(ref.ref_index)];
    }
    case RefKind::kGroupKey: {
      size_t i = static_cast<size_t>(ref.ref_index);
      if (group_key_values_ == nullptr || i >= group_key_values_->size()) {
        return Value::Null();
      }
      return (*group_key_values_)[i];
    }
    case RefKind::kInvariant: {
      size_t i = static_cast<size_t>(ref.ref_index);
      if (invariant_env_ == nullptr || i >= invariant_env_->size()) {
        return Value::Null();
      }
      return (*invariant_env_)[i];
    }
    default:
      break;  // cluster refs and unresolved nodes take the name path
  }

  const Query& q = *aq_.query;

  // State history: ss[k].field.
  if (q.IsStateful() && ref.base == q.state->var) {
    size_t k = static_cast<size_t>(ref.history.value_or(0));
    if (history_ == nullptr || k >= history_->size()) return Value::Null();
    auto idx = aq_.state_field_index.find(ref.field);
    if (idx == aq_.state_field_index.end()) return Value::Null();
    return (*history_)[k].fields[static_cast<size_t>(idx->second)];
  }

  // Cluster outcome.
  if (ref.base == "cluster") {
    if (cluster_ == nullptr || !cluster_->valid) return Value::Null();
    std::string f = ToLower(ref.field);
    if (f == "outlier") return Value(cluster_->outlier);
    if (f == "cluster_id") {
      return Value(static_cast<int64_t>(cluster_->cluster_id));
    }
    if (f == "cluster_size") {
      return Value(static_cast<int64_t>(cluster_->cluster_size));
    }
    return Value::Null();
  }

  // Invariant variable.
  if (invariant_env_ != nullptr) {
    auto it = std::find(aq_.invariant_vars.begin(),
                        aq_.invariant_vars.end(), ref.base);
    if (it != aq_.invariant_vars.end()) {
      size_t idx =
          static_cast<size_t>(it - aq_.invariant_vars.begin());
      if (idx < invariant_env_->size()) return (*invariant_env_)[idx];
      return Value::Null();
    }
  }

  // Group-by key.
  if (group_key_values_ != nullptr) {
    for (size_t i = 0; i < aq_.group_keys.size(); ++i) {
      const ResolvedGroupKey& k = aq_.group_keys[i];
      if (k.base != ref.base) continue;
      if (!ref.field.empty() && ToLower(ref.field) != k.field) continue;
      if (i < group_key_values_->size()) return (*group_key_values_)[i];
    }
  }
  return Value::Null();
}

Result<Value> AggFinishContext::ResolveRef(const Expr& ref) const {
  (void)ref;
  // The analyzer restricts state-field expressions to aggregates,
  // literals, and arithmetic; a stray reference resolves to null.
  return Value::Null();
}

Result<Value> AggFinishContext::ResolveAggregate(const Expr& call) const {
  auto it = agg_values_->find(&call);
  if (it == agg_values_->end()) {
    return Status::Internal("aggregate site missing at window close");
  }
  return it->second;
}

void CollectAggregateSites(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kCall &&
      IsAggregateFunction(ToLower(expr.callee))) {
    out->push_back(&expr);
    return;  // analyzer guarantees no nesting
  }
  if (expr.lhs) CollectAggregateSites(*expr.lhs, out);
  if (expr.rhs) CollectAggregateSites(*expr.rhs, out);
  for (const ExprPtr& a : expr.args) {
    CollectAggregateSites(*a, out);
  }
}

}  // namespace saql
