#ifndef SAQL_ENGINE_CLUSTER_STAGE_H_
#define SAQL_ENGINE_CLUSTER_STAGE_H_

#include <deque>
#include <functional>
#include <vector>

#include "core/value.h"
#include "engine/eval_contexts.h"
#include "parser/analyzer.h"

namespace saql {

/// Inputs of the cluster stage for one group at window close: enough
/// context to evaluate the query's `points=` expressions for that group.
struct ClusterGroupInput {
  const std::deque<WindowState>* history = nullptr;
  const std::vector<Value>* key_values = nullptr;
  const std::vector<Value>* invariant_env = nullptr;  ///< may be null
};

/// Executes the query's `cluster(...)` stage over all groups that closed in
/// the same window (the paper's peer comparison, Query 4): evaluates one
/// point per group from the `points=` expressions, clusters them with
/// DBSCAN under the configured distance metric, and reports per-group
/// outcomes.
///
/// Groups whose point expressions fail to evaluate to numbers get an
/// invalid outcome (their `cluster.*` attributes read as null) and are
/// excluded from the clustering; `on_error` is invoked for each.
std::vector<ClusterOutcome> RunClusterStage(
    const AnalyzedQuery& aq, const std::vector<ClusterGroupInput>& groups,
    const std::function<void(const Status&)>& on_error);

}  // namespace saql

#endif  // SAQL_ENGINE_CLUSTER_STAGE_H_
