#ifndef SAQL_CLI_TABLE_H_
#define SAQL_CLI_TABLE_H_

#include <string>
#include <vector>

namespace saql {

/// Minimal ASCII table renderer for the command-line UI (the paper's demo
/// presents query results in a terminal, Fig. 3).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  /// Renders with box-drawing in plain ASCII:
  /// ```
  /// +------+------+
  /// | a    | b    |
  /// +------+------+
  /// | 1    | 2    |
  /// +------+------+
  /// ```
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace saql

#endif  // SAQL_CLI_TABLE_H_
