#ifndef SAQL_CLI_SHELL_H_
#define SAQL_CLI_SHELL_H_

#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/time_util.h"
#include "engine/alert.h"
#include "engine/engine.h"
#include "parser/analyzer.h"

namespace saql {

/// The SAQL command-line UI (Fig. 3 of the paper): load queries, replay or
/// simulate a stream, and inspect alerts/errors interactively. The shell is
/// a library class so tests can drive it with string streams; the
/// `saql_shell` example binds it to stdin/stdout.
///
/// Batch commands:
///   load <file> [name]       load a .saql query file
///   query <name> <text...>   register an inline query (single line)
///   list                     list registered queries
///   simulate [minutes]       run the enterprise simulator + APT attack
///   replay <log> [host...]   replay a stored event log (all hosts or a
///                            subset), at maximum speed
///   record <log> [minutes]   simulate and store events into a log file
///                            through the durable WAL pipeline
///                            (`--sync=always|group|none` picks the ack
///                            policy)
///   recover <log>            recover a durable log after a crash
///                            (segments + WAL tail) and compact it back
///                            to a pure columnar log
///
/// Live-session commands (the deployed-monitor mode: long-lived
/// push-driven engine sessions that queries can join and leave
/// mid-stream). Any number of sessions can be open at once — they are
/// isolated tenants of one engine, each with its own lane count, clock,
/// query set, and optional recording. `open` makes the new session
/// *current*; every session-addressed command targets the current session
/// unless given an explicit `#<id>`:
///   open [--shards=N]        open another live session over the
///                            registered queries (`--record=<log>
///                            [--sync=P] [--force]` also records every
///                            pushed event durably; `--force` discards
///                            stale WAL files a crashed earlier
///                            incarnation left at the log path)
///   push [#id] [minutes]     simulate a chunk of enterprise traffic and
///                            push it into a session (each session's
///                            clock continues across its pushes)
///   add [#id] <name> <text>  attach a query mid-stream to one session
///                            (falls back to plain registration when no
///                            session is open)
///   remove [#id] <name>      retract a query (live if a session is open)
///   session [#id]            one session's status; also selects it as
///                            current when an id is given
///   sessions                 list all open sessions
///   close [#id]              close a session (the engine publishes the
///                            last-closed stats once all are closed)
///
/// Inspection:
///   lint [file...]           static-analysis diagnostics for .saql files;
///                            with no arguments, lints every registered
///                            query
///   fleet                    cross-query analysis of the registered set:
///                            exact duplicates (SA050), subsumption
///                            (SA051), and routing-envelope overlap per
///                            (object type, op) cell
///   alerts [n]               show the last n alerts (default 10)
///   shards [n]               show or set executor shard lanes (1 = off)
///   index [on|off]           show or toggle shared member-match indexing
///   stats                    engine statistics (live session or last run)
///   errors                   error-reporter contents
///   help                     command summary
///   quit                     leave the shell
///
/// `simulate` and `replay` also accept a `--shards=N` flag to override the
/// lane count for that run only. `shards`/`index` apply to the *next*
/// engine build: batch runs pick them up immediately (each builds a fresh
/// engine); an open live session keeps its configuration and the shell
/// says so explicitly.
class QueryShell {
 public:
  QueryShell(std::istream& in, std::ostream& out);
  ~QueryShell();

  /// Runs the read-eval-print loop until quit/EOF.
  void Run();

  /// Executes one command line; returns false when the shell should exit.
  bool Execute(const std::string& line);

  /// Sets the default number of executor shard lanes (the `--shards=N`
  /// flag of the `saql_shell` binary; 1 = single-threaded).
  void SetNumShards(size_t n) { num_shards_ = n == 0 ? 1 : n; }
  size_t num_shards() const { return num_shards_; }

  /// Enables/disables the shared member-matching ConstraintIndex for
  /// subsequent runs (the `index on|off` command; on by default — off is
  /// the brute-force ablation baseline).
  void SetMemberIndex(bool on) { member_index_ = on; }
  bool member_index() const { return member_index_; }

  /// Alerts collected by the last simulate/replay command, or by the live
  /// session since `open`.
  const std::vector<Alert>& alerts() const { return alerts_; }

  /// Registered (name, text) pairs.
  const std::map<std::string, std::string>& queries() const {
    return queries_;
  }

  bool session_open() const { return !live_sessions_.empty(); }
  size_t open_session_count() const { return live_sessions_.size(); }

  /// Process exit code for the embedding binary: 0 until a durability
  /// failure (failed `record`, failed recovery, or a live recording that
  /// ended in error) was reported; then 1, sticky.
  int exit_code() const { return exit_code_; }

 private:
  void CmdHelp();
  void CmdLoad(const std::vector<std::string>& args);
  void CmdQueryInline(const std::string& rest);
  void CmdList();
  void CmdLint(const std::vector<std::string>& args);
  void CmdFleet();
  void CmdExplain(const std::vector<std::string>& args);
  void CmdSimulate(const std::vector<std::string>& args);
  void CmdReplay(const std::vector<std::string>& args);
  void CmdRecord(const std::vector<std::string>& args);
  void CmdRecover(const std::vector<std::string>& args);
  void CmdAlerts(const std::vector<std::string>& args);
  void CmdShards(const std::vector<std::string>& args);
  void CmdIndex(const std::vector<std::string>& args);
  void CmdStats();
  void CmdErrors();

  // Live-session commands.
  void CmdOpen(const std::vector<std::string>& args);
  void CmdPush(const std::vector<std::string>& args);
  void CmdAdd(const std::string& rest);
  void CmdRemove(const std::vector<std::string>& args);
  void CmdSessionStatus(const std::vector<std::string>& args);
  void CmdSessions();
  void CmdClose(const std::vector<std::string>& args);

  /// Renders a lint finding list (one line per diagnostic, then the
  /// error/warning summary line).
  void PrintDiagnostics(const std::vector<Diagnostic>& diagnostics);

  /// Renders the engine/session statistics block shown by `stats`.
  std::string FormatStats(
      const ExecutorStats& exec, size_t num_queries, size_t num_groups,
      size_t indexed_groups, bool member_indexed, size_t num_alerts,
      const std::vector<std::pair<std::string, CompiledQuery::QueryStats>>&
          query_stats) const;

  /// Strips a `--shards=N` flag out of `args`, returning the lane count to
  /// use for this run (the session default when absent; malformed values
  /// are reported and ignored).
  size_t ConsumeShardsFlag(std::vector<std::string>* args);

  /// Strips a `--sync=P` flag out of `args` into `policy` (untouched when
  /// the flag is absent; malformed values are reported and ignored).
  void ConsumeSyncFlag(std::vector<std::string>* args, SyncPolicy* policy);

  /// One open live session of the shared engine, with the shell-side
  /// drive state (the per-session simulator clock and counters).
  struct LiveSession {
    std::unique_ptr<SaqlEngine::Session> session;
    size_t shards = 1;
    Timestamp clock = 0;        ///< next push's simulator start time
    uint64_t pushes = 0;        ///< varies the per-push simulator seed
    uint64_t events = 0;        ///< events pushed so far
    std::string record_path;    ///< durable recording target ("" = off)
    bool record_failed = false;  ///< already reported mid-session
  };

  /// Strips a `#<id>` session reference out of `args`. Returns the
  /// addressed live session — the explicit one, else the current one —
  /// or nullptr (with a message) when the reference is unknown or no
  /// session is open.
  LiveSession* ConsumeSessionRef(std::vector<std::string>* args);

  /// Renders one session's status line.
  void PrintSessionStatus(uint64_t id, LiveSession& ls);

  /// Runs all registered queries against `source`, capturing alerts.
  void RunEngine(class EventSource* source, size_t num_shards);

  std::istream& in_;
  std::ostream& out_;
  std::map<std::string, std::string> queries_;
  std::vector<Alert> alerts_;
  std::string last_stats_;
  std::string last_errors_;
  size_t num_shards_ = 1;
  bool member_index_ = true;
  int exit_code_ = 0;

  // Live multi-session state. One shared engine hosts every open session
  // (created at the first `open`, torn down when the last session
  // closes); sessions must die before it. Keyed by engine-assigned
  // session id; `current_session_` is the default target of
  // session-addressed commands (the last opened/selected).
  std::unique_ptr<SaqlEngine> live_engine_;
  std::map<uint64_t, LiveSession> live_sessions_;
  uint64_t current_session_ = 0;
  bool live_member_index_ = true;  ///< member-matching mode at engine build
};

}  // namespace saql

#endif  // SAQL_CLI_SHELL_H_
