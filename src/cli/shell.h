#ifndef SAQL_CLI_SHELL_H_
#define SAQL_CLI_SHELL_H_

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/time_util.h"
#include "engine/alert.h"
#include "engine/engine.h"
#include "parser/analyzer.h"

namespace saql {

/// The SAQL command-line UI (Fig. 3 of the paper): load queries, replay or
/// simulate a stream, and inspect alerts/errors interactively. The shell is
/// a library class so tests can drive it with string streams; the
/// `saql_shell` example binds it to stdin/stdout.
///
/// Batch commands:
///   load <file> [name]       load a .saql query file
///   query <name> <text...>   register an inline query (single line)
///   list                     list registered queries
///   simulate [minutes]       run the enterprise simulator + APT attack
///   replay <log> [host...]   replay a stored event log (all hosts or a
///                            subset), at maximum speed
///   record <log> [minutes]   simulate and store events into a log file
///                            through the durable WAL pipeline
///                            (`--sync=always|group|none` picks the ack
///                            policy)
///   recover <log>            recover a durable log after a crash
///                            (segments + WAL tail) and compact it back
///                            to a pure columnar log
///
/// Live-session commands (the deployed-monitor mode: a long-lived
/// push-driven engine session that queries can join and leave mid-stream):
///   open [--shards=N]        open a live session over the registered
///                            queries (`--record=<log> [--sync=P]` also
///                            records every pushed event durably)
///   push [minutes]           simulate a chunk of enterprise traffic and
///                            push it into the live session (clock
///                            continues across pushes)
///   add <name> <text...>     attach a query mid-stream (falls back to
///                            plain registration when no session is open)
///   remove <name>            retract a query (live if a session is open)
///   session                  live-session status
///   close                    close the live session
///
/// Inspection:
///   alerts [n]               show the last n alerts (default 10)
///   shards [n]               show or set executor shard lanes (1 = off)
///   index [on|off]           show or toggle shared member-match indexing
///   stats                    engine statistics (live session or last run)
///   errors                   error-reporter contents
///   help                     command summary
///   quit                     leave the shell
///
/// `simulate` and `replay` also accept a `--shards=N` flag to override the
/// lane count for that run only. `shards`/`index` apply to the *next*
/// engine build: batch runs pick them up immediately (each builds a fresh
/// engine); an open live session keeps its configuration and the shell
/// says so explicitly.
class QueryShell {
 public:
  QueryShell(std::istream& in, std::ostream& out);
  ~QueryShell();

  /// Runs the read-eval-print loop until quit/EOF.
  void Run();

  /// Executes one command line; returns false when the shell should exit.
  bool Execute(const std::string& line);

  /// Sets the default number of executor shard lanes (the `--shards=N`
  /// flag of the `saql_shell` binary; 1 = single-threaded).
  void SetNumShards(size_t n) { num_shards_ = n == 0 ? 1 : n; }
  size_t num_shards() const { return num_shards_; }

  /// Enables/disables the shared member-matching ConstraintIndex for
  /// subsequent runs (the `index on|off` command; on by default — off is
  /// the brute-force ablation baseline).
  void SetMemberIndex(bool on) { member_index_ = on; }
  bool member_index() const { return member_index_; }

  /// Alerts collected by the last simulate/replay command, or by the live
  /// session since `open`.
  const std::vector<Alert>& alerts() const { return alerts_; }

  /// Registered (name, text) pairs.
  const std::map<std::string, std::string>& queries() const {
    return queries_;
  }

  bool session_open() const { return live_session_ != nullptr; }

  /// Process exit code for the embedding binary: 0 until a durability
  /// failure (failed `record`, failed recovery, or a live recording that
  /// ended in error) was reported; then 1, sticky.
  int exit_code() const { return exit_code_; }

 private:
  void CmdHelp();
  void CmdLoad(const std::vector<std::string>& args);
  void CmdQueryInline(const std::string& rest);
  void CmdList();
  void CmdSimulate(const std::vector<std::string>& args);
  void CmdReplay(const std::vector<std::string>& args);
  void CmdRecord(const std::vector<std::string>& args);
  void CmdRecover(const std::vector<std::string>& args);
  void CmdAlerts(const std::vector<std::string>& args);
  void CmdShards(const std::vector<std::string>& args);
  void CmdIndex(const std::vector<std::string>& args);
  void CmdStats();
  void CmdErrors();

  // Live-session commands.
  void CmdOpen(const std::vector<std::string>& args);
  void CmdPush(const std::vector<std::string>& args);
  void CmdAdd(const std::string& rest);
  void CmdRemove(const std::vector<std::string>& args);
  void CmdSessionStatus();
  void CmdClose();

  /// Renders the engine/session statistics block shown by `stats`.
  std::string FormatStats(
      const ExecutorStats& exec, size_t num_queries, size_t num_groups,
      size_t indexed_groups, bool member_indexed, size_t num_alerts,
      const std::vector<std::pair<std::string, CompiledQuery::QueryStats>>&
          query_stats) const;

  /// Strips a `--shards=N` flag out of `args`, returning the lane count to
  /// use for this run (the session default when absent; malformed values
  /// are reported and ignored).
  size_t ConsumeShardsFlag(std::vector<std::string>* args);

  /// Strips a `--sync=P` flag out of `args` into `policy` (untouched when
  /// the flag is absent; malformed values are reported and ignored).
  void ConsumeSyncFlag(std::vector<std::string>* args, SyncPolicy* policy);

  /// Runs all registered queries against `source`, capturing alerts.
  void RunEngine(class EventSource* source, size_t num_shards);

  std::istream& in_;
  std::ostream& out_;
  std::map<std::string, std::string> queries_;
  std::vector<Alert> alerts_;
  std::string last_stats_;
  std::string last_errors_;
  size_t num_shards_ = 1;
  bool member_index_ = true;
  int exit_code_ = 0;

  // Live session state (session must die before its engine).
  std::unique_ptr<SaqlEngine> live_engine_;
  std::unique_ptr<SaqlEngine::Session> live_session_;
  size_t live_shards_ = 1;       ///< lanes the open session runs on
  bool live_member_index_ = true;  ///< member-matching mode at open time
  Timestamp live_clock_ = 0;     ///< next push's simulator start time
  uint64_t live_pushes_ = 0;     ///< varies the per-push simulator seed
  uint64_t live_events_ = 0;     ///< events pushed so far
  std::string live_record_path_;  ///< durable recording target ("" = off)
  bool live_record_failed_ = false;  ///< already reported mid-session
};

}  // namespace saql

#endif  // SAQL_CLI_SHELL_H_
