#include "cli/table.h"

#include <algorithm>

namespace saql {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&]() {
    std::string out = "+";
    for (size_t w : widths) {
      out += std::string(w + 2, '-');
      out += "+";
    }
    out += "\n";
    return out;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
    return out;
  };
  std::string out = rule();
  out += line(headers_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace saql
