#include "cli/shell.h"

#include <fstream>
#include <sstream>

#include "analysis/fleet_analysis.h"
#include "analysis/query_analysis.h"
#include "cli/table.h"
#include "collect/enterprise_sim.h"
#include "core/string_util.h"
#include "storage/columnar_log.h"
#include "storage/durable_log.h"
#include "storage/event_log.h"
#include "storage/recovery.h"
#include "storage/replayer.h"

namespace saql {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

QueryShell::QueryShell(std::istream& in, std::ostream& out)
    : in_(in), out_(out) {}

QueryShell::~QueryShell() {
  // Sessions before engine: their teardown touches the engine.
  live_sessions_.clear();
  live_engine_.reset();
}

void QueryShell::Run() {
  out_ << "SAQL shell — type 'help' for commands.\n";
  std::string line;
  while (true) {
    out_ << "saql> " << std::flush;
    if (!std::getline(in_, line)) break;
    if (!Execute(line)) break;
  }
  out_ << "bye.\n";
}

bool QueryShell::Execute(const std::string& line) {
  std::string trimmed = Trim(line);
  if (trimmed.empty()) return true;
  std::vector<std::string> tokens = Tokenize(trimmed);
  std::string cmd = ToLower(tokens[0]);
  std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    CmdHelp();
  } else if (cmd == "load") {
    CmdLoad(args);
  } else if (cmd == "query") {
    CmdQueryInline(trimmed.substr(5));
  } else if (cmd == "list") {
    CmdList();
  } else if (cmd == "lint") {
    CmdLint(args);
  } else if (cmd == "fleet") {
    CmdFleet();
  } else if (cmd == "explain") {
    CmdExplain(args);
  } else if (cmd == "simulate") {
    CmdSimulate(args);
  } else if (cmd == "replay") {
    CmdReplay(args);
  } else if (cmd == "record") {
    CmdRecord(args);
  } else if (cmd == "recover") {
    CmdRecover(args);
  } else if (cmd == "open") {
    CmdOpen(args);
  } else if (cmd == "push") {
    CmdPush(args);
  } else if (cmd == "add") {
    CmdAdd(trimmed.substr(3));
  } else if (cmd == "remove") {
    CmdRemove(args);
  } else if (cmd == "session") {
    CmdSessionStatus(args);
  } else if (cmd == "sessions") {
    CmdSessions();
  } else if (cmd == "close") {
    CmdClose(args);
  } else if (cmd == "alerts") {
    CmdAlerts(args);
  } else if (cmd == "shards") {
    CmdShards(args);
  } else if (cmd == "index") {
    CmdIndex(args);
  } else if (cmd == "stats") {
    CmdStats();
  } else if (cmd == "errors") {
    CmdErrors();
  } else {
    out_ << "unknown command '" << cmd << "' — try 'help'\n";
  }
  return true;
}

void QueryShell::CmdHelp() {
  out_ << "commands:\n"
       << "  load <file> [name]      load a .saql query file\n"
       << "  query <name> <text>     register an inline query\n"
       << "  list                    list registered queries\n"
       << "  lint [file...]          static-analysis diagnostics for\n"
          "                          .saql files (satisfiability, dead\n"
          "                          patterns, type/dataflow checks); with\n"
          "                          no files, lints every registered\n"
          "                          query\n"
       << "  fleet                   cross-query analysis of the\n"
          "                          registered set: duplicates (SA050),\n"
          "                          subsumption (SA051), and routing-\n"
          "                          envelope overlap per (type, op) cell\n"
       << "  explain <name>          placement rationale + lint findings\n"
          "                          for a registered query\n"
       << "  simulate [minutes]      run enterprise sim + APT attack\n"
       << "  replay <log> [host...]  replay a stored event log (v1 and\n"
          "                          columnar v2 auto-detected)\n"
       << "  record <log> [minutes]  simulate and store events to a log\n"
          "                          (columnar v2 via the durable WAL\n"
          "                          pipeline; pass --v1 for the old row\n"
          "                          format — v1 logs stay replayable,\n"
          "                          no migration needed)\n"
          "                          --sync=always  ack only fsynced\n"
          "                                         events (no acked\n"
          "                                         event is ever lost)\n"
          "                          --sync=group[:<delay_us>[:<bytes>]]\n"
          "                                         batched fsync barrier\n"
          "                                         (default; crash loss\n"
          "                                         bounded to the open\n"
          "                                         commit window)\n"
          "                          --sync=none    durability only at\n"
          "                                         segment/close\n"
          "                                         barriers (fastest)\n"
       << "  recover <log>           recover a crashed durable log:\n"
          "                          complete columnar segments + WAL\n"
          "                          tail replay (torn records dropped by\n"
          "                          CRC), then compact back to a pure\n"
          "                          columnar log\n"
       << "  open [--shards=N]       open a live push-driven session;\n"
          "                          repeatable — sessions run as\n"
          "                          isolated concurrent tenants, and the\n"
          "                          newest one becomes current\n"
          "                          (--record=<log> [--sync=P] [--force]\n"
          "                          also records pushed events durably;\n"
          "                          on disk errors the session keeps\n"
          "                          serving queries and the recording\n"
          "                          is marked failed; --force discards\n"
          "                          stale WAL files left by a crashed\n"
          "                          earlier incarnation of the log)\n"
       << "  push [#id] [minutes]    push simulated traffic into a "
          "session\n"
       << "  add [#id] <name> <text> attach a query mid-stream to one\n"
          "                          session (others are unaffected)\n"
       << "  remove [#id] <name>     retract a query\n"
       << "  session [#id]           one session's status (an explicit\n"
          "                          #id also makes it current)\n"
       << "  sessions                list all open sessions\n"
       << "  close [#id]             close a session\n"
       << "  alerts [n]              show last n alerts\n"
       << "  shards [n]              show or set executor shard lanes\n"
       << "  index [on|off]          show or toggle member-match indexing\n"
       << "  stats                   statistics (live session or last "
          "run)\n"
       << "  errors                  error reports\n"
       << "  quit                    exit\n";
}

void QueryShell::CmdLoad(const std::vector<std::string>& args) {
  if (args.empty()) {
    out_ << "usage: load <file> [name]\n";
    return;
  }
  std::ifstream f(args[0]);
  if (!f) {
    out_ << "cannot open '" << args[0] << "'\n";
    return;
  }
  std::ostringstream text;
  text << f.rdbuf();
  std::string name = args.size() > 1 ? args[1] : args[0];
  Result<AnalyzedQueryPtr> compiled = CompileSaql(text.str());
  if (!compiled.ok()) {
    out_ << "query rejected: " << compiled.status() << "\n";
    return;
  }
  queries_[name] = text.str();
  out_ << "loaded query '" << name << "'\n";
  if (session_open()) {
    out_ << "note: the live session does not pick up 'load' — use 'add' "
            "to attach mid-stream\n";
  }
}

void QueryShell::CmdQueryInline(const std::string& rest) {
  std::istringstream is(Trim(rest));
  std::string name;
  is >> name;
  std::string text;
  std::getline(is, text);
  text = Trim(text);
  if (name.empty() || text.empty()) {
    out_ << "usage: query <name> <text>\n";
    return;
  }
  Result<AnalyzedQueryPtr> compiled = CompileSaql(text);
  if (!compiled.ok()) {
    out_ << "query rejected: " << compiled.status() << "\n";
    return;
  }
  queries_[name] = text;
  out_ << "registered query '" << name << "'\n";
}

void QueryShell::CmdList() {
  if (queries_.empty()) {
    out_ << "(no queries registered)\n";
    return;
  }
  for (const auto& [name, text] : queries_) {
    out_ << "  " << name << " (" << text.size() << " chars)\n";
  }
}

void QueryShell::PrintDiagnostics(
    const std::vector<Diagnostic>& diagnostics) {
  out_ << RenderDiagnostics(diagnostics, "  ");
  size_t errors = CountSeverity(diagnostics, Severity::kError);
  size_t warnings = CountSeverity(diagnostics, Severity::kWarning);
  out_ << "  " << errors << " error(s), " << warnings << " warning(s), "
       << diagnostics.size() - errors - warnings << " note(s)\n";
}

void QueryShell::CmdLint(const std::vector<std::string>& args) {
  // With no file arguments, lint every registered query instead.
  if (args.empty()) {
    if (queries_.empty()) {
      out_ << "usage: lint <file.saql> [more files...]\n"
              "(no queries registered — 'load' some, or pass files)\n";
      return;
    }
    for (const auto& [name, text] : queries_) {
      Result<AnalyzedQueryPtr> compiled = CompileSaql(text);
      if (!compiled.ok()) {
        out_ << name << ": compile error: " << compiled.status() << "\n";
        continue;
      }
      Result<std::unique_ptr<CompiledQuery>> query =
          CompiledQuery::Create(*compiled, name, {});
      if (!query.ok()) {
        out_ << name << ": compile error: " << query.status() << "\n";
        continue;
      }
      out_ << name << ":\n";
      PrintDiagnostics(QueryAnalysis::Lint(**query));
    }
    return;
  }
  for (const std::string& path : args) {
    std::ifstream f(path);
    if (!f) {
      out_ << path << ": cannot open\n";
      continue;
    }
    std::ostringstream text;
    text << f.rdbuf();
    Result<AnalyzedQueryPtr> compiled = CompileSaql(text.str());
    if (!compiled.ok()) {
      out_ << path << ": compile error: " << compiled.status() << "\n";
      continue;
    }
    Result<std::unique_ptr<CompiledQuery>> query =
        CompiledQuery::Create(*compiled, path, {});
    if (!query.ok()) {
      out_ << path << ": compile error: " << query.status() << "\n";
      continue;
    }
    out_ << path << ":\n";
    PrintDiagnostics(QueryAnalysis::Lint(**query));
  }
}

void QueryShell::CmdFleet() {
  if (queries_.size() < 1) {
    out_ << "(no queries registered — 'load' or 'query' some first)\n";
    return;
  }
  std::vector<FleetAnalysis::Member> members;
  for (const auto& [name, text] : queries_) {
    Result<AnalyzedQueryPtr> compiled = CompileSaql(text);
    if (!compiled.ok()) {
      out_ << name << ": compile error: " << compiled.status() << "\n";
      continue;
    }
    members.push_back({name, *compiled});
  }
  FleetReport report = FleetAnalysis::Analyze(members);
  out_ << report.ToString();
  for (size_t i = 0; i < report.findings.size(); ++i) {
    if (report.findings[i].empty()) continue;
    out_ << report.names[i] << ":\n"
         << RenderDiagnostics(report.findings[i], "  ");
  }
}

void QueryShell::CmdExplain(const std::vector<std::string>& args) {
  if (args.empty()) {
    out_ << "usage: explain <query-name>\n";
    return;
  }
  auto it = queries_.find(args[0]);
  if (it == queries_.end()) {
    out_ << "no query named '" << args[0] << "' — 'list' shows names\n";
    return;
  }
  Result<AnalyzedQueryPtr> compiled = CompileSaql(it->second);
  if (!compiled.ok()) {
    out_ << "compile error: " << compiled.status() << "\n";
    return;
  }
  Result<std::unique_ptr<CompiledQuery>> query =
      CompiledQuery::Create(*compiled, args[0], {});
  if (!query.ok()) {
    out_ << "compile error: " << query.status() << "\n";
    return;
  }
  out_ << QueryAnalysis::ExplainPlacement(**query).ToString() << "\n";
  std::vector<Diagnostic> findings = QueryAnalysis::Lint(**query);
  if (!findings.empty()) {
    out_ << "findings:\n";
    PrintDiagnostics(findings);
  }
}

void QueryShell::ConsumeSyncFlag(std::vector<std::string>* args,
                                 SyncPolicy* policy) {
  for (auto it = args->begin(); it != args->end();) {
    if (it->rfind("--sync=", 0) == 0) {
      Result<SyncPolicy> parsed = ParseSyncPolicy(it->substr(7));
      if (!parsed.ok()) {
        out_ << "ignoring '" << *it << "': " << parsed.status() << "\n";
      } else {
        *policy = *parsed;
      }
      it = args->erase(it);
    } else {
      ++it;
    }
  }
}

size_t QueryShell::ConsumeShardsFlag(std::vector<std::string>* args) {
  size_t shards = num_shards_;
  for (auto it = args->begin(); it != args->end();) {
    if (it->rfind("--shards=", 0) == 0) {
      char* end = nullptr;
      long n = std::strtol(it->c_str() + 9, &end, 10);
      if (n <= 0 || end == nullptr || *end != '\0') {
        out_ << "ignoring '" << *it
             << "' (expected --shards=N with N >= 1); using " << shards
             << "\n";
      } else {
        shards = static_cast<size_t>(n);
      }
      it = args->erase(it);
    } else {
      ++it;
    }
  }
  return shards;
}

std::string QueryShell::FormatStats(
    const ExecutorStats& exec, size_t num_queries, size_t num_groups,
    size_t indexed_groups, bool member_indexed, size_t num_alerts,
    const std::vector<std::pair<std::string, CompiledQuery::QueryStats>>&
        query_stats) const {
  std::ostringstream stats;
  stats << "events=" << exec.events << " deliveries=" << exec.deliveries
        << " queries=" << num_queries << " groups=" << num_groups
        << " indexed_groups=" << indexed_groups << " member_matching="
        << (member_indexed ? "indexed" : "brute")
        << " alerts=" << num_alerts << "\n";
  for (const auto& [name, qs] : query_stats) {
    stats << "  " << name << ": matched=" << qs.matches
          << " windows=" << qs.windows_closed << " alerts=" << qs.alerts
          << "\n";
  }
  return stats.str();
}

void QueryShell::RunEngine(EventSource* source, size_t num_shards) {
  if (queries_.empty()) {
    out_ << "no queries registered — use 'load' or 'query' first\n";
    return;
  }
  SaqlEngine::Options opts;
  opts.num_shards = num_shards;
  opts.enable_member_index = member_index_;
  SaqlEngine engine(opts);
  if (num_shards > 1) {
    out_ << "executing on " << num_shards << " shard lanes\n";
  }
  for (const auto& [name, text] : queries_) {
    Status st = engine.AddQuery(text, name);
    if (!st.ok()) {
      out_ << "skipping '" << name << "': " << st << "\n";
    }
  }
  alerts_.clear();
  engine.SetAlertSink([this](const Alert& a) {
    alerts_.push_back(a);
    out_ << a.ToString() << "\n";
  });
  Status st = engine.Run(source);
  if (!st.ok()) {
    out_ << "run failed: " << st << "\n";
    return;
  }
  last_stats_ = FormatStats(engine.executor_stats(), engine.num_queries(),
                            engine.num_groups(), engine.num_indexed_groups(),
                            member_index_, alerts_.size(),
                            engine.query_stats());
  last_errors_ = engine.errors().ToString();
  out_ << "run complete: " << alerts_.size() << " alert(s)\n";
}

void QueryShell::CmdSimulate(const std::vector<std::string>& args) {
  std::vector<std::string> rest = args;
  size_t shards = ConsumeShardsFlag(&rest);
  EnterpriseSimulator::Options opts;
  if (!rest.empty()) {
    opts.duration = std::strtol(rest[0].c_str(), nullptr, 10) * kMinute;
    if (opts.duration <= 0) opts.duration = 30 * kMinute;
  }
  EnterpriseSimulator sim(opts);
  auto source = sim.MakeSource();
  out_ << "simulating " << FormatDuration(opts.duration) << " across "
       << sim.hosts().size() << " hosts (APT attack injected)...\n";
  RunEngine(source.get(), shards);
}

void QueryShell::CmdReplay(const std::vector<std::string>& args) {
  std::vector<std::string> rest = args;
  size_t shards = ConsumeShardsFlag(&rest);
  if (rest.empty()) {
    out_ << "usage: replay <log> [host...] [--shards=N]\n";
    return;
  }
  StreamReplayer::Filter filter;
  for (size_t i = 1; i < rest.size(); ++i) filter.hosts.insert(rest[i]);
  StreamReplayer replayer(rest[0], filter);
  if (!replayer.status().ok()) {
    out_ << "replay failed: " << replayer.status() << "\n";
    return;
  }
  out_ << "replaying " << rest[0] << " (format v"
       << replayer.format_version()
       << (replayer.format_version() == 2 ? ", columnar" : ", row") << ")\n";
  RunEngine(&replayer, shards);
}

void QueryShell::CmdRecord(const std::vector<std::string>& args) {
  std::vector<std::string> rest;
  bool v1 = false;
  for (const std::string& a : args) {
    if (a == "--v1") {
      v1 = true;
    } else {
      rest.push_back(a);
    }
  }
  SyncPolicy sync;
  ConsumeSyncFlag(&rest, &sync);
  if (rest.empty()) {
    out_ << "usage: record <log> [minutes] [--sync=always|group|none] "
            "[--v1]\n";
    return;
  }
  EnterpriseSimulator::Options opts;
  if (rest.size() > 1) {
    opts.duration = std::strtol(rest[1].c_str(), nullptr, 10) * kMinute;
    if (opts.duration <= 0) opts.duration = 30 * kMinute;
  }
  EnterpriseSimulator sim(opts);
  EventBatch events = sim.Generate();
  if (v1) {
    Status st = WriteEventLog(rest[0], events);
    if (!st.ok()) {
      out_ << "record failed: " << st << "\n";
      exit_code_ = 1;
      return;
    }
    out_ << "recorded " << events.size() << " events to " << rest[0]
         << " (row v1)\n";
    return;
  }
  DurableLogWriter::Options dopts;
  dopts.sync = sync;
  DurableLogWriter writer(rest[0], dopts);
  Status st = writer.status();
  if (st.ok()) st = writer.AppendBatch(events);
  Status close_st = writer.Close();
  if (st.ok()) st = close_st;
  if (!st.ok()) {
    // Sticky failure: whatever was acked before the error stays
    // recoverable ('recover <log>' replays segments + WAL tail).
    out_ << "record failed: " << st << "\n"
         << "  " << writer.durable_seq() << " of "
         << writer.appended_events()
         << " acked events are durable; run 'recover " << rest[0]
         << "' to salvage\n";
    exit_code_ = 1;
    return;
  }
  out_ << "recorded " << events.size() << " events to " << rest[0]
       << " (columnar v2, sync=" << sync.name() << ")\n";
}

void QueryShell::CmdRecover(const std::vector<std::string>& args) {
  if (args.empty()) {
    out_ << "usage: recover <log>\n";
    return;
  }
  Result<RecoveredLog> rec = CompactRecoveredLog(args[0]);
  if (!rec.ok()) {
    out_ << "recover failed: " << rec.status() << "\n";
    exit_code_ = 1;
    return;
  }
  out_ << "recovered " << rec->events.size() << " events from " << args[0]
       << " (" << rec->segment_events << " from columnar segments, "
       << rec->wal_events << " replayed from " << rec->wal_files.size()
       << " WAL file" << (rec->wal_files.size() == 1 ? "" : "s")
       << "); compacted to a pure columnar v2 log\n";
}

// ---------------------------------------------------------------------
// Live-session commands.

QueryShell::LiveSession* QueryShell::ConsumeSessionRef(
    std::vector<std::string>* args) {
  uint64_t id = current_session_;
  for (auto it = args->begin(); it != args->end();) {
    if (!it->empty() && (*it)[0] == '#') {
      char* end = nullptr;
      unsigned long long n = std::strtoull(it->c_str() + 1, &end, 10);
      if (n == 0 || end == nullptr || *end != '\0') {
        out_ << "bad session reference '" << *it << "' (expected #<id>)\n";
        return nullptr;
      }
      id = n;
      it = args->erase(it);
    } else {
      ++it;
    }
  }
  if (live_sessions_.empty()) {
    out_ << "no live session — 'open' one first\n";
    return nullptr;
  }
  auto it = live_sessions_.find(id);
  if (it == live_sessions_.end()) {
    out_ << "no open session #" << id << " — 'sessions' lists them\n";
    return nullptr;
  }
  current_session_ = id;  // addressing a session selects it
  return &it->second;
}

void QueryShell::CmdOpen(const std::vector<std::string>& args) {
  std::vector<std::string> rest = args;
  size_t shards = ConsumeShardsFlag(&rest);
  std::string record_path;
  SyncPolicy record_sync;
  bool record_force = false;
  ConsumeSyncFlag(&rest, &record_sync);
  for (auto it = rest.begin(); it != rest.end();) {
    if (it->rfind("--record=", 0) == 0) {
      record_path = it->substr(9);
      it = rest.erase(it);
    } else if (*it == "--force") {
      record_force = true;
      it = rest.erase(it);
    } else {
      ++it;
    }
  }
  // One engine hosts every concurrently open session; it is built at the
  // first open (snapshotting the registered queries) and torn down when
  // the last session closes.
  if (live_engine_ == nullptr) {
    SaqlEngine::Options opts;
    opts.enable_member_index = member_index_;
    live_engine_ = std::make_unique<SaqlEngine>(opts);
    for (const auto& [name, text] : queries_) {
      Status st = live_engine_->AddQuery(text, name);
      if (!st.ok()) out_ << "skipping '" << name << "': " << st << "\n";
    }
    alerts_.clear();
    live_engine_->SetAlertSink([this](const Alert& a) {
      alerts_.push_back(a);
      out_ << a.ToString() << "\n";
    });
    live_member_index_ = member_index_;
  } else if (live_engine_->num_queries() != queries_.size()) {
    out_ << "note: sessions snapshot the query set from the first 'open' "
            "— use 'add' to attach newer queries mid-stream\n";
  }
  SessionOptions sopts;
  sopts.num_shards = shards;
  sopts.record_path = record_path;
  sopts.record_sync = record_sync;
  sopts.record_force = record_force;
  auto session = live_engine_->OpenSession(std::move(sopts));
  if (!session.ok()) {
    out_ << "open failed: " << session.status() << "\n";
    if (live_sessions_.empty()) live_engine_.reset();
    return;
  }
  const uint64_t id = (*session)->id();
  LiveSession& ls = live_sessions_[id];
  ls.session = std::move(session).value();
  ls.shards = shards;
  ls.clock = EnterpriseSimulator::Options{}.start;
  ls.record_path = record_path;
  current_session_ = id;
  out_ << "session open on " << shards << " shard lane"
       << (shards == 1 ? "" : "s") << " with "
       << ls.session->num_active_queries() << " quer"
       << (ls.session->num_active_queries() == 1 ? "y" : "ies") << " (#"
       << id << (live_sessions_.size() > 1 ? ", now current" : "")
       << ") — 'push' streams data, 'add'/'remove' change the query set\n";
  if (!record_path.empty()) {
    Status rst = ls.session->recording_status();
    if (rst.ok()) {
      out_ << "recording pushed events to " << record_path
           << " (sync=" << record_sync.name() << ")\n";
    } else {
      out_ << "recording failed to start: " << rst
           << " — session serves queries without recording\n";
      ls.record_failed = true;
      exit_code_ = 1;
    }
  }
}

void QueryShell::CmdPush(const std::vector<std::string>& args) {
  std::vector<std::string> rest = args;
  LiveSession* ls = ConsumeSessionRef(&rest);
  if (ls == nullptr) return;
  long minutes = 5;
  if (!rest.empty()) {
    minutes = std::strtol(rest[0].c_str(), nullptr, 10);
    if (minutes <= 0) minutes = 5;
  }
  EnterpriseSimulator::Options opts;
  opts.start = ls->clock;
  opts.duration = minutes * kMinute;
  // Vary the seed per push so repeated pushes produce fresh traffic.
  opts.seed = 42 + ls->pushes;
  EnterpriseSimulator sim(opts);
  EventBatch events = sim.Generate();
  size_t num_alerts_before = alerts_.size();
  Status st = ls->session->Push(events);
  if (st.ok()) {
    st = ls->session->AdvanceWatermark(ls->session->max_event_ts());
  }
  if (st.ok()) st = ls->session->Flush();
  if (!st.ok()) {
    out_ << "push failed: " << st << "\n";
    return;
  }
  ls->clock += opts.duration;
  ++ls->pushes;
  ls->events += events.size();
  out_ << "pushed " << events.size() << " events ("
       << FormatDuration(opts.duration) << " of traffic; session #"
       << current_session_ << " total " << ls->events << "), "
       << alerts_.size() - num_alerts_before << " new alert(s)\n";
  if (!ls->record_path.empty() && !ls->record_failed &&
      !ls->session->recording_status().ok()) {
    // Graceful degradation: report once, keep the session serving.
    out_ << "recording failed: " << ls->session->recording_status()
         << " — the session keeps serving queries; "
         << ls->session->durable_events()
         << " events are durable, run 'recover " << ls->record_path
         << "' after closing\n";
    ls->record_failed = true;
    exit_code_ = 1;
  }
}

void QueryShell::CmdAdd(const std::string& rest) {
  std::istringstream is(Trim(rest));
  std::string first;
  is >> first;
  std::vector<std::string> ref;
  std::string name;
  if (!first.empty() && first[0] == '#') {
    ref.push_back(first);
    is >> name;
  } else {
    name = first;
  }
  std::string text;
  std::getline(is, text);
  text = Trim(text);
  if (name.empty() || text.empty()) {
    out_ << "usage: add [#id] <name> <text>\n";
    return;
  }
  if (!session_open()) {
    if (!ref.empty()) {
      out_ << "no live session — 'open' one first\n";
      return;
    }
    // No live stream to attach to: behave like `query`.
    CmdQueryInline(rest);
    return;
  }
  LiveSession* ls = ConsumeSessionRef(&ref);
  if (ls == nullptr) return;
  std::vector<Diagnostic> diags;
  auto handle = ls->session->AddQuery(text, name, &diags);
  if (!handle.ok()) {
    // Rejection leaves the session (and the shell's registry) exactly as
    // it was; show the analyzer's findings so the error is actionable.
    out_ << "add failed: query '" << name << "' rejected\n";
    if (diags.empty()) {
      out_ << "  " << handle.status() << "\n";
    } else {
      PrintDiagnostics(diags);
    }
    return;
  }
  for (const Diagnostic& d : diags) {
    // Surface actionable findings on success; placement notes stay in
    // 'explain' where they were asked for.
    if (d.severity != Severity::kNote) out_ << "  " << d.ToString() << "\n";
  }
  queries_[name] = text;
  out_ << "attached query '" << name
       << "' mid-stream (sees events from this point on";
  if (live_sessions_.size() > 1) {
    out_ << "; session #" << current_session_ << " only";
  }
  out_ << ")\n";
}

void QueryShell::CmdRemove(const std::vector<std::string>& args) {
  std::vector<std::string> rest = args;
  std::vector<std::string> ref;
  for (auto it = rest.begin(); it != rest.end();) {
    if (!it->empty() && (*it)[0] == '#') {
      ref.push_back(*it);
      it = rest.erase(it);
    } else {
      ++it;
    }
  }
  if (rest.empty()) {
    out_ << "usage: remove [#id] <name>\n";
    return;
  }
  const std::string& name = rest[0];
  if (session_open()) {
    LiveSession* ls = ConsumeSessionRef(&ref);
    if (ls == nullptr) return;
    SaqlEngine::QueryHandle* h = ls->session->handle(name);
    Status st = ls->session->RemoveQuery(name);
    if (!st.ok()) {
      out_ << "remove failed: " << st << "\n";
      return;
    }
    queries_.erase(name);
    out_ << "removed query '" << name << "' from the live session";
    if (live_sessions_.size() > 1) out_ << " #" << current_session_;
    if (h != nullptr) {
      CompiledQuery::QueryStats qs = h->stats();
      out_ << " (final: matched=" << qs.matches
           << " windows=" << qs.windows_closed << " alerts=" << qs.alerts
           << ")";
    }
    out_ << "\n";
    return;
  }
  if (!ref.empty()) {
    out_ << "no live session — 'open' one first\n";
    return;
  }
  if (queries_.erase(name) > 0) {
    out_ << "unregistered query '" << name << "'\n";
  } else {
    out_ << "no query named '" << name << "'\n";
  }
}

void QueryShell::PrintSessionStatus(uint64_t id, LiveSession& ls) {
  out_ << "session #" << id << (id == current_session_ ? " (current)" : "")
       << ": open, " << ls.shards << " shard lane"
       << (ls.shards == 1 ? "" : "s") << ", "
       << ls.session->num_active_queries() << " active quer"
       << (ls.session->num_active_queries() == 1 ? "y" : "ies") << ", "
       << ls.events << " events pushed";
  if (ls.session->watermark() != INT64_MIN) {
    out_ << ", watermark " << FormatTimestamp(ls.session->watermark());
  }
  out_ << "\n";
  if (!ls.record_path.empty()) {
    Status rst = ls.session->recording_status();
    if (rst.ok()) {
      out_ << "  recording: " << ls.record_path << ", "
           << ls.session->recorded_events() << " events acked, "
           << ls.session->durable_events() << " durable\n";
    } else {
      out_ << "  recording: FAILED (" << rst << ")\n";
    }
  }
}

void QueryShell::CmdSessionStatus(const std::vector<std::string>& args) {
  std::vector<std::string> rest = args;
  LiveSession* ls = ConsumeSessionRef(&rest);
  if (ls == nullptr) return;
  PrintSessionStatus(current_session_, *ls);
  out_ << "  " << alerts_.size() << " alert(s) across all sessions\n";
}

void QueryShell::CmdSessions() {
  if (live_sessions_.empty()) {
    out_ << "(no live sessions — 'open' starts one)\n";
    return;
  }
  out_ << live_sessions_.size() << " live session"
       << (live_sessions_.size() == 1 ? "" : "s") << ":\n";
  for (auto& [id, ls] : live_sessions_) {
    out_ << "  ";
    PrintSessionStatus(id, ls);
  }
}

void QueryShell::CmdClose(const std::vector<std::string>& args) {
  std::vector<std::string> rest = args;
  LiveSession* ls = ConsumeSessionRef(&rest);
  if (ls == nullptr) return;
  const uint64_t id = current_session_;
  uint64_t recorded = ls->session->recorded_events();
  Status st = ls->session->Close();
  if (!st.ok()) out_ << "close reported: " << st << "\n";
  Status record_st = ls->session->recording_status();
  std::string record_path = ls->record_path;
  // The engine publishes the closing session's stats (last close wins).
  last_stats_ = FormatStats(
      live_engine_->executor_stats(), live_engine_->num_queries(),
      live_engine_->num_groups(), live_engine_->num_indexed_groups(),
      live_member_index_, alerts_.size(), live_engine_->query_stats());
  last_errors_ = live_engine_->errors().ToString();
  live_sessions_.erase(id);
  out_ << "session closed: " << alerts_.size() << " alert(s) total";
  if (!live_sessions_.empty()) {
    out_ << " (" << live_sessions_.size() << " session"
         << (live_sessions_.size() == 1 ? "" : "s") << " still open)";
  }
  out_ << "\n";
  if (live_sessions_.empty()) {
    live_engine_.reset();
    current_session_ = 0;
  } else {
    current_session_ = live_sessions_.rbegin()->first;
  }
  if (!record_path.empty()) {
    if (record_st.ok()) {
      out_ << "recording complete: " << recorded << " events durable in "
           << record_path << "\n";
    } else {
      out_ << "recording failed: " << record_st << " — run 'recover "
           << record_path << "' to salvage the durable prefix\n";
      exit_code_ = 1;
    }
  }
}

// ---------------------------------------------------------------------
// Inspection.

void QueryShell::CmdAlerts(const std::vector<std::string>& args) {
  size_t n = 10;
  if (!args.empty()) {
    n = static_cast<size_t>(std::strtoul(args[0].c_str(), nullptr, 10));
    if (n == 0) n = 10;
  }
  if (alerts_.empty()) {
    out_ << "(no alerts)\n";
    return;
  }
  TextTable table({"time", "query", "group", "values"});
  size_t start = alerts_.size() > n ? alerts_.size() - n : 0;
  for (size_t i = start; i < alerts_.size(); ++i) {
    const Alert& a = alerts_[i];
    std::string values;
    for (const auto& [label, value] : a.values) {
      if (!values.empty()) values += ", ";
      values += label + "=" + value.ToString();
    }
    table.AddRow({FormatTimestamp(a.ts), a.query_name, a.group, values});
  }
  out_ << table.Render();
}

void QueryShell::CmdShards(const std::vector<std::string>& args) {
  if (args.empty()) {
    out_ << "shards = " << num_shards_
         << (num_shards_ == 1 ? " (single-threaded)\n" : "\n");
    return;
  }
  char* end = nullptr;
  long n = std::strtol(args[0].c_str(), &end, 10);
  if (n <= 0 || end == nullptr || *end != '\0') {
    out_ << "usage: shards <n>  (n >= 1)\n";
    return;
  }
  SetNumShards(static_cast<size_t>(n));
  out_ << "shards = " << num_shards_ << "\n";
  if (session_open()) {
    out_ << "note: open sessions keep their lane counts; the new setting "
            "applies from the next 'open' or batch run\n";
  } else {
    out_ << "(applies to the next 'open' or batch run)\n";
  }
}

void QueryShell::CmdIndex(const std::vector<std::string>& args) {
  if (args.empty()) {
    out_ << "index = " << (member_index_ ? "on" : "off")
         << (member_index_ ? " (shared member-match index)\n"
                           : " (brute-force member loops)\n");
    return;
  }
  std::string v = ToLower(args[0]);
  if (v == "on") {
    SetMemberIndex(true);
  } else if (v == "off") {
    SetMemberIndex(false);
  } else {
    out_ << "usage: index [on|off]\n";
    return;
  }
  out_ << "index = " << (member_index_ ? "on" : "off") << "\n";
  if (session_open()) {
    out_ << "note: the live session keeps its member-matching mode; the "
            "new setting applies from the next 'open' or batch run\n";
  } else {
    out_ << "(applies to the next 'open' or batch run)\n";
  }
}

void QueryShell::CmdStats() {
  if (session_open()) {
    auto it = live_sessions_.find(current_session_);
    if (it != live_sessions_.end()) {
      SaqlEngine::Session& s = *it->second.session;
      if (live_sessions_.size() > 1) {
        out_ << "stats for session #" << current_session_
             << " (the current one; 'session #id' selects another)\n";
      }
      out_ << FormatStats(s.executor_stats(), s.num_active_queries(),
                          s.num_groups(), s.num_indexed_groups(),
                          live_member_index_, alerts_.size(),
                          s.query_stats());
      return;
    }
  }
  out_ << (last_stats_.empty() ? "(no run yet)\n" : last_stats_);
}

void QueryShell::CmdErrors() {
  if (session_open()) {
    out_ << live_engine_->errors().ToString() << "\n";
    return;
  }
  out_ << (last_errors_.empty() ? "(no run yet)\n" : last_errors_) << "\n";
}

}  // namespace saql
