#ifndef SAQL_COLLECT_BENIGN_WORKLOAD_H_
#define SAQL_COLLECT_BENIGN_WORKLOAD_H_

#include <cstdint>
#include <random>
#include <vector>

#include "collect/entity_factory.h"
#include "core/event.h"
#include "core/time_util.h"

namespace saql {

/// Generates the benign background activity of one host: the normal system
/// call traffic the paper's agents collect (~50GB/day for 100 hosts). Event
/// mix and volumes are role-aware and statistically stable so that
/// time-series and peer-comparison models have a meaningful baseline:
///
///  - file reads/writes with log-normal amounts,
///  - steady per-process network traffic (each (process, peer) pair has a
///    stable mean volume),
///  - periodic process spawns (apache.exe on the web server spawns its
///    worker set — the invariant Query 3 learns),
///  - Poisson event arrivals at `events_per_second`.
class BenignWorkload {
 public:
  struct Options {
    double events_per_second = 20.0;
    /// Mean bytes for file/network operations (log-normal median).
    double mean_amount = 4000.0;
  };

  BenignWorkload(const HostProfile& profile, uint64_t seed, Options options);
  BenignWorkload(const HostProfile& profile, uint64_t seed)
      : BenignWorkload(profile, seed, Options{}) {}

  /// Appends this host's events for [start, start+duration) to `out`, in
  /// timestamp order. Event ids are left 0 (assigned by the simulator).
  void Generate(Timestamp start, Duration duration, EventBatch* out);

 private:
  Event MakeBase(Timestamp ts);
  void EmitFileEvent(Timestamp ts, EventBatch* out);
  void EmitNetworkEvent(Timestamp ts, EventBatch* out);
  void EmitProcessEvent(Timestamp ts, EventBatch* out);

  HostProfile profile_;
  EntityFactory factory_;
  Options options_;
  std::mt19937_64 rng_;
  /// Stable per-process mean network volume multipliers.
  std::vector<double> proc_volume_scale_;
};

}  // namespace saql

#endif  // SAQL_COLLECT_BENIGN_WORKLOAD_H_
