#include "collect/enterprise_sim.h"

#include <algorithm>

namespace saql {

EnterpriseSimulator::EnterpriseSimulator(Options options)
    : options_(options), hosts_(MakeEnterpriseHosts(options.num_workstations)) {}

EventBatch EnterpriseSimulator::Generate() {
  EventBatch all;
  uint64_t host_seed = options_.seed;
  for (const HostProfile& host : hosts_) {
    BenignWorkload::Options wo;
    wo.events_per_second = options_.events_per_host_per_second;
    BenignWorkload workload(host, ++host_seed, wo);
    workload.Generate(options_.start, options_.duration, &all);
  }
  attack_steps_.clear();
  if (options_.include_attack) {
    AptScenarioConfig cfg = options_.attack;
    cfg.start = options_.start + options_.attack_offset;
    // Bind the scenario to the simulated topology.
    if (!hosts_.empty()) {
      for (const HostProfile& h : hosts_) {
        if (h.role == HostRole::kWorkstation && cfg.victim_host == "ws-01") {
          cfg.victim_ip = h.ip;
          break;
        }
      }
      for (const HostProfile& h : hosts_) {
        if (h.role == HostRole::kDatabaseServer) {
          cfg.db_host = h.agent_id;
          cfg.db_ip = h.ip;
        } else if (h.role == HostRole::kWebServer) {
          cfg.web_host = h.agent_id;
        }
      }
    }
    attack_steps_ = GenerateAptScenario(cfg);
    EventBatch attack = FlattenAptScenario(attack_steps_);
    all.insert(all.end(), attack.begin(), attack.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  uint64_t id = 1;
  for (Event& e : all) e.id = id++;
  return all;
}

std::unique_ptr<VectorEventSource> EnterpriseSimulator::MakeSource() {
  return std::make_unique<VectorEventSource>(Generate());
}

}  // namespace saql
