#ifndef SAQL_COLLECT_ENTERPRISE_SIM_H_
#define SAQL_COLLECT_ENTERPRISE_SIM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "collect/apt_scenario.h"
#include "collect/benign_workload.h"
#include "collect/entity_factory.h"
#include "core/event.h"
#include "stream/event_source.h"

namespace saql {

/// Synthesizes the enterprise-wide event stream the paper's deployment
/// collects: per-host benign workloads merged into one timestamp-ordered
/// feed, optionally with the five-step APT attack trace injected
/// (DESIGN.md substitution S3 for the 150-host NEC deployment).
class EnterpriseSimulator {
 public:
  struct Options {
    int num_workstations = 4;
    double events_per_host_per_second = 20.0;
    Duration duration = 30 * kMinute;
    Timestamp start = 1582761600LL * kSecond;  // 2020-02-27 00:00 UTC
    uint64_t seed = 42;
    bool include_attack = true;
    /// When the attack starts, relative to `start`. The default leaves
    /// enough benign prefix for invariant training and moving-average
    /// baselines.
    Duration attack_offset = 12 * kMinute;
    AptScenarioConfig attack;
  };

  EnterpriseSimulator() : EnterpriseSimulator(Options{}) {}
  explicit EnterpriseSimulator(Options options);

  /// Materializes the full stream: benign + attack, sorted by timestamp,
  /// with sequential event ids.
  EventBatch Generate();

  /// Convenience: materializes and wraps in a source.
  std::unique_ptr<VectorEventSource> MakeSource();

  /// The attack steps injected by the last `Generate` call (empty when
  /// `include_attack` is false).
  const std::vector<AptStep>& attack_steps() const { return attack_steps_; }

  const std::vector<HostProfile>& hosts() const { return hosts_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<HostProfile> hosts_;
  std::vector<AptStep> attack_steps_;
};

}  // namespace saql

#endif  // SAQL_COLLECT_ENTERPRISE_SIM_H_
