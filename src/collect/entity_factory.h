#ifndef SAQL_COLLECT_ENTITY_FACTORY_H_
#define SAQL_COLLECT_ENTITY_FACTORY_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/event.h"

namespace saql {

/// Role of a host in the simulated enterprise (Fig. 2 of the paper: mail
/// server, database server, Windows domain controller, client
/// workstations behind a firewall).
enum class HostRole {
  kWorkstation,
  kMailServer,
  kDatabaseServer,
  kDomainController,
  kWebServer,
};

const char* HostRoleName(HostRole role);

/// Static description of one simulated host.
struct HostProfile {
  std::string agent_id;  ///< "ws-03", "db-server-01", ...
  HostRole role = HostRole::kWorkstation;
  std::string ip;        ///< intranet address
};

/// Produces consistent entities for one host: a process table with stable
/// pids, the host's characteristic executables, file paths, and peer IPs.
/// Determinism: all draws come from the caller-seeded RNG, so a fixed seed
/// reproduces the same enterprise.
class EntityFactory {
 public:
  EntityFactory(HostProfile profile, uint64_t seed);

  const HostProfile& profile() const { return profile_; }

  /// A long-lived process characteristic for the host role (sqlservr.exe on
  /// the DB server, outlook.exe on workstations, ...).
  ProcessEntity RandomProcess(std::mt19937_64* rng);

  /// A stable "system" process that exists on every host.
  ProcessEntity SystemProcess(std::mt19937_64* rng);

  /// Registers/returns a process entity by executable name with a stable
  /// pid per (host, exe).
  ProcessEntity ProcessByName(const std::string& exe_name);

  /// A plausible file path for this host, biased toward the role's data
  /// directories.
  std::string RandomFilePath(std::mt19937_64* rng);

  /// A peer address: intranet peer with probability `intranet_bias`, else a
  /// public internet address.
  NetworkEntity RandomPeer(std::mt19937_64* rng, double intranet_bias = 0.7);

  /// The executables this host role runs (exposed for workload shaping).
  const std::vector<std::string>& role_executables() const {
    return role_exes_;
  }

 private:
  HostProfile profile_;
  std::vector<std::string> role_exes_;
  std::vector<std::string> dirs_;
  std::vector<std::string> intranet_peers_;
  std::vector<std::string> internet_peers_;
  std::vector<std::pair<std::string, int64_t>> pid_table_;
  int64_t next_pid_;
};

/// Builds the enterprise host inventory: `num_workstations` clients plus
/// one mail server, one database server, one domain controller, and one
/// web server — the paper's demo topology.
std::vector<HostProfile> MakeEnterpriseHosts(int num_workstations);

}  // namespace saql

#endif  // SAQL_COLLECT_ENTITY_FACTORY_H_
