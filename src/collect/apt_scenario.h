#ifndef SAQL_COLLECT_APT_SCENARIO_H_
#define SAQL_COLLECT_APT_SCENARIO_H_

#include <string>
#include <vector>

#include "core/event.h"
#include "core/time_util.h"

namespace saql {

/// Script of the paper's five-step APT attack (§III, Fig. 2), reproduced as
/// a synthetic event trace injected into benign traffic:
///
///   c1 Initial Compromise — crafted email with a malicious Excel macro
///      lands on a workstation.
///   c2 Malware Infection  — Excel runs the macro, downloads and executes a
///      malicious script that opens a backdoor (sbblv.exe).
///   c3 Privilege Escalation — the attacker scans ports to find the
///      database and runs gsecdump.exe to steal credentials.
///   c4 Penetration — with credentials, a VBScript drops a second backdoor
///      on the database server.
///   c5 Data Exfiltration — osql.exe dumps the database (backup1.dmp); the
///      malware ships the dump to the attacker's host.
struct AptScenarioConfig {
  std::string victim_host = "ws-01";
  std::string victim_ip = "10.10.1.10";
  std::string db_host = "db-server-01";
  std::string db_ip = "10.10.0.9";
  std::string web_host = "web-server-01";
  std::string attacker_ip = "66.77.88.129";
  /// When step c1 starts.
  Timestamp start = 0;
  /// Gap between consecutive attack steps.
  Duration step_gap = 2 * kMinute;
  /// Ports probed during the c3 scan.
  int scan_ports = 30;
  /// Size of the database dump shipped out during c5 (bytes).
  int64_t dump_bytes = 50'000'000;
  /// Chunks used to exfiltrate the dump (distinct network writes).
  int exfil_chunks = 20;
};

/// One generated attack step, with the events it contributes and a label
/// used by tests and the demo to explain detections.
struct AptStep {
  int step = 0;  ///< 1..5
  std::string description;
  EventBatch events;
};

/// Generates the attack trace. Events are timestamp-ordered within and
/// across steps; ids are left 0 (assigned by the simulator).
std::vector<AptStep> GenerateAptScenario(const AptScenarioConfig& config);

/// Flattens the steps into one ordered batch.
EventBatch FlattenAptScenario(const std::vector<AptStep>& steps);

}  // namespace saql

#endif  // SAQL_COLLECT_APT_SCENARIO_H_
