#include "collect/entity_factory.h"

#include <algorithm>

namespace saql {

const char* HostRoleName(HostRole role) {
  switch (role) {
    case HostRole::kWorkstation:
      return "workstation";
    case HostRole::kMailServer:
      return "mail-server";
    case HostRole::kDatabaseServer:
      return "db-server";
    case HostRole::kDomainController:
      return "domain-controller";
    case HostRole::kWebServer:
      return "web-server";
  }
  return "?";
}

namespace {

std::vector<std::string> RoleExecutables(HostRole role) {
  switch (role) {
    case HostRole::kWorkstation:
      return {"outlook.exe", "excel.exe", "winword.exe", "chrome.exe",
              "firefox.exe", "explorer.exe", "teams.exe", "svchost.exe"};
    case HostRole::kMailServer:
      return {"exchange.exe", "smtpsvc.exe", "w3wp.exe", "svchost.exe"};
    case HostRole::kDatabaseServer:
      return {"sqlservr.exe", "sqlagent.exe", "sqlwriter.exe",
              "svchost.exe", "cmd.exe"};
    case HostRole::kDomainController:
      return {"lsass.exe", "ntds.exe", "dns.exe", "svchost.exe"};
    case HostRole::kWebServer:
      return {"apache.exe", "php.exe", "logger.exe", "rotatelogs.exe",
              "svchost.exe"};
  }
  return {"svchost.exe"};
}

std::vector<std::string> RoleDirectories(HostRole role) {
  switch (role) {
    case HostRole::kWorkstation:
      return {"C:\\Users\\user\\Documents\\", "C:\\Users\\user\\Downloads\\",
              "C:\\Windows\\Temp\\", "C:\\Program Files\\Office\\"};
    case HostRole::kMailServer:
      return {"C:\\Exchange\\Mailbox\\", "C:\\Exchange\\Queue\\",
              "C:\\Windows\\Temp\\"};
    case HostRole::kDatabaseServer:
      return {"C:\\MSSQL\\Data\\", "C:\\MSSQL\\Log\\", "C:\\MSSQL\\Backup\\",
              "C:\\Windows\\Temp\\"};
    case HostRole::kDomainController:
      return {"C:\\Windows\\NTDS\\", "C:\\Windows\\SYSVOL\\",
              "C:\\Windows\\Temp\\"};
    case HostRole::kWebServer:
      return {"/var/www/html/", "/var/log/apache/", "/tmp/"};
  }
  return {"C:\\Windows\\Temp\\"};
}

std::vector<std::string> FileNamesForRole(HostRole role) {
  switch (role) {
    case HostRole::kDatabaseServer:
      return {"master.mdf", "orders.mdf", "orders.ldf", "tempdb.mdf",
              "audit.log", "config.ini"};
    case HostRole::kWebServer:
      return {"index.php", "access.log", "error.log", "app.conf",
              "session.dat"};
    default:
      return {"report.docx", "budget.xlsx", "notes.txt", "setup.log",
              "cache.dat", "prefs.ini"};
  }
}

}  // namespace

EntityFactory::EntityFactory(HostProfile profile, uint64_t seed)
    : profile_(std::move(profile)), next_pid_(1000) {
  role_exes_ = RoleExecutables(profile_.role);
  dirs_ = RoleDirectories(profile_.role);
  std::mt19937_64 rng(seed);
  // A stable pool of peers this host talks to.
  std::uniform_int_distribution<int> octet(2, 250);
  for (int i = 0; i < 12; ++i) {
    intranet_peers_.push_back("10.10.0." + std::to_string(octet(rng)));
  }
  for (int i = 0; i < 8; ++i) {
    internet_peers_.push_back(std::to_string(octet(rng)) + "." +
                              std::to_string(octet(rng)) + "." +
                              std::to_string(octet(rng)) + "." +
                              std::to_string(octet(rng)));
  }
}

ProcessEntity EntityFactory::ProcessByName(const std::string& exe_name) {
  for (const auto& [exe, pid] : pid_table_) {
    if (exe == exe_name) {
      ProcessEntity p;
      p.exe_name = exe_name;
      p.pid = pid;
      p.user = profile_.role == HostRole::kWorkstation ? "user" : "SYSTEM";
      return p;
    }
  }
  pid_table_.emplace_back(exe_name, next_pid_);
  ProcessEntity p;
  p.exe_name = exe_name;
  p.pid = next_pid_;
  p.user = profile_.role == HostRole::kWorkstation ? "user" : "SYSTEM";
  next_pid_ += 4;
  return p;
}

ProcessEntity EntityFactory::RandomProcess(std::mt19937_64* rng) {
  std::uniform_int_distribution<size_t> pick(0, role_exes_.size() - 1);
  return ProcessByName(role_exes_[pick(*rng)]);
}

ProcessEntity EntityFactory::SystemProcess(std::mt19937_64* rng) {
  (void)rng;
  return ProcessByName("svchost.exe");
}

std::string EntityFactory::RandomFilePath(std::mt19937_64* rng) {
  std::uniform_int_distribution<size_t> dir_pick(0, dirs_.size() - 1);
  std::vector<std::string> names = FileNamesForRole(profile_.role);
  std::uniform_int_distribution<size_t> name_pick(0, names.size() - 1);
  return dirs_[dir_pick(*rng)] + names[name_pick(*rng)];
}

NetworkEntity EntityFactory::RandomPeer(std::mt19937_64* rng,
                                        double intranet_bias) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int64_t> port(1024, 65000);
  NetworkEntity n;
  n.src_ip = profile_.ip;
  n.src_port = port(*rng);
  if (coin(*rng) < intranet_bias) {
    std::uniform_int_distribution<size_t> pick(0,
                                               intranet_peers_.size() - 1);
    n.dst_ip = intranet_peers_[pick(*rng)];
    std::uniform_int_distribution<int> svc(0, 3);
    const int64_t ports[4] = {445, 389, 1433, 443};
    n.dst_port = ports[svc(*rng)];
  } else {
    std::uniform_int_distribution<size_t> pick(0,
                                               internet_peers_.size() - 1);
    n.dst_ip = internet_peers_[pick(*rng)];
    n.dst_port = 443;
  }
  return n;
}

std::vector<HostProfile> MakeEnterpriseHosts(int num_workstations) {
  std::vector<HostProfile> hosts;
  for (int i = 0; i < num_workstations; ++i) {
    HostProfile h;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "ws-%02d", i + 1);
    h.agent_id = buf;
    h.role = HostRole::kWorkstation;
    h.ip = "10.10.1." + std::to_string(10 + i);
    hosts.push_back(std::move(h));
  }
  hosts.push_back(
      HostProfile{"mail-server-01", HostRole::kMailServer, "10.10.0.5"});
  hosts.push_back(
      HostProfile{"db-server-01", HostRole::kDatabaseServer, "10.10.0.9"});
  hosts.push_back(
      HostProfile{"dc-01", HostRole::kDomainController, "10.10.0.2"});
  hosts.push_back(
      HostProfile{"web-server-01", HostRole::kWebServer, "10.10.0.7"});
  return hosts;
}

}  // namespace saql
