#include "collect/benign_workload.h"

#include <algorithm>
#include <cmath>

namespace saql {

BenignWorkload::BenignWorkload(const HostProfile& profile, uint64_t seed,
                               Options options)
    : profile_(profile),
      factory_(profile, seed),
      options_(options),
      rng_(seed ^ 0x5a91ull) {
  // Every role executable gets a stable traffic scale so per-process
  // volumes are separable (Query 2's per-process baseline).
  std::uniform_real_distribution<double> scale(0.5, 2.0);
  for (size_t i = 0; i < factory_.role_executables().size(); ++i) {
    proc_volume_scale_.push_back(scale(rng_));
  }
}

Event BenignWorkload::MakeBase(Timestamp ts) {
  Event e;
  e.ts = ts;
  e.agent_id = profile_.agent_id;
  return e;
}

void BenignWorkload::EmitFileEvent(Timestamp ts, EventBatch* out) {
  Event e = MakeBase(ts);
  e.subject = factory_.RandomProcess(&rng_);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  double c = coin(rng_);
  if (c < 0.6) {
    e.op = EventOp::kRead;
  } else if (c < 0.95) {
    e.op = EventOp::kWrite;
  } else if (c < 0.98) {
    e.op = EventOp::kDelete;
  } else {
    e.op = EventOp::kRename;
  }
  e.object_type = EntityType::kFile;
  e.obj_file.path = factory_.RandomFilePath(&rng_);
  if (e.op == EventOp::kRead || e.op == EventOp::kWrite) {
    std::lognormal_distribution<double> amount(
        std::log(options_.mean_amount), 0.8);
    e.amount = static_cast<int64_t>(amount(rng_));
  }
  out->push_back(std::move(e));
}

void BenignWorkload::EmitNetworkEvent(Timestamp ts, EventBatch* out) {
  Event e = MakeBase(ts);
  const auto& exes = factory_.role_executables();
  std::uniform_int_distribution<size_t> pick(0, exes.size() - 1);
  size_t exe_idx = pick(rng_);
  e.subject = factory_.ProcessByName(exes[exe_idx]);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  double c = coin(rng_);
  if (c < 0.45) {
    e.op = EventOp::kWrite;  // send
  } else if (c < 0.9) {
    e.op = EventOp::kRead;  // receive
  } else {
    e.op = EventOp::kConnect;
  }
  e.object_type = EntityType::kNetwork;
  e.obj_net = factory_.RandomPeer(&rng_);
  if (e.op != EventOp::kConnect) {
    std::lognormal_distribution<double> amount(
        std::log(options_.mean_amount * proc_volume_scale_[exe_idx]), 0.6);
    e.amount = static_cast<int64_t>(amount(rng_));
  }
  out->push_back(std::move(e));
}

void BenignWorkload::EmitProcessEvent(Timestamp ts, EventBatch* out) {
  Event e = MakeBase(ts);
  e.op = EventOp::kStart;
  e.object_type = EntityType::kProcess;
  if (profile_.role == HostRole::kWebServer) {
    // Apache spawns its characteristic worker set — the invariant model's
    // training signal (Query 3).
    e.subject = factory_.ProcessByName("apache.exe");
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    const char* child = coin(rng_) < 0.6 ? "php.exe" : "logger.exe";
    e.obj_proc = factory_.ProcessByName(child);
  } else if (profile_.role == HostRole::kWorkstation) {
    // Office applications spawn a stable helper set — the invariant the
    // demo's Excel query learns before the macro spawns mshta.exe.
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    double c = coin(rng_);
    if (c < 0.4) {
      e.subject = factory_.ProcessByName("excel.exe");
      e.obj_proc = factory_.ProcessByName(c < 0.2 ? "splwow64.exe"
                                                  : "printdrv.exe");
    } else {
      e.subject = factory_.SystemProcess(&rng_);
      e.obj_proc = factory_.RandomProcess(&rng_);
    }
  } else {
    e.subject = factory_.SystemProcess(&rng_);
    e.obj_proc = factory_.RandomProcess(&rng_);
  }
  out->push_back(std::move(e));
}

void BenignWorkload::Generate(Timestamp start, Duration duration,
                              EventBatch* out) {
  if (options_.events_per_second <= 0) return;
  double mean_gap_ns =
      static_cast<double>(kSecond) / options_.events_per_second;
  std::exponential_distribution<double> gap(1.0 / mean_gap_ns);
  std::uniform_real_distribution<double> kind(0.0, 1.0);
  Timestamp end = start + duration;
  Timestamp ts = start;
  while (true) {
    ts += static_cast<Timestamp>(gap(rng_));
    if (ts >= end) break;
    double k = kind(rng_);
    if (k < 0.5) {
      EmitFileEvent(ts, out);
    } else if (k < 0.85) {
      EmitNetworkEvent(ts, out);
    } else {
      EmitProcessEvent(ts, out);
    }
  }
}

}  // namespace saql
