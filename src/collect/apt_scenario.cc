#include "collect/apt_scenario.h"

namespace saql {

namespace {

/// Small helper assembling attack events with consistent pids per
/// (host, exe) pair.
class AttackEventBuilder {
 public:
  explicit AttackEventBuilder(const AptScenarioConfig& cfg) : cfg_(cfg) {}

  ProcessEntity Proc(const std::string& host, const std::string& exe) {
    for (const auto& [key, pid] : pids_) {
      if (key == host + "/" + exe) {
        return ProcessEntity{pid, exe, "user"};
      }
    }
    int64_t pid = next_pid_;
    next_pid_ += 2;
    pids_.emplace_back(host + "/" + exe, pid);
    return ProcessEntity{pid, exe, "user"};
  }

  Event Base(const std::string& host, Timestamp ts) {
    Event e;
    e.agent_id = host;
    e.ts = ts;
    return e;
  }

  Event ProcStart(const std::string& host, Timestamp ts,
                  const std::string& parent, const std::string& child) {
    Event e = Base(host, ts);
    e.subject = Proc(host, parent);
    e.op = EventOp::kStart;
    e.object_type = EntityType::kProcess;
    e.obj_proc = Proc(host, child);
    return e;
  }

  Event FileOp(const std::string& host, Timestamp ts,
               const std::string& exe, EventOp op, const std::string& path,
               int64_t amount = 0) {
    Event e = Base(host, ts);
    e.subject = Proc(host, exe);
    e.op = op;
    e.object_type = EntityType::kFile;
    e.obj_file.path = path;
    e.amount = amount;
    return e;
  }

  Event NetOp(const std::string& host, Timestamp ts, const std::string& exe,
              EventOp op, const std::string& src_ip,
              const std::string& dst_ip, int64_t dst_port,
              int64_t amount = 0) {
    Event e = Base(host, ts);
    e.subject = Proc(host, exe);
    e.op = op;
    e.object_type = EntityType::kNetwork;
    e.obj_net.src_ip = src_ip;
    e.obj_net.dst_ip = dst_ip;
    e.obj_net.src_port = 49000 + (next_pid_ % 1000);
    e.obj_net.dst_port = dst_port;
    e.amount = amount;
    return e;
  }

 private:
  const AptScenarioConfig& cfg_;
  std::vector<std::pair<std::string, int64_t>> pids_;
  int64_t next_pid_ = 6000;
};

}  // namespace

std::vector<AptStep> GenerateAptScenario(const AptScenarioConfig& cfg) {
  AttackEventBuilder b(cfg);
  std::vector<AptStep> steps;
  Timestamp t = cfg.start;
  const Duration tick = 2 * kSecond;

  // ---- c1: Initial Compromise -------------------------------------------
  {
    AptStep s;
    s.step = 1;
    s.description =
        "Initial compromise: crafted email with malicious Excel macro";
    Timestamp ts = t;
    s.events.push_back(b.NetOp(cfg.victim_host, ts, "outlook.exe",
                               EventOp::kRecv, cfg.victim_ip,
                               cfg.attacker_ip, 25, 250000));
    ts += tick;
    s.events.push_back(
        b.FileOp(cfg.victim_host, ts, "outlook.exe", EventOp::kWrite,
                 "C:\\Users\\user\\Downloads\\invoice_q2.xls", 250000));
    steps.push_back(std::move(s));
  }
  t += cfg.step_gap;

  // ---- c2: Malware Infection --------------------------------------------
  {
    AptStep s;
    s.step = 2;
    s.description =
        "Malware infection: Excel macro drops and starts backdoor "
        "(CVE-2008-0081 exploit chain)";
    Timestamp ts = t;
    s.events.push_back(
        b.FileOp(cfg.victim_host, ts, "excel.exe", EventOp::kRead,
                 "C:\\Users\\user\\Downloads\\invoice_q2.xls", 250000));
    ts += tick;
    // Excel spawns a scripting host it never starts under benign load —
    // the unseen child the invariant query catches on the workstation, and
    // a rule-query anchor.
    s.events.push_back(b.ProcStart(cfg.victim_host, ts, "excel.exe",
                                   "mshta.exe"));
    ts += tick;
    s.events.push_back(b.NetOp(cfg.victim_host, ts, "mshta.exe",
                               EventOp::kRecv, cfg.victim_ip,
                               cfg.attacker_ip, 443, 800000));
    ts += tick;
    s.events.push_back(
        b.FileOp(cfg.victim_host, ts, "mshta.exe", EventOp::kWrite,
                 "C:\\Windows\\Temp\\sbblv.exe", 800000));
    ts += tick;
    s.events.push_back(
        b.ProcStart(cfg.victim_host, ts, "mshta.exe", "sbblv.exe"));
    ts += tick;
    s.events.push_back(b.NetOp(cfg.victim_host, ts, "sbblv.exe",
                               EventOp::kConnect, cfg.victim_ip,
                               cfg.attacker_ip, 443));
    steps.push_back(std::move(s));
  }
  t += cfg.step_gap;

  // ---- c3: Privilege Escalation -----------------------------------------
  {
    AptStep s;
    s.step = 3;
    s.description =
        "Privilege escalation: port scan locates the database; "
        "gsecdump.exe steals credentials";
    Timestamp ts = t;
    for (int p = 0; p < cfg.scan_ports; ++p) {
      s.events.push_back(b.NetOp(cfg.victim_host, ts, "sbblv.exe",
                                 EventOp::kConnect, cfg.victim_ip,
                                 cfg.db_ip, 1024 + p * 13));
      ts += kSecond / 4;
    }
    s.events.push_back(b.NetOp(cfg.victim_host, ts, "sbblv.exe",
                               EventOp::kConnect, cfg.victim_ip, cfg.db_ip,
                               1433));
    ts += tick;
    s.events.push_back(
        b.ProcStart(cfg.victim_host, ts, "sbblv.exe", "gsecdump.exe"));
    ts += tick;
    s.events.push_back(
        b.FileOp(cfg.victim_host, ts, "gsecdump.exe", EventOp::kRead,
                 "C:\\Windows\\System32\\config\\SAM", 65536));
    steps.push_back(std::move(s));
  }
  t += cfg.step_gap;

  // ---- c4: Penetration into Database Server -----------------------------
  {
    AptStep s;
    s.step = 4;
    s.description =
        "Penetration: VBScript drops a second backdoor on the database "
        "server";
    Timestamp ts = t;
    s.events.push_back(b.NetOp(cfg.victim_host, ts, "sbblv.exe",
                               EventOp::kWrite, cfg.victim_ip, cfg.db_ip,
                               1433, 40000));
    ts += tick;
    s.events.push_back(
        b.ProcStart(cfg.db_host, ts, "sqlservr.exe", "cscript.exe"));
    ts += tick;
    s.events.push_back(
        b.FileOp(cfg.db_host, ts, "cscript.exe", EventOp::kWrite,
                 "C:\\Windows\\Temp\\dropper.vbs", 12000));
    ts += tick;
    s.events.push_back(
        b.FileOp(cfg.db_host, ts, "cscript.exe", EventOp::kWrite,
                 "C:\\Windows\\Temp\\sbblv.exe", 800000));
    ts += tick;
    s.events.push_back(
        b.ProcStart(cfg.db_host, ts, "cscript.exe", "sbblv.exe"));
    steps.push_back(std::move(s));
  }
  t += cfg.step_gap;

  // ---- c5: Data Exfiltration --------------------------------------------
  {
    AptStep s;
    s.step = 5;
    s.description =
        "Data exfiltration: osql.exe dumps the database; sbblv.exe ships "
        "backup1.dmp to the attacker";
    Timestamp ts = t;
    // The Query 1 sequence: cmd -> osql, sqlservr writes the dump, the
    // malware reads it and sends it out.
    s.events.push_back(b.ProcStart(cfg.db_host, ts, "cmd.exe", "osql.exe"));
    ts += tick;
    s.events.push_back(b.NetOp(cfg.db_host, ts, "osql.exe", EventOp::kConnect,
                               cfg.db_ip, cfg.db_ip, 1433));
    ts += tick;
    s.events.push_back(
        b.FileOp(cfg.db_host, ts, "sqlservr.exe", EventOp::kWrite,
                 "C:\\MSSQL\\Backup\\backup1.dmp", cfg.dump_bytes));
    ts += tick;
    s.events.push_back(
        b.FileOp(cfg.db_host, ts, "sbblv.exe", EventOp::kRead,
                 "C:\\MSSQL\\Backup\\backup1.dmp", cfg.dump_bytes));
    ts += tick;
    int64_t chunk =
        cfg.dump_bytes / (cfg.exfil_chunks > 0 ? cfg.exfil_chunks : 1);
    for (int i = 0; i < cfg.exfil_chunks; ++i) {
      // The osql session makes sqlservr.exe stream the dump content over
      // its client connection (what the paper's Query 4 clusters), while
      // the malware ships its copy to the attacker (Query 1's evt4).
      s.events.push_back(b.NetOp(cfg.db_host, ts, "sqlservr.exe",
                                 EventOp::kWrite, cfg.db_ip,
                                 cfg.attacker_ip, 1433, chunk));
      ts += kSecond / 2;
      s.events.push_back(b.NetOp(cfg.db_host, ts, "sbblv.exe",
                                 EventOp::kWrite, cfg.db_ip,
                                 cfg.attacker_ip, 443, chunk));
      ts += kSecond / 2;
    }
    steps.push_back(std::move(s));
  }

  return steps;
}

EventBatch FlattenAptScenario(const std::vector<AptStep>& steps) {
  EventBatch out;
  for (const AptStep& s : steps) {
    out.insert(out.end(), s.events.begin(), s.events.end());
  }
  return out;
}

}  // namespace saql
