#include "core/value.h"

#include <cmath>
#include <sstream>

namespace saql {

namespace {

Status NonNumericError(const char* op, const Value& a, const Value& b) {
  std::string msg = std::string("operator '") + op +
                    "' requires numeric operands, got " +
                    ValueKindName(a.kind()) + " and " + ValueKindName(b.kind());
  return Status::RuntimeError(std::move(msg));
}

}  // namespace

const char* ValueKindName(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull:
      return "null";
    case Value::Kind::kBool:
      return "bool";
    case Value::Kind::kInt:
      return "int";
    case Value::Kind::kFloat:
      return "float";
    case Value::Kind::kString:
      return "string";
    case Value::Kind::kSet:
      return "set";
  }
  return "unknown";
}

Result<double> Value::ToDouble() const {
  switch (kind()) {
    case Kind::kBool:
      return AsBool() ? 1.0 : 0.0;
    case Kind::kInt:
      return static_cast<double>(AsInt());
    case Kind::kFloat:
      return AsFloat();
    default:
      return Status::RuntimeError(std::string("cannot convert ") +
                                  ValueKindName(kind()) + " to number");
  }
}

bool Value::Truthy() const {
  switch (kind()) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return AsBool();
    case Kind::kInt:
      return AsInt() != 0;
    case Kind::kFloat:
      return AsFloat() != 0.0;
    case Kind::kString:
      return !AsString().empty();
    case Kind::kSet:
      return !AsSet().empty();
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return AsBool() ? "true" : "false";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kFloat: {
      std::ostringstream os;
      os << AsFloat();
      return os.str();
    }
    case Kind::kString:
      return AsString();
    case Kind::kSet: {
      std::string out = "{";
      bool first = true;
      for (const std::string& s : AsSet()) {
        if (!first) out += ", ";
        out += s;
        first = false;
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return ToDouble().value() == other.ToDouble().value();
  }
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return AsBool() == other.AsBool();
    case Kind::kString:
      return AsString() == other.AsString();
    case Kind::kSet:
      return AsSet() == other.AsSet();
    default:
      return false;  // numeric handled above
  }
}

Result<int> Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = ToDouble().value();
    double b = other.ToDouble().value();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  return Status::RuntimeError(std::string("cannot compare ") +
                              ValueKindName(kind()) + " with " +
                              ValueKindName(other.kind()));
}

namespace {

/// Applies a numeric binary op, keeping int results when both inputs are int.
template <typename IntOp, typename FloatOp>
Result<Value> NumericBinOp(const char* name, const Value& a, const Value& b,
                           IntOp int_op, FloatOp float_op) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return NonNumericError(name, a, b);
  }
  if (a.is_int() && b.is_int()) {
    return int_op(a.AsInt(), b.AsInt());
  }
  return float_op(a.ToDouble().value(), b.ToDouble().value());
}

}  // namespace

Result<Value> ValueAdd(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    return Value(a.AsString() + b.AsString());
  }
  if (a.is_set() || b.is_set()) return ValueUnion(a, b);
  return NumericBinOp(
      "+", a, b,
      [](int64_t x, int64_t y) -> Result<Value> { return Value(x + y); },
      [](double x, double y) -> Result<Value> { return Value(x + y); });
}

Result<Value> ValueSub(const Value& a, const Value& b) {
  if (a.is_set() || b.is_set()) return ValueDiff(a, b);
  return NumericBinOp(
      "-", a, b,
      [](int64_t x, int64_t y) -> Result<Value> { return Value(x - y); },
      [](double x, double y) -> Result<Value> { return Value(x - y); });
}

Result<Value> ValueMul(const Value& a, const Value& b) {
  return NumericBinOp(
      "*", a, b,
      [](int64_t x, int64_t y) -> Result<Value> { return Value(x * y); },
      [](double x, double y) -> Result<Value> { return Value(x * y); });
}

Result<Value> ValueDiv(const Value& a, const Value& b) {
  return NumericBinOp(
      "/", a, b,
      [](int64_t x, int64_t y) -> Result<Value> {
        if (y == 0) return Status::RuntimeError("division by zero");
        // Integer division in queries follows arithmetic expectations:
        // produce a float so `sum/3` behaves like an average component.
        return Value(static_cast<double>(x) / static_cast<double>(y));
      },
      [](double x, double y) -> Result<Value> {
        if (y == 0.0) return Status::RuntimeError("division by zero");
        return Value(x / y);
      });
}

Result<Value> ValueMod(const Value& a, const Value& b) {
  return NumericBinOp(
      "%", a, b,
      [](int64_t x, int64_t y) -> Result<Value> {
        if (y == 0) return Status::RuntimeError("modulo by zero");
        return Value(x % y);
      },
      [](double x, double y) -> Result<Value> {
        if (y == 0.0) return Status::RuntimeError("modulo by zero");
        return Value(std::fmod(x, y));
      });
}

namespace {

/// Null operands act as the empty set so `a = empty_set; a = a union s`
/// composes naturally.
Result<StringSet> CoerceSet(const Value& v, const char* op) {
  if (v.is_null()) return StringSet{};
  if (v.is_set()) return v.AsSet();
  if (v.is_string()) return StringSet{v.AsString()};
  return Status::RuntimeError(std::string("operator '") + op +
                              "' requires set operands, got " +
                              ValueKindName(v.kind()));
}

}  // namespace

Result<Value> ValueUnion(const Value& a, const Value& b) {
  SAQL_ASSIGN_OR_RETURN(StringSet sa, CoerceSet(a, "union"));
  SAQL_ASSIGN_OR_RETURN(StringSet sb, CoerceSet(b, "union"));
  sa.insert(sb.begin(), sb.end());
  return Value(std::move(sa));
}

Result<Value> ValueDiff(const Value& a, const Value& b) {
  SAQL_ASSIGN_OR_RETURN(StringSet sa, CoerceSet(a, "diff"));
  SAQL_ASSIGN_OR_RETURN(StringSet sb, CoerceSet(b, "diff"));
  StringSet out;
  for (const std::string& s : sa) {
    if (sb.find(s) == sb.end()) out.insert(s);
  }
  return Value(std::move(out));
}

Result<Value> ValueIntersect(const Value& a, const Value& b) {
  SAQL_ASSIGN_OR_RETURN(StringSet sa, CoerceSet(a, "intersect"));
  SAQL_ASSIGN_OR_RETURN(StringSet sb, CoerceSet(b, "intersect"));
  StringSet out;
  for (const std::string& s : sa) {
    if (sb.find(s) != sb.end()) out.insert(s);
  }
  return Value(std::move(out));
}

Result<Value> ValueIn(const Value& a, const Value& b) {
  SAQL_ASSIGN_OR_RETURN(StringSet sb, CoerceSet(b, "in"));
  if (!a.is_string()) {
    return Status::RuntimeError("'in' requires a string left operand");
  }
  return Value(sb.find(a.AsString()) != sb.end());
}

Result<Value> ValueSize(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kSet:
      return Value(static_cast<int64_t>(v.AsSet().size()));
    case Value::Kind::kString:
      return Value(static_cast<int64_t>(v.AsString().size()));
    case Value::Kind::kInt:
      return Value(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
    case Value::Kind::kFloat:
      return Value(std::fabs(v.AsFloat()));
    case Value::Kind::kNull:
      return Value(static_cast<int64_t>(0));
    default:
      return Status::RuntimeError(std::string("|x| not defined for ") +
                                  ValueKindName(v.kind()));
  }
}

}  // namespace saql
