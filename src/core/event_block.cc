#include "core/event_block.h"

#include <algorithm>
#include <cassert>

#include "core/interner.h"

namespace saql {

EventBlock::Columns EventBlock::Columns::Slice(size_t offset) const {
  Columns out = *this;
  out.id += offset;
  out.ts += offset;
  out.subj_pid += offset;
  out.obj_pid += offset;
  out.src_port += offset;
  out.dst_port += offset;
  out.amount += offset;
  out.agent += offset;
  out.subj_exe += offset;
  out.subj_user += offset;
  out.obj_exe += offset;
  out.obj_user += offset;
  out.obj_path += offset;
  out.src_ip += offset;
  out.dst_ip += offset;
  out.protocol += offset;
  out.op += offset;
  out.object_type += offset;
  out.failed += offset;
  return out;
}

void EventBlock::ColumnStore::clear() {
  id.clear();
  ts.clear();
  subj_pid.clear();
  obj_pid.clear();
  src_port.clear();
  dst_port.clear();
  amount.clear();
  agent.clear();
  subj_exe.clear();
  subj_user.clear();
  obj_exe.clear();
  obj_user.clear();
  obj_path.clear();
  src_ip.clear();
  dst_ip.clear();
  protocol.clear();
  op.clear();
  object_type.clear();
  failed.clear();
}

void EventBlock::Clear() {
  mode_ = Mode::kEmpty;
  size_ = 0;
  store_.clear();
  cols_valid_ = false;
  dict_arena_.clear();
  dict_own_.clear();
  dict_codes_.clear();
  dict_ = nullptr;
  dict_size_ = 0;
  dict_syms_own_.clear();
  dict_syms_ = nullptr;
  syms_gen_ = 0;
  borrowed_rows_ = nullptr;
  rows_valid_ = false;
}

void EventBlock::ResetBorrowedRows(Event* rows, size_t count) {
  Clear();
  mode_ = Mode::kBorrowedRows;
  borrowed_rows_ = rows;
  size_ = count;
}

EventBatch& EventBlock::ResetOwnedRows() {
  Clear();
  mode_ = Mode::kOwnedRows;
  owned_rows_.clear();
  return owned_rows_;
}

void EventBlock::EnsureOwnedColumnar() {
  if (mode_ == Mode::kOwnedColumnar) return;
  assert(mode_ == Mode::kEmpty && "AppendColumnar on a non-columnar block");
  mode_ = Mode::kOwnedColumnar;
  dict_own_.clear();
  dict_own_.push_back(std::string_view{});  // code 0 = ""
  dict_ = dict_own_.data();
  dict_size_ = 1;
}

uint32_t EventBlock::DictCode(std::string_view s) {
  if (s.empty()) return kEmptyCode;
  auto it = dict_codes_.find(s);
  if (it != dict_codes_.end()) return it->second;
  dict_arena_.emplace_back(s);
  uint32_t code = static_cast<uint32_t>(dict_own_.size());
  dict_own_.push_back(dict_arena_.back());
  dict_codes_.emplace(dict_own_.back(), code);
  dict_ = dict_own_.data();  // vector growth may relocate
  dict_size_ = dict_own_.size();
  dict_syms_ = nullptr;  // dictionary grew; interned ids are stale
  syms_gen_ = 0;
  return code;
}

void EventBlock::AppendColumnar(const Event& e) {
  EnsureOwnedColumnar();
  store_.id.push_back(e.id);
  store_.ts.push_back(e.ts);
  store_.subj_pid.push_back(e.subject.pid);
  store_.obj_pid.push_back(e.obj_proc.pid);
  store_.src_port.push_back(e.obj_net.src_port);
  store_.dst_port.push_back(e.obj_net.dst_port);
  store_.amount.push_back(e.amount);
  store_.agent.push_back(DictCode(e.agent_id));
  store_.subj_exe.push_back(DictCode(e.subject.exe_name));
  store_.subj_user.push_back(DictCode(e.subject.user));
  store_.obj_exe.push_back(DictCode(e.obj_proc.exe_name));
  store_.obj_user.push_back(DictCode(e.obj_proc.user));
  store_.obj_path.push_back(DictCode(e.obj_file.path));
  store_.src_ip.push_back(DictCode(e.obj_net.src_ip));
  store_.dst_ip.push_back(DictCode(e.obj_net.dst_ip));
  store_.protocol.push_back(DictCode(e.obj_net.protocol));
  store_.op.push_back(static_cast<uint8_t>(e.op));
  store_.object_type.push_back(static_cast<uint8_t>(e.object_type));
  store_.failed.push_back(e.failed ? 1 : 0);
  ++size_;
  cols_valid_ = false;
  rows_valid_ = false;
}

void EventBlock::BindColumns(const Columns& cols, size_t count,
                             const std::string_view* dict, size_t dict_size,
                             const uint32_t* dict_syms,
                             uint64_t syms_generation) {
  Clear();
  mode_ = Mode::kBorrowedColumnar;
  cols_ = cols;
  cols_valid_ = true;
  size_ = count;
  dict_ = dict;
  dict_size_ = dict_size;
  dict_syms_ = dict_syms;
  syms_gen_ = syms_generation;
}

const EventBlock::Columns& EventBlock::columns() const {
  assert(columnar() && "columns() on a row-backed block");
  if (!cols_valid_) {
    // Owned mode: refresh views from the backing vectors (push_back may
    // have relocated them).
    cols_.id = store_.id.data();
    cols_.ts = store_.ts.data();
    cols_.subj_pid = store_.subj_pid.data();
    cols_.obj_pid = store_.obj_pid.data();
    cols_.src_port = store_.src_port.data();
    cols_.dst_port = store_.dst_port.data();
    cols_.amount = store_.amount.data();
    cols_.agent = store_.agent.data();
    cols_.subj_exe = store_.subj_exe.data();
    cols_.subj_user = store_.subj_user.data();
    cols_.obj_exe = store_.obj_exe.data();
    cols_.obj_user = store_.obj_user.data();
    cols_.obj_path = store_.obj_path.data();
    cols_.src_ip = store_.src_ip.data();
    cols_.dst_ip = store_.dst_ip.data();
    cols_.protocol = store_.protocol.data();
    cols_.op = store_.op.data();
    cols_.object_type = store_.object_type.data();
    cols_.failed = store_.failed.data();
    cols_valid_ = true;
  }
  return cols_;
}

const std::string_view* EventBlock::dict() const { return dict_; }

size_t EventBlock::dict_size() const { return dict_size_; }

void EventBlock::InternDictionary() const {
  Interner& interner = Interner::Global();
  uint64_t gen = interner.generation();
  if (dict_syms_ != nullptr && syms_gen_ == gen) return;
  assert(mode_ == Mode::kOwnedColumnar &&
         "borrowed dictionaries are interned by their owner at bind time");
  dict_syms_own_.resize(dict_size_);
  for (size_t i = 0; i < dict_size_; ++i) {
    dict_syms_own_[i] = interner.Intern(dict_[i]);
  }
  dict_syms_ = dict_syms_own_.data();
  syms_gen_ = gen;
  rows_valid_ = false;  // cached rows carry the old generation's ids
}

const uint32_t* EventBlock::dict_syms() const {
  if (mode_ == Mode::kOwnedColumnar) InternDictionary();
  return dict_syms_;
}

void EventBlock::Materialize() {
  if (mode_ == Mode::kOwnedColumnar) InternDictionary();
  const Columns& c = columns();
  const uint32_t* syms = dict_syms_;
  uint32_t gen = static_cast<uint32_t>(syms_gen_);
  // resize + assign (not clear + push_back): surviving rows keep their
  // string capacity, so steady-state replay into a reused block stops
  // allocating once the row strings have grown to the corpus's sizes.
  owned_rows_.resize(size_);
  for (size_t i = 0; i < size_; ++i) {
    Event& e = owned_rows_[i];
    e.id = c.id[i];
    e.ts = c.ts[i];
    e.agent_id.assign(dict_[c.agent[i]]);
    e.subject.pid = c.subj_pid[i];
    e.subject.exe_name.assign(dict_[c.subj_exe[i]]);
    e.subject.user.assign(dict_[c.subj_user[i]]);
    e.op = static_cast<EventOp>(c.op[i]);
    e.object_type = static_cast<EntityType>(c.object_type[i]);
    e.obj_proc.pid = c.obj_pid[i];
    e.obj_proc.exe_name.assign(dict_[c.obj_exe[i]]);
    e.obj_proc.user.assign(dict_[c.obj_user[i]]);
    e.obj_file.path.assign(dict_[c.obj_path[i]]);
    e.obj_net.src_ip.assign(dict_[c.src_ip[i]]);
    e.obj_net.dst_ip.assign(dict_[c.dst_ip[i]]);
    e.obj_net.src_port = c.src_port[i];
    e.obj_net.dst_port = c.dst_port[i];
    e.obj_net.protocol.assign(dict_[c.protocol[i]]);
    e.amount = c.amount[i];
    e.failed = c.failed[i] != 0;
    // Pre-stamped interned symbols straight from the dictionary — the
    // executor's InternEventSpan sees a current generation and skips.
    e.syms = EventSymbols{};
    e.syms.agent = syms[c.agent[i]];
    e.syms.subj_exe = syms[c.subj_exe[i]];
    e.syms.subj_user = syms[c.subj_user[i]];
    switch (e.object_type) {
      case EntityType::kProcess:
        e.syms.obj_exe = syms[c.obj_exe[i]];
        e.syms.obj_user = syms[c.obj_user[i]];
        break;
      case EntityType::kFile:
        e.syms.obj_path = syms[c.obj_path[i]];
        break;
      case EntityType::kNetwork:
        break;
    }
    e.syms.gen = gen;
  }
  rows_valid_ = true;
}

Event* EventBlock::MutableRows() {
  if (empty()) return nullptr;
  switch (mode_) {
    case Mode::kEmpty:
      return nullptr;
    case Mode::kBorrowedRows:
      return borrowed_rows_;
    case Mode::kOwnedRows:
      return owned_rows_.data();
    case Mode::kOwnedColumnar:
    case Mode::kBorrowedColumnar:
      if (!rows_valid_) Materialize();
      return owned_rows_.data();
  }
  return nullptr;
}

bool EventBlock::TsBounds(Timestamp* min_ts, Timestamp* max_ts) const {
  size_t n = size();
  if (n == 0) return false;
  if (columnar()) {
    const int64_t* ts = columns().ts;
    auto [lo, hi] = std::minmax_element(ts, ts + n);
    *min_ts = *lo;
    *max_ts = *hi;
    return true;
  }
  const Event* rows =
      mode_ == Mode::kBorrowedRows ? borrowed_rows_ : owned_rows_.data();
  Timestamp lo = rows[0].ts, hi = rows[0].ts;
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, rows[i].ts);
    hi = std::max(hi, rows[i].ts);
  }
  *min_ts = lo;
  *max_ts = hi;
  return true;
}

}  // namespace saql
