#ifndef SAQL_CORE_FIELD_ACCESS_H_
#define SAQL_CORE_FIELD_ACCESS_H_

#include <string>

#include "core/event.h"
#include "core/result.h"
#include "core/value.h"

namespace saql {

/// Which side of the SVO triple a variable is bound to. Entity variables in
/// SAQL queries (`p1`, `f1`, `i1`) bind to the subject or object of the
/// events they match; event aliases (`evt1`) bind to the whole event.
enum class EntityRole : uint8_t {
  kSubject = 0,
  kObject = 1,
};

/// Reads attribute `field` of the entity playing `role` in `event`.
///
/// Supported fields by entity type:
///  - proc: `exe_name` (alias `name`, `image`), `pid`, `user`
///  - file: `name` (alias `path`)
///  - ip:   `srcip`, `dstip` (alias `dst_ip`/`src_ip`), `sport`, `dport`,
///          `protocol`
///
/// Returns NotFound for an attribute the entity type does not have.
Result<Value> GetEntityField(const Event& event, EntityRole role,
                             const std::string& field);

/// Reads a whole-event attribute referenced through an event alias:
/// `amount`, `ts`, `agentid`, `op` (as string), `failed`, plus passthrough
/// of subject fields prefixed `subject_` and object fields `object_`.
Result<Value> GetEventField(const Event& event, const std::string& field);

/// The field an entity variable denotes when used bare, mirroring the
/// paper's context-aware shortcut (`return p1` means `p1.exe_name`,
/// `f1` → `f1.name`, `i1` → `i1.dstip`).
const char* DefaultFieldForEntity(EntityType type);

/// True when `field` is a valid attribute name for `type`.
bool IsValidEntityField(EntityType type, const std::string& field);

/// True when `field` is a valid whole-event attribute name.
bool IsValidEventField(const std::string& field);

}  // namespace saql

#endif  // SAQL_CORE_FIELD_ACCESS_H_
