#ifndef SAQL_CORE_FIELD_ACCESS_H_
#define SAQL_CORE_FIELD_ACCESS_H_

#include <cstdint>
#include <string>

#include "core/event.h"
#include "core/result.h"
#include "core/value.h"

namespace saql {

/// Which side of the SVO triple a variable is bound to. Entity variables in
/// SAQL queries (`p1`, `f1`, `i1`) bind to the subject or object of the
/// events they match; event aliases (`evt1`) bind to the whole event.
enum class EntityRole : uint8_t {
  kSubject = 0,
  kObject = 1,
};

/// Compiled identity of an event attribute. Field *names* are resolved to a
/// `FieldId` exactly once — during query analysis or constraint compilation
/// — so the per-event hot path reads attributes through a switch on a small
/// integer instead of string comparison chains.
///
/// Entity attributes (used with an `EntityRole`) come first; `kName` is the
/// polymorphic spelling that reads `exe_name` for processes and `path` for
/// files. Whole-event attributes and the `subject_*` / `object_*`
/// passthroughs follow.
enum class FieldId : uint8_t {
  kInvalid = 0,

  // Entity attributes.
  kExeName,   // process
  kPid,       // process
  kUser,      // process
  kPath,      // file
  kSrcIp,     // network
  kDstIp,     // network
  kSrcPort,   // network
  kDstPort,   // network
  kProtocol,  // network
  kName,      // polymorphic: process exe_name / file path

  // Whole-event attributes.
  kAmount,
  kTs,
  kAgentId,
  kOp,
  kFailed,
  kId,

  // Whole-event passthrough of subject attributes (subject is always a
  // process).
  kSubjectExeName,
  kSubjectPid,
  kSubjectUser,

  // Whole-event passthrough of object attributes; resolved against the
  // event's object type at read time.
  kObjectExeName,
  kObjectPid,
  kObjectUser,
  kObjectPath,
  kObjectName,
  kObjectSrcIp,
  kObjectDstIp,
  kObjectSrcPort,
  kObjectDstPort,
  kObjectProtocol,
};

/// Resolves an entity attribute spelling (including aliases such as
/// `image`, `dst_ip`, `port`) against `type`. Returns kInvalid for an
/// attribute the entity type does not have. Compile-time only.
FieldId ResolveEntityFieldId(EntityType type, const std::string& field);

/// Resolves a whole-event attribute spelling, including the `subject_*` and
/// `object_*` passthrough forms. Returns kInvalid when unknown.
FieldId ResolveEventFieldId(const std::string& field);

// ---------------------------------------------------------------------------
// Compiled fast path — zero string-keyed lookups.
// ---------------------------------------------------------------------------

/// Reads the entity attribute `id` of the entity playing `role`. Returns
/// NotFound when the event's entity type does not carry `id` (e.g. a file
/// object asked for kDstIp).
Result<Value> GetEntityField(const Event& event, EntityRole role, FieldId id);

/// Reads the whole-event attribute `id`.
Result<Value> GetEventField(const Event& event, FieldId id);

/// Zero-copy read of a string-typed entity attribute; nullptr when `id` is
/// not a string attribute of the entity playing `role` in this event.
const std::string* GetEntityStringFieldPtr(const Event& event,
                                           EntityRole role, FieldId id);

/// Zero-copy read of a string-typed whole-event attribute; nullptr when
/// `id` is not string-typed for this event. (`op` is excluded: its string
/// form is derived, not stored.)
const std::string* GetEventStringFieldPtr(const Event& event, FieldId id);

/// Interned symbol of a string-typed entity attribute, or Interner::kUnset
/// (0) when the attribute is not interned for this event.
uint32_t GetEntitySymbol(const Event& event, EntityRole role, FieldId id);

/// Interned symbol of a string-typed whole-event attribute, or 0.
uint32_t GetEventSymbol(const Event& event, FieldId id);

// ---------------------------------------------------------------------------
// String-keyed path — compile time, diagnostics, and back-compat only.
// ---------------------------------------------------------------------------

/// Reads attribute `field` of the entity playing `role` in `event`.
///
/// Supported fields by entity type:
///  - proc: `exe_name` (alias `name`, `image`), `pid`, `user`
///  - file: `name` (alias `path`)
///  - ip:   `srcip`, `dstip` (alias `dst_ip`/`src_ip`), `sport`, `dport`,
///          `protocol`
///
/// Returns NotFound for an attribute the entity type does not have.
Result<Value> GetEntityField(const Event& event, EntityRole role,
                             const std::string& field);

/// Reads a whole-event attribute referenced through an event alias:
/// `amount`, `ts`, `agentid`, `op` (as string), `failed`, plus passthrough
/// of subject fields prefixed `subject_` and object fields `object_`.
Result<Value> GetEventField(const Event& event, const std::string& field);

/// Number of string-keyed GetEntityField/GetEventField calls since process
/// start (or the last reset). Analyzed queries must evaluate through the
/// FieldId fast path only; tests assert this counter stays flat across an
/// engine run.
uint64_t StringKeyedFieldLookups();
void ResetStringKeyedFieldLookups();

/// The field an entity variable denotes when used bare, mirroring the
/// paper's context-aware shortcut (`return p1` means `p1.exe_name`,
/// `f1` → `f1.name`, `i1` → `i1.dstip`).
const char* DefaultFieldForEntity(EntityType type);

/// True when `field` is a valid attribute name for `type`.
bool IsValidEntityField(EntityType type, const std::string& field);

/// True when `field` is a valid whole-event attribute name.
bool IsValidEventField(const std::string& field);

}  // namespace saql

#endif  // SAQL_CORE_FIELD_ACCESS_H_
