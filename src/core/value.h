#ifndef SAQL_CORE_VALUE_H_
#define SAQL_CORE_VALUE_H_

#include <cstdint>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace saql {

/// Ordered set of strings used by invariant models (`set(...)` aggregate,
/// `union` / `diff` / `intersect` operators). Ordered so that rendering and
/// comparisons are deterministic across runs.
using StringSet = std::set<std::string>;

/// Dynamically typed value flowing through the SAQL evaluator: literals in
/// queries, event attribute values, aggregate results, and alert-expression
/// intermediates.
///
/// Supported kinds: null (monostate), bool, int64, double, string, and
/// string set. Arithmetic promotes int64 to double when mixed.
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kFloat, kString, kSet };

  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}
  explicit Value(StringSet s) : data_(std::move(s)) {}

  static Value Null() { return Value(); }

  Kind kind() const { return static_cast<Kind>(data_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_float() const { return kind() == Kind::kFloat; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_set() const { return kind() == Kind::kSet; }
  bool is_numeric() const { return is_int() || is_float(); }

  /// Raw accessors. Precondition: the value holds the requested kind.
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsFloat() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const StringSet& AsSet() const { return std::get<StringSet>(data_); }
  StringSet& MutableSet() { return std::get<StringSet>(data_); }

  /// Numeric coercion: int and float read as double; bool reads as 0/1.
  /// Returns an error for strings, sets, and null.
  Result<double> ToDouble() const;

  /// Truthiness for alert conditions: bool as-is; numbers true when nonzero;
  /// strings true when non-empty; sets true when non-empty; null false.
  bool Truthy() const;

  /// Renders for display / CSV output. Sets render as `{a, b, c}`.
  std::string ToString() const;

  /// Deep equality with numeric coercion (1 == 1.0 is true).
  bool Equals(const Value& other) const;

  /// Three-way comparison for ordered kinds. Returns error when the kinds
  /// are not comparable (e.g., string vs int, any set).
  Result<int> Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, StringSet>
      data_;
};

/// Name of a value kind for diagnostics ("int", "set", ...).
const char* ValueKindName(Value::Kind kind);

/// Arithmetic on values with int->float promotion. Division by zero and
/// non-numeric operands produce RuntimeError.
Result<Value> ValueAdd(const Value& a, const Value& b);
Result<Value> ValueSub(const Value& a, const Value& b);
Result<Value> ValueMul(const Value& a, const Value& b);
Result<Value> ValueDiv(const Value& a, const Value& b);
Result<Value> ValueMod(const Value& a, const Value& b);

/// Set algebra used by invariant models. Both operands must be sets, except
/// that null is treated as the empty set (the `empty_set` literal).
Result<Value> ValueUnion(const Value& a, const Value& b);
Result<Value> ValueDiff(const Value& a, const Value& b);
Result<Value> ValueIntersect(const Value& a, const Value& b);

/// Membership: `a in b` where `b` is a set and `a` a string.
Result<Value> ValueIn(const Value& a, const Value& b);

/// `|x|`: set cardinality, string length, or numeric absolute value.
Result<Value> ValueSize(const Value& v);

}  // namespace saql

#endif  // SAQL_CORE_VALUE_H_
