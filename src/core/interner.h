#ifndef SAQL_CORE_INTERNER_H_
#define SAQL_CORE_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/event.h"

namespace saql {

/// Symbol table mapping hot strings (executable names, users, agent ids,
/// file paths) to dense 32-bit ids so equality predicates on the per-event
/// hot path compare integers instead of strings.
///
/// Strings are normalized to ASCII lowercase before interning, matching
/// SAQL's case-insensitive entity-name semantics (`LikeMatcher`,
/// `ValuesEqual`): two strings receive the same id iff an exact (wildcard
/// free) SAQL equality would consider them equal.
///
/// Id 0 (`kUnset`) is reserved and never assigned; an `Event` whose symbol
/// slots are 0 simply has not passed through `InternEventStrings`, and
/// consumers fall back to string comparison.
///
/// The table is guarded by a shared mutex: lookups of already-interned
/// strings (the steady state — entity names repeat heavily in monitoring
/// data) take the shared lock only, so future sharded executors can intern
/// concurrently.
class Interner {
 public:
  static constexpr uint32_t kUnset = 0;

  /// Process-wide table shared by compiled queries and stream executors.
  static Interner& Global();

  Interner();

  /// Returns the id for `s`, assigning the next free id on first sight.
  /// The hit path (string already interned) allocates nothing: lookup is
  /// case-insensitive, so no normalized copy is materialized.
  uint32_t Intern(std::string_view s);

  /// Returns the id for `s`, or `kUnset` when it was never interned.
  uint32_t Find(std::string_view s) const;

  /// The normalized spelling behind `id`. Precondition: id < size().
  const std::string& NameOf(uint32_t id) const;

  /// Number of ids assigned, including the reserved id 0.
  size_t size() const;

  /// Size accounting, for bounding growth on high-cardinality fields
  /// (file paths, user names): `bytes` is the sum of the normalized
  /// spelling lengths currently held — the table's payload footprint,
  /// excluding hash/deque overhead. Poll it from an operational loop and
  /// call `Rotate` when it crosses the deployment's budget.
  struct Stats {
    size_t entries = 0;      ///< ids assigned (reserved id 0 excluded)
    size_t bytes = 0;        ///< total normalized spelling bytes
    uint64_t generation = 1; ///< bumped by every Rotate
  };
  Stats stats() const;

  /// Current rotation generation, lock-free (read once per event on the
  /// interning hot path).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Rotation hook for long-running deployments: drops every interned
  /// spelling, resets accounting, and bumps the generation. Previously
  /// issued ids become meaningless, so rotation is only safe at a run
  /// boundary — after the executor finished a stream and before the next
  /// set of queries is compiled. Event buffers may survive a rotation:
  /// `Event::syms` carries the generation it was interned under, and
  /// `InternEventSpan` re-interns events stamped with an older generation
  /// instead of trusting their stale ids. Compiled queries do NOT survive
  /// (their constraints captured symbol ids at compile time); recompile
  /// them after rotating.
  void Rotate();

 private:
  /// Case-insensitive transparent hashing so lookups run directly on the
  /// caller's string_view.
  struct CiHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const;
  };
  struct CiEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const;
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, uint32_t, CiHash, CiEq> ids_;
  /// Deque: NameOf hands out references that must survive later growth.
  std::deque<std::string> names_;
  /// Sum of normalized spelling bytes in `names_` (reserved id 0 is "").
  size_t bytes_ = 0;
  std::atomic<uint64_t> generation_{1};
};

/// Fills `event->syms` from the global interner: agent id, subject
/// exe_name/user, and the object's exe_name/user (process) or path (file).
/// Network endpoint strings are deliberately not interned — their
/// cardinality is unbounded and equality on them is rare.
void InternEventStrings(Event* event);

/// Interns a contiguous span in place, skipping events interned earlier
/// (their agent slot is already set — every event is interned agent-first,
/// so 0 means "never seen"). Zero-copy sources that replay one buffer thus
/// pay the interning cost once, not once per run.
void InternEventSpan(Event* events, size_t count);

}  // namespace saql

#endif  // SAQL_CORE_INTERNER_H_
