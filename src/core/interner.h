#ifndef SAQL_CORE_INTERNER_H_
#define SAQL_CORE_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"

namespace saql {

/// Symbol table mapping hot strings (executable names, users, agent ids,
/// file paths) to dense 32-bit ids so equality predicates on the per-event
/// hot path compare integers instead of strings.
///
/// Strings are normalized to ASCII lowercase before interning, matching
/// SAQL's case-insensitive entity-name semantics (`LikeMatcher`,
/// `ValuesEqual`): two strings receive the same id iff an exact (wildcard
/// free) SAQL equality would consider them equal.
///
/// Id 0 (`kUnset`) is reserved and never assigned; an `Event` whose symbol
/// slots are 0 simply has not passed through `InternEventStrings`, and
/// consumers fall back to string comparison.
///
/// Concurrency: the table is shared by every concurrently open engine
/// session, so the hit path (string already interned — the steady state,
/// entity names repeat heavily in monitoring data) is **lock-free**: an
/// open-addressed table of atomically published `Entry*` slots hung off an
/// atomic table pointer. Misses and every structural mutation (insert,
/// growth, rotation) serialize on one writer mutex. `payload_bytes()` and
/// `generation()` are single atomic loads, cheap enough to poll per push.
///
/// Rotation under load: `Rotate` swaps in a fresh empty table and *retires*
/// the old table and its entries tagged with the generation they served —
/// it never frees memory a concurrent reader could still be probing.
/// Previously issued ids become meaningless for *new* comparisons, but
/// event buffers and compiled constraints survive: both carry the
/// generation their ids were issued under, and consumers fall back to
/// string comparison (or re-intern) on a generation mismatch. The engine
/// calls `ReclaimBefore` once every open session has provably moved past a
/// retired generation (its next quiesce point), which is when the retired
/// spellings are actually freed.
class Interner {
 public:
  static constexpr uint32_t kUnset = 0;

  /// Process-wide table shared by compiled queries and stream executors.
  static Interner& Global();

  Interner();
  ~Interner();

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `s`, assigning the next free id on first sight.
  /// The hit path (string already interned) is lock-free and allocates
  /// nothing: lookup is case-insensitive, so no normalized copy is
  /// materialized. Safe to call from any number of threads.
  uint32_t Intern(std::string_view s);

  /// Like `Intern`, but additionally reports the generation the returned
  /// id is valid under — retrying internally when a rotation races the
  /// lookup, so the (id, generation) pair is always consistent. Use this
  /// when the id is captured for later comparison (compiled constraints,
  /// event symbol stamping).
  uint32_t InternStamped(std::string_view s, uint64_t* generation_out);

  /// Returns the id for `s`, or `kUnset` when it was never interned (in
  /// the current generation). Lock-free.
  uint32_t Find(std::string_view s) const;

  /// The normalized spelling behind a *current-generation* `id`.
  /// Precondition: id < size(). The reference stays valid until the id's
  /// generation is retired by `Rotate` *and* reclaimed by
  /// `ReclaimBefore`.
  const std::string& NameOf(uint32_t id) const;

  /// Number of ids assigned in the current generation, including the
  /// reserved id 0.
  size_t size() const;

  /// Size accounting, for bounding growth on high-cardinality fields
  /// (file paths, user names): `bytes` is the sum of the normalized
  /// spelling lengths currently held — the table's payload footprint,
  /// excluding hash/table overhead. Poll it from an operational loop and
  /// call `Rotate` when it crosses the deployment's budget.
  struct Stats {
    size_t entries = 0;       ///< ids assigned (reserved id 0 excluded)
    size_t bytes = 0;         ///< total normalized spelling bytes
    uint64_t generation = 1;  ///< bumped by every Rotate
    /// Spelling bytes retired by rotations but not yet reclaimed (still
    /// potentially visible to in-flight readers).
    size_t retired_bytes = 0;
  };
  Stats stats() const;

  /// Current rotation generation, lock-free (read once per event on the
  /// interning hot path and once per push on the session rotation check).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Current generation's payload bytes, lock-free. The per-push rotation
  /// policy check.
  size_t payload_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Rotation hook for long-running deployments: retires every interned
  /// spelling (tagged with the generation it served), resets accounting,
  /// and bumps the generation. Safe to call with readers in flight — they
  /// keep probing the retired table and receive ids consistent with the
  /// generation they observed. Ids restart densely at 1.
  ///
  /// Consumers self-heal: `Event::syms` carries the generation it was
  /// interned under and `InternEventSpan` re-interns stale events;
  /// compiled constraints carry their capture generation and fall back to
  /// string comparison until the owning session re-interns them at its
  /// next quiesce point (see `CompiledQuery::ReInternSymbols`).
  void Rotate();

  /// Frees every retired table/spelling whose generation is strictly
  /// below `generation`. The caller must guarantee no reader can still
  /// hold references into those generations — the engine calls this once
  /// every open session has advanced its observed generation past them
  /// (a session's `Push` is its quiesce point). Returns the payload bytes
  /// freed.
  size_t ReclaimBefore(uint64_t generation);

 private:
  /// One interned spelling. Heap-stable: the table only stores pointers,
  /// so growth never moves an entry and `NameOf` references survive it.
  struct Entry {
    std::string name;  ///< normalized (lowercased) spelling
    uint32_t id = 0;
    size_t hash = 0;  ///< case-insensitive hash of `name`
  };

  /// Open-addressed (linear probe) table of atomically published entries.
  struct Table {
    explicit Table(size_t capacity_pow2);
    const size_t capacity;  ///< power of two
    const size_t mask;
    std::unique_ptr<std::atomic<Entry*>[]> slots;
  };

  /// A rotation's (or growth's) retired structures, freed by
  /// `ReclaimBefore` once no reader can reach them.
  struct Retired {
    uint64_t generation = 0;  ///< generation the structures served
    std::unique_ptr<Table> table;
    std::vector<Entry*> entries;  ///< owned; empty for growth retirements
    size_t bytes = 0;
  };

  /// Lock-free probe of `t` for `s`; nullptr on miss.
  const Entry* Probe(const Table* t, std::string_view s, size_t hash) const;
  /// Inserts `e` into `t` (writer mutex held; slot published with
  /// release so lock-free readers see a fully built entry).
  static void InsertLocked(Table* t, Entry* e);
  /// Doubles the table, republishing existing entries (writer mutex
  /// held). The outgrown slot array is retired, not freed.
  void GrowLocked();

  std::atomic<Table*> table_;
  std::atomic<uint64_t> generation_{1};
  std::atomic<size_t> bytes_{0};    ///< current generation's payload
  std::atomic<size_t> entries_{0};  ///< assigned ids (id 0 excluded)

  /// Writer mutex: misses, growth, rotation, reclaim, and the id-indexed
  /// directory (`NameOf`/`size` are cold paths).
  mutable std::mutex mu_;
  std::vector<Entry*> by_id_;  ///< current generation, index == id
  std::vector<Retired> retired_;
  size_t retired_bytes_ = 0;
  Entry sentinel_;  ///< id 0: the empty spelling, never retired
};

/// Fills `event->syms` from the global interner: agent id, subject
/// exe_name/user, and the object's exe_name/user (process) or path (file).
/// Network endpoint strings are deliberately not interned — their
/// cardinality is unbounded and equality on them is rare. The stamped
/// (ids, generation) pair is always internally consistent, even when a
/// rotation races the call.
void InternEventStrings(Event* event);

/// Interns a contiguous span in place, skipping events interned earlier
/// under the current generation (their agent slot is already set — every
/// event is interned agent-first, so 0 means "never seen"). Zero-copy
/// sources that replay one buffer thus pay the interning cost once, not
/// once per run.
void InternEventSpan(Event* events, size_t count);

}  // namespace saql

#endif  // SAQL_CORE_INTERNER_H_
