#include "core/event.h"

#include <sstream>

#include "core/string_util.h"

namespace saql {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return "proc";
    case EntityType::kFile:
      return "file";
    case EntityType::kNetwork:
      return "ip";
  }
  return "?";
}

Result<EntityType> ParseEntityType(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "proc" || n == "process") return EntityType::kProcess;
  if (n == "file") return EntityType::kFile;
  if (n == "ip" || n == "net" || n == "network" || n == "conn") {
    return EntityType::kNetwork;
  }
  return Status::ParseError("unknown entity type '" + name + "'");
}

const char* EventOpName(EventOp op) {
  switch (op) {
    case EventOp::kRead:
      return "read";
    case EventOp::kWrite:
      return "write";
    case EventOp::kStart:
      return "start";
    case EventOp::kExecute:
      return "execute";
    case EventOp::kDelete:
      return "delete";
    case EventOp::kRename:
      return "rename";
    case EventOp::kConnect:
      return "connect";
    case EventOp::kAccept:
      return "accept";
    case EventOp::kSend:
      return "send";
    case EventOp::kRecv:
      return "recv";
    case EventOp::kKill:
      return "kill";
    case EventOp::kChmod:
      return "chmod";
  }
  return "?";
}

Result<EventOp> ParseEventOp(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "read") return EventOp::kRead;
  if (n == "write") return EventOp::kWrite;
  if (n == "start") return EventOp::kStart;
  if (n == "execute" || n == "exec") return EventOp::kExecute;
  if (n == "delete" || n == "unlink") return EventOp::kDelete;
  if (n == "rename") return EventOp::kRename;
  if (n == "connect") return EventOp::kConnect;
  if (n == "accept") return EventOp::kAccept;
  if (n == "send") return EventOp::kSend;
  if (n == "recv" || n == "receive") return EventOp::kRecv;
  if (n == "kill") return EventOp::kKill;
  if (n == "chmod") return EventOp::kChmod;
  return Status::ParseError("unknown operation '" + name + "'");
}

std::string OpMaskToString(OpMask mask) {
  std::string out;
  for (int i = 0; i < kNumEventOps; ++i) {
    if (OpMaskContains(mask, static_cast<EventOp>(i))) {
      if (!out.empty()) out += " || ";
      out += EventOpName(static_cast<EventOp>(i));
    }
  }
  return out;
}

std::string Event::ToString() const {
  std::ostringstream os;
  os << "[" << FormatTimestamp(ts) << " " << agent_id << "] "
     << subject.exe_name << "(" << subject.pid << ") " << EventOpName(op)
     << " ";
  switch (object_type) {
    case EntityType::kProcess:
      os << "proc " << obj_proc.exe_name << "(" << obj_proc.pid << ")";
      break;
    case EntityType::kFile:
      os << "file " << obj_file.path;
      break;
    case EntityType::kNetwork:
      os << "ip " << obj_net.src_ip << ":" << obj_net.src_port << "->"
         << obj_net.dst_ip << ":" << obj_net.dst_port;
      break;
  }
  if (amount > 0) os << " amount=" << amount;
  if (failed) os << " FAILED";
  return os.str();
}

}  // namespace saql
