#ifndef SAQL_CORE_EVENT_H_
#define SAQL_CORE_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/time_util.h"

namespace saql {

/// System entity categories from the paper's data model (§II-A): processes,
/// files, and network connections.
enum class EntityType : uint8_t {
  kProcess = 0,
  kFile = 1,
  kNetwork = 2,
};

/// Returns "proc" / "file" / "ip" — the spelling used in SAQL queries.
const char* EntityTypeName(EntityType type);

/// Parses the SAQL spelling ("proc", "file", "ip") of an entity type.
Result<EntityType> ParseEntityType(const std::string& name);

/// Kernel-level operations recorded between a subject process and an object
/// entity. The set covers the operations used by the paper's queries plus
/// the natural completions for each object category.
enum class EventOp : uint8_t {
  kRead = 0,     // file read, network receive-side read
  kWrite = 1,    // file write, network send-side write
  kStart = 2,    // process creation
  kExecute = 3,  // image execution (execve)
  kDelete = 4,   // file unlink
  kRename = 5,   // file rename
  kConnect = 6,  // outbound connection establishment
  kAccept = 7,   // inbound connection accepted
  kSend = 8,     // explicit network send
  kRecv = 9,     // explicit network receive
  kKill = 10,    // process termination by subject
  kChmod = 11,   // permission change
};

inline constexpr int kNumEventOps = 12;

/// Returns the SAQL spelling of an operation ("read", "start", ...).
const char* EventOpName(EventOp op);

/// Parses the SAQL spelling of an operation.
Result<EventOp> ParseEventOp(const std::string& name);

/// Bitmask over `EventOp` used by event patterns with alternation
/// (`read || write`).
using OpMask = uint32_t;

inline constexpr OpMask OpBit(EventOp op) {
  return OpMask{1} << static_cast<int>(op);
}
inline constexpr bool OpMaskContains(OpMask mask, EventOp op) {
  return (mask & OpBit(op)) != 0;
}

/// Renders an op mask as "read || write".
std::string OpMaskToString(OpMask mask);

/// A process entity. As subject it is the acting process; as object it is
/// the process being started/killed.
struct ProcessEntity {
  int64_t pid = 0;
  std::string exe_name;  ///< executable image name, e.g. "cmd.exe"
  std::string user;      ///< owning account, e.g. "SYSTEM", "alice"

  bool operator==(const ProcessEntity&) const = default;
};

/// A file entity identified by path; `name` in queries refers to the path.
struct FileEntity {
  std::string path;

  bool operator==(const FileEntity&) const = default;
};

/// A network connection entity (5-tuple minus subject-side identity).
struct NetworkEntity {
  std::string src_ip;
  std::string dst_ip;
  int64_t src_port = 0;
  int64_t dst_port = 0;
  std::string protocol = "tcp";

  bool operator==(const NetworkEntity&) const = default;
};

/// Interned symbol ids for an event's hot string attributes. All slots are
/// 0 ("not interned") until the event passes through `InternEventStrings`
/// (core/interner.h); the stream executor does this once per batch so that
/// equality predicates across all subscribed queries compare 32-bit ids.
struct EventSymbols {
  uint32_t agent = 0;      ///< agent_id
  uint32_t subj_exe = 0;   ///< subject.exe_name
  uint32_t subj_user = 0;  ///< subject.user
  uint32_t obj_exe = 0;    ///< obj_proc.exe_name (process objects)
  uint32_t obj_user = 0;   ///< obj_proc.user (process objects)
  uint32_t obj_path = 0;   ///< obj_file.path (file objects)
  /// Interner generation these ids were issued under; 0 = never interned.
  /// `InternEventSpan` re-interns events whose generation is stale, so
  /// replayed buffers survive an `Interner::Rotate`.
  uint32_t gen = 0;
};

/// One system monitoring event: the SVO triple 〈subject, operation, object〉
/// stamped with host and time, as collected by the (simulated) kernel
/// agents. Events are immutable once emitted into the stream.
struct Event {
  /// Monotonically increasing id assigned by the producing source.
  uint64_t id = 0;
  /// Event time (kernel timestamp), nanoseconds since epoch.
  Timestamp ts = 0;
  /// Host / data-collection agent identifier ("db-server-01").
  std::string agent_id;
  /// Acting process.
  ProcessEntity subject;
  /// Operation performed by the subject on the object.
  EventOp op = EventOp::kRead;
  /// Which of the object fields below is populated.
  EntityType object_type = EntityType::kFile;
  ProcessEntity obj_proc;
  FileEntity obj_file;
  NetworkEntity obj_net;
  /// Data volume of the operation in bytes (read/write/send/recv), else 0.
  int64_t amount = 0;
  /// True when the kernel reported the operation as failed.
  bool failed = false;
  /// Interned ids of the hot string attributes; 0 until interned.
  EventSymbols syms;

  /// Human-readable one-line rendering for logs and the CLI.
  std::string ToString() const;
};

/// Classification used by the paper: file / process / network events,
/// derived from the object type.
inline bool IsFileEvent(const Event& e) {
  return e.object_type == EntityType::kFile;
}
inline bool IsProcessEvent(const Event& e) {
  return e.object_type == EntityType::kProcess;
}
inline bool IsNetworkEvent(const Event& e) {
  return e.object_type == EntityType::kNetwork;
}

/// A batch of events; sources produce batches to amortize dispatch.
using EventBatch = std::vector<Event>;

}  // namespace saql

#endif  // SAQL_CORE_EVENT_H_
