#ifndef SAQL_CORE_STATUS_H_
#define SAQL_CORE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace saql {

/// Error categories used across the SAQL library. The library does not throw
/// exceptions on its fallible paths; every operation that can fail returns a
/// `Status` (or a `Result<T>`, see result.h).
enum class StatusCode {
  kOk = 0,
  /// The caller supplied an argument that violates the API contract.
  kInvalidArgument,
  /// The operation is valid in principle but not in the object's current
  /// lifecycle state (engine already ran, session closed, ...).
  kFailedPrecondition,
  /// A query failed to lex/parse; message carries line:col context.
  kParseError,
  /// A query parsed but is semantically invalid (unknown field, type error,
  /// undeclared alias, ...).
  kSemanticError,
  /// A runtime evaluation error (division by zero, incompatible operands).
  kRuntimeError,
  /// A named object (query, alias, field, file) does not exist.
  kNotFound,
  /// A named object already exists.
  kAlreadyExists,
  /// An I/O operation failed (event log read/write, replayer).
  kIoError,
  /// Internal invariant violated; indicates a bug in the library.
  kInternal,
};

/// Returns a human-readable name for `code` ("ParseError", "Ok", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-type status carrying a code and message, modeled after the
/// RocksDB/Abseil convention. Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usable in any function that
/// returns `Status`.
#define SAQL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::saql::Status _saql_status = (expr);     \
    if (!_saql_status.ok()) return _saql_status; \
  } while (0)

}  // namespace saql

#endif  // SAQL_CORE_STATUS_H_
