#ifndef SAQL_CORE_RESULT_H_
#define SAQL_CORE_RESULT_H_

#include <optional>
#include <utility>

#include "core/status.h"

namespace saql {

/// Holds either a value of type `T` or an error `Status`. Analogous to
/// `absl::StatusOr<T>` / `arrow::Result<T>`; the value is only accessible
/// when `ok()` is true.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit, so functions can
  /// `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result. `status` must not be OK; an OK status is
  /// converted to an Internal error to keep the invariant.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors; must only be called when `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a `Result<T>` expression, otherwise assigns the
/// value into `lhs` (an existing variable or a new declaration).
#define SAQL_ASSIGN_OR_RETURN(lhs, expr)                      \
  SAQL_ASSIGN_OR_RETURN_IMPL_(                                \
      SAQL_RESULT_CONCAT_(_saql_result, __LINE__), lhs, expr)

#define SAQL_RESULT_CONCAT_INNER_(a, b) a##b
#define SAQL_RESULT_CONCAT_(a, b) SAQL_RESULT_CONCAT_INNER_(a, b)
#define SAQL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace saql

#endif  // SAQL_CORE_RESULT_H_
