#ifndef SAQL_CORE_TIME_UTIL_H_
#define SAQL_CORE_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "core/result.h"

namespace saql {

/// Event time in nanoseconds since the Unix epoch. All stream processing is
/// event-time based; wall-clock time only matters to the replayer's pacing.
using Timestamp = int64_t;

/// A span of event time in nanoseconds.
using Duration = int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

/// Parses a duration unit name as it appears in `#time(...)` window specs:
/// "ns", "us", "ms", "s"/"sec"/"second"/"seconds", "min"/"minute"/"minutes",
/// "h"/"hour"/"hours", "d"/"day"/"days".
Result<Duration> ParseTimeUnit(const std::string& unit);

/// Parses "<number> <unit>" (e.g., "10 min", "30 s") into a duration.
Result<Duration> ParseDuration(const std::string& text);

/// Renders a duration compactly, e.g., "10min", "1.5s", "250ms".
std::string FormatDuration(Duration d);

/// Renders a timestamp as "YYYY-MM-DD HH:MM:SS.mmm" (UTC).
std::string FormatTimestamp(Timestamp ts);

}  // namespace saql

#endif  // SAQL_CORE_TIME_UTIL_H_
