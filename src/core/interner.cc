#include "core/interner.h"

#include <cctype>
#include <mutex>

namespace saql {

namespace {

inline unsigned char LowerByte(char c) {
  return static_cast<unsigned char>(
      std::tolower(static_cast<unsigned char>(c)));
}

std::string NormalizeAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(LowerByte(c));
  return out;
}

}  // namespace

size_t Interner::CiHash::operator()(std::string_view s) const {
  // FNV-1a over the lowercased bytes; must agree with CiEq.
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= LowerByte(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

bool Interner::CiEq::operator()(std::string_view a, std::string_view b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerByte(a[i]) != LowerByte(b[i])) return false;
  }
  return true;
}

Interner& Interner::Global() {
  static Interner* instance = new Interner();
  return *instance;
}

Interner::Interner() {
  names_.push_back("");  // id 0 = kUnset, never assigned
}

uint32_t Interner::Intern(std::string_view s) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;  // raced with another writer
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(NormalizeAscii(s));
  ids_.emplace(names_.back(), id);
  return id;
}

uint32_t Interner::Find(std::string_view s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(s);
  return it == ids_.end() ? kUnset : it->second;
}

const std::string& Interner::NameOf(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_[id];
}

size_t Interner::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

void InternEventStrings(Event* event) {
  Interner& interner = Interner::Global();
  event->syms.agent = interner.Intern(event->agent_id);
  event->syms.subj_exe = interner.Intern(event->subject.exe_name);
  event->syms.subj_user = interner.Intern(event->subject.user);
  switch (event->object_type) {
    case EntityType::kProcess:
      event->syms.obj_exe = interner.Intern(event->obj_proc.exe_name);
      event->syms.obj_user = interner.Intern(event->obj_proc.user);
      break;
    case EntityType::kFile:
      event->syms.obj_path = interner.Intern(event->obj_file.path);
      break;
    case EntityType::kNetwork:
      break;
  }
}

void InternEventSpan(Event* events, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (events[i].syms.agent != Interner::kUnset) continue;
    InternEventStrings(&events[i]);
  }
}

}  // namespace saql
