#include "core/interner.h"

#include <cctype>
#include <mutex>

namespace saql {

namespace {

inline unsigned char LowerByte(char c) {
  return static_cast<unsigned char>(
      std::tolower(static_cast<unsigned char>(c)));
}

std::string NormalizeAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(LowerByte(c));
  return out;
}

}  // namespace

size_t Interner::CiHash::operator()(std::string_view s) const {
  // FNV-1a over the lowercased bytes; must agree with CiEq.
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= LowerByte(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

bool Interner::CiEq::operator()(std::string_view a, std::string_view b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerByte(a[i]) != LowerByte(b[i])) return false;
  }
  return true;
}

Interner& Interner::Global() {
  static Interner* instance = new Interner();
  return *instance;
}

Interner::Interner() {
  names_.push_back("");  // id 0 = kUnset, never assigned
}

uint32_t Interner::Intern(std::string_view s) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;  // raced with another writer
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(NormalizeAscii(s));
  bytes_ += names_.back().size();
  ids_.emplace(names_.back(), id);
  return id;
}

Interner::Stats Interner::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats st;
  st.entries = names_.size() - 1;  // reserved id 0
  st.bytes = bytes_;
  st.generation = generation();
  return st;
}

void Interner::Rotate() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ids_.clear();
  names_.clear();
  names_.push_back("");  // id 0 = kUnset, never assigned
  bytes_ = 0;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

uint32_t Interner::Find(std::string_view s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(s);
  return it == ids_.end() ? kUnset : it->second;
}

const std::string& Interner::NameOf(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_[id];
}

size_t Interner::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

void InternEventStrings(Event* event) {
  Interner& interner = Interner::Global();
  uint32_t gen = static_cast<uint32_t>(interner.generation());
  event->syms = EventSymbols{};  // drop stale ids from older generations
  event->syms.agent = interner.Intern(event->agent_id);
  event->syms.subj_exe = interner.Intern(event->subject.exe_name);
  event->syms.subj_user = interner.Intern(event->subject.user);
  switch (event->object_type) {
    case EntityType::kProcess:
      event->syms.obj_exe = interner.Intern(event->obj_proc.exe_name);
      event->syms.obj_user = interner.Intern(event->obj_proc.user);
      break;
    case EntityType::kFile:
      event->syms.obj_path = interner.Intern(event->obj_file.path);
      break;
    case EntityType::kNetwork:
      break;
  }
  event->syms.gen = gen;
}

void InternEventSpan(Event* events, size_t count) {
  uint32_t gen = static_cast<uint32_t>(Interner::Global().generation());
  for (size_t i = 0; i < count; ++i) {
    // Interned under the current generation already (memoized replay)?
    if (events[i].syms.agent != Interner::kUnset &&
        events[i].syms.gen == gen) {
      continue;
    }
    InternEventStrings(&events[i]);
  }
}

}  // namespace saql
