#include "core/interner.h"

#include <cctype>

namespace saql {

namespace {

inline unsigned char LowerByte(char c) {
  return static_cast<unsigned char>(
      std::tolower(static_cast<unsigned char>(c)));
}

std::string NormalizeAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(LowerByte(c));
  return out;
}

/// FNV-1a over the lowercased bytes; must agree with CiEquals.
size_t CiHash(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= LowerByte(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

bool CiEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerByte(a[i]) != LowerByte(b[i])) return false;
  }
  return true;
}

constexpr size_t kInitialCapacity = 1024;  // power of two
constexpr size_t kMaxLoadNum = 7;          // grow above 7/10 occupancy
constexpr size_t kMaxLoadDen = 10;

}  // namespace

Interner::Table::Table(size_t capacity_pow2)
    : capacity(capacity_pow2),
      mask(capacity_pow2 - 1),
      slots(new std::atomic<Entry*>[capacity_pow2]) {
  for (size_t i = 0; i < capacity; ++i) {
    slots[i].store(nullptr, std::memory_order_relaxed);
  }
}

Interner& Interner::Global() {
  static Interner* instance = new Interner();
  return *instance;
}

Interner::Interner() : table_(new Table(kInitialCapacity)) {
  sentinel_.name = "";  // id 0 = kUnset, never assigned
  by_id_.push_back(&sentinel_);
}

Interner::~Interner() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 1; i < by_id_.size(); ++i) delete by_id_[i];
  delete table_.load(std::memory_order_relaxed);
  for (Retired& r : retired_) {
    for (Entry* e : r.entries) delete e;
  }
}

const Interner::Entry* Interner::Probe(const Table* t, std::string_view s,
                                       size_t hash) const {
  for (size_t i = hash & t->mask;; i = (i + 1) & t->mask) {
    const Entry* e = t->slots[i].load(std::memory_order_acquire);
    if (e == nullptr) return nullptr;
    if (e->hash == hash && CiEquals(e->name, s)) return e;
  }
}

void Interner::InsertLocked(Table* t, Entry* e) {
  for (size_t i = e->hash & t->mask;; i = (i + 1) & t->mask) {
    if (t->slots[i].load(std::memory_order_relaxed) == nullptr) {
      // Release: a lock-free reader that sees the pointer sees the entry.
      t->slots[i].store(e, std::memory_order_release);
      return;
    }
  }
}

void Interner::GrowLocked() {
  Table* old = table_.load(std::memory_order_relaxed);
  auto grown = std::make_unique<Table>(old->capacity * 2);
  for (size_t i = 1; i < by_id_.size(); ++i) {
    InsertLocked(grown.get(), by_id_[i]);
  }
  table_.store(grown.release(), std::memory_order_release);
  // The outgrown slot array may still be probed by in-flight readers:
  // retire it (entries are shared with the new table and stay live).
  Retired r;
  r.generation = generation_.load(std::memory_order_relaxed);
  r.table.reset(old);
  retired_.push_back(std::move(r));
}

uint32_t Interner::Intern(std::string_view s) {
  const size_t hash = CiHash(s);
  if (const Entry* e =
          Probe(table_.load(std::memory_order_acquire), s, hash)) {
    return e->id;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-probe under the lock: another writer (or a rotation) may have
  // changed the table since the lock-free miss.
  Table* t = table_.load(std::memory_order_relaxed);
  if (const Entry* e = Probe(t, s, hash)) return e->id;
  if ((by_id_.size() + 1) * kMaxLoadDen > t->capacity * kMaxLoadNum) {
    GrowLocked();
    t = table_.load(std::memory_order_relaxed);
  }
  Entry* e = new Entry();
  e->name = NormalizeAscii(s);
  e->hash = hash;
  e->id = static_cast<uint32_t>(by_id_.size());
  by_id_.push_back(e);
  bytes_.fetch_add(e->name.size(), std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  InsertLocked(t, e);
  return e->id;
}

uint32_t Interner::InternStamped(std::string_view s,
                                 uint64_t* generation_out) {
  for (;;) {
    const uint64_t gen = generation();
    uint32_t id = Intern(s);
    // A rotation between the generation read and the insert would hand
    // out an id from a different generation than reported: retry until
    // the pair is consistent (rotations are rare; one retry suffices in
    // practice).
    if (generation() == gen) {
      if (generation_out != nullptr) *generation_out = gen;
      return id;
    }
  }
}

uint32_t Interner::Find(std::string_view s) const {
  const Entry* e =
      Probe(table_.load(std::memory_order_acquire), s, CiHash(s));
  return e == nullptr ? kUnset : e->id;
}

const std::string& Interner::NameOf(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_[id]->name;
}

size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.size();
}

Interner::Stats Interner::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats st;
  st.entries = entries_.load(std::memory_order_relaxed);
  st.bytes = bytes_.load(std::memory_order_relaxed);
  st.generation = generation();
  st.retired_bytes = retired_bytes_;
  return st;
}

void Interner::Rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  Retired r;
  r.generation = generation_.load(std::memory_order_relaxed);
  r.table.reset(table_.load(std::memory_order_relaxed));
  r.entries.assign(by_id_.begin() + 1, by_id_.end());
  r.bytes = bytes_.load(std::memory_order_relaxed);
  retired_bytes_ += r.bytes;
  retired_.push_back(std::move(r));

  by_id_.clear();
  by_id_.push_back(&sentinel_);
  bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
  // Publish the fresh table before bumping the generation: a reader that
  // observes the new generation is then guaranteed to probe the new
  // table, so a consistent (generation, id) pair can always be obtained
  // by re-checking the generation after the probe (InternStamped).
  table_.store(new Table(kInitialCapacity), std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

size_t Interner::ReclaimBefore(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t freed = 0;
  std::vector<Retired> keep;
  for (Retired& r : retired_) {
    if (r.generation < generation) {
      for (Entry* e : r.entries) delete e;
      freed += r.bytes;
    } else {
      keep.push_back(std::move(r));
    }
  }
  retired_ = std::move(keep);
  retired_bytes_ -= freed;
  return freed;
}

void InternEventStrings(Event* event) {
  Interner& interner = Interner::Global();
  for (;;) {
    const uint64_t gen = interner.generation();
    EventSymbols syms;  // drop stale ids from older generations
    syms.agent = interner.Intern(event->agent_id);
    syms.subj_exe = interner.Intern(event->subject.exe_name);
    syms.subj_user = interner.Intern(event->subject.user);
    switch (event->object_type) {
      case EntityType::kProcess:
        syms.obj_exe = interner.Intern(event->obj_proc.exe_name);
        syms.obj_user = interner.Intern(event->obj_proc.user);
        break;
      case EntityType::kFile:
        syms.obj_path = interner.Intern(event->obj_file.path);
        break;
      case EntityType::kNetwork:
        break;
    }
    // A rotation racing the loop above could mix ids from two
    // generations; re-check and redo (rare) rather than stamp an
    // inconsistent set.
    if (interner.generation() == gen) {
      syms.gen = static_cast<uint32_t>(gen);
      event->syms = syms;
      return;
    }
  }
}

void InternEventSpan(Event* events, size_t count) {
  Interner& interner = Interner::Global();
  for (size_t i = 0; i < count; ++i) {
    // Interned under the current generation already (memoized replay)?
    if (events[i].syms.agent != Interner::kUnset &&
        events[i].syms.gen ==
            static_cast<uint32_t>(interner.generation())) {
      continue;
    }
    InternEventStrings(&events[i]);
  }
}

}  // namespace saql
