#include "core/time_util.h"

#include <cstdio>
#include <ctime>
#include <sstream>

#include "core/string_util.h"

namespace saql {

Result<Duration> ParseTimeUnit(const std::string& unit) {
  std::string u = ToLower(unit);
  if (u == "ns") return kNanosecond;
  if (u == "us") return kMicrosecond;
  if (u == "ms") return kMillisecond;
  if (u == "s" || u == "sec" || u == "secs" || u == "second" ||
      u == "seconds") {
    return kSecond;
  }
  if (u == "m" || u == "min" || u == "mins" || u == "minute" ||
      u == "minutes") {
    return kMinute;
  }
  if (u == "h" || u == "hour" || u == "hours") return kHour;
  if (u == "d" || u == "day" || u == "days") return kDay;
  return Status::ParseError("unknown time unit '" + unit + "'");
}

Result<Duration> ParseDuration(const std::string& text) {
  std::istringstream is(text);
  double count = 0;
  std::string unit;
  if (!(is >> count)) {
    return Status::ParseError("bad duration '" + text + "'");
  }
  if (!(is >> unit)) unit = "s";
  SAQL_ASSIGN_OR_RETURN(Duration u, ParseTimeUnit(unit));
  return static_cast<Duration>(count * static_cast<double>(u));
}

std::string FormatDuration(Duration d) {
  auto render = [](double v, const char* unit) {
    char buf[64];
    if (v == static_cast<int64_t>(v)) {
      std::snprintf(buf, sizeof(buf), "%lld%s",
                    static_cast<long long>(v), unit);
    } else {
      std::snprintf(buf, sizeof(buf), "%.3g%s", v, unit);
    }
    return std::string(buf);
  };
  if (d >= kHour) return render(static_cast<double>(d) / kHour, "h");
  if (d >= kMinute) return render(static_cast<double>(d) / kMinute, "min");
  if (d >= kSecond) return render(static_cast<double>(d) / kSecond, "s");
  if (d >= kMillisecond) {
    return render(static_cast<double>(d) / kMillisecond, "ms");
  }
  if (d >= kMicrosecond) {
    return render(static_cast<double>(d) / kMicrosecond, "us");
  }
  return render(static_cast<double>(d), "ns");
}

std::string FormatTimestamp(Timestamp ts) {
  std::time_t secs = static_cast<std::time_t>(ts / kSecond);
  int64_t millis = (ts % kSecond) / kMillisecond;
  if (millis < 0) {
    millis += 1000;
    secs -= 1;
  }
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(millis));
  return std::string(buf);
}

}  // namespace saql
