#ifndef SAQL_CORE_STRING_UTIL_H_
#define SAQL_CORE_STRING_UTIL_H_

#include <string>
#include <vector>

namespace saql {

/// ASCII lowercase copy.
std::string ToLower(const std::string& s);

/// Removes leading and trailing whitespace.
std::string Trim(const std::string& s);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

}  // namespace saql

#endif  // SAQL_CORE_STRING_UTIL_H_
