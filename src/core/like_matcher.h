#ifndef SAQL_CORE_LIKE_MATCHER_H_
#define SAQL_CORE_LIKE_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

namespace saql {

/// SQL-LIKE style pattern matching used by SAQL entity constraints such as
/// `proc p1["%cmd.exe"]`: `%` matches any run of characters (including
/// empty), `_` matches exactly one character. Matching is case-insensitive,
/// mirroring how the paper's queries match Windows executable names.
///
/// A compiled matcher is immutable and cheap to copy; compile once per query
/// pattern, match once per candidate event.
class LikeMatcher {
 public:
  /// Compiles `pattern`. Patterns without wildcards degrade to an exact
  /// (case-insensitive) comparison; patterns of the form `%suffix` use a
  /// suffix fast path, `prefix%` a prefix fast path.
  explicit LikeMatcher(const std::string& pattern);

  /// Returns true when `text` matches the compiled pattern.
  ///
  /// Matching is allocation-free: the comparison lowercases `text` byte by
  /// byte in place against the pre-lowered pattern instead of materializing
  /// a lowered copy per call (this sits on the per-event hot path — one
  /// call per string constraint per candidate event; see the A1 ablation in
  /// bench_ablation.cc and the allocation regression test in
  /// tests/like_matcher_test.cc). Exact (wildcard-free) equality on
  /// interned attributes is cheaper still — CompiledConstraint short-
  /// circuits those to a symbol-id compare before ever calling this.
  bool Matches(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  /// True when the pattern contains no wildcard (exact match semantics).
  bool is_exact() const { return kind_ == Kind::kExact; }

 private:
  enum class Kind { kExact, kPrefix, kSuffix, kContains, kGeneral };

  /// Generic two-pointer LIKE matcher with backtracking over `%`.
  bool GeneralMatch(std::string_view text) const;

  std::string pattern_;         // original pattern
  std::string lowered_;         // lowercase pattern for fast paths
  std::string needle_;          // lowercase pattern without leading/trailing %
  Kind kind_;
};

}  // namespace saql

#endif  // SAQL_CORE_LIKE_MATCHER_H_
