#include "core/field_access.h"

#include <atomic>

#include "core/string_util.h"

namespace saql {

namespace {

std::atomic<uint64_t> g_string_keyed_lookups{0};

Status NoEntityAttr(EntityType type, const std::string& field) {
  const char* kind = "process";
  switch (type) {
    case EntityType::kProcess:
      kind = "process";
      break;
    case EntityType::kFile:
      kind = "file";
      break;
    case EntityType::kNetwork:
      kind = "network";
      break;
  }
  return Status::NotFound(std::string(kind) + " entity has no attribute '" +
                          field + "'");
}

FieldId ResolveProcessField(const std::string& f) {
  if (f == "exe_name" || f == "name" || f == "image") return FieldId::kExeName;
  if (f == "pid") return FieldId::kPid;
  if (f == "user") return FieldId::kUser;
  return FieldId::kInvalid;
}

FieldId ResolveFileField(const std::string& f) {
  if (f == "name" || f == "path") return FieldId::kPath;
  return FieldId::kInvalid;
}

FieldId ResolveNetworkField(const std::string& f) {
  if (f == "srcip" || f == "src_ip" || f == "sip") return FieldId::kSrcIp;
  if (f == "dstip" || f == "dst_ip" || f == "dip") return FieldId::kDstIp;
  if (f == "sport" || f == "src_port") return FieldId::kSrcPort;
  if (f == "dport" || f == "dst_port" || f == "port") return FieldId::kDstPort;
  if (f == "protocol" || f == "proto") return FieldId::kProtocol;
  return FieldId::kInvalid;
}

/// The entity this event exposes for `role`: the subject process, or the
/// object selected by object_type. Returns the specific sub-entity pointers
/// through out-params to keep the accessors below branch-light.
const ProcessEntity* ProcOf(const Event& e, EntityRole role) {
  if (role == EntityRole::kSubject) return &e.subject;
  return e.object_type == EntityType::kProcess ? &e.obj_proc : nullptr;
}

const FileEntity* FileOf(const Event& e, EntityRole role) {
  if (role == EntityRole::kObject && e.object_type == EntityType::kFile) {
    return &e.obj_file;
  }
  return nullptr;
}

const NetworkEntity* NetOf(const Event& e, EntityRole role) {
  if (role == EntityRole::kObject && e.object_type == EntityType::kNetwork) {
    return &e.obj_net;
  }
  return nullptr;
}

EntityType TypeOf(const Event& e, EntityRole role) {
  return role == EntityRole::kSubject ? EntityType::kProcess : e.object_type;
}

}  // namespace

FieldId ResolveEntityFieldId(EntityType type, const std::string& field) {
  std::string f = ToLower(field);
  switch (type) {
    case EntityType::kProcess:
      return ResolveProcessField(f);
    case EntityType::kFile:
      return ResolveFileField(f);
    case EntityType::kNetwork:
      return ResolveNetworkField(f);
  }
  return FieldId::kInvalid;
}

FieldId ResolveEventFieldId(const std::string& field) {
  std::string f = ToLower(field);
  if (f == "amount") return FieldId::kAmount;
  if (f == "ts" || f == "time" || f == "timestamp") return FieldId::kTs;
  if (f == "agentid" || f == "agent_id" || f == "host") {
    return FieldId::kAgentId;
  }
  if (f == "op" || f == "operation") return FieldId::kOp;
  if (f == "failed") return FieldId::kFailed;
  if (f == "id") return FieldId::kId;
  if (StartsWith(f, "subject_")) {
    switch (ResolveProcessField(f.substr(8))) {
      case FieldId::kExeName:
        return FieldId::kSubjectExeName;
      case FieldId::kPid:
        return FieldId::kSubjectPid;
      case FieldId::kUser:
        return FieldId::kSubjectUser;
      default:
        return FieldId::kInvalid;
    }
  }
  if (StartsWith(f, "object_")) {
    std::string rest = f.substr(7);
    // The object's type is unknown until the event arrives, so any entity
    // attribute spelling is accepted; reads resolve per event. `name` stays
    // polymorphic, exact spellings pin the entity kind.
    switch (ResolveProcessField(rest)) {
      case FieldId::kExeName:
        return rest == "name" ? FieldId::kObjectName : FieldId::kObjectExeName;
      case FieldId::kPid:
        return FieldId::kObjectPid;
      case FieldId::kUser:
        return FieldId::kObjectUser;
      default:
        break;
    }
    if (rest == "path") return FieldId::kObjectPath;
    switch (ResolveNetworkField(rest)) {
      case FieldId::kSrcIp:
        return FieldId::kObjectSrcIp;
      case FieldId::kDstIp:
        return FieldId::kObjectDstIp;
      case FieldId::kSrcPort:
        return FieldId::kObjectSrcPort;
      case FieldId::kDstPort:
        return FieldId::kObjectDstPort;
      case FieldId::kProtocol:
        return FieldId::kObjectProtocol;
      default:
        break;
    }
    return FieldId::kInvalid;
  }
  return FieldId::kInvalid;
}

// ---------------------------------------------------------------------------
// Compiled fast path.
// ---------------------------------------------------------------------------

Result<Value> GetEntityField(const Event& event, EntityRole role,
                             FieldId id) {
  switch (id) {
    case FieldId::kExeName: {
      const ProcessEntity* p = ProcOf(event, role);
      if (p == nullptr) return NoEntityAttr(TypeOf(event, role), "exe_name");
      return Value(p->exe_name);
    }
    case FieldId::kPid: {
      const ProcessEntity* p = ProcOf(event, role);
      if (p == nullptr) return NoEntityAttr(TypeOf(event, role), "pid");
      return Value(p->pid);
    }
    case FieldId::kUser: {
      const ProcessEntity* p = ProcOf(event, role);
      if (p == nullptr) return NoEntityAttr(TypeOf(event, role), "user");
      return Value(p->user);
    }
    case FieldId::kPath: {
      const FileEntity* f = FileOf(event, role);
      if (f == nullptr) return NoEntityAttr(TypeOf(event, role), "path");
      return Value(f->path);
    }
    case FieldId::kSrcIp: {
      const NetworkEntity* n = NetOf(event, role);
      if (n == nullptr) return NoEntityAttr(TypeOf(event, role), "srcip");
      return Value(n->src_ip);
    }
    case FieldId::kDstIp: {
      const NetworkEntity* n = NetOf(event, role);
      if (n == nullptr) return NoEntityAttr(TypeOf(event, role), "dstip");
      return Value(n->dst_ip);
    }
    case FieldId::kSrcPort: {
      const NetworkEntity* n = NetOf(event, role);
      if (n == nullptr) return NoEntityAttr(TypeOf(event, role), "sport");
      return Value(n->src_port);
    }
    case FieldId::kDstPort: {
      const NetworkEntity* n = NetOf(event, role);
      if (n == nullptr) return NoEntityAttr(TypeOf(event, role), "dport");
      return Value(n->dst_port);
    }
    case FieldId::kProtocol: {
      const NetworkEntity* n = NetOf(event, role);
      if (n == nullptr) return NoEntityAttr(TypeOf(event, role), "protocol");
      return Value(n->protocol);
    }
    case FieldId::kName: {
      if (const ProcessEntity* p = ProcOf(event, role)) {
        return Value(p->exe_name);
      }
      if (const FileEntity* f = FileOf(event, role)) return Value(f->path);
      return NoEntityAttr(TypeOf(event, role), "name");
    }
    default:
      return Status::Internal("field id is not an entity attribute");
  }
}

Result<Value> GetEventField(const Event& event, FieldId id) {
  switch (id) {
    case FieldId::kAmount:
      return Value(event.amount);
    case FieldId::kTs:
      return Value(event.ts);
    case FieldId::kAgentId:
      return Value(event.agent_id);
    case FieldId::kOp:
      return Value(std::string(EventOpName(event.op)));
    case FieldId::kFailed:
      return Value(event.failed);
    case FieldId::kId:
      return Value(static_cast<int64_t>(event.id));
    case FieldId::kSubjectExeName:
      return GetEntityField(event, EntityRole::kSubject, FieldId::kExeName);
    case FieldId::kSubjectPid:
      return GetEntityField(event, EntityRole::kSubject, FieldId::kPid);
    case FieldId::kSubjectUser:
      return GetEntityField(event, EntityRole::kSubject, FieldId::kUser);
    case FieldId::kObjectExeName:
      return GetEntityField(event, EntityRole::kObject, FieldId::kExeName);
    case FieldId::kObjectPid:
      return GetEntityField(event, EntityRole::kObject, FieldId::kPid);
    case FieldId::kObjectUser:
      return GetEntityField(event, EntityRole::kObject, FieldId::kUser);
    case FieldId::kObjectPath:
      return GetEntityField(event, EntityRole::kObject, FieldId::kPath);
    case FieldId::kObjectName:
      return GetEntityField(event, EntityRole::kObject, FieldId::kName);
    case FieldId::kObjectSrcIp:
      return GetEntityField(event, EntityRole::kObject, FieldId::kSrcIp);
    case FieldId::kObjectDstIp:
      return GetEntityField(event, EntityRole::kObject, FieldId::kDstIp);
    case FieldId::kObjectSrcPort:
      return GetEntityField(event, EntityRole::kObject, FieldId::kSrcPort);
    case FieldId::kObjectDstPort:
      return GetEntityField(event, EntityRole::kObject, FieldId::kDstPort);
    case FieldId::kObjectProtocol:
      return GetEntityField(event, EntityRole::kObject, FieldId::kProtocol);
    default:
      return Status::Internal("field id is not an event attribute");
  }
}

const std::string* GetEntityStringFieldPtr(const Event& event,
                                           EntityRole role, FieldId id) {
  switch (id) {
    case FieldId::kExeName: {
      const ProcessEntity* p = ProcOf(event, role);
      return p == nullptr ? nullptr : &p->exe_name;
    }
    case FieldId::kUser: {
      const ProcessEntity* p = ProcOf(event, role);
      return p == nullptr ? nullptr : &p->user;
    }
    case FieldId::kPath: {
      const FileEntity* f = FileOf(event, role);
      return f == nullptr ? nullptr : &f->path;
    }
    case FieldId::kSrcIp: {
      const NetworkEntity* n = NetOf(event, role);
      return n == nullptr ? nullptr : &n->src_ip;
    }
    case FieldId::kDstIp: {
      const NetworkEntity* n = NetOf(event, role);
      return n == nullptr ? nullptr : &n->dst_ip;
    }
    case FieldId::kProtocol: {
      const NetworkEntity* n = NetOf(event, role);
      return n == nullptr ? nullptr : &n->protocol;
    }
    case FieldId::kName: {
      if (const ProcessEntity* p = ProcOf(event, role)) return &p->exe_name;
      if (const FileEntity* f = FileOf(event, role)) return &f->path;
      return nullptr;
    }
    default:
      return nullptr;
  }
}

const std::string* GetEventStringFieldPtr(const Event& event, FieldId id) {
  switch (id) {
    case FieldId::kAgentId:
      return &event.agent_id;
    case FieldId::kSubjectExeName:
      return GetEntityStringFieldPtr(event, EntityRole::kSubject,
                                     FieldId::kExeName);
    case FieldId::kSubjectUser:
      return GetEntityStringFieldPtr(event, EntityRole::kSubject,
                                     FieldId::kUser);
    case FieldId::kObjectExeName:
      return GetEntityStringFieldPtr(event, EntityRole::kObject,
                                     FieldId::kExeName);
    case FieldId::kObjectUser:
      return GetEntityStringFieldPtr(event, EntityRole::kObject,
                                     FieldId::kUser);
    case FieldId::kObjectPath:
      return GetEntityStringFieldPtr(event, EntityRole::kObject,
                                     FieldId::kPath);
    case FieldId::kObjectName:
      return GetEntityStringFieldPtr(event, EntityRole::kObject,
                                     FieldId::kName);
    case FieldId::kObjectSrcIp:
      return GetEntityStringFieldPtr(event, EntityRole::kObject,
                                     FieldId::kSrcIp);
    case FieldId::kObjectDstIp:
      return GetEntityStringFieldPtr(event, EntityRole::kObject,
                                     FieldId::kDstIp);
    case FieldId::kObjectProtocol:
      return GetEntityStringFieldPtr(event, EntityRole::kObject,
                                     FieldId::kProtocol);
    default:
      return nullptr;
  }
}

uint32_t GetEntitySymbol(const Event& event, EntityRole role, FieldId id) {
  if (role == EntityRole::kSubject) {
    switch (id) {
      case FieldId::kExeName:
      case FieldId::kName:
        return event.syms.subj_exe;
      case FieldId::kUser:
        return event.syms.subj_user;
      default:
        return 0;
    }
  }
  switch (id) {
    case FieldId::kExeName:
      return event.object_type == EntityType::kProcess ? event.syms.obj_exe
                                                       : 0;
    case FieldId::kUser:
      return event.object_type == EntityType::kProcess ? event.syms.obj_user
                                                       : 0;
    case FieldId::kPath:
      return event.object_type == EntityType::kFile ? event.syms.obj_path : 0;
    case FieldId::kName:
      if (event.object_type == EntityType::kProcess) return event.syms.obj_exe;
      if (event.object_type == EntityType::kFile) return event.syms.obj_path;
      return 0;
    default:
      return 0;
  }
}

uint32_t GetEventSymbol(const Event& event, FieldId id) {
  switch (id) {
    case FieldId::kAgentId:
      return event.syms.agent;
    case FieldId::kSubjectExeName:
      return event.syms.subj_exe;
    case FieldId::kSubjectUser:
      return event.syms.subj_user;
    case FieldId::kObjectExeName:
      return GetEntitySymbol(event, EntityRole::kObject, FieldId::kExeName);
    case FieldId::kObjectUser:
      return GetEntitySymbol(event, EntityRole::kObject, FieldId::kUser);
    case FieldId::kObjectPath:
      return GetEntitySymbol(event, EntityRole::kObject, FieldId::kPath);
    case FieldId::kObjectName:
      return GetEntitySymbol(event, EntityRole::kObject, FieldId::kName);
    default:
      return 0;
  }
}

// ---------------------------------------------------------------------------
// String-keyed path.
// ---------------------------------------------------------------------------

Result<Value> GetEntityField(const Event& event, EntityRole role,
                             const std::string& field) {
  g_string_keyed_lookups.fetch_add(1, std::memory_order_relaxed);
  EntityType type = TypeOf(event, role);
  FieldId id = ResolveEntityFieldId(type, field);
  if (id == FieldId::kInvalid) return NoEntityAttr(type, field);
  return GetEntityField(event, role, id);
}

Result<Value> GetEventField(const Event& event, const std::string& field) {
  g_string_keyed_lookups.fetch_add(1, std::memory_order_relaxed);
  std::string f = ToLower(field);
  FieldId id = ResolveEventFieldId(f);
  if (id != FieldId::kInvalid) return GetEventField(event, id);
  // Preserve the entity-level diagnostics for unknown subject_/object_
  // attributes ("process entity has no attribute ...").
  if (StartsWith(f, "subject_")) {
    return NoEntityAttr(EntityType::kProcess, f.substr(8));
  }
  if (StartsWith(f, "object_")) {
    return NoEntityAttr(event.object_type, f.substr(7));
  }
  return Status::NotFound("event has no attribute '" + field + "'");
}

uint64_t StringKeyedFieldLookups() {
  return g_string_keyed_lookups.load(std::memory_order_relaxed);
}

void ResetStringKeyedFieldLookups() {
  g_string_keyed_lookups.store(0, std::memory_order_relaxed);
}

const char* DefaultFieldForEntity(EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return "exe_name";
    case EntityType::kFile:
      return "name";
    case EntityType::kNetwork:
      return "dstip";
  }
  return "name";
}

bool IsValidEntityField(EntityType type, const std::string& field) {
  return ResolveEntityFieldId(type, field) != FieldId::kInvalid;
}

bool IsValidEventField(const std::string& field) {
  std::string f = ToLower(field);
  if (ResolveEventFieldId(f) != FieldId::kInvalid) return true;
  // subject_/object_ forms stay syntactically valid event attributes even
  // when the suffix only resolves per event (or not at all) — reads yield
  // NotFound at runtime, matching the pre-FieldId behaviour.
  return StartsWith(f, "subject_") || StartsWith(f, "object_");
}

}  // namespace saql
