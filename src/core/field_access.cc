#include "core/field_access.h"

#include "core/string_util.h"

namespace saql {

namespace {

Result<Value> GetProcessField(const ProcessEntity& p,
                              const std::string& field) {
  if (field == "exe_name" || field == "name" || field == "image") {
    return Value(p.exe_name);
  }
  if (field == "pid") return Value(p.pid);
  if (field == "user") return Value(p.user);
  return Status::NotFound("process entity has no attribute '" + field + "'");
}

Result<Value> GetFileField(const FileEntity& f, const std::string& field) {
  if (field == "name" || field == "path") return Value(f.path);
  return Status::NotFound("file entity has no attribute '" + field + "'");
}

Result<Value> GetNetworkField(const NetworkEntity& n,
                              const std::string& field) {
  if (field == "srcip" || field == "src_ip" || field == "sip") {
    return Value(n.src_ip);
  }
  if (field == "dstip" || field == "dst_ip" || field == "dip") {
    return Value(n.dst_ip);
  }
  if (field == "sport" || field == "src_port") return Value(n.src_port);
  if (field == "dport" || field == "dst_port" || field == "port") {
    return Value(n.dst_port);
  }
  if (field == "protocol" || field == "proto") return Value(n.protocol);
  return Status::NotFound("network entity has no attribute '" + field + "'");
}

}  // namespace

Result<Value> GetEntityField(const Event& event, EntityRole role,
                             const std::string& field) {
  std::string f = ToLower(field);
  if (role == EntityRole::kSubject) {
    return GetProcessField(event.subject, f);
  }
  switch (event.object_type) {
    case EntityType::kProcess:
      return GetProcessField(event.obj_proc, f);
    case EntityType::kFile:
      return GetFileField(event.obj_file, f);
    case EntityType::kNetwork:
      return GetNetworkField(event.obj_net, f);
  }
  return Status::Internal("bad object type");
}

Result<Value> GetEventField(const Event& event, const std::string& field) {
  std::string f = ToLower(field);
  if (f == "amount") return Value(event.amount);
  if (f == "ts" || f == "time" || f == "timestamp") return Value(event.ts);
  if (f == "agentid" || f == "agent_id" || f == "host") {
    return Value(event.agent_id);
  }
  if (f == "op" || f == "operation") {
    return Value(std::string(EventOpName(event.op)));
  }
  if (f == "failed") return Value(event.failed);
  if (f == "id") return Value(static_cast<int64_t>(event.id));
  if (StartsWith(f, "subject_")) {
    return GetEntityField(event, EntityRole::kSubject, f.substr(8));
  }
  if (StartsWith(f, "object_")) {
    return GetEntityField(event, EntityRole::kObject, f.substr(7));
  }
  return Status::NotFound("event has no attribute '" + field + "'");
}

const char* DefaultFieldForEntity(EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return "exe_name";
    case EntityType::kFile:
      return "name";
    case EntityType::kNetwork:
      return "dstip";
  }
  return "name";
}

bool IsValidEntityField(EntityType type, const std::string& field) {
  std::string f = ToLower(field);
  switch (type) {
    case EntityType::kProcess:
      return f == "exe_name" || f == "name" || f == "image" || f == "pid" ||
             f == "user";
    case EntityType::kFile:
      return f == "name" || f == "path";
    case EntityType::kNetwork:
      return f == "srcip" || f == "src_ip" || f == "sip" || f == "dstip" ||
             f == "dst_ip" || f == "dip" || f == "sport" ||
             f == "src_port" || f == "dport" || f == "dst_port" ||
             f == "port" || f == "protocol" || f == "proto";
  }
  return false;
}

bool IsValidEventField(const std::string& field) {
  std::string f = ToLower(field);
  return f == "amount" || f == "ts" || f == "time" || f == "timestamp" ||
         f == "agentid" || f == "agent_id" || f == "host" || f == "op" ||
         f == "operation" || f == "failed" || f == "id" ||
         StartsWith(f, "subject_") || StartsWith(f, "object_");
}

}  // namespace saql
