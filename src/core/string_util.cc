#include "core/string_util.h"

#include <algorithm>
#include <cctype>

namespace saql {

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace saql
