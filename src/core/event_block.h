#ifndef SAQL_CORE_EVENT_BLOCK_H_
#define SAQL_CORE_EVENT_BLOCK_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/event.h"
#include "core/time_util.h"

namespace saql {

/// Columnar (structure-of-arrays) batch of events — the unit the ingestion
/// API moves between sources, the event-log storage engine, and the stream
/// executors.
///
/// A block holds every event attribute as its own column: numeric fields
/// are flat arrays, and string attributes are **dictionary-encoded** — each
/// column stores a 32-bit code into a per-block dictionary of distinct
/// spellings (code 0 is always the empty string). The dictionary is
/// materialized directly into the process `Interner`: one `Intern` call per
/// *distinct* spelling per block instead of one hash probe per event, so
/// rows materialized from a block arrive with `Event::syms` already
/// stamped and the executor's per-event interning pass reduces to a
/// generation check.
///
/// Three backings share this interface:
///  - **owned columnar** (`AppendColumnar`): the block owns its column
///    vectors and dictionary — the event-log writer's pending segment and
///    the general building side;
///  - **borrowed columnar** (`BindColumns`): the column arrays and
///    dictionary alias storage owned by someone else — the mmap'd v2
///    event-log reader hands out blocks whose columns point straight into
///    the mapped file (zero-copy replay);
///  - **rows** (`ResetBorrowedRows` / `ResetOwnedRows`): a plain `Event`
///    span, the adapter shim for sources that natively produce rows
///    (simulators, callbacks, merge fan-in). No columns exist in this mode.
///
/// Columnar blocks materialize a row view on demand (`MutableRows`); the
/// row cache is reused across rebinds, so steady-state replay reuses both
/// the vector and the row strings' capacity.
class EventBlock {
 public:
  /// Dictionary code of the empty string (never stored in the dictionary
  /// payload; every block's dictionary has "" at index 0).
  static constexpr uint32_t kEmptyCode = 0;

  /// Borrowed SoA column pointers, each `size()` elements long. String
  /// columns hold dictionary codes. Columns for fields of inactive object
  /// types carry the `Event` defaults (pid 0, empty strings, protocol
  /// "tcp"), so decoding is exact regardless of object type.
  struct Columns {
    const uint64_t* id = nullptr;
    const int64_t* ts = nullptr;
    const int64_t* subj_pid = nullptr;
    const int64_t* obj_pid = nullptr;
    const int64_t* src_port = nullptr;
    const int64_t* dst_port = nullptr;
    const int64_t* amount = nullptr;
    const uint32_t* agent = nullptr;
    const uint32_t* subj_exe = nullptr;
    const uint32_t* subj_user = nullptr;
    const uint32_t* obj_exe = nullptr;
    const uint32_t* obj_user = nullptr;
    const uint32_t* obj_path = nullptr;
    const uint32_t* src_ip = nullptr;
    const uint32_t* dst_ip = nullptr;
    const uint32_t* protocol = nullptr;
    const uint8_t* op = nullptr;
    const uint8_t* object_type = nullptr;
    const uint8_t* failed = nullptr;

    /// The same columns advanced by `offset` events (sub-range view).
    Columns Slice(size_t offset) const;
  };

  EventBlock() = default;
  EventBlock(const EventBlock&) = delete;
  EventBlock& operator=(const EventBlock&) = delete;

  /// Drops all contents (keeps allocated capacity for reuse).
  void Clear();

  size_t size() const {
    return mode_ == Mode::kOwnedRows ? owned_rows_.size() : size_;
  }
  bool empty() const { return size() == 0; }

  /// True when the block has columnar backing (owned or borrowed); false
  /// for row-backed shim blocks.
  bool columnar() const {
    return mode_ == Mode::kOwnedColumnar || mode_ == Mode::kBorrowedColumnar;
  }

  // -------------------------------------------------------------------
  // Row-backed shims (sources that natively produce Event rows).

  /// Wraps an externally owned row span — zero copies; annotations made
  /// through `MutableRows` land in the caller's storage.
  void ResetBorrowedRows(Event* rows, size_t count);

  /// Switches to owned-row mode and returns the (cleared) appendable row
  /// vector; `size()` tracks it.
  EventBatch& ResetOwnedRows();

  // -------------------------------------------------------------------
  // Columnar building (owned).

  /// Encodes one event into the owned columns, dictionary-interning its
  /// string attributes. First call after `Clear` switches the block to
  /// owned-columnar mode.
  void AppendColumnar(const Event& e);

  // -------------------------------------------------------------------
  // Columnar adoption (borrowed; the mmap'd log reader).

  /// Binds externally owned column arrays, dictionary, and the
  /// dictionary's interned symbol ids (parallel to `dict`, computed under
  /// interner generation `syms_generation`). All pointers must stay valid
  /// while the block is bound.
  void BindColumns(const Columns& cols, size_t count,
                   const std::string_view* dict, size_t dict_size,
                   const uint32_t* dict_syms, uint64_t syms_generation);

  // -------------------------------------------------------------------
  // Consumption.

  /// Column views (columnar modes only; owned mode refreshes the views
  /// from the backing vectors).
  const Columns& columns() const;

  /// Dictionary spellings; entry 0 is "".
  const std::string_view* dict() const;
  size_t dict_size() const;

  /// Interned symbol ids parallel to `dict()`. Owned mode: interns the
  /// dictionary into the global `Interner` on first use (and again after a
  /// rotation). Borrowed mode: the ids supplied at bind time.
  const uint32_t* dict_syms() const;

  /// Interns the owned dictionary into the process interner now (no-op if
  /// already interned under the current generation). `MutableRows` calls
  /// this implicitly.
  void InternDictionary() const;

  /// Row view of the block; columnar blocks materialize (and cache) rows
  /// with `Event::syms` pre-stamped from the interned dictionary. Returns
  /// nullptr for an empty block. Callers may annotate rows in place; for
  /// borrowed-row blocks the annotations land in the borrowed storage.
  Event* MutableRows();

  /// Timestamp bounds over the `ts` column / rows (scans; meant for the
  /// per-segment writer, not per-event paths). Returns false when empty.
  bool TsBounds(Timestamp* min_ts, Timestamp* max_ts) const;

 private:
  enum class Mode : uint8_t {
    kEmpty,
    kBorrowedRows,
    kOwnedRows,
    kOwnedColumnar,
    kBorrowedColumnar,
  };

  /// Owned column storage (owned-columnar mode).
  struct ColumnStore {
    std::vector<uint64_t> id;
    std::vector<int64_t> ts, subj_pid, obj_pid, src_port, dst_port, amount;
    std::vector<uint32_t> agent, subj_exe, subj_user, obj_exe, obj_user,
        obj_path, src_ip, dst_ip, protocol;
    std::vector<uint8_t> op, object_type, failed;
    void clear();
  };

  /// Returns the dictionary code for `s`, adding it on first sight (exact,
  /// case-preserving — normalization is the interner's job).
  uint32_t DictCode(std::string_view s);

  void EnsureOwnedColumnar();
  void Materialize();

  Mode mode_ = Mode::kEmpty;
  size_t size_ = 0;

  // Columnar backing.
  ColumnStore store_;
  mutable Columns cols_;
  mutable bool cols_valid_ = false;  ///< owned views refreshed from store_

  // Dictionary: owned (arena + views) or borrowed (views only).
  std::deque<std::string> dict_arena_;
  std::vector<std::string_view> dict_own_;
  std::unordered_map<std::string_view, uint32_t> dict_codes_;
  const std::string_view* dict_ = nullptr;
  size_t dict_size_ = 0;

  // Interned ids parallel to the dictionary.
  mutable std::vector<uint32_t> dict_syms_own_;
  mutable const uint32_t* dict_syms_ = nullptr;
  mutable uint64_t syms_gen_ = 0;

  // Row view: borrowed span or owned vector (also the materialization
  // cache for columnar blocks).
  Event* borrowed_rows_ = nullptr;
  EventBatch owned_rows_;
  /// Mutable: a const `InternDictionary` after a rotation invalidates the
  /// cached rows (they carry the old generation's ids).
  mutable bool rows_valid_ = false;
};

}  // namespace saql

#endif  // SAQL_CORE_EVENT_BLOCK_H_
