#include "core/like_matcher.h"

#include <cctype>

#include "core/string_util.h"

namespace saql {

namespace {

bool ContainsWildcard(const std::string& s) {
  return s.find('%') != std::string::npos ||
         s.find('_') != std::string::npos;
}

inline char LowerByte(char c) {
  return static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
}

/// text (any case) == needle (pre-lowered), without copying text.
bool CiEquals(std::string_view text, std::string_view needle) {
  if (text.size() != needle.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (LowerByte(text[i]) != needle[i]) return false;
  }
  return true;
}

/// needle (pre-lowered) occurs in text (any case).
bool CiContains(std::string_view text, std::string_view needle) {
  if (needle.empty()) return true;
  if (text.size() < needle.size()) return false;
  for (size_t start = 0; start + needle.size() <= text.size(); ++start) {
    size_t i = 0;
    while (i < needle.size() && LowerByte(text[start + i]) == needle[i]) {
      ++i;
    }
    if (i == needle.size()) return true;
  }
  return false;
}

}  // namespace

LikeMatcher::LikeMatcher(const std::string& pattern)
    : pattern_(pattern), lowered_(ToLower(pattern)) {
  const std::string& p = lowered_;
  if (!ContainsWildcard(p)) {
    kind_ = Kind::kExact;
    needle_ = p;
    return;
  }
  // Fast paths only apply when '%' is the sole wildcard present.
  bool has_underscore = p.find('_') != std::string::npos;
  size_t first = p.find('%');
  size_t last = p.rfind('%');
  if (!has_underscore && first == 0 && last == 0 && p.size() > 1) {
    kind_ = Kind::kSuffix;  // "%cmd.exe"
    needle_ = p.substr(1);
    return;
  }
  if (!has_underscore && first == p.size() - 1 && last == first &&
      p.size() > 1) {
    kind_ = Kind::kPrefix;  // "C:\\Windows\\%"
    needle_ = p.substr(0, p.size() - 1);
    return;
  }
  if (!has_underscore && first == 0 && last == p.size() - 1 &&
      p.find('%', 1) == last && p.size() > 2) {
    kind_ = Kind::kContains;  // "%temp%"
    needle_ = p.substr(1, p.size() - 2);
    return;
  }
  kind_ = Kind::kGeneral;
}

bool LikeMatcher::Matches(std::string_view text) const {
  switch (kind_) {
    case Kind::kExact:
      return CiEquals(text, needle_);
    case Kind::kSuffix:
      return text.size() >= needle_.size() &&
             CiEquals(text.substr(text.size() - needle_.size()), needle_);
    case Kind::kPrefix:
      return text.size() >= needle_.size() &&
             CiEquals(text.substr(0, needle_.size()), needle_);
    case Kind::kContains:
      return CiContains(text, needle_);
    case Kind::kGeneral:
      return GeneralMatch(text);
  }
  return false;
}

bool LikeMatcher::GeneralMatch(std::string_view text) const {
  const std::string& p = lowered_;
  // Classic iterative wildcard matching with backtracking on the most
  // recent '%' (linear in |text| for typical patterns). The pattern is
  // pre-lowered; text bytes lower on the fly.
  size_t ti = 0, pi = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (ti < text.size()) {
    if (pi < p.size() && (p[pi] == '_' || p[pi] == LowerByte(text[ti]))) {
      ++ti;
      ++pi;
    } else if (pi < p.size() && p[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < p.size() && p[pi] == '%') ++pi;
  return pi == p.size();
}

}  // namespace saql
