#include "core/status.h"

namespace saql {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace saql
