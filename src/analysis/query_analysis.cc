#include "analysis/query_analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "analysis/dataflow.h"
#include "core/like_matcher.h"
#include "core/string_util.h"
#include "core/time_util.h"
#include "parser/analyzer.h"

namespace saql {

FieldId CanonicalEntityFieldId(EntityType type, FieldId id) {
  if (id != FieldId::kName) return id;
  switch (type) {
    case EntityType::kProcess:
      return FieldId::kExeName;
    case EntityType::kFile:
      return FieldId::kPath;
    case EntityType::kNetwork:
      return id;  // analyzer rejects `name` on network entities
  }
  return id;
}

namespace {

// ---------------------------------------------------------------------------
// Constraint normalization
// ---------------------------------------------------------------------------

/// One AST constraint resolved against its scope: entity constraints carry
/// the entity-typed FieldId (with the polymorphic `name` spelling lowered to
/// the concrete attribute), global constraint lines the whole-event FieldId.
struct NormConstraint {
  const AttrConstraint* ast = nullptr;
  FieldId field = FieldId::kInvalid;
  bool from_global = false;  ///< mapped from a global constraint line
};

/// Lowers the polymorphic `name` attribute to the entity's concrete field so
/// `p1[name = "a"]` and `p1[exe_name = "b"]` land in one satisfiability
/// group.
FieldId CanonicalEntityField(EntityType type, FieldId id) {
  return CanonicalEntityFieldId(type, id);
}

/// Maps a global `subject_*` / `object_*` passthrough field to the entity
/// role and entity-typed attribute it reads. Returns kInvalid when `id` is
/// not a passthrough (agentid, amount, ...).
FieldId PassthroughEntityField(FieldId id, EntityRole* role) {
  switch (id) {
    case FieldId::kSubjectExeName:
      *role = EntityRole::kSubject;
      return FieldId::kExeName;
    case FieldId::kSubjectPid:
      *role = EntityRole::kSubject;
      return FieldId::kPid;
    case FieldId::kSubjectUser:
      *role = EntityRole::kSubject;
      return FieldId::kUser;
    case FieldId::kObjectExeName:
      *role = EntityRole::kObject;
      return FieldId::kExeName;
    case FieldId::kObjectPid:
      *role = EntityRole::kObject;
      return FieldId::kPid;
    case FieldId::kObjectUser:
      *role = EntityRole::kObject;
      return FieldId::kUser;
    case FieldId::kObjectPath:
      *role = EntityRole::kObject;
      return FieldId::kPath;
    case FieldId::kObjectName:
      *role = EntityRole::kObject;
      return FieldId::kName;
    case FieldId::kObjectSrcIp:
      *role = EntityRole::kObject;
      return FieldId::kSrcIp;
    case FieldId::kObjectDstIp:
      *role = EntityRole::kObject;
      return FieldId::kDstIp;
    case FieldId::kObjectSrcPort:
      *role = EntityRole::kObject;
      return FieldId::kSrcPort;
    case FieldId::kObjectDstPort:
      *role = EntityRole::kObject;
      return FieldId::kDstPort;
    case FieldId::kObjectProtocol:
      *role = EntityRole::kObject;
      return FieldId::kProtocol;
    default:
      return FieldId::kInvalid;
  }
}

/// True when the entity type carries the (canonical) attribute at all —
/// constraints on missing attributes evaluate to false for every event.
bool EntityHasField(EntityType type, FieldId id) {
  switch (type) {
    case EntityType::kProcess:
      return id == FieldId::kExeName || id == FieldId::kPid ||
             id == FieldId::kUser || id == FieldId::kName;
    case EntityType::kFile:
      return id == FieldId::kPath || id == FieldId::kName;
    case EntityType::kNetwork:
      return id == FieldId::kSrcIp || id == FieldId::kDstIp ||
             id == FieldId::kSrcPort || id == FieldId::kDstPort ||
             id == FieldId::kProtocol;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Satisfiability over one (scope, field) conjunction
// ---------------------------------------------------------------------------

struct Contradiction {
  std::string why;
  SourceSpan span;
  bool involves_global = false;
};

std::string Describe(const NormConstraint& c) {
  std::string out = "`" + c.ast->ToString() + "`";
  if (c.from_global) out += " (global constraint)";
  return out;
}

Contradiction MakeContradiction(const NormConstraint& a,
                                const NormConstraint& b,
                                const std::string& detail) {
  Contradiction out;
  out.why = Describe(a) + " contradicts " + Describe(b) + detail;
  // Anchor on the non-global constraint when only one side is global so the
  // span stays inside the pattern being diagnosed.
  const NormConstraint& anchor = a.from_global && !b.from_global ? b : a;
  const NormConstraint& other = (&anchor == &a) ? b : a;
  out.span = anchor.ast->span;
  if (anchor.from_global == other.from_global) {
    out.span = SourceSpan::Cover(anchor.ast->span, other.ast->span);
  }
  out.involves_global = a.from_global || b.from_global;
  return out;
}

/// Exact string equality under the engine's case-insensitive LIKE semantics.
bool CiEqual(const std::string& a, const std::string& b) {
  return ToLower(a) == ToLower(b);
}

/// Pairwise refutation for two string constraints. Conservative: returns a
/// contradiction only for provable cases (two different exact values; an
/// exact value a LIKE pattern rejects); pattern-vs-pattern is left alone.
std::optional<std::string> RefuteStringPair(ConstraintOp op_a,
                                            const std::string& va,
                                            ConstraintOp op_b,
                                            const std::string& vb) {
  LikeMatcher ma(va);
  LikeMatcher mb(vb);
  if (op_a == ConstraintOp::kEq && op_b == ConstraintOp::kEq) {
    if (ma.is_exact() && mb.is_exact() && !CiEqual(va, vb)) {
      return ": no value equals both";
    }
    if (ma.is_exact() && !mb.is_exact() && !mb.Matches(va)) {
      return ": the pattern rejects the required value";
    }
    if (!ma.is_exact() && mb.is_exact() && !ma.Matches(vb)) {
      return ": the pattern rejects the required value";
    }
    return std::nullopt;
  }
  // eq V vs ne W with V == W (exact on both sides).
  if (op_a == ConstraintOp::kEq && op_b == ConstraintOp::kNe &&
      ma.is_exact() && mb.is_exact() && CiEqual(va, vb)) {
    return ": requires and excludes the same value";
  }
  if (op_a == ConstraintOp::kNe && op_b == ConstraintOp::kEq &&
      ma.is_exact() && mb.is_exact() && CiEqual(va, vb)) {
    return ": requires and excludes the same value";
  }
  return std::nullopt;
}

/// Satisfiability of the numeric constraints in one group by interval
/// intersection over the reals (conservative for integer attributes: `x > 3
/// && x < 4` is treated as satisfiable).
std::optional<Contradiction> RefuteNumeric(
    const std::vector<const NormConstraint*>& cs) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_strict = false, hi_strict = false;
  const NormConstraint* lo_src = nullptr;
  const NormConstraint* hi_src = nullptr;
  const NormConstraint* eq_src = nullptr;
  double eq_val = 0;

  auto numeric = [](const NormConstraint* c) {
    return c->ast->value.is_int() ? static_cast<double>(c->ast->value.AsInt())
                                  : c->ast->value.AsFloat();
  };

  for (const NormConstraint* c : cs) {
    double v = numeric(c);
    switch (c->ast->op) {
      case ConstraintOp::kEq:
        if (eq_src != nullptr && eq_val != v) {
          return MakeContradiction(*eq_src, *c, ": no value equals both");
        }
        eq_src = c;
        eq_val = v;
        break;
      case ConstraintOp::kNe:
        break;  // handled against eq below
      case ConstraintOp::kLt:
        if (v < hi || (v == hi && !hi_strict)) {
          hi = v;
          hi_strict = true;
          hi_src = c;
        }
        break;
      case ConstraintOp::kLe:
        if (v < hi) {
          hi = v;
          hi_strict = false;
          hi_src = c;
        }
        break;
      case ConstraintOp::kGt:
        if (v > lo || (v == lo && !lo_strict)) {
          lo = v;
          lo_strict = true;
          lo_src = c;
        }
        break;
      case ConstraintOp::kGe:
        if (v > lo) {
          lo = v;
          lo_strict = false;
          lo_src = c;
        }
        break;
    }
  }

  if (lo_src != nullptr && hi_src != nullptr &&
      (lo > hi || (lo == hi && (lo_strict || hi_strict)))) {
    return MakeContradiction(*lo_src, *hi_src, ": empty numeric range");
  }
  if (eq_src != nullptr) {
    if (lo_src != nullptr &&
        (eq_val < lo || (eq_val == lo && lo_strict))) {
      return MakeContradiction(*eq_src, *lo_src,
                               ": the required value is out of range");
    }
    if (hi_src != nullptr &&
        (eq_val > hi || (eq_val == hi && hi_strict))) {
      return MakeContradiction(*eq_src, *hi_src,
                               ": the required value is out of range");
    }
    for (const NormConstraint* c : cs) {
      if (c->ast->op == ConstraintOp::kNe && numeric(c) == eq_val) {
        return MakeContradiction(*eq_src, *c,
                                 ": requires and excludes the same value");
      }
    }
  }
  return std::nullopt;
}

/// Finds a provable contradiction within one (scope, field) conjunction, or
/// nullopt when the conjunction may be satisfiable.
std::optional<Contradiction> FindContradiction(
    const std::vector<NormConstraint>& group) {
  // String pairs.
  for (size_t i = 0; i < group.size(); ++i) {
    if (!group[i].ast->value.is_string()) continue;
    for (size_t j = i + 1; j < group.size(); ++j) {
      if (!group[j].ast->value.is_string()) continue;
      std::optional<std::string> why = RefuteStringPair(
          group[i].ast->op, group[i].ast->value.AsString(),
          group[j].ast->op, group[j].ast->value.AsString());
      if (why.has_value()) {
        return MakeContradiction(group[i], group[j], *why);
      }
    }
  }
  // Numeric interval.
  std::vector<const NormConstraint*> numeric;
  for (const NormConstraint& c : group) {
    if (c.ast->value.is_numeric()) numeric.push_back(&c);
  }
  if (numeric.size() >= 2) return RefuteNumeric(numeric);
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Schema envelope: which ops make sense against each object type
// ---------------------------------------------------------------------------

/// Operations the collection schema can emit against an object of `type`
/// (matches the simulator and the op comments in core/event.h). A pattern
/// whose op alternation intersects none of these can never receive an event.
OpMask PlausibleOps(EntityType type) {
  switch (type) {
    case EntityType::kProcess:
      return OpBit(EventOp::kStart) | OpBit(EventOp::kExecute) |
             OpBit(EventOp::kKill);
    case EntityType::kFile:
      return OpBit(EventOp::kRead) | OpBit(EventOp::kWrite) |
             OpBit(EventOp::kDelete) | OpBit(EventOp::kRename) |
             OpBit(EventOp::kChmod) | OpBit(EventOp::kExecute);
    case EntityType::kNetwork:
      return OpBit(EventOp::kRead) | OpBit(EventOp::kWrite) |
             OpBit(EventOp::kConnect) | OpBit(EventOp::kAccept) |
             OpBit(EventOp::kSend) | OpBit(EventOp::kRecv);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Individual passes
// ---------------------------------------------------------------------------

void Emit(std::vector<Diagnostic>* out, const char* code, Severity severity,
          SourceSpan span, std::string message, std::string fix_hint = "") {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  out->push_back(std::move(d));
}

/// Normalized per-role constraint groups of one pattern, keyed by the
/// canonical entity FieldId.
using FieldGroups = std::map<FieldId, std::vector<NormConstraint>>;

FieldGroups GroupEntityConstraints(const EntityPattern& entity) {
  FieldGroups groups;
  for (const AttrConstraint& c : entity.constraints) {
    FieldId id = ResolveEntityFieldId(entity.type, c.field);
    if (id == FieldId::kInvalid) continue;  // analyzer already rejected
    NormConstraint nc;
    nc.ast = &c;
    nc.field = CanonicalEntityField(entity.type, id);
    groups[nc.field].push_back(nc);
  }
  return groups;
}

/// SA001 within each pattern role and within the global constraint line set;
/// SA002 when merging a pattern's constraints with the global passthroughs
/// (or when a global passthrough reads an attribute the pattern's object
/// type lacks) refutes the pattern.
void CheckSatisfiability(const Query& q, std::vector<Diagnostic>* out) {
  // Global whole-event conjunction on its own.
  FieldGroups global_groups;
  for (const AttrConstraint& c : q.global_constraints) {
    FieldId id = ResolveEventFieldId(c.field);
    if (id == FieldId::kInvalid) continue;
    NormConstraint nc;
    nc.ast = &c;
    nc.field = id;
    global_groups[id].push_back(nc);
  }
  for (const auto& [field, group] : global_groups) {
    if (group.size() < 2) continue;
    std::optional<Contradiction> hit = FindContradiction(group);
    if (hit.has_value()) {
      Emit(out, "SA001", Severity::kError, hit->span,
           "unsatisfiable global constraints: " + hit->why,
           "drop or relax one of the constraints");
      return;  // one witness is enough; the query is already rejected
    }
  }

  // Per-pattern, per-role conjunctions, own constraints only (SA001) and
  // merged with the mapped global passthroughs (SA002).
  for (size_t pi = 0; pi < q.patterns.size(); ++pi) {
    const EventPatternDecl& decl = q.patterns[pi];
    for (EntityRole role : {EntityRole::kSubject, EntityRole::kObject}) {
      const EntityPattern& entity =
          role == EntityRole::kSubject ? decl.subject : decl.object;
      FieldGroups groups = GroupEntityConstraints(entity);
      bool own_unsat = false;
      for (const auto& [field, group] : groups) {
        if (group.size() < 2) continue;
        std::optional<Contradiction> hit = FindContradiction(group);
        if (hit.has_value()) {
          Emit(out, "SA001", Severity::kError, hit->span,
               "unsatisfiable constraints on " + entity.var + ": " + hit->why,
               "drop or relax one of the constraints");
          own_unsat = true;
          break;
        }
      }
      if (own_unsat) continue;

      // Merge in the global passthrough constraints that read this role.
      bool merged_any = false;
      for (const AttrConstraint& c : q.global_constraints) {
        FieldId event_id = ResolveEventFieldId(c.field);
        EntityRole target_role;
        FieldId entity_id = PassthroughEntityField(event_id, &target_role);
        if (entity_id == FieldId::kInvalid || target_role != role) continue;
        entity_id = CanonicalEntityField(entity.type, entity_id);
        if (!EntityHasField(entity.type, entity_id)) {
          Emit(out, "SA002", Severity::kError, decl.span,
               "pattern `" + decl.ToString() +
                   "` can never match: global constraint `" + c.ToString() +
                   "` reads attribute '" + c.field + "', which " +
                   EntityTypeName(entity.type) +
                   " objects do not carry, so the constraint is false for "
                   "every event this pattern accepts",
               "scope the constraint to the patterns whose object type "
               "carries the attribute");
          merged_any = false;
          break;
        }
        NormConstraint nc;
        nc.ast = &c;
        nc.field = entity_id;
        nc.from_global = true;
        groups[entity_id].push_back(nc);
        merged_any = true;
      }
      if (!merged_any) continue;
      for (const auto& [field, group] : groups) {
        if (group.size() < 2) continue;
        std::optional<Contradiction> hit = FindContradiction(group);
        if (hit.has_value() && hit->involves_global) {
          Emit(out, "SA002", Severity::kError, hit->span,
               "pattern `" + decl.ToString() +
                   "` can never match: " + hit->why,
               "reconcile the pattern with the global constraint");
          break;
        }
      }
    }
  }
}

/// SA003: the pattern's op alternation intersects no operation the schema
/// emits against its object type.
void CheckSchemaEnvelope(const Query& q, std::vector<Diagnostic>* out) {
  for (const EventPatternDecl& decl : q.patterns) {
    OpMask plausible = PlausibleOps(decl.object.type);
    if ((decl.ops & plausible) != 0) continue;
    Emit(out, "SA003", Severity::kWarning, decl.span,
         "dead pattern: no collector emits `" + OpMaskToString(decl.ops) +
             "` against a " + std::string(EntityTypeName(decl.object.type)) +
             " object, so `" + decl.ToString() + "` never receives an event",
         "use an operation the object type supports (" +
             OpMaskToString(plausible) + ")");
  }
}

/// SA010: window shorter than the 1 s event-time granularity, or a slide
/// that skips past the window it slides.
void CheckWindow(const Query& q, std::vector<Diagnostic>* out) {
  if (!q.window.has_value()) return;
  const WindowSpec& w = *q.window;
  if (w.kind != WindowSpec::Kind::kTime) return;
  if (w.length < kSecond) {
    Emit(out, "SA010", Severity::kWarning, w.span,
         "vacuous window: " + w.ToString() +
             " is shorter than the 1 s event-time granularity, so most "
             "windows hold at most one event",
         "use a window of at least one second");
  }
  if (w.slide > 0 && w.slide > w.length) {
    Emit(out, "SA010", Severity::kWarning, w.span,
         "gapped window: slide " + FormatDuration(w.slide) +
             " exceeds the window length " + FormatDuration(w.length) +
             ", so events between successive windows are never evaluated",
         "use a slide no longer than the window");
  }
}

bool IsConstantExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kUnary:
      return e.lhs != nullptr && IsConstantExpr(*e.lhs);
    case ExprKind::kBinary:
      return e.lhs != nullptr && e.rhs != nullptr && IsConstantExpr(*e.lhs) &&
             IsConstantExpr(*e.rhs);
    default:
      return false;
  }
}

/// SA011: aggregates whose every argument is a constant; SA012: invariant
/// model trained over an ungrouped state block.
void CheckAggregates(const Query& q, std::vector<Diagnostic>* out) {
  if (q.state.has_value()) {
    for (const StateField& f : q.state->fields) {
      if (f.expr == nullptr || f.expr->kind != ExprKind::kCall) continue;
      std::string callee = ToLower(f.expr->callee);
      if (!IsAggregateFunction(callee)) continue;
      if (f.expr->args.empty()) continue;
      bool all_const = true;
      for (const ExprPtr& a : f.expr->args) {
        if (!IsConstantExpr(*a)) {
          all_const = false;
          break;
        }
      }
      if (!all_const) continue;
      std::string detail =
          callee == "count_distinct" || callee == "set"
              ? " — over a constant it can only ever hold one value"
              : " — the aggregate reduces to a function of the event count";
      Emit(out, "SA011", Severity::kWarning, f.expr->span,
           "aggregate `" + f.expr->ToString() +
               "` is computed over a constant" + detail,
           "aggregate an event or entity attribute instead");
    }
  }
  if (q.invariant.has_value() && q.state.has_value() &&
      q.state->group_by.empty()) {
    Emit(out, "SA012", Severity::kWarning,
         SourceSpan{q.invariant->loc, q.invariant->loc},
         "invariant model is trained over an empty group key: all windows "
         "feed one global model, so per-entity anomalies wash out",
         "add `group by <entity>` to the state block");
  }
}

/// SA020: predicates that accept everything (`%`-only LIKE patterns,
/// duplicated constraints); SA021: constant alert conditions.
void CheckRedundancy(const Query& q, std::vector<Diagnostic>* out) {
  auto check_entity = [&](const EntityPattern& entity) {
    for (size_t i = 0; i < entity.constraints.size(); ++i) {
      const AttrConstraint& c = entity.constraints[i];
      if (c.op == ConstraintOp::kEq && c.value.is_string()) {
        const std::string& v = c.value.AsString();
        if (!v.empty() &&
            v.find_first_not_of('%') == std::string::npos) {
          Emit(out, "SA020", Severity::kHint, c.span,
               "`" + c.ToString() + "` matches every value",
               "drop the constraint");
        }
      }
      for (size_t j = i + 1; j < entity.constraints.size(); ++j) {
        const AttrConstraint& d = entity.constraints[j];
        if (c.field == d.field && c.op == d.op && c.value.Equals(d.value)) {
          Emit(out, "SA020", Severity::kHint, d.span,
               "duplicate constraint `" + d.ToString() + "`",
               "drop the repeated constraint");
        }
      }
    }
  };
  for (const EventPatternDecl& decl : q.patterns) {
    check_entity(decl.subject);
    check_entity(decl.object);
  }
  if (q.alert != nullptr && IsConstantExpr(*q.alert)) {
    bool truthy =
        q.alert->kind == ExprKind::kLiteral && q.alert->literal.Truthy();
    Emit(out, "SA021", Severity::kHint, q.alert->span,
         std::string("alert condition is constant") +
             (q.alert->kind == ExprKind::kLiteral
                  ? (truthy ? " (always fires)" : " (never fires)")
                  : ""),
         "alert on a computed value, or drop the clause to alert on every "
         "match");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Placement classification
// ---------------------------------------------------------------------------

const char* PlacementRationale::ModeName() const {
  switch (mode) {
    case CompiledQuery::ShardMode::kPartitionable:
      return "partitionable";
    case CompiledQuery::ShardMode::kPartitionableWithMerge:
      return "partitionable+merge";
    case CompiledQuery::ShardMode::kGlobal:
      return "global";
  }
  return "?";
}

std::string PlacementRationale::ToString() const {
  std::ostringstream os;
  os << "placement: " << ModeName() << " — " << reason;
  if (is_join) os << "\njoin-key analysis: " << join_detail;
  return os.str();
}

PlacementRationale QueryAnalysis::ExplainPlacement(
    const CompiledQuery& query) {
  PlacementRationale r;
  r.mode = query.shard_mode();
  const AnalyzedQuery& aq = query.analyzed();
  const Query& q = *aq.query;
  size_t npat = q.patterns.size();
  r.is_join = npat > 1;

  switch (r.mode) {
    case CompiledQuery::ShardMode::kGlobal:
      if (npat > 1) {
        r.reason = "multi-event join over " + std::to_string(npat) +
                   " patterns: partial matches correlate events that "
                   "subject-key sharding may route to different lanes";
      } else if (q.state.has_value() && q.window.has_value() &&
                 q.window->kind == WindowSpec::Kind::kCount) {
        r.reason = "count-based window: the every-N-events boundary only "
                   "exists on the globally ordered stream";
      } else {
        r.reason = "alert cooldown suppresses across the whole stream, so "
                   "alerts must be emitted from one lane";
      }
      break;
    case CompiledQuery::ShardMode::kPartitionableWithMerge:
      r.reason = "windowed aggregation groups by entity key: lanes "
                 "aggregate their partition and window results merge "
                 "downstream";
      break;
    case CompiledQuery::ShardMode::kPartitionable:
      r.reason = "stateless single-pattern filter: each event is evaluated "
                 "independently, on whichever lane it hashes to";
      break;
  }

  if (r.is_join) {
    // A variable that is the *subject* of every pattern pins all
    // contributing events to one (agent, pid) partition — exactly the key
    // the sharded executor hashes on — so the join is partitionable.
    for (const auto& [var, bindings] : aq.entity_vars) {
      std::vector<bool> covered(npat, false);
      bool all_subject = true;
      for (const EntityBinding& b : bindings) {
        if (b.role != EntityRole::kSubject) {
          all_subject = false;
          break;
        }
        if (b.pattern_index >= 0 &&
            static_cast<size_t>(b.pattern_index) < npat) {
          covered[b.pattern_index] = true;
        }
      }
      if (!all_subject) continue;
      if (std::all_of(covered.begin(), covered.end(),
                      [](bool c) { return c; })) {
        r.join_partitionable = true;
        r.join_key_var = var;
        break;
      }
    }
    if (r.join_partitionable) {
      r.join_detail =
          "variable '" + r.join_key_var +
          "' is the subject of every pattern, so all contributing events "
          "share one (agent, pid) partition key — this join is eligible "
          "for sharded subject-key execution (see ROADMAP: partitioned "
          "joins)";
    } else {
      r.join_detail =
          "no variable is the subject of every pattern, so contributing "
          "events have no common partition key and the join needs the "
          "global lane";
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Lint driver
// ---------------------------------------------------------------------------

std::vector<Diagnostic> QueryAnalysis::Lint(const CompiledQuery& query) {
  std::vector<Diagnostic> out;
  const Query& q = *query.analyzed().query;

  CheckSatisfiability(q, &out);
  CheckSchemaEnvelope(q, &out);
  CheckWindow(q, &out);
  CheckAggregates(q, &out);
  CheckRedundancy(q, &out);
  RunDataflowChecks(query.analyzed(), &out);

  PlacementRationale placement = ExplainPlacement(query);
  SourceSpan query_span =
      q.patterns.empty() ? SourceSpan{} : q.patterns.front().span;
  Emit(&out, "SA030", Severity::kNote, query_span,
       "placement: " + std::string(placement.ModeName()) + " — " +
           placement.reason);
  if (placement.is_join) {
    Emit(&out, "SA031", Severity::kNote, query_span,
         "join-key analysis: " + placement.join_detail);
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) <
                            static_cast<int>(b.severity);
                   });
  return out;
}

}  // namespace saql
