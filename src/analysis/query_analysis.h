#ifndef SAQL_ANALYSIS_QUERY_ANALYSIS_H_
#define SAQL_ANALYSIS_QUERY_ANALYSIS_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "engine/compiled_query.h"

namespace saql {

/// Lowers the polymorphic `name` attribute to the entity's concrete field
/// (`exe_name` for processes, `path` for files) so differently spelled
/// constraints land in one satisfiability / canonicalization group. Shared
/// by the per-query satisfiability pass and the fleet analyzer's slot
/// normalization.
FieldId CanonicalEntityFieldId(EntityType type, FieldId id);

/// Why a query landed on its `CompiledQuery::shard_mode()`, derived from the
/// same facts the scheduler uses (pattern count, statefulness, window kind,
/// alert cooldown) — `mode` is read straight from the compiled query, so the
/// rationale can never disagree with the actual placement.
///
/// For multi-event joins, the join-key analysis reports whether the shared
/// entity variables imply a consistent subject-key partition: a variable that
/// is the *subject* of every pattern pins all contributing events to one
/// (agent, pid) partition, so such a join could run on the sharded lanes with
/// subject-key routing instead of the serializing global lane. This is the
/// planning fact the partitioned-join roadmap item consumes.
struct PlacementRationale {
  CompiledQuery::ShardMode mode = CompiledQuery::ShardMode::kPartitionable;
  std::string reason;  ///< one sentence: why this mode

  bool is_join = false;            ///< more than one event pattern
  bool join_partitionable = false; ///< a shared subject var covers all patterns
  std::string join_key_var;        ///< that variable, when partitionable
  std::string join_detail;         ///< one sentence on the join-key outcome

  /// "partitionable" / "partitionable+merge" / "global".
  const char* ModeName() const;

  /// Multi-line rendering for the shell's `explain` command.
  std::string ToString() const;
};

/// Static analysis over one compiled query: runs after the semantic analyzer
/// and compilation, before scheduling. All passes are conservative — an
/// error-severity diagnostic is only emitted when the query is *provably*
/// broken under the engine's constraint semantics (LIKE matching is
/// case-insensitive; a constraint on an attribute the entity type lacks is
/// false), so rejecting on errors can never lose a query that could alert.
class QueryAnalysis {
 public:
  /// Runs every lint pass and returns the findings, errors first. Includes
  /// the placement notes (SA030/SA031); see `Diagnostic` for the code table.
  static std::vector<Diagnostic> Lint(const CompiledQuery& query);

  /// Placement classification only (the `explain` command's payload).
  static PlacementRationale ExplainPlacement(const CompiledQuery& query);
};

}  // namespace saql

#endif  // SAQL_ANALYSIS_QUERY_ANALYSIS_H_
