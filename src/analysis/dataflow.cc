#include "analysis/dataflow.h"

#include <set>
#include <string>

#include "core/field_access.h"
#include "core/string_util.h"

namespace saql {
namespace {

/// Schema type of an attribute, for both the entity-scoped and whole-event
/// spellings. This is the single source of truth the type checker reads;
/// it mirrors the storage types in core/event.h.
StaticType FieldType(FieldId id) {
  switch (id) {
    case FieldId::kExeName:
    case FieldId::kUser:
    case FieldId::kPath:
    case FieldId::kSrcIp:
    case FieldId::kDstIp:
    case FieldId::kProtocol:
    case FieldId::kName:
    case FieldId::kAgentId:
    case FieldId::kOp:
    case FieldId::kSubjectExeName:
    case FieldId::kSubjectUser:
    case FieldId::kObjectExeName:
    case FieldId::kObjectUser:
    case FieldId::kObjectPath:
    case FieldId::kObjectName:
    case FieldId::kObjectSrcIp:
    case FieldId::kObjectDstIp:
    case FieldId::kObjectProtocol:
      return StaticType::kString;
    case FieldId::kPid:
    case FieldId::kSrcPort:
    case FieldId::kDstPort:
    case FieldId::kAmount:
    case FieldId::kTs:
    case FieldId::kId:
    case FieldId::kSubjectPid:
    case FieldId::kObjectPid:
    case FieldId::kObjectSrcPort:
    case FieldId::kObjectDstPort:
      return StaticType::kNumeric;
    case FieldId::kFailed:
      return StaticType::kBool;
    case FieldId::kInvalid:
      return StaticType::kUnknown;
  }
  return StaticType::kUnknown;
}

StaticType LiteralType(const Value& v) {
  if (v.is_string()) return StaticType::kString;
  if (v.is_bool()) return StaticType::kBool;
  if (v.is_numeric()) return StaticType::kNumeric;
  if (v.is_set()) return StaticType::kSet;
  return StaticType::kUnknown;  // null
}

/// Result type of an aggregate call. `min`/`max` return one of their input
/// values, so they take the argument's type; `top` depends on the
/// aggregator's tie-breaking representation and stays unknown.
StaticType AggregateType(const std::string& callee, const Expr& e,
                         const AnalyzedQuery& aq);

StaticType Infer(const AnalyzedQuery& aq, const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return LiteralType(e.literal);
    case ExprKind::kRef:
      switch (e.ref_kind) {
        case RefKind::kEntity:
        case RefKind::kEvent:
          return FieldType(e.ref_field);
        case RefKind::kState: {
          if (!aq.query->state.has_value()) return StaticType::kUnknown;
          const auto& fields = aq.query->state->fields;
          if (e.ref_index < 0 ||
              static_cast<size_t>(e.ref_index) >= fields.size()) {
            return StaticType::kUnknown;
          }
          const ExprPtr& def = fields[static_cast<size_t>(e.ref_index)].expr;
          return def == nullptr ? StaticType::kUnknown : Infer(aq, *def);
        }
        case RefKind::kGroupKey: {
          if (e.ref_index < 0 ||
              static_cast<size_t>(e.ref_index) >= aq.group_keys.size()) {
            return StaticType::kUnknown;
          }
          return FieldType(
              aq.group_keys[static_cast<size_t>(e.ref_index)].field_id);
        }
        case RefKind::kInvariant: {
          // Resolved through the variable's init statement only — update
          // statements reference the variable itself and would recurse.
          if (!aq.query->invariant.has_value()) return StaticType::kUnknown;
          if (e.ref_index < 0 ||
              static_cast<size_t>(e.ref_index) >= aq.invariant_vars.size()) {
            return StaticType::kUnknown;
          }
          const std::string& var =
              aq.invariant_vars[static_cast<size_t>(e.ref_index)];
          for (const InvariantStmt& s : aq.query->invariant->stmts) {
            if (s.is_init && s.var == var && s.expr != nullptr &&
                s.expr->kind == ExprKind::kLiteral) {
              return LiteralType(s.expr->literal);
            }
          }
          return StaticType::kUnknown;
        }
        case RefKind::kCluster:
          // cluster.outlier is the DBSCAN stage's boolean verdict; the
          // remaining cluster.* attributes (size, distance) are numeric but
          // engine-versioned, so only the documented one is typed.
          return e.field == "outlier" ? StaticType::kBool
                                      : StaticType::kUnknown;
        case RefKind::kUnresolved:
          return StaticType::kUnknown;
      }
      return StaticType::kUnknown;
    case ExprKind::kCall: {
      std::string callee = ToLower(e.callee);
      if (IsAggregateFunction(callee)) return AggregateType(callee, e, aq);
      if (callee == "sqrt" || callee == "log" || callee == "exp" ||
          callee == "abs" || callee == "pow") {
        return StaticType::kNumeric;
      }
      return StaticType::kUnknown;
    }
    case ExprKind::kUnary:
      switch (e.un_op) {
        case UnOp::kNot:
          return StaticType::kBool;
        case UnOp::kNeg:
        case UnOp::kSize:
          return StaticType::kNumeric;
      }
      return StaticType::kUnknown;
    case ExprKind::kBinary:
      switch (e.bin_op) {
        case BinOp::kOr:
        case BinOp::kAnd:
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
        case BinOp::kIn:
          return StaticType::kBool;
        case BinOp::kUnion:
        case BinOp::kDiff:
        case BinOp::kIntersect:
          return StaticType::kSet;
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod:
          return StaticType::kNumeric;
      }
      return StaticType::kUnknown;
  }
  return StaticType::kUnknown;
}

StaticType AggregateType(const std::string& callee, const Expr& e,
                         const AnalyzedQuery& aq) {
  if (callee == "set") return StaticType::kSet;
  if (callee == "min" || callee == "max") {
    return e.args.empty() ? StaticType::kUnknown : Infer(aq, *e.args[0]);
  }
  if (callee == "top") return StaticType::kUnknown;
  // avg, sum, count, stddev, median, count_distinct.
  return StaticType::kNumeric;
}

void Emit(std::vector<Diagnostic>* out, const char* code, Severity severity,
          SourceSpan span, std::string message, std::string fix_hint = "") {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// SA040 — cross-type comparisons
// ---------------------------------------------------------------------------

bool IsOrderedCompare(BinOp op) {
  return op == BinOp::kLt || op == BinOp::kLe || op == BinOp::kGt ||
         op == BinOp::kGe;
}

/// Both sides concretely typed and the comparison provably never holds:
/// ordered comparisons across different types (or between sets) are
/// `Value::Compare` errors that poison the whole evaluation; equality
/// across different types is always false (`Value::Equals` coerces between
/// int and float only, which the single kNumeric type already absorbs).
bool ComparisonNeverHolds(BinOp op, StaticType lhs, StaticType rhs) {
  if (lhs == StaticType::kUnknown || rhs == StaticType::kUnknown) {
    return false;
  }
  if (IsOrderedCompare(op)) {
    return lhs != rhs || lhs == StaticType::kSet;
  }
  if (op == BinOp::kEq) return lhs != rhs;
  return false;
}

void CheckComparisons(const AnalyzedQuery& aq, const Expr& e,
                      std::vector<Diagnostic>* out) {
  if (e.kind == ExprKind::kBinary && e.lhs != nullptr && e.rhs != nullptr) {
    StaticType lt = Infer(aq, *e.lhs);
    StaticType rt = Infer(aq, *e.rhs);
    if (ComparisonNeverHolds(e.bin_op, lt, rt)) {
      Emit(out, "SA040", Severity::kError, e.span,
           "cross-type comparison `" + e.ToString() + "` (" +
               StaticTypeName(lt) + " vs " + StaticTypeName(rt) +
               ") can never hold: " +
               (IsOrderedCompare(e.bin_op)
                    ? "ordered comparisons across types are evaluation "
                      "errors, so the whole expression fails"
                    : "equality across types is always false"),
           "compare values of the same type");
      return;  // one finding per comparison; operands are its own subtree
    }
  }
  if (e.lhs != nullptr) CheckComparisons(aq, *e.lhs, out);
  if (e.rhs != nullptr) CheckComparisons(aq, *e.rhs, out);
  for (const ExprPtr& a : e.args) CheckComparisons(aq, *a, out);
}

/// SA040 over attribute constraints: the literal's type against the
/// schema type of the constrained field. `pid = "abc"` compares a numeric
/// attribute with a string and can never match any event.
void CheckConstraintTypes(const AnalyzedQuery& aq,
                          std::vector<Diagnostic>* out) {
  auto check = [&](const AttrConstraint& c, FieldId id) {
    StaticType ft = FieldType(id);
    StaticType vt = LiteralType(c.value);
    if (ft == StaticType::kUnknown || vt == StaticType::kUnknown) return;
    if (ft == vt) return;
    Emit(out, "SA040", Severity::kError, c.span,
         "cross-type constraint `" + c.ToString() + "`: attribute '" +
             c.field + "' is " + StaticTypeName(ft) + " but the value is " +
             StaticTypeName(vt) + ", so the constraint matches no event",
         "use a " + std::string(StaticTypeName(ft)) + " value");
  };
  const Query& q = *aq.query;
  for (const AttrConstraint& c : q.global_constraints) {
    check(c, ResolveEventFieldId(c.field));
  }
  for (const EventPatternDecl& decl : q.patterns) {
    for (const AttrConstraint& c : decl.subject.constraints) {
      check(c, ResolveEntityFieldId(decl.subject.type, c.field));
    }
    for (const AttrConstraint& c : decl.object.constraints) {
      check(c, ResolveEntityFieldId(decl.object.type, c.field));
    }
  }
}

// ---------------------------------------------------------------------------
// Expression enumeration shared by the passes
// ---------------------------------------------------------------------------

/// Calls `fn` with every expression root of the query: state fields, the
/// alert condition, return items, invariant statements, cluster points.
template <typename Fn>
void ForEachExprRoot(const Query& q, Fn fn) {
  if (q.state.has_value()) {
    for (const StateField& f : q.state->fields) {
      if (f.expr != nullptr) fn(*f.expr);
    }
  }
  if (q.invariant.has_value()) {
    for (const InvariantStmt& s : q.invariant->stmts) {
      if (s.expr != nullptr) fn(*s.expr);
    }
  }
  if (q.cluster.has_value()) {
    for (const ExprPtr& p : q.cluster->points) {
      if (p != nullptr) fn(*p);
    }
  }
  if (q.alert != nullptr) fn(*q.alert);
  for (const ReturnItem& item : q.returns) {
    if (item.expr != nullptr) fn(*item.expr);
  }
}

void CollectRefBases(const Expr& e, std::set<std::string>* out) {
  if (e.kind == ExprKind::kRef) out->insert(e.base);
  if (e.lhs != nullptr) CollectRefBases(*e.lhs, out);
  if (e.rhs != nullptr) CollectRefBases(*e.rhs, out);
  for (const ExprPtr& a : e.args) CollectRefBases(*a, out);
}

// ---------------------------------------------------------------------------
// SA041 — unused pattern variables
// ---------------------------------------------------------------------------

void CheckUnusedVariables(const AnalyzedQuery& aq,
                          std::vector<Diagnostic>* out) {
  const Query& q = *aq.query;
  std::set<std::string> used;
  ForEachExprRoot(q, [&](const Expr& e) { CollectRefBases(e, &used); });
  if (q.state.has_value()) {
    for (const GroupKey& k : q.state->group_by) used.insert(k.base);
  }

  auto check_entity = [&](const EntityPattern& entity) {
    const std::string& var = entity.var;
    if (var.empty() || var[0] == '_') return;     // anonymous spelling
    if (!entity.constraints.empty()) return;      // still filters events
    if (used.count(var) != 0) return;             // read by an expression
    auto it = aq.entity_vars.find(var);
    if (it != aq.entity_vars.end() && it->second.size() > 1) {
      return;  // shared across patterns: an implicit join constraint
    }
    Emit(out, "SA041", Severity::kWarning, entity.span,
         "unused pattern variable '" + var +
             "': it has no constraints, is never referenced by any "
             "expression, and joins no other pattern",
         "drop the name (an anonymous entity matches the same events) or "
         "reference the variable");
  };
  for (const EventPatternDecl& decl : q.patterns) {
    check_entity(decl.subject);
    check_entity(decl.object);
  }
}

// ---------------------------------------------------------------------------
// SA042 — never-read state fields
// ---------------------------------------------------------------------------

/// True when any expression root outside the state block reads state field
/// `index` (resolved kState references; falls back to `ss.field` name
/// matching for roots the analyzer leaves unresolved).
bool StateFieldRead(const Expr& e, int index, const std::string& state_var,
                    const std::string& field_name) {
  if (e.kind == ExprKind::kRef) {
    if (e.ref_kind == RefKind::kState && e.ref_index == index) return true;
    if (e.ref_kind == RefKind::kUnresolved && e.base == state_var &&
        e.field == field_name) {
      return true;
    }
  }
  if (e.lhs != nullptr &&
      StateFieldRead(*e.lhs, index, state_var, field_name)) {
    return true;
  }
  if (e.rhs != nullptr &&
      StateFieldRead(*e.rhs, index, state_var, field_name)) {
    return true;
  }
  for (const ExprPtr& a : e.args) {
    if (StateFieldRead(*a, index, state_var, field_name)) return true;
  }
  return false;
}

void CheckUnreadStateFields(const AnalyzedQuery& aq,
                            std::vector<Diagnostic>* out) {
  const Query& q = *aq.query;
  if (!q.state.has_value()) return;
  const StateBlock& sb = *q.state;
  for (size_t i = 0; i < sb.fields.size(); ++i) {
    const StateField& f = sb.fields[i];
    bool read = false;
    auto scan = [&](const Expr& e) {
      if (!read &&
          StateFieldRead(e, static_cast<int>(i), sb.var, f.name)) {
        read = true;
      }
    };
    if (q.invariant.has_value()) {
      for (const InvariantStmt& s : q.invariant->stmts) {
        if (s.expr != nullptr) scan(*s.expr);
      }
    }
    if (q.cluster.has_value()) {
      for (const ExprPtr& p : q.cluster->points) {
        if (p != nullptr) scan(*p);
      }
    }
    if (q.alert != nullptr) scan(*q.alert);
    for (const ReturnItem& item : q.returns) {
      if (item.expr != nullptr) scan(*item.expr);
    }
    if (read) continue;
    SourceSpan span{f.loc, f.loc};
    if (f.expr != nullptr) span = SourceSpan{f.loc, f.expr->span.end};
    Emit(out, "SA042", Severity::kWarning, span,
         "state field '" + f.name +
             "' is aggregated every window but never read by any alert, "
             "return, invariant, or cluster expression",
         "drop the field or reference it");
  }
}

// ---------------------------------------------------------------------------
// SA043 — constant-foldable subexpressions
// ---------------------------------------------------------------------------

bool IsConstantSubtree(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kUnary:
      return e.lhs != nullptr && IsConstantSubtree(*e.lhs);
    case ExprKind::kBinary:
      return e.lhs != nullptr && e.rhs != nullptr &&
             IsConstantSubtree(*e.lhs) && IsConstantSubtree(*e.rhs);
    default:
      return false;
  }
}

/// Emits one hint per *maximal* all-literal operator subtree: recursion
/// stops at a constant node, so `(2 + 3) * 4` inside a larger expression
/// reports once, at the outermost foldable node.
void FindFoldable(const Expr& e, std::vector<Diagnostic>* out) {
  if ((e.kind == ExprKind::kBinary || e.kind == ExprKind::kUnary) &&
      IsConstantSubtree(e)) {
    Emit(out, "SA043", Severity::kHint, e.span,
         "constant subexpression `" + e.ToString() +
             "` is re-evaluated on every use",
         "fold it to its value");
    return;
  }
  if (e.lhs != nullptr) FindFoldable(*e.lhs, out);
  if (e.rhs != nullptr) FindFoldable(*e.rhs, out);
  for (const ExprPtr& a : e.args) FindFoldable(*a, out);
}

}  // namespace

const char* StaticTypeName(StaticType type) {
  switch (type) {
    case StaticType::kUnknown:
      return "unknown";
    case StaticType::kString:
      return "string";
    case StaticType::kNumeric:
      return "numeric";
    case StaticType::kBool:
      return "bool";
    case StaticType::kSet:
      return "set";
  }
  return "?";
}

StaticType InferExprType(const AnalyzedQuery& aq, const Expr& e) {
  return Infer(aq, e);
}

void RunDataflowChecks(const AnalyzedQuery& aq,
                       std::vector<Diagnostic>* out) {
  const Query& q = *aq.query;

  CheckConstraintTypes(aq, out);
  ForEachExprRoot(q, [&](const Expr& e) { CheckComparisons(aq, e, out); });

  CheckUnusedVariables(aq, out);
  CheckUnreadStateFields(aq, out);

  // A fully constant alert is SA021's finding (query_analysis.cc); the
  // foldable-subtree hint covers constants *inside* live expressions.
  if (q.alert != nullptr && !IsConstantSubtree(*q.alert)) {
    FindFoldable(*q.alert, out);
  }
  if (q.state.has_value()) {
    for (const StateField& f : q.state->fields) {
      if (f.expr != nullptr) FindFoldable(*f.expr, out);
    }
  }
  if (q.invariant.has_value()) {
    for (const InvariantStmt& s : q.invariant->stmts) {
      if (s.expr != nullptr) FindFoldable(*s.expr, out);
    }
  }
  for (const ReturnItem& item : q.returns) {
    if (item.expr != nullptr) FindFoldable(*item.expr, out);
  }
}

}  // namespace saql
