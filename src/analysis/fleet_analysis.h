#ifndef SAQL_ANALYSIS_FLEET_ANALYSIS_H_
#define SAQL_ANALYSIS_FLEET_ANALYSIS_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "parser/analyzer.h"

namespace saql {

/// One cross-query relation discovered by the fleet analyzer. Indices refer
/// to the member vector handed to `FleetAnalysis::Analyze`.
struct FleetRelation {
  enum class Kind {
    /// The two queries are canonically identical (patterns, constraints,
    /// variable sharing, window, state, alert, and return shape all equal up
    /// to renaming) — they raise the same alerts on every stream.
    kDuplicate,
    /// `a` is subsumed by `b`: both are stateless rule queries with the same
    /// window/alert/return shape and `a`'s constraint conjunction provably
    /// implies `b`'s, so every alert `a` raises, `b` raises too.
    kSubsumes,
  };

  size_t a = 0;
  size_t b = 0;
  Kind kind = Kind::kDuplicate;
};

/// One routing-envelope cell: the (object type, operation) dispatch bucket
/// the sharded executor routes on, with every member whose patterns cover
/// it. Cells shared by several queries predict scheduler group sharing (one
/// event fan-in serving multiple queries).
struct RoutingCell {
  EntityType object_type = EntityType::kProcess;
  EventOp op = EventOp::kRead;
  std::vector<size_t> members;  ///< member indices, ascending
};

/// Result of a whole-fleet pass: per-member SA050/SA051 findings, the raw
/// relations, and the routing-envelope overlap statistics.
struct FleetReport {
  std::vector<std::string> names;               ///< member names, by index
  std::vector<FleetRelation> relations;         ///< discovered relations
  std::vector<std::vector<Diagnostic>> findings;  ///< per member
  std::vector<RoutingCell> cells;  ///< most-shared first, then type/op order

  /// True when any member drew an SA050/SA051 finding.
  bool HasFindings() const;

  /// Multi-line rendering for the shell's `fleet` command and saql_lint
  /// --fleet: relation lines first, then the routing-envelope table.
  std::string ToString() const;
};

/// Knobs for the fleet pass.
struct FleetOptions {
  /// Enable SA051 subsumption claims. Hooks pass `alert_cooldown == 0`;
  /// SA050 duplicate detection is sound regardless and always runs.
  bool subsumption = true;
};

/// Cross-query static analysis over a set of compiled (analyzed) queries:
/// the fleet-level counterpart to `QueryAnalysis::Lint`.
///
/// Every query is lowered to a canonical form — patterns as (subject type,
/// op mask, object type) skeletons, constraints normalized to (canonical
/// FieldId, op, case-folded value) slots in the style of the executor's
/// ConstraintIndex, variable names erased in favour of (pattern, role)
/// sharing partitions, and the window/state/alert/return shape rendered with
/// resolved references. On top of that form:
///
///   SA050 (warning) — exact canonical equality: the queries alert
///          identically on every stream (double alerting).
///   SA051 (warning) — one-sided subsumption between stateless rule queries
///          with identical shape: A's constraint conjunction implies B's
///          (string implication honours the engine's case-insensitive LIKE
///          semantics; numeric implication is interval-based), so A's alert
///          set is contained in B's on every stream.
///
/// Both checks are conservative: a relation is only reported when it
/// provably holds under the engine's constraint semantics; expression shapes
/// are compared structurally (no algebraic rewriting). Subsumption is never
/// claimed for stateful queries — tighter constraints change aggregate
/// inputs, which can *add* alerts — nor when `Options::subsumption` is off
/// (engines with a nonzero alert cooldown, where suppression timing breaks
/// the containment argument).
class FleetAnalysis {
 public:
  /// One registered query, as held by the engine registry / session.
  struct Member {
    std::string name;
    AnalyzedQueryPtr aq;
  };

  using Options = FleetOptions;

  /// Full pairwise pass over `members`. Findings for a related pair attach
  /// to the higher-indexed member (the one registered later), mirroring the
  /// incremental AddQuery check.
  static FleetReport Analyze(const std::vector<Member>& members,
                             const Options& options = Options());

  /// Incremental form used by the AddQuery hooks: checks `candidate`
  /// against the already-registered fleet and returns its SA050/SA051
  /// findings (never errors — fleet findings warn, they do not reject).
  static std::vector<Diagnostic> CheckQuery(const AnalyzedQuery& candidate,
                                            const std::vector<Member>& fleet,
                                            const Options& options = Options());
};

}  // namespace saql

#endif  // SAQL_ANALYSIS_FLEET_ANALYSIS_H_
