#include "analysis/diagnostic.h"

#include <sstream>

namespace saql {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kHint:
      return "hint";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " " << code;
  if (!span.IsZero()) os << " at " << span.ToString();
  os << ": " << message;
  if (!fix_hint.empty()) os << " (fix: " << fix_hint << ")";
  return os.str();
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                     Severity severity) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const std::string& indent) {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    os << indent << d.ToString() << "\n";
  }
  return os.str();
}

}  // namespace saql
