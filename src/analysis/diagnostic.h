#ifndef SAQL_ANALYSIS_DIAGNOSTIC_H_
#define SAQL_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "parser/token.h"

namespace saql {

/// Severity of one static-analysis diagnostic.
///
/// Severity is part of each code's contract (a code never changes severity
/// between releases): `kError` marks provably broken queries — the constraint
/// conjunction is unsatisfiable or a pattern can never match — and rejects
/// the query at `AddQuery` time. `kWarning` marks almost-certainly-wrong
/// constructs that still have defined behaviour (vacuous windows, aggregates
/// over constants); warnings attach to the query handle but never reject.
/// `kHint` suggests equivalent simplifications; `kNote` carries informational
/// facts such as the shard-placement rationale.
enum class Severity : uint8_t {
  kError = 0,
  kWarning = 1,
  kHint = 2,
  kNote = 3,
};

const char* SeverityName(Severity severity);

/// One static-analysis finding. `code` is stable across releases ("SA001");
/// `span` points at the offending source text of the query (1-based
/// line:col, zero span when the construct has no source anchor, e.g. a
/// whole-query note).
///
/// Code registry (see ROADMAP "Static analysis" for the full table):
///   SA001 error   unsatisfiable constraint conjunction
///   SA002 error   dead pattern: refuted by a global constraint
///   SA003 warning dead pattern: no emittable (object type, op) pair
///   SA010 warning vacuous window (below event granularity / gapped slide)
///   SA011 warning aggregate over a constant
///   SA012 warning invariant model over an empty group key
///   SA020 hint    always-true or redundant predicate
///   SA021 hint    constant alert condition
///   SA030 note    shard-placement classification
///   SA031 note    join-key partitionability
///   SA040 error   cross-type comparison/constraint (never holds)
///   SA041 warning unused pattern variable
///   SA042 warning never-read state field
///   SA043 hint    constant-foldable subexpression
///   SA050 warning exact-duplicate query in the fleet (double alerting)
///   SA051 warning query subsumed by / subsuming another fleet query
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  SourceSpan span;
  std::string message;
  std::string fix_hint;  ///< empty when no mechanical fix applies

  /// "error SA001 at 1:9-24: ..." (one line; fix hint appended when set).
  std::string ToString() const;
};

/// True when any diagnostic is error severity (the AddQuery reject test).
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Counts by severity, for summary lines.
size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                     Severity severity);

/// Renders one diagnostic per line, indented by `indent`.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const std::string& indent = "");

}  // namespace saql

#endif  // SAQL_ANALYSIS_DIAGNOSTIC_H_
