#include "analysis/fleet_analysis.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "analysis/query_analysis.h"
#include "core/like_matcher.h"
#include "core/string_util.h"

namespace saql {
namespace {

// ---------------------------------------------------------------------------
// Canonical constraint slots
// ---------------------------------------------------------------------------

/// One attribute constraint normalized the way the executor's
/// ConstraintIndex factors predicate slots: canonical FieldId (polymorphic
/// `name` lowered to the concrete attribute), operator, and a
/// representation-independent value (strings case-folded to match the
/// engine's case-insensitive LIKE semantics, numerics widened to double).
struct CanonConstraint {
  enum class Tag : uint8_t { kString, kNumber, kBool, kOther };

  FieldId field = FieldId::kInvalid;
  ConstraintOp op = ConstraintOp::kEq;
  Tag tag = Tag::kOther;
  std::string str;  ///< case-folded string / fallback rendering
  double num = 0;   ///< numeric / bool value

  /// Total-order key; equal keys ⇔ equal canonical constraints.
  std::string Key() const {
    char buf[360];
    std::snprintf(buf, sizeof(buf), "%d|%d|%d|%.17g|", static_cast<int>(field),
                  static_cast<int>(op), static_cast<int>(tag), num);
    return std::string(buf) + str;
  }
};

CanonConstraint MakeCanonConstraint(FieldId field, const AttrConstraint& c) {
  CanonConstraint out;
  out.field = field;
  out.op = c.op;
  if (c.value.is_string()) {
    out.tag = CanonConstraint::Tag::kString;
    out.str = ToLower(c.value.AsString());
  } else if (c.value.is_numeric()) {
    out.tag = CanonConstraint::Tag::kNumber;
    out.num = c.value.is_int() ? static_cast<double>(c.value.AsInt())
                               : c.value.AsFloat();
  } else if (c.value.is_bool()) {
    out.tag = CanonConstraint::Tag::kBool;
    out.num = c.value.AsBool() ? 1 : 0;
  } else {
    out.tag = CanonConstraint::Tag::kOther;
    out.str = c.value.ToString();
  }
  return out;
}

void SortByKey(std::vector<CanonConstraint>* v) {
  std::sort(v->begin(), v->end(),
            [](const CanonConstraint& a, const CanonConstraint& b) {
              return a.Key() < b.Key();
            });
}

bool SameConstraints(const std::vector<CanonConstraint>& a,
                     const std::vector<CanonConstraint>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Key() != b[i].Key()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// String-pattern implication under case-insensitive LIKE
// ---------------------------------------------------------------------------

/// Shape of a LIKE pattern, mirroring LikeMatcher's fast-path taxonomy.
/// `kGeneral` covers `_` wildcards and interior `%` — no implication rules
/// beyond literal pattern equality apply there.
struct PatShape {
  enum class Kind { kExact, kPrefix, kSuffix, kContains, kAll, kGeneral };
  Kind kind = Kind::kGeneral;
  std::string needle;  ///< case-folded pattern without the edge `%`s
};

PatShape ClassifyPattern(const std::string& lowered) {
  PatShape out;
  if (!lowered.empty() &&
      lowered.find_first_not_of('%') == std::string::npos) {
    out.kind = PatShape::Kind::kAll;
    return out;
  }
  if (lowered.find('_') != std::string::npos) return out;  // kGeneral
  size_t begin = lowered.find_first_not_of('%');
  size_t end = lowered.find_last_not_of('%');
  if (begin == std::string::npos) {  // empty pattern: exact-matches ""
    out.kind = PatShape::Kind::kExact;
    return out;
  }
  out.needle = lowered.substr(begin, end - begin + 1);
  if (out.needle.find('%') != std::string::npos) return out;  // interior %
  bool lead = begin > 0;
  bool trail = end + 1 < lowered.size();
  out.kind = lead ? (trail ? PatShape::Kind::kContains : PatShape::Kind::kSuffix)
                  : (trail ? PatShape::Kind::kPrefix : PatShape::Kind::kExact);
  return out;
}

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

/// True when `x LIKE pa` provably implies `x LIKE pb` for every string `x`
/// (both patterns already case-folded; LIKE is case-insensitive).
bool LikeImplies(const std::string& pa, const std::string& pb) {
  PatShape a = ClassifyPattern(pa);
  PatShape b = ClassifyPattern(pb);
  if (b.kind == PatShape::Kind::kAll) return true;
  if (pa == pb) return true;
  // An exact left side pins x to one value — just test it against pb.
  if (a.kind == PatShape::Kind::kExact) return LikeMatcher(pb).Matches(a.needle);
  switch (b.kind) {
    case PatShape::Kind::kPrefix:
      return a.kind == PatShape::Kind::kPrefix &&
             StartsWith(a.needle, b.needle);
    case PatShape::Kind::kSuffix:
      return a.kind == PatShape::Kind::kSuffix && EndsWith(a.needle, b.needle);
    case PatShape::Kind::kContains:
      return (a.kind == PatShape::Kind::kPrefix ||
              a.kind == PatShape::Kind::kSuffix ||
              a.kind == PatShape::Kind::kContains) &&
             Contains(a.needle, b.needle);
    default:
      return false;
  }
}

/// True when `x LIKE pa` provably implies `x NOT LIKE pb`: the two pattern
/// languages are disjoint. Only the cheap certain cases are claimed.
bool LikeExcludes(const std::string& pa, const std::string& pb) {
  PatShape a = ClassifyPattern(pa);
  PatShape b = ClassifyPattern(pb);
  if (a.kind == PatShape::Kind::kExact) return !LikeMatcher(pb).Matches(a.needle);
  if (b.kind != PatShape::Kind::kExact) return false;
  // pb pins x to one value; disjoint iff that value is outside pa.
  switch (a.kind) {
    case PatShape::Kind::kPrefix:
      return !StartsWith(b.needle, a.needle);
    case PatShape::Kind::kSuffix:
      return !EndsWith(b.needle, a.needle);
    case PatShape::Kind::kContains:
      return !Contains(b.needle, a.needle);
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Single-constraint implication
// ---------------------------------------------------------------------------

/// True when constraint `b` holds for every attribute value satisfying `a`
/// (same canonical field). Conservative: false whenever unsure.
bool ConstraintImplies(const CanonConstraint& a, const CanonConstraint& b) {
  if (a.field != b.field || a.tag != b.tag) return false;
  using Op = ConstraintOp;
  switch (b.tag) {
    case CanonConstraint::Tag::kString:
      if (b.op == Op::kEq) {
        if (a.op == Op::kEq) return LikeImplies(a.str, b.str);
        return false;
      }
      if (b.op == Op::kNe) {
        if (a.op == Op::kNe) return a.str == b.str || LikeImplies(b.str, a.str);
        if (a.op == Op::kEq) return LikeExcludes(a.str, b.str);
        return false;
      }
      return false;  // ordered ops on strings: no claim
    case CanonConstraint::Tag::kNumber:
      switch (b.op) {
        case Op::kEq:
          return a.op == Op::kEq && a.num == b.num;
        case Op::kNe:
          return (a.op == Op::kEq && a.num != b.num) ||
                 (a.op == Op::kNe && a.num == b.num) ||
                 (a.op == Op::kLt && a.num <= b.num) ||
                 (a.op == Op::kLe && a.num < b.num) ||
                 (a.op == Op::kGt && a.num >= b.num) ||
                 (a.op == Op::kGe && a.num > b.num);
        case Op::kLt:
          return (a.op == Op::kLt && a.num <= b.num) ||
                 (a.op == Op::kLe && a.num < b.num) ||
                 (a.op == Op::kEq && a.num < b.num);
        case Op::kLe:
          return ((a.op == Op::kLe || a.op == Op::kLt) && a.num <= b.num) ||
                 (a.op == Op::kEq && a.num <= b.num);
        case Op::kGt:
          return (a.op == Op::kGt && a.num >= b.num) ||
                 (a.op == Op::kGe && a.num > b.num) ||
                 (a.op == Op::kEq && a.num > b.num);
        case Op::kGe:
          return ((a.op == Op::kGe || a.op == Op::kGt) && a.num >= b.num) ||
                 (a.op == Op::kEq && a.num >= b.num);
      }
      return false;
    case CanonConstraint::Tag::kBool:
      if (b.op == Op::kEq) return a.op == Op::kEq && a.num == b.num;
      if (b.op == Op::kNe) {
        return (a.op == Op::kEq && a.num != b.num) ||
               (a.op == Op::kNe && a.num == b.num);
      }
      return false;
    case CanonConstraint::Tag::kOther:
      return false;
  }
  return false;
}

/// True when `b` is trivially satisfied by every value (a match-all LIKE).
bool TriviallyTrue(const CanonConstraint& b) {
  return b.tag == CanonConstraint::Tag::kString && b.op == ConstraintOp::kEq &&
         ClassifyPattern(b.str).kind == PatShape::Kind::kAll;
}

/// True when holding all of `a` implies all of `b` (conjunction on each
/// side). Each `b` constraint must be trivially true or implied by some
/// single `a` constraint.
bool ConjunctionImplies(const std::vector<CanonConstraint>& a,
                        const std::vector<CanonConstraint>& b) {
  for (const CanonConstraint& cb : b) {
    if (TriviallyTrue(cb)) continue;
    bool implied = false;
    for (const CanonConstraint& ca : a) {
      if (ConstraintImplies(ca, cb)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Canonical query form
// ---------------------------------------------------------------------------

struct CanonPattern {
  EntityType subject_type = EntityType::kProcess;
  OpMask ops = 0;
  EntityType object_type = EntityType::kProcess;
  std::vector<CanonConstraint> subject;
  std::vector<CanonConstraint> object;
};

struct CanonQuery {
  std::vector<CanonPattern> patterns;
  std::vector<CanonConstraint> globals;
  /// Variable-sharing partition: groups of (pattern, role) slots bound to
  /// one entity variable, groups of size >= 2 only, canonically ordered.
  std::vector<std::vector<std::pair<int, int>>> sharing;
  /// Everything else — temporal structure, window, state, invariant,
  /// cluster, alert, returns — rendered with resolved (name-free) refs.
  std::string shape;
  /// No state/invariant/cluster: alert-set containment follows from
  /// event-set containment, so SA051 subsumption claims are sound.
  bool stateless = false;
};

/// Renders an expression with variable names erased: resolved refs print as
/// their (kind, index, role, field) coordinates, so alpha-renamed queries
/// produce identical text. Unresolved refs fall back to spelling.
std::string CanonExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return "L:" + e.literal.ToString();
    case ExprKind::kRef: {
      std::ostringstream os;
      switch (e.ref_kind) {
        case RefKind::kEntity:
          os << "E" << e.ref_index
             << (e.ref_role == EntityRole::kSubject ? 's' : 'o') << ":"
             << static_cast<int>(e.ref_field);
          break;
        case RefKind::kEvent:
          os << "V" << e.ref_index << ":" << static_cast<int>(e.ref_field);
          if (e.ref_field == FieldId::kInvalid) os << ":" << ToLower(e.field);
          break;
        case RefKind::kState:
          os << "S" << e.ref_index << "[" << e.history.value_or(0) << "]";
          break;
        case RefKind::kGroupKey:
          os << "G" << e.ref_index;
          break;
        case RefKind::kInvariant:
          os << "I" << e.ref_index;
          break;
        case RefKind::kCluster:
          os << "C." << ToLower(e.field);
          break;
        case RefKind::kUnresolved:
          os << "U:" << e.base;
          if (e.history.has_value()) os << "[" << *e.history << "]";
          if (!e.field.empty()) os << "." << e.field;
          break;
      }
      return os.str();
    }
    case ExprKind::kCall: {
      std::string out = ToLower(e.callee) + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ",";
        out += e.args[i] ? CanonExpr(*e.args[i]) : "?";
      }
      return out + ")";
    }
    case ExprKind::kBinary: {
      std::string l = e.lhs ? CanonExpr(*e.lhs) : "?";
      std::string r = e.rhs ? CanonExpr(*e.rhs) : "?";
      return "(" + l + " " + BinOpName(e.bin_op) + " " + r + ")";
    }
    case ExprKind::kUnary: {
      std::string operand = e.lhs ? CanonExpr(*e.lhs) : "?";
      return std::string(UnOpName(e.un_op)) + "(" + operand + ")";
    }
  }
  return "?";
}

std::vector<CanonConstraint> CanonEntityConstraints(const EntityPattern& ep) {
  std::vector<CanonConstraint> out;
  for (const AttrConstraint& c : ep.constraints) {
    FieldId id = ResolveEntityFieldId(ep.type, c.field);
    if (id == FieldId::kInvalid) continue;  // analyzer already rejected
    out.push_back(MakeCanonConstraint(CanonicalEntityFieldId(ep.type, id), c));
  }
  SortByKey(&out);
  return out;
}

CanonQuery Canonicalize(const AnalyzedQuery& aq) {
  const Query& q = *aq.query;
  CanonQuery out;
  out.stateless =
      !aq.IsStateful() && !aq.HasInvariant() && !aq.HasCluster();

  for (const EventPatternDecl& decl : q.patterns) {
    CanonPattern p;
    p.subject_type = decl.subject.type;
    p.ops = decl.ops;
    p.object_type = decl.object.type;
    p.subject = CanonEntityConstraints(decl.subject);
    p.object = CanonEntityConstraints(decl.object);
    out.patterns.push_back(std::move(p));
  }

  for (const AttrConstraint& c : q.global_constraints) {
    FieldId id = ResolveEventFieldId(c.field);
    if (id == FieldId::kInvalid) continue;
    out.globals.push_back(MakeCanonConstraint(id, c));
  }
  SortByKey(&out.globals);

  for (const auto& [var, bindings] : aq.entity_vars) {
    if (var.empty() || bindings.size() < 2) continue;
    std::vector<std::pair<int, int>> group;
    for (const EntityBinding& b : bindings) {
      group.emplace_back(b.pattern_index,
                         b.role == EntityRole::kSubject ? 0 : 1);
    }
    std::sort(group.begin(), group.end());
    group.erase(std::unique(group.begin(), group.end()), group.end());
    if (group.size() >= 2) out.sharing.push_back(std::move(group));
  }
  std::sort(out.sharing.begin(), out.sharing.end());

  std::ostringstream shape;
  shape << "tmp:";
  if (aq.ordered) {
    for (size_t i = 0; i < aq.temporal_order.size(); ++i) {
      if (i > 0) shape << ">";
      shape << aq.temporal_order[i];
      if (i < aq.temporal_gaps.size()) shape << "g" << aq.temporal_gaps[i];
    }
  } else {
    shape << "unordered";
  }
  shape << ";win:";
  if (q.window.has_value()) {
    if (q.window->kind == WindowSpec::Kind::kCount) {
      shape << "c" << q.window->count;
    } else {
      shape << "t" << q.window->length << "/" << q.window->EffectiveSlide();
    }
  } else {
    shape << "-";
  }
  shape << ";state:";
  if (q.state.has_value()) {
    shape << q.state->history << "{";
    for (size_t i = 0; i < q.state->fields.size(); ++i) {
      if (i > 0) shape << ";";
      const StateField& f = q.state->fields[i];
      shape << (f.expr ? CanonExpr(*f.expr) : "?");
    }
    shape << "}gb[";
    for (size_t i = 0; i < aq.group_keys.size(); ++i) {
      if (i > 0) shape << ",";
      const ResolvedGroupKey& k = aq.group_keys[i];
      shape << static_cast<int>(k.source) << "." << k.pattern_index << "."
            << ToLower(k.field);
    }
    shape << "]";
  } else {
    shape << "-";
  }
  shape << ";inv:";
  if (q.invariant.has_value()) {
    shape << q.invariant->training_windows
          << (q.invariant->offline ? "off" : "on") << "{";
    for (size_t i = 0; i < q.invariant->stmts.size(); ++i) {
      if (i > 0) shape << ";";
      const InvariantStmt& s = q.invariant->stmts[i];
      auto it = std::find(aq.invariant_vars.begin(), aq.invariant_vars.end(),
                          s.var);
      shape << "i" << (it - aq.invariant_vars.begin())
            << (s.is_init ? ":=" : "=") << (s.expr ? CanonExpr(*s.expr) : "?");
    }
    shape << "}";
  } else {
    shape << "-";
  }
  shape << ";clu:";
  if (q.cluster.has_value()) {
    shape << static_cast<int>(aq.cluster_method.kind) << ","
          << aq.cluster_method.eps << "," << aq.cluster_method.min_pts << ","
          << (aq.cluster_method.euclidean ? "ed" : "md") << "[";
    for (size_t i = 0; i < q.cluster->points.size(); ++i) {
      if (i > 0) shape << ",";
      shape << (q.cluster->points[i] ? CanonExpr(*q.cluster->points[i]) : "?");
    }
    shape << "]";
  } else {
    shape << "-";
  }
  shape << ";alert:" << (q.alert ? CanonExpr(*q.alert) : "-");
  shape << ";ret:" << (q.return_distinct ? "d" : "") << "[";
  for (size_t i = 0; i < q.returns.size(); ++i) {
    if (i > 0) shape << ",";
    shape << (q.returns[i].expr ? CanonExpr(*q.returns[i].expr) : "?");
  }
  shape << "]";
  out.shape = shape.str();
  return out;
}

// ---------------------------------------------------------------------------
// Pairwise relations
// ---------------------------------------------------------------------------

bool CanonEqual(const CanonQuery& a, const CanonQuery& b) {
  if (a.patterns.size() != b.patterns.size()) return false;
  for (size_t i = 0; i < a.patterns.size(); ++i) {
    const CanonPattern& pa = a.patterns[i];
    const CanonPattern& pb = b.patterns[i];
    if (pa.subject_type != pb.subject_type || pa.ops != pb.ops ||
        pa.object_type != pb.object_type)
      return false;
    if (!SameConstraints(pa.subject, pb.subject)) return false;
    if (!SameConstraints(pa.object, pb.object)) return false;
  }
  return SameConstraints(a.globals, b.globals) && a.sharing == b.sharing &&
         a.shape == b.shape;
}

/// True when every sharing requirement of `b` is enforced by `a` (some `a`
/// group contains the whole `b` group): `a` unifies at least as much.
bool SharingRefines(const CanonQuery& a, const CanonQuery& b) {
  for (const auto& gb : b.sharing) {
    bool covered = false;
    for (const auto& ga : a.sharing) {
      if (std::includes(ga.begin(), ga.end(), gb.begin(), gb.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

/// True when `a` is subsumed by `b`: every event tuple matching `a` matches
/// `b`, and — both being stateless rule queries of identical shape — every
/// alert `a` raises, `b` raises too.
bool CanonSubsumed(const CanonQuery& a, const CanonQuery& b) {
  if (!a.stateless || !b.stateless) return false;
  if (a.shape != b.shape) return false;
  if (a.patterns.size() != b.patterns.size()) return false;
  if (!SharingRefines(a, b)) return false;
  for (size_t i = 0; i < a.patterns.size(); ++i) {
    const CanonPattern& pa = a.patterns[i];
    const CanonPattern& pb = b.patterns[i];
    if (pa.subject_type != pb.subject_type ||
        pa.object_type != pb.object_type)
      return false;
    if ((pa.ops & ~pb.ops) != 0) return false;  // a's ops ⊆ b's ops
    if (!ConjunctionImplies(pa.subject, pb.subject)) return false;
    if (!ConjunctionImplies(pa.object, pb.object)) return false;
  }
  return ConjunctionImplies(a.globals, b.globals);
}

SourceSpan AnchorSpan(const AnalyzedQuery& aq) {
  if (!aq.query->patterns.empty()) return aq.query->patterns.front().span;
  return SourceSpan{};
}

Diagnostic MakeDuplicateFinding(const AnalyzedQuery& aq,
                                const std::string& other) {
  Diagnostic d;
  d.code = "SA050";
  d.severity = Severity::kWarning;
  d.span = AnchorSpan(aq);
  d.message = "exact duplicate of fleet query '" + other +
              "': identical patterns, constraints, and alert shape up to "
              "renaming — both raise the same alerts on every stream "
              "(double alerting)";
  d.fix_hint = "drop one of the two queries, or differentiate this one if "
               "the overlap is unintentional";
  return d;
}

Diagnostic MakeSubsumedFinding(const AnalyzedQuery& aq,
                               const std::string& other, bool this_stricter) {
  Diagnostic d;
  d.code = "SA051";
  d.severity = Severity::kWarning;
  d.span = AnchorSpan(aq);
  if (this_stricter) {
    d.message = "subsumed by fleet query '" + other +
                "': this query's constraints are provably tighter, so every "
                "alert it raises, '" + other + "' raises too";
    d.fix_hint = "drop this query if '" + other +
                 "' already covers it, or tighten '" + other + "'";
  } else {
    d.message = "subsumes fleet query '" + other +
                "': '" + other + "'s constraints are provably tighter, so "
                "every alert it raises, this query raises too";
    d.fix_hint = "drop '" + other + "' if this query already covers it";
  }
  return d;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool FleetReport::HasFindings() const {
  for (const auto& f : findings) {
    if (!f.empty()) return true;
  }
  return false;
}

std::string FleetReport::ToString() const {
  std::ostringstream os;
  os << "fleet: " << names.size() << " query(ies), " << relations.size()
     << " relation(s)\n";
  for (const FleetRelation& r : relations) {
    if (r.kind == FleetRelation::Kind::kDuplicate) {
      os << "  SA050 '" << names[r.b] << "' duplicates '" << names[r.a]
         << "' (identical alerts; double alerting)\n";
    } else {
      os << "  SA051 '" << names[r.a] << "' is subsumed by '" << names[r.b]
         << "' (every alert of '" << names[r.a] << "' is raised by '"
         << names[r.b] << "')\n";
    }
  }
  os << "routing envelope (object type/op -> queries):\n";
  if (cells.empty()) os << "  (no patterns)\n";
  for (const RoutingCell& c : cells) {
    os << "  " << EntityTypeName(c.object_type) << "/" << EventOpName(c.op)
       << ": " << c.members.size() << " (";
    for (size_t i = 0; i < c.members.size(); ++i) {
      if (i > 0) os << ", ";
      os << names[c.members[i]];
    }
    os << ")\n";
  }
  return os.str();
}

FleetReport FleetAnalysis::Analyze(const std::vector<Member>& members,
                                   const Options& options) {
  FleetReport report;
  report.findings.resize(members.size());
  std::vector<CanonQuery> canon;
  canon.reserve(members.size());
  for (const Member& m : members) {
    report.names.push_back(m.name);
    canon.push_back(Canonicalize(*m.aq));
  }

  for (size_t j = 0; j < members.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (CanonEqual(canon[i], canon[j])) {
        report.relations.push_back(
            {i, j, FleetRelation::Kind::kDuplicate});
        report.findings[j].push_back(
            MakeDuplicateFinding(*members[j].aq, members[i].name));
        continue;
      }
      if (!options.subsumption) continue;
      if (CanonSubsumed(canon[i], canon[j])) {
        report.relations.push_back({i, j, FleetRelation::Kind::kSubsumes});
        report.findings[j].push_back(
            MakeSubsumedFinding(*members[j].aq, members[i].name, false));
      } else if (CanonSubsumed(canon[j], canon[i])) {
        report.relations.push_back({j, i, FleetRelation::Kind::kSubsumes});
        report.findings[j].push_back(
            MakeSubsumedFinding(*members[j].aq, members[i].name, true));
      }
    }
  }

  // Routing-envelope overlap: which (object type, op) dispatch cells each
  // member's patterns cover, and how many members share each cell.
  std::map<std::pair<int, int>, std::vector<size_t>> cells;
  for (size_t m = 0; m < members.size(); ++m) {
    std::set<std::pair<int, int>> mine;
    for (const EventPatternDecl& decl : members[m].aq->query->patterns) {
      for (int op = 0; op < kNumEventOps; ++op) {
        if (!OpMaskContains(decl.ops, static_cast<EventOp>(op))) continue;
        mine.insert({static_cast<int>(decl.object.type), op});
      }
    }
    for (const auto& cell : mine) cells[cell].push_back(m);
  }
  for (auto& [key, ms] : cells) {
    RoutingCell c;
    c.object_type = static_cast<EntityType>(key.first);
    c.op = static_cast<EventOp>(key.second);
    c.members = std::move(ms);
    report.cells.push_back(std::move(c));
  }
  std::stable_sort(report.cells.begin(), report.cells.end(),
                   [](const RoutingCell& x, const RoutingCell& y) {
                     return x.members.size() > y.members.size();
                   });
  return report;
}

std::vector<Diagnostic> FleetAnalysis::CheckQuery(
    const AnalyzedQuery& candidate, const std::vector<Member>& fleet,
    const Options& options) {
  std::vector<Diagnostic> out;
  CanonQuery cc = Canonicalize(candidate);
  for (const Member& m : fleet) {
    if (m.aq == nullptr) continue;
    CanonQuery cm = Canonicalize(*m.aq);
    if (CanonEqual(cc, cm)) {
      out.push_back(MakeDuplicateFinding(candidate, m.name));
      continue;
    }
    if (!options.subsumption) continue;
    if (CanonSubsumed(cc, cm)) {
      out.push_back(MakeSubsumedFinding(candidate, m.name, true));
    } else if (CanonSubsumed(cm, cc)) {
      out.push_back(MakeSubsumedFinding(candidate, m.name, false));
    }
  }
  return out;
}

}  // namespace saql
