#ifndef SAQL_ANALYSIS_DATAFLOW_H_
#define SAQL_ANALYSIS_DATAFLOW_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "parser/analyzer.h"

namespace saql {

/// Static type of a SAQL expression, inferred over the compiled field
/// schema (FieldId → type) and the analyzer's reference resolution. The
/// lattice is flat: a node is either one of the four concrete types or
/// `kUnknown` (null literals, unresolved references, functions whose result
/// type depends on runtime values). Every check in the dataflow pass fires
/// only when both sides are concrete, so `kUnknown` can never produce a
/// false positive.
enum class StaticType : uint8_t {
  kUnknown = 0,
  kString,
  kNumeric,  ///< int and float (the engine coerces freely between them)
  kBool,
  kSet,
};

const char* StaticTypeName(StaticType type);

/// Infers the static type of `e` within `aq` (state-field and invariant
/// variable types are resolved through their defining expressions).
/// Exposed for tests; the pass itself runs through `RunDataflowChecks`.
StaticType InferExprType(const AnalyzedQuery& aq, const Expr& e);

/// The intra-query type & dataflow pass (run by `QueryAnalysis::Lint`):
///
///   SA040 error   cross-type comparison: the comparison provably never
///                 holds under the engine's coercion rules (ordered
///                 comparisons across types are evaluation errors; equality
///                 across types is always false). Also covers attribute
///                 constraints whose literal type contradicts the field's
///                 schema type (`pid = "abc"`).
///   SA041 warning unused pattern variable: a named, unconstrained entity
///                 variable that is never referenced by any expression and
///                 never shared across patterns does no filtering, joining,
///                 or reporting work. Underscore-prefixed names (the
///                 parser's anonymous spelling) are exempt.
///   SA042 warning never-read state field: aggregated every window, read by
///                 no alert/return/invariant/cluster expression.
///   SA043 hint    constant-foldable subexpression: a maximal all-literal
///                 operator subtree inside a non-constant expression (a
///                 fully constant alert stays SA021's domain).
void RunDataflowChecks(const AnalyzedQuery& aq, std::vector<Diagnostic>* out);

}  // namespace saql

#endif  // SAQL_ANALYSIS_DATAFLOW_H_
