#ifndef SAQL_STORAGE_EVENT_LOG_H_
#define SAQL_STORAGE_EVENT_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/result.h"
#include "storage/file_backend.h"

namespace saql {

/// Append-only binary log of system events — the databases the paper
/// stores collected monitoring data in so the demo can replay attacks
/// (§III: "we additionally store the data in databases").
///
/// Format (little-endian):
///   header:  magic "SAQLLOG1", u32 version
///   record:  u32 payload_size, payload (fields in fixed order; strings are
///            u32 length + bytes)
///
/// Writers produce a footer-free stream, so logs survive process kills up
/// to the last complete record; the reader stops at the first truncated
/// record.
class EventLogWriter {
 public:
  /// Creates/truncates `path`. Check `status()` before use. `backend`
  /// injects the file layer (nullptr = real files) — the seam the
  /// deterministic disk-full/crash tests run on.
  explicit EventLogWriter(const std::string& path,
                          FileBackend* backend = nullptr);

  /// Closes (flushing buffered records). The destructor cannot report, so
  /// failures on this path stay readable through `status()` while the
  /// object lives — call `Close()` explicitly (or re-check `status()`
  /// after it) when flush errors matter.
  ~EventLogWriter();

  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  Status status() const { return status_; }

  /// Appends one event.
  Status Append(const Event& event);

  /// Appends a batch.
  Status AppendBatch(const EventBatch& events);

  /// Flushes and closes. Idempotent: later calls (including the
  /// destructor's) return the sticky status without losing an earlier
  /// failure.
  Status Close();

  uint64_t events_written() const { return events_written_; }

 private:
  std::unique_ptr<WritableFile> out_;
  Status status_;
  uint64_t events_written_ = 0;
  std::string buffer_;
};

/// Reads an event log sequentially.
class EventLogReader {
 public:
  explicit EventLogReader(const std::string& path);

  Status status() const { return status_; }

  /// Reads the next event; returns NotFound at end of log.
  Result<Event> Next();

  /// Reads all remaining events.
  Result<EventBatch> ReadAll();

 private:
  std::ifstream in_;
  Status status_;
};

/// Serializes one event in the v1 record payload layout (fields in fixed
/// order, strings as u32 length + bytes). Shared by the v1 row log and
/// the write-ahead log's record payloads. Appends to `buf`.
void SerializeEventPayload(std::string* buf, const Event& event);

/// Parses a payload produced by `SerializeEventPayload`. Returns false on
/// truncated or malformed input.
bool DeserializeEventPayload(const char* data, size_t size, Event* event);

/// Convenience: writes `events` to `path`.
Status WriteEventLog(const std::string& path, const EventBatch& events);

/// Convenience: reads the whole log at `path`.
Result<EventBatch> ReadEventLog(const std::string& path);

}  // namespace saql

#endif  // SAQL_STORAGE_EVENT_LOG_H_
