#include "storage/event_log.h"

#include <cstring>

#include "storage/log_format.h"

namespace saql {

namespace {

constexpr uint32_t kVersion = kLogVersionV1;

void PutU32(std::string* buf, uint32_t v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* buf, uint64_t v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI64(std::string* buf, int64_t v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU8(std::string* buf, uint8_t v) {
  buf->push_back(static_cast<char>(v));
}

void PutString(std::string* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->append(s);
}

class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool GetU32(uint32_t* v) { return Copy(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return Copy(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return Copy(v, sizeof(*v)); }
  bool GetU8(uint8_t* v) { return Copy(v, sizeof(*v)); }

  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos_ + len > size_) return false;
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  bool Copy(void* dst, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void SerializeProcess(std::string* buf, const ProcessEntity& p) {
  PutI64(buf, p.pid);
  PutString(buf, p.exe_name);
  PutString(buf, p.user);
}

bool DeserializeProcess(PayloadReader* r, ProcessEntity* p) {
  return r->GetI64(&p->pid) && r->GetString(&p->exe_name) &&
         r->GetString(&p->user);
}

void SerializeEvent(std::string* buf, const Event& e) {
  PutU64(buf, e.id);
  PutI64(buf, e.ts);
  PutString(buf, e.agent_id);
  SerializeProcess(buf, e.subject);
  PutU8(buf, static_cast<uint8_t>(e.op));
  PutU8(buf, static_cast<uint8_t>(e.object_type));
  switch (e.object_type) {
    case EntityType::kProcess:
      SerializeProcess(buf, e.obj_proc);
      break;
    case EntityType::kFile:
      PutString(buf, e.obj_file.path);
      break;
    case EntityType::kNetwork:
      PutString(buf, e.obj_net.src_ip);
      PutString(buf, e.obj_net.dst_ip);
      PutI64(buf, e.obj_net.src_port);
      PutI64(buf, e.obj_net.dst_port);
      PutString(buf, e.obj_net.protocol);
      break;
  }
  PutI64(buf, e.amount);
  PutU8(buf, e.failed ? 1 : 0);
}

bool DeserializeEvent(PayloadReader* r, Event* e) {
  uint8_t op = 0, obj_type = 0, failed = 0;
  if (!(r->GetU64(&e->id) && r->GetI64(&e->ts) &&
        r->GetString(&e->agent_id) &&
        DeserializeProcess(r, &e->subject) && r->GetU8(&op) &&
        r->GetU8(&obj_type))) {
    return false;
  }
  if (op >= kNumEventOps || obj_type > 2) return false;
  e->op = static_cast<EventOp>(op);
  e->object_type = static_cast<EntityType>(obj_type);
  switch (e->object_type) {
    case EntityType::kProcess:
      if (!DeserializeProcess(r, &e->obj_proc)) return false;
      break;
    case EntityType::kFile:
      if (!r->GetString(&e->obj_file.path)) return false;
      break;
    case EntityType::kNetwork:
      if (!(r->GetString(&e->obj_net.src_ip) &&
            r->GetString(&e->obj_net.dst_ip) &&
            r->GetI64(&e->obj_net.src_port) &&
            r->GetI64(&e->obj_net.dst_port) &&
            r->GetString(&e->obj_net.protocol))) {
        return false;
      }
      break;
  }
  if (!r->GetI64(&e->amount) || !r->GetU8(&failed)) return false;
  e->failed = failed != 0;
  return true;
}

}  // namespace

void SerializeEventPayload(std::string* buf, const Event& event) {
  SerializeEvent(buf, event);
}

bool DeserializeEventPayload(const char* data, size_t size, Event* event) {
  PayloadReader r(data, size);
  return DeserializeEvent(&r, event);
}

EventLogWriter::EventLogWriter(const std::string& path,
                               FileBackend* backend) {
  Result<std::unique_ptr<WritableFile>> file =
      FileBackend::OrReal(backend)->Create(path);
  if (!file.ok()) {
    status_ = file.status();
    return;
  }
  out_ = std::move(*file);
  buffer_.assign(kLogMagicV1, sizeof(kLogMagicV1));
  uint32_t version = kVersion;
  buffer_.append(reinterpret_cast<const char*>(&version), sizeof(version));
  status_ = out_->Append(buffer_.data(), buffer_.size());
}

EventLogWriter::~EventLogWriter() { Close(); }

Status EventLogWriter::Append(const Event& event) {
  SAQL_RETURN_IF_ERROR(status_);
  buffer_.clear();
  buffer_.append(sizeof(uint32_t), '\0');  // payload-size slot
  SerializeEvent(&buffer_, event);
  uint32_t size = static_cast<uint32_t>(buffer_.size() - sizeof(uint32_t));
  std::memcpy(buffer_.data(), &size, sizeof(size));
  status_ = out_->Append(buffer_.data(), buffer_.size());
  SAQL_RETURN_IF_ERROR(status_);
  ++events_written_;
  return Status::Ok();
}

Status EventLogWriter::AppendBatch(const EventBatch& events) {
  for (const Event& e : events) {
    SAQL_RETURN_IF_ERROR(Append(e));
  }
  return Status::Ok();
}

Status EventLogWriter::Close() {
  if (out_ != nullptr) {
    Status st = out_->Close();
    if (!st.ok() && status_.ok()) status_ = st;
    out_.reset();
  }
  return status_;
}

EventLogReader::EventLogReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    status_ = Status::IoError("cannot open '" + path + "' for reading");
    return;
  }
  char magic[sizeof(kLogMagicV1)];
  uint32_t version = 0;
  in_.read(magic, sizeof(magic));
  in_.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in_ || std::memcmp(magic, kLogMagicV1, sizeof(magic)) != 0) {
    status_ = Status::IoError("'" + path + "' is not a SAQL event log");
    return;
  }
  if (version != kVersion) {
    status_ = Status::IoError("unsupported event log version " +
                              std::to_string(version));
  }
}

Result<Event> EventLogReader::Next() {
  SAQL_RETURN_IF_ERROR(status_);
  uint32_t size = 0;
  in_.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (in_.eof()) return Status::NotFound("end of log");
  if (!in_ || size > (64u << 20)) {
    status_ = Status::IoError("corrupt record header");
    return status_;
  }
  std::string payload(size, '\0');
  in_.read(payload.data(), size);
  if (!in_) {
    // Truncated final record: treat as end of log (crash-consistent tail).
    return Status::NotFound("end of log (truncated tail)");
  }
  Event e;
  PayloadReader r(payload.data(), payload.size());
  if (!DeserializeEvent(&r, &e)) {
    status_ = Status::IoError("corrupt event record");
    return status_;
  }
  return e;
}

Result<EventBatch> EventLogReader::ReadAll() {
  EventBatch out;
  while (true) {
    Result<Event> e = Next();
    if (!e.ok()) {
      if (e.status().code() == StatusCode::kNotFound) break;
      return e.status();
    }
    out.push_back(std::move(*e));
  }
  return out;
}

Status WriteEventLog(const std::string& path, const EventBatch& events) {
  EventLogWriter writer(path);
  SAQL_RETURN_IF_ERROR(writer.status());
  SAQL_RETURN_IF_ERROR(writer.AppendBatch(events));
  return writer.Close();
}

Result<EventBatch> ReadEventLog(const std::string& path) {
  EventLogReader reader(path);
  SAQL_RETURN_IF_ERROR(reader.status());
  return reader.ReadAll();
}

}  // namespace saql
