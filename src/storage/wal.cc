#include "storage/wal.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "storage/event_log.h"
#include "storage/log_format.h"

namespace saql {

namespace {

constexpr char kWalMagic[8] = {'S', 'A', 'Q', 'L', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalVersion = 1;
/// magic + u32 version + u64 first_seq.
constexpr size_t kWalHeaderSize = sizeof(kWalMagic) + 4 + 8;
/// u32 payload_size + u32 crc32 + u64 seq.
constexpr size_t kWalRecordHeaderSize = 16;
/// Same sanity bound as the v1 row log's record reader.
constexpr uint32_t kMaxPayload = 64u << 20;

}  // namespace

Result<SyncPolicy> ParseSyncPolicy(const std::string& text) {
  if (text == "always") return SyncPolicy::Always();
  if (text == "none") return SyncPolicy::None();
  if (text == "group") return SyncPolicy::GroupCommit();
  // group:<delay_us>:<bytes>
  if (text.rfind("group:", 0) == 0) {
    const char* p = text.c_str() + 6;
    char* end = nullptr;
    long long delay = std::strtoll(p, &end, 10);
    if (end == p || delay < 0) {
      return Status::InvalidArgument("bad sync policy '" + text + "'");
    }
    uint64_t bytes = SyncPolicy().max_bytes;
    if (*end == ':') {
      const char* q = end + 1;
      long long b = std::strtoll(q, &end, 10);
      if (end == q || *end != '\0' || b <= 0) {
        return Status::InvalidArgument("bad sync policy '" + text + "'");
      }
      bytes = static_cast<uint64_t>(b);
    } else if (*end != '\0') {
      return Status::InvalidArgument("bad sync policy '" + text + "'");
    }
    return SyncPolicy::GroupCommit(delay, bytes);
  }
  return Status::InvalidArgument(
      "unknown sync policy '" + text +
      "' (expected always, group[:<delay_us>[:<bytes>]], or none)");
}

WalWriter::WalWriter(const std::string& path, uint64_t first_seq,
                     FileBackend* backend)
    : path_(path) {
  Result<std::unique_ptr<WritableFile>> file =
      FileBackend::OrReal(backend)->Create(path);
  if (!file.ok()) {
    status_ = file.status();
    return;
  }
  out_ = std::move(*file);
  buffer_.assign(kWalMagic, sizeof(kWalMagic));
  buffer_.append(reinterpret_cast<const char*>(&kWalVersion),
                 sizeof(kWalVersion));
  buffer_.append(reinterpret_cast<const char*>(&first_seq),
                 sizeof(first_seq));
  status_ = out_->Append(buffer_.data(), buffer_.size());
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Append(uint64_t seq, const Event& event) {
  SAQL_RETURN_IF_ERROR(status_);
  buffer_.clear();
  buffer_.append(kWalRecordHeaderSize, '\0');
  std::memcpy(buffer_.data() + 8, &seq, sizeof(seq));
  SerializeEventPayload(&buffer_, event);
  uint32_t size =
      static_cast<uint32_t>(buffer_.size() - kWalRecordHeaderSize);
  uint32_t crc = Crc32(buffer_.data() + 8, buffer_.size() - 8);
  std::memcpy(buffer_.data(), &size, sizeof(size));
  std::memcpy(buffer_.data() + 4, &crc, sizeof(crc));
  status_ = out_->Append(buffer_.data(), buffer_.size());
  SAQL_RETURN_IF_ERROR(status_);
  ++records_written_;
  return Status::Ok();
}

Status WalWriter::Sync() {
  SAQL_RETURN_IF_ERROR(status_);
  status_ = out_->Sync();
  return status_;
}

Status WalWriter::Close() {
  if (out_ != nullptr) {
    Status st = out_->Close();
    if (!st.ok() && status_.ok()) status_ = st;
    out_.reset();
  }
  return status_;
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       uint64_t* bytes_consumed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char header[kWalHeaderSize];
  in.read(header, sizeof(header));
  if (!in || std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a SAQL WAL file");
  }
  uint32_t version = 0;
  std::memcpy(&version, header + sizeof(kWalMagic), sizeof(version));
  if (version != kWalVersion) {
    return Status::IoError("unsupported WAL version " +
                           std::to_string(version));
  }

  std::vector<WalRecord> records;
  uint64_t consumed = kWalHeaderSize;
  std::string rec;
  while (true) {
    char rec_header[kWalRecordHeaderSize];
    in.read(rec_header, sizeof(rec_header));
    if (!in) break;  // torn tail: short record header
    uint32_t size = 0, crc = 0;
    uint64_t seq = 0;
    std::memcpy(&size, rec_header, sizeof(size));
    std::memcpy(&crc, rec_header + 4, sizeof(crc));
    std::memcpy(&seq, rec_header + 8, sizeof(seq));
    if (size > kMaxPayload) break;  // torn tail: implausible length
    rec.assign(rec_header + 8, 8);  // seq bytes, then payload
    rec.resize(8 + size);
    in.read(rec.data() + 8, size);
    if (!in) break;  // torn tail: short payload
    if (Crc32(rec.data(), rec.size()) != crc) break;  // torn tail
    WalRecord r;
    r.seq = seq;
    if (!DeserializeEventPayload(rec.data() + 8, size, &r.event)) break;
    records.push_back(std::move(r));
    consumed += kWalRecordHeaderSize + size;
  }
  if (bytes_consumed != nullptr) *bytes_consumed = consumed;
  return records;
}

}  // namespace saql
