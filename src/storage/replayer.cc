#include "storage/replayer.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "storage/log_format.h"

namespace saql {

namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StreamReplayer::StreamReplayer(const std::string& path, Filter filter)
    : filter_(std::move(filter)) {
  Result<int> version = DetectEventLogVersion(path);
  if (!version.ok()) {
    status_ = version.status();
    return;
  }
  format_version_ = *version;
  if (format_version_ == 2) {
    ColumnarLogReader::Options opts;
    opts.use_mmap = filter_.use_mmap;
    v2_ = std::make_unique<ColumnarLogReader>(path, opts);
    status_ = v2_->status();
    if (status_.ok() && filter_.start_ts > 0) {
      // Time-range seek: jump the cursor past every segment that ends
      // before the range, without touching their payloads.
      seg_ = v2_->FirstSegmentAtOrAfter(filter_.start_ts);
      for (size_t i = 0; i < seg_; ++i) {
        filtered_out_ += v2_->segment(i).count;
      }
    }
  } else {
    v1_ = std::make_unique<EventLogReader>(path);
    status_ = v1_->status();
  }
}

bool StreamReplayer::Accept(const Event& e) const {
  if (e.ts < filter_.start_ts || e.ts >= filter_.end_ts) return false;
  if (!filter_.hosts.empty() &&
      filter_.hosts.find(e.agent_id) == filter_.hosts.end()) {
    return false;
  }
  return true;
}

void StreamReplayer::PaceTo(Timestamp ts) {
  if (filter_.speed <= 0.0) return;
  if (first_event_ts_ == INT64_MIN) {
    first_event_ts_ = ts;
    wall_start_ns_ = WallNowNs();
    return;
  }
  double event_elapsed = static_cast<double>(ts - first_event_ts_);
  int64_t target_wall_ns =
      wall_start_ns_ +
      static_cast<int64_t>(event_elapsed / filter_.speed);
  int64_t now = WallNowNs();
  if (target_wall_ns > now) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(target_wall_ns - now));
  }
}

EventBlock* StreamReplayer::NextBlock(size_t max_events) {
  if (!status_.ok() || max_events == 0) return nullptr;
  return format_version_ == 2 ? NextBlockV2(max_events)
                              : NextBlockV1(max_events);
}

EventBlock* StreamReplayer::NextBlockV1(size_t max_events) {
  EventBatch& rows = out_block_.ResetOwnedRows();
  while (rows.size() < max_events) {
    Result<Event> e = v1_->Next();
    if (!e.ok()) {
      if (e.status().code() != StatusCode::kNotFound) {
        status_ = e.status();
      }
      break;
    }
    if (!Accept(*e)) {
      ++filtered_out_;
      continue;
    }
    PaceTo(e->ts);
    ++replayed_;
    rows.push_back(std::move(*e));
  }
  return rows.empty() ? nullptr : &out_block_;
}

bool StreamReplayer::LoadAcceptableSegment() {
  while (seg_pos_ >= seg_size_) {
    if (seg_size_ > 0) {
      ++seg_;
      seg_pos_ = 0;
      seg_size_ = 0;
    }
    if (seg_ >= v2_->num_segments()) return false;
    const ColumnarLogReader::SegmentInfo& info = v2_->segment(seg_);
    if (info.count == 0 || info.max_ts < filter_.start_ts ||
        info.min_ts >= filter_.end_ts) {
      // Whole segment outside the time range (or degenerate): skip it
      // via the index, payload untouched.
      filtered_out_ += info.count;
      ++seg_;
      continue;
    }
    Status st = v2_->LoadSegment(seg_);
    if (!st.ok()) {
      status_ = st;
      return false;
    }
    seg_size_ = info.count;
    // The segment passes wholesale when every event is inside the time
    // range and no per-event filtering or pacing is configured — then
    // ranges of it can be handed out zero-copy.
    seg_exact_ = filter_.hosts.empty() && filter_.speed <= 0.0 &&
                 info.min_ts >= filter_.start_ts &&
                 info.max_ts < filter_.end_ts;
  }
  return true;
}

EventBlock* StreamReplayer::NextBlockV2(size_t max_events) {
  if (!LoadAcceptableSegment()) return nullptr;
  if (seg_exact_) {
    // Zero-copy: a sub-range of the loaded segment's columns.
    size_t n = std::min(max_events, seg_size_ - seg_pos_);
    v2_->BindRange(&out_block_, seg_pos_, n);
    seg_pos_ += n;
    replayed_ += n;
    return &out_block_;
  }
  // Row-filtered path: materialize the segment once, then filter (and
  // pace) rows into an owned block.
  EventBatch& rows = out_block_.ResetOwnedRows();
  while (rows.size() < max_events) {
    if (!LoadAcceptableSegment()) break;
    if (seg_exact_ && !rows.empty()) break;  // hand out the rows first
    if (seg_exact_) return NextBlockV2(max_events);
    if (seg_block_seg_ != seg_) {
      v2_->BindRange(&seg_block_, 0, seg_size_);
      seg_block_seg_ = seg_;
    }
    const Event* seg_rows = seg_block_.MutableRows();
    while (seg_pos_ < seg_size_ && rows.size() < max_events) {
      const Event& e = seg_rows[seg_pos_++];
      if (!Accept(e)) {
        ++filtered_out_;
        continue;
      }
      PaceTo(e.ts);
      ++replayed_;
      rows.push_back(e);
    }
  }
  return rows.empty() ? nullptr : &out_block_;
}

}  // namespace saql
