#include "storage/replayer.h"

#include <chrono>
#include <thread>

namespace saql {

namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StreamReplayer::StreamReplayer(const std::string& path, Filter filter)
    : reader_(std::make_unique<EventLogReader>(path)),
      filter_(std::move(filter)) {
  status_ = reader_->status();
}

bool StreamReplayer::Accept(const Event& e) const {
  if (e.ts < filter_.start_ts || e.ts >= filter_.end_ts) return false;
  if (!filter_.hosts.empty() &&
      filter_.hosts.find(e.agent_id) == filter_.hosts.end()) {
    return false;
  }
  return true;
}

void StreamReplayer::PaceTo(Timestamp ts) {
  if (filter_.speed <= 0.0) return;
  if (first_event_ts_ == INT64_MIN) {
    first_event_ts_ = ts;
    wall_start_ns_ = WallNowNs();
    return;
  }
  double event_elapsed = static_cast<double>(ts - first_event_ts_);
  int64_t target_wall_ns =
      wall_start_ns_ +
      static_cast<int64_t>(event_elapsed / filter_.speed);
  int64_t now = WallNowNs();
  if (target_wall_ns > now) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(target_wall_ns - now));
  }
}

bool StreamReplayer::NextBatch(size_t max_events, EventBatch* batch) {
  batch->clear();
  if (!status_.ok()) return false;
  while (batch->size() < max_events) {
    Result<Event> e = reader_->Next();
    if (!e.ok()) {
      if (e.status().code() != StatusCode::kNotFound) {
        status_ = e.status();
      }
      break;
    }
    if (!Accept(*e)) {
      ++filtered_out_;
      continue;
    }
    PaceTo(e->ts);
    ++replayed_;
    batch->push_back(std::move(*e));
  }
  return !batch->empty();
}

}  // namespace saql
