#ifndef SAQL_STORAGE_RECOVERY_H_
#define SAQL_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/result.h"

namespace saql {

/// Result of recovering a durable log after a crash (or ungraceful
/// exit): the event stream re-assembled from the two persistence tiers.
struct RecoveredLog {
  /// The full recovered stream in sequence order: every event of the
  /// complete columnar segments, then the WAL tail replay.
  EventBatch events;
  /// Events that came from complete columnar segments (seqs
  /// 1..segment_events).
  uint64_t segment_events = 0;
  /// Events replayed from surviving WAL records past the segments.
  uint64_t wal_events = 0;
  /// WAL files found next to the log, in rotation order.
  std::vector<std::string> wal_files;
};

/// Scans `path`'s directory for `<path>.wal.<N>` files, returned in
/// rotation order. Leftover WAL files on a path with no live writer are
/// evidence of a crash that was never recovered — `DurableLogWriter`
/// refuses to open over them (see its `force_stale_wal` option).
Result<std::vector<std::string>> FindWalFiles(const std::string& path);

/// Recovers the durable log at `path`:
///
///   1. Reads the complete columnar segments of `path` (a torn final
///      segment — crash mid-segment-write — is dropped by the v2
///      reader's tail rule). These hold events with seqs 1..n.
///   2. Scans `path`'s directory for `<path>.wal.<N>` files and replays,
///      in rotation order, every surviving record with seq > n. Torn
///      WAL tails (crash mid-record) are detected by length/CRC and
///      discarded.
///   3. Verifies the replay is gap-free (the pipeline deletes WAL files
///      only after their events are fsynced in segments, so a gap means
///      corruption, not a crash).
///
/// Works on healthy logs too: a cleanly closed durable log has no WAL
/// files and recovers to exactly its segment contents.
Result<RecoveredLog> RecoverDurableLog(const std::string& path);

/// Recovers `path` and rewrites it as a pure v2 columnar log containing
/// the recovered stream, then deletes the WAL files — after this the
/// log is a normal replayable artifact. Returns the recovery summary.
Result<RecoveredLog> CompactRecoveredLog(const std::string& path);

}  // namespace saql

#endif  // SAQL_STORAGE_RECOVERY_H_
