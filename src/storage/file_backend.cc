#include "storage/file_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace saql {

namespace {

/// Appends through a POSIX fd; handles short writes and EINTR.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override { Close(); }

  Status Append(const void* data, size_t size) override {
    SAQL_RETURN_IF_ERROR(status_);
    const char* p = static_cast<const char*>(data);
    while (size > 0) {
      ssize_t n = ::write(fd_, p, size);
      if (n < 0) {
        if (errno == EINTR) continue;
        status_ = Status::IoError("write failed on '" + path_ +
                                  "': " + std::strerror(errno));
        return status_;
      }
      p += n;
      size -= static_cast<size_t>(n);
      bytes_ += static_cast<uint64_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    SAQL_RETURN_IF_ERROR(status_);
    if (::fsync(fd_) != 0) {
      status_ = Status::IoError("fsync failed on '" + path_ +
                                "': " + std::strerror(errno));
    }
    return status_;
  }

  Status Close() override {
    if (fd_ >= 0) {
      if (::close(fd_) != 0 && status_.ok()) {
        status_ = Status::IoError("close failed on '" + path_ +
                                  "': " + std::strerror(errno));
      }
      fd_ = -1;
    }
    return status_;
  }

  Status status() const override { return status_; }
  uint64_t bytes_written() const override { return bytes_; }

 private:
  int fd_;
  std::string path_;
  Status status_;
  uint64_t bytes_ = 0;
};

class PosixFileBackend : public FileBackend {
 public:
  Result<std::unique_ptr<WritableFile>> Create(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::IoError("cannot open '" + path +
                             "' for writing: " + std::strerror(errno));
    }
    return {std::make_unique<PosixWritableFile>(fd, path)};
  }

  Status Delete(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IoError("cannot remove '" + path +
                             "': " + std::strerror(errno));
    }
    return Status::Ok();
  }
};

Status SimulatedCrashError() {
  return Status::IoError("simulated crash (fault injection)");
}

}  // namespace

FileBackend* FileBackend::Real() {
  static PosixFileBackend* backend = new PosixFileBackend();
  return backend;
}

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

/// Book-keeping the backend keeps per open file: the wrapped real file
/// plus the durable (synced) size used for crash truncation.
struct FaultInjectionFileBackend::FileState {
  std::string path;
  std::unique_ptr<WritableFile> real;
  uint64_t written = 0;  ///< bytes accepted (incl. torn prefixes)
  uint64_t synced = 0;   ///< bytes covered by the last Sync
  bool open = true;
};

namespace {

/// WritableFile that routes every operation through the backend's fault
/// schedule before delegating to the wrapped real file.
class FaultFile : public WritableFile {
 public:
  FaultFile(FaultInjectionFileBackend* backend,
            FaultInjectionFileBackend::FileState* state, std::mutex* mu)
      : backend_(backend), state_(state), mu_(mu) {}

  ~FaultFile() override { Close(); }

  Status Append(const void* data, size_t size) override;
  Status Sync() override;
  Status Close() override;
  Status status() const override {
    std::lock_guard<std::mutex> lock(*mu_);
    return status_;
  }
  uint64_t bytes_written() const override {
    std::lock_guard<std::mutex> lock(*mu_);
    return state_->written;
  }

 private:
  FaultInjectionFileBackend* backend_;
  FaultInjectionFileBackend::FileState* state_;
  std::mutex* mu_;
  Status status_;
};

}  // namespace

FaultInjectionFileBackend::~FaultInjectionFileBackend() {
  std::lock_guard<std::mutex> lock(mu_);
  for (FileState* f : files_) delete f;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionFileBackend::Create(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return SimulatedCrashError();
  SAQL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> real,
                        FileBackend::Real()->Create(path));
  auto* state = new FileState();
  state->path = path;
  state->real = std::move(real);
  files_.push_back(state);
  return {std::make_unique<FaultFile>(this, state, &mu_)};
}

Status FaultInjectionFileBackend::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return SimulatedCrashError();
  return FileBackend::Real()->Delete(path);
}

void FaultInjectionFileBackend::TripPoint(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  int count = ++trip_counts_[name];
  if (!crashed_ && name == crash_trip_name_ &&
      count == crash_trip_occurrence_) {
    CrashLocked(nullptr, 0);
  }
}

void FaultInjectionFileBackend::FailAppendsAfterBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_after_bytes_ = bytes;
}

void FaultInjectionFileBackend::CrashAfterBytes(
    const std::string& path_substr, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_path_substr_ = path_substr;
  crash_after_bytes_ = bytes;
}

void FaultInjectionFileBackend::CrashAtTripPoint(const std::string& name,
                                                 int occurrence) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_trip_name_ = name;
  crash_trip_occurrence_ = occurrence;
}

bool FaultInjectionFileBackend::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

int FaultInjectionFileBackend::trip_count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = trip_counts_.find(name);
  return it == trip_counts_.end() ? 0 : it->second;
}

uint64_t FaultInjectionFileBackend::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_appended_;
}

void FaultInjectionFileBackend::CrashLocked(FileState* torn_file,
                                            uint64_t torn_keep) {
  crashed_ = true;
  for (FileState* f : files_) {
    if (!f->open) continue;
    uint64_t keep = f->synced;
    if (f == torn_file) keep = std::max(keep, torn_keep);
    // Freeze the on-disk state the way power loss would: flush what the
    // wrapper already forwarded, then cut back to the surviving prefix.
    f->real->Close();
    if (::truncate(f->path.c_str(), static_cast<off_t>(keep)) != 0) {
      // Nothing sane to do in a simulated crash; leave the file as is.
    }
    f->open = false;
  }
}

namespace {

Status FaultFile::Append(const void* data, size_t size) {
  std::lock_guard<std::mutex> lock(*mu_);
  SAQL_RETURN_IF_ERROR(status_);
  Status st = backend_->AppendLocked(state_, data, size);
  if (!st.ok()) status_ = st;
  return st;
}

Status FaultFile::Sync() {
  std::lock_guard<std::mutex> lock(*mu_);
  SAQL_RETURN_IF_ERROR(status_);
  Status st = backend_->SyncLocked(state_);
  if (!st.ok()) status_ = st;
  return st;
}

Status FaultFile::Close() {
  std::lock_guard<std::mutex> lock(*mu_);
  if (state_->open) {
    state_->real->Close();
    state_->open = false;
  }
  return status_;
}

}  // namespace

Status FaultInjectionFileBackend::AppendLocked(FileState* state,
                                               const void* data,
                                               size_t size) {
  if (crashed_ || !state->open) return SimulatedCrashError();
  if (total_appended_ + size > fail_after_bytes_) {
    return Status::IoError("no space left on device (fault injection)");
  }
  // Torn-write crash: persist only the prefix up to the threshold, then
  // freeze the world.
  if (state->path.find(crash_path_substr_) != std::string::npos &&
      !crash_path_substr_.empty() &&
      state->written + size > crash_after_bytes_) {
    uint64_t keep_of_this =
        crash_after_bytes_ > state->written
            ? crash_after_bytes_ - state->written
            : 0;
    if (keep_of_this > 0) state->real->Append(data, keep_of_this);
    state->real->Sync();  // the torn prefix is what "reached the platter"
    uint64_t torn_keep = state->written + keep_of_this;
    state->written = torn_keep;
    CrashLocked(state, torn_keep);
    return SimulatedCrashError();
  }
  SAQL_RETURN_IF_ERROR(state->real->Append(data, size));
  state->written += size;
  total_appended_ += size;
  return Status::Ok();
}

Status FaultInjectionFileBackend::SyncLocked(FileState* state) {
  if (crashed_ || !state->open) return SimulatedCrashError();
  SAQL_RETURN_IF_ERROR(state->real->Sync());
  state->synced = state->written;
  return Status::Ok();
}

}  // namespace saql
