#ifndef SAQL_STORAGE_DURABLE_LOG_H_
#define SAQL_STORAGE_DURABLE_LOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/event.h"
#include "core/result.h"
#include "storage/columnar_log.h"
#include "storage/file_backend.h"
#include "storage/wal.h"

namespace saql {

/// Trip-point names the durable pipeline announces to the file backend
/// ("crash here" markers for the fault-injection crash matrix).
namespace durable_trip {
/// Drainer: WAL records exist for a batch, segment write not started.
inline constexpr char kPreSegment[] = "durable.pre-segment";
/// Drainer: segments fsynced, covered WAL files about to be deleted.
inline constexpr char kPreWalDelete[] = "durable.pre-wal-delete";
/// Foreground: old WAL sealed and closed, new WAL about to be created.
inline constexpr char kWalRotate[] = "durable.wal-rotate";
}  // namespace durable_trip

/// Durable ingestion pipeline: the write path
///
///   Append ──► WAL (`<path>.wal.<N>`, sequential, CRC'd, sync policy)
///            └► bounded queue ──► drainer thread ──► columnar segments
///                                                    (`<path>`, v2 format)
///
/// Appends ack according to `SyncPolicy` (see wal.h): `always` acks only
/// after the WAL fsync, `group` acks immediately with the barrier
/// batched, `none` never syncs the WAL. A background drainer batches the
/// queued events into v2 columnar segments through `ColumnarLogWriter`;
/// once segments are fsynced, the WAL files they fully cover are
/// deleted (rotation keeps individual WAL files bounded). `Close` drains
/// everything, leaving a pure v2 columnar log and no WAL files.
///
/// After a crash, `RecoverDurableLog` (recovery.h) = the complete
/// columnar segments + replay of the surviving WAL tail; torn WAL
/// records are discarded by CRC. WAL files are deleted only after the
/// covering segments are fsynced, so replay never has a gap.
///
/// Errors (disk full, I/O failure, injected crash) are sticky: the first
/// failure is returned to the failing `Append`/`Close` and every later
/// call; already-acked data stays recoverable. The owner (a recording
/// session) is expected to degrade gracefully — stop recording, keep
/// serving queries.
///
/// Thread contract: `Append`/`AppendBatch`/`Close` from one thread; the
/// accessors are thread-safe.
class DurableLogWriter {
 public:
  struct Options {
    SyncPolicy sync;
    /// Events per columnar segment (ColumnarLogWriter::Options).
    size_t segment_events = 4096;
    /// Seal + rotate the WAL once the current file reaches this size.
    uint64_t wal_rotate_bytes = 4u << 20;
    /// Bounded hand-off queue to the drainer, in events. Appends block
    /// when the drainer is this far behind.
    size_t queue_capacity = 64 * 1024;
    /// File layer (nullptr = real files).
    FileBackend* backend = nullptr;
    /// Leftover `<path>.wal.<N>` files mean an earlier incarnation
    /// crashed (or was killed) and was never recovered; opening over
    /// them would silently discard their tail, so the constructor
    /// refuses with FailedPrecondition. Set this to delete the stale
    /// files instead (explicit data loss — run `RecoverDurableLog`
    /// first if the tail matters).
    bool force_stale_wal = false;
  };

  /// Creates/truncates the columnar log at `path` and the first WAL file
  /// `<path>.wal.0`, and starts the drainer. Refuses (FailedPrecondition)
  /// when stale WAL files from an unrecovered earlier incarnation exist
  /// at `path`, unless `force_stale_wal` cleans them up. Check
  /// `status()`.
  DurableLogWriter(const std::string& path, Options options);
  ~DurableLogWriter();

  DurableLogWriter(const DurableLogWriter&) = delete;
  DurableLogWriter& operator=(const DurableLogWriter&) = delete;

  /// First error anywhere in the pipeline (WAL, queue, drainer,
  /// segments). Sticky.
  Status status() const;

  /// Appends one event. Returns OK = acked per the sync policy's
  /// contract (`always`: durable now; `group`/`none`: accepted, durable
  /// at the next barrier).
  Status Append(const Event& event);
  Status AppendBatch(const EventBatch& events);

  /// Forces a WAL durability barrier now (any policy). Everything
  /// appended so far is durable when this returns OK.
  Status SyncWal();

  /// Drains the queue into segments, fsyncs, deletes the WAL files, and
  /// closes — on success `path` is a pure v2 columnar log. On error the
  /// surviving WAL files are kept for recovery. Idempotent.
  Status Close();

  /// Appends acked so far (== highest sequence number assigned).
  uint64_t appended_events() const;
  /// Highest sequence number known durable (WAL fsync or segment fsync).
  uint64_t durable_seq() const;
  /// Events fsynced into complete columnar segments.
  uint64_t events_in_segments() const;
  uint64_t wal_rotations() const;

 private:
  struct SealedWal {
    std::string path;
    uint64_t last_seq = 0;
  };

  /// Drainer thread body.
  void DrainLoop();
  /// Moves queued events into the columnar writer; fsyncs + deletes
  /// covered WALs when segments advanced. Called with `mu_` held;
  /// releases it around file I/O.
  void DrainBatchLocked(std::unique_lock<std::mutex>& lock);
  /// WAL durability barrier: fsync + advance `wal_synced_seq_`. `mu_`
  /// held (appends stall for the fsync's duration — the group-commit
  /// trade).
  void WalBarrierLocked();
  /// Seals the current WAL and opens `<path>.wal.<N+1>`. `mu_` held.
  void RotateWalLocked();
  /// Records the first error. `mu_` held.
  void SetStatusLocked(const Status& st);

  std::string path_;
  Options options_;
  FileBackend* backend_;  ///< resolved, never null

  mutable std::mutex mu_;
  std::condition_variable cv_drainer_;  ///< work available / closing
  std::condition_variable cv_space_;    ///< queue has room

  Status status_;
  bool closing_ = false;
  bool closed_ = false;

  std::unique_ptr<WalWriter> wal_;
  uint64_t wal_index_ = 0;       ///< suffix of the current WAL file
  uint64_t next_seq_ = 1;
  uint64_t wal_synced_seq_ = 0;  ///< last seq covered by a WAL fsync
  uint64_t unsynced_bytes_ = 0;  ///< WAL bytes past the last barrier
  /// When `unsynced_bytes_` went 0 → >0: start of the open commit window.
  std::chrono::steady_clock::time_point window_start_;
  std::vector<SealedWal> sealed_;
  uint64_t rotations_ = 0;

  std::vector<Event> queue_;  ///< seq order; front = oldest

  // Drainer-owned (no lock needed beyond the hand-off).
  std::unique_ptr<ColumnarLogWriter> columnar_;
  uint64_t seg_durable_seq_ = 0;  ///< events fsynced in segments

  std::thread drainer_;
};

}  // namespace saql

#endif  // SAQL_STORAGE_DURABLE_LOG_H_
