#ifndef SAQL_STORAGE_WAL_H_
#define SAQL_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/result.h"
#include "storage/file_backend.h"

namespace saql {

/// When an ingested event counts as durable — i.e. when the write-ahead
/// log fsyncs relative to the append that acks it.
enum class SyncMode : uint8_t {
  /// fsync before every ack. An acked event is never lost; slowest.
  kAlways,
  /// Appends ack immediately; a group barrier fsyncs once the open
  /// commit window reaches `max_delay` or `max_bytes`. Loss after a
  /// crash is bounded to the events of the open window.
  kGroupCommit,
  /// No WAL-side fsync at all; data becomes durable only at segment
  /// and close barriers. Fastest, widest loss window.
  kNone,
};

struct SyncPolicy {
  SyncMode mode = SyncMode::kGroupCommit;
  /// kGroupCommit: maximum age of an unsynced append before the
  /// background barrier fires.
  int64_t max_delay_us = 2000;
  /// kGroupCommit: unsynced bytes that force an immediate barrier.
  uint64_t max_bytes = 256 * 1024;

  static SyncPolicy Always() { return {SyncMode::kAlways, 0, 0}; }
  static SyncPolicy GroupCommit(int64_t max_delay_us = 2000,
                                uint64_t max_bytes = 256 * 1024) {
    return {SyncMode::kGroupCommit, max_delay_us, max_bytes};
  }
  static SyncPolicy None() { return {SyncMode::kNone, 0, 0}; }

  const char* name() const {
    switch (mode) {
      case SyncMode::kAlways: return "always";
      case SyncMode::kGroupCommit: return "group";
      case SyncMode::kNone: return "none";
    }
    return "?";
  }
};

/// Parses "always", "group", "group:<delay_us>:<bytes>", or "none" (the
/// shell's `--sync=` argument values).
Result<SyncPolicy> ParseSyncPolicy(const std::string& text);

/// Append-only write-ahead log of events, the durability layer in front
/// of the columnar segment writer.
///
/// File format (little-endian):
///   header:  magic "SAQLWAL1", u32 version, u64 first_seq
///   record:  u32 payload_size, u32 crc32 (over seq + payload),
///            u64 seq, payload (v1 event serialization)
///
/// Records carry explicit sequence numbers so recovery can line the WAL
/// tail up against the columnar segments (which hold seqs
/// 1..events-in-segments by construction). The CRC covers seq + payload,
/// so a torn tail — power loss mid-append — is detected and discarded by
/// the reader rather than replayed as garbage.
class WalWriter {
 public:
  /// Creates/truncates `path`; records appended here start at
  /// `first_seq`. Check `status()` before use.
  WalWriter(const std::string& path, uint64_t first_seq,
            FileBackend* backend = nullptr);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status status() const { return status_; }
  const std::string& path() const { return path_; }

  /// Appends `event` as the record for `seq`. No fsync — call `Sync()`
  /// per the policy in force.
  Status Append(uint64_t seq, const Event& event);

  /// Durability barrier over everything appended so far.
  Status Sync();

  /// Closes without deleting (the pipeline deletes WAL files only after
  /// their contents are durable in segments). Idempotent.
  Status Close();

  uint64_t bytes_written() const {
    return out_ != nullptr ? out_->bytes_written() : 0;
  }
  uint64_t records_written() const { return records_written_; }

 private:
  std::string path_;
  std::unique_ptr<WritableFile> out_;
  Status status_;
  std::string buffer_;
  uint64_t records_written_ = 0;
};

/// One event recovered from a WAL file.
struct WalRecord {
  uint64_t seq = 0;
  Event event;
};

/// Reads the complete records of the WAL at `path`, in file order. A bad
/// record — short header, short payload, or CRC mismatch — ends the read
/// at the last good record: the crash-consistent torn-tail contract, not
/// an error. `bytes_consumed` (optional) reports how far the valid
/// prefix ran.
Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       uint64_t* bytes_consumed = nullptr);

}  // namespace saql

#endif  // SAQL_STORAGE_WAL_H_
