#include "storage/log_format.h"

#include <array>
#include <cstring>
#include <fstream>

namespace saql {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82F63B78u;  // Castagnoli, reflected

/// Slicing-by-8 tables: table[0] is the classic byte table, table[k]
/// advances a byte through k additional zero bytes.
std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kCrc32cPoly ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

uint32_t Crc32cSoftware(const void* data, size_t size) {
  static const auto tables = MakeCrcTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    chunk ^= crc;
    crc = tables[7][chunk & 0xFFu] ^ tables[6][(chunk >> 8) & 0xFFu] ^
          tables[5][(chunk >> 16) & 0xFFu] ^
          tables[4][(chunk >> 24) & 0xFFu] ^
          tables[3][(chunk >> 32) & 0xFFu] ^
          tables[2][(chunk >> 40) & 0xFFu] ^
          tables[1][(chunk >> 48) & 0xFFu] ^ tables[0][chunk >> 56];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__)  // crc32di is 64-bit only; i386 takes the tables

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    crc = __builtin_ia32_crc32di(crc, chunk);
    p += 8;
    size -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (size-- > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p++);
  }
  return crc32 ^ 0xFFFFFFFFu;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2"); }

#else

uint32_t Crc32cHardware(const void* data, size_t size) {
  return Crc32cSoftware(data, size);
}

bool HaveSse42() { return false; }

#endif

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const bool hw = HaveSse42();
  return hw ? Crc32cHardware(data, size) : Crc32cSoftware(data, size);
}

Result<int> DetectEventLogVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in) {
    return Status::IoError("'" + path + "' is not a SAQL event log");
  }
  if (std::memcmp(magic, kLogMagicV1, sizeof(magic)) == 0) return 1;
  if (std::memcmp(magic, kLogMagicV2, sizeof(magic)) == 0) return 2;
  return Status::IoError("'" + path + "' is not a SAQL event log");
}

}  // namespace saql
