#ifndef SAQL_STORAGE_FILE_BACKEND_H_
#define SAQL_STORAGE_FILE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"

namespace saql {

/// One append-only file opened through a `FileBackend`. All storage
/// writers (WAL, columnar log, v1 row log) run on this seam instead of
/// raw streams, so crash and I/O-error behavior is testable
/// deterministically (`FaultInjectionFileBackend`) instead of via
/// platform fixtures like `/dev/full`.
///
/// Errors are sticky: after the first failed operation every later call
/// returns the same status, mirroring the writers' own contract.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `size` bytes at the end of the file.
  virtual Status Append(const void* data, size_t size) = 0;

  /// Durability barrier: everything appended so far reaches stable
  /// storage (fsync) before this returns OK.
  virtual Status Sync() = 0;

  /// Closes the file. Idempotent; returns the sticky status.
  virtual Status Close() = 0;

  virtual Status status() const = 0;

  /// Total bytes accepted by Append.
  virtual uint64_t bytes_written() const = 0;
};

/// Factory seam for the storage layer's file I/O. `Real()` is the
/// process-wide POSIX backend; tests inject `FaultInjectionFileBackend`
/// to script disk-full errors and crashes at exact byte offsets or named
/// trip points.
class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Creates (or truncates) `path` for appending.
  virtual Result<std::unique_ptr<WritableFile>> Create(
      const std::string& path) = 0;

  /// Removes `path`.
  virtual Status Delete(const std::string& path) = 0;

  /// Fault-injection hook called by storage code at semantically
  /// interesting points ("crash here" markers). No-op on the real
  /// backend.
  virtual void TripPoint(const char* name) { (void)name; }

  /// The process-wide POSIX-file backend.
  static FileBackend* Real();

  /// Resolves an injectable backend pointer: `backend` itself, or
  /// `Real()` when null (the convention every writer option follows).
  static FileBackend* OrReal(FileBackend* backend) {
    return backend != nullptr ? backend : Real();
  }
};

/// Deterministic fault injection over real files. Three fault schedules,
/// all usable together:
///
///  - `FailAppendsAfterBytes(n)`: appends fail with IoError once the
///    cumulative bytes appended across all files reach `n` — the
///    deterministic replacement for writing to `/dev/full`.
///  - `CrashAfterBytes(substr, n)`: simulated power loss the moment a
///    file whose path contains `substr` has had `n` bytes appended. The
///    triggering append is *torn*: its prefix up to the threshold is
///    kept on disk even though unsynced (page-cache reality), every
///    other file is truncated to its last-synced size, and all further
///    operations on the backend fail.
///  - `CrashAtTripPoint(name, occurrence)`: simulated power loss at the
///    `occurrence`-th hit of a named `TripPoint` in storage code. Every
///    file is truncated to its last-synced size (unsynced data lost).
///
/// After a crash the on-disk state is frozen exactly as a real crash
/// would leave it; recovery code then runs against the real filesystem.
class FaultInjectionFileBackend : public FileBackend {
 public:
  FaultInjectionFileBackend() = default;
  ~FaultInjectionFileBackend() override;

  Result<std::unique_ptr<WritableFile>> Create(
      const std::string& path) override;
  Status Delete(const std::string& path) override;
  void TripPoint(const char* name) override;

  /// Disk-full emulation: appends return IoError once cumulative bytes
  /// across all files reach `bytes` (0 = every append fails).
  void FailAppendsAfterBytes(uint64_t bytes);

  /// Schedules a torn-write crash: trips when a file whose path contains
  /// `path_substr` reaches `bytes` appended bytes.
  void CrashAfterBytes(const std::string& path_substr, uint64_t bytes);

  /// Schedules a crash at the `occurrence`-th hit of trip point `name`.
  void CrashAtTripPoint(const std::string& name, int occurrence = 1);

  bool crashed() const;

  /// Times trip point `name` was hit so far (for scheduling assertions).
  int trip_count(const std::string& name) const;

  /// Cumulative bytes appended across all files.
  uint64_t bytes_appended() const;

  // Internal: called by the wrapper files with `mu_` held. Public only
  // because the wrapper lives in the implementation file.
  struct FileState;
  Status AppendLocked(FileState* state, const void* data, size_t size);
  Status SyncLocked(FileState* state);

 private:

  /// Transitions to the crashed state: truncates every open file to its
  /// durable size (+ `torn` extra bytes for `torn_file`, the mid-append
  /// victim). Caller holds `mu_`.
  void CrashLocked(FileState* torn_file, uint64_t torn_keep);

  mutable std::mutex mu_;
  std::vector<FileState*> files_;
  std::unordered_map<std::string, int> trip_counts_;

  bool crashed_ = false;
  uint64_t total_appended_ = 0;
  uint64_t fail_after_bytes_ = UINT64_MAX;
  std::string crash_path_substr_;
  uint64_t crash_after_bytes_ = UINT64_MAX;
  std::string crash_trip_name_;
  int crash_trip_occurrence_ = 0;
};

}  // namespace saql

#endif  // SAQL_STORAGE_FILE_BACKEND_H_
