#ifndef SAQL_STORAGE_LOG_FORMAT_H_
#define SAQL_STORAGE_LOG_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/result.h"

namespace saql {

// On-disk event-log formats (both little-endian):
//
//  v1 ("SAQLLOG1"): row-at-a-time — u32 payload size + field-by-field
//    record per event (storage/event_log.h).
//
//  v2 ("SAQLLOG2"): columnar segments — the batch-native format behind
//    `ColumnarLogWriter` / `ColumnarLogReader` (storage/columnar_log.h):
//
//    file header (16 B): magic "SAQLLOG2", u32 version = 2, u32 reserved
//    segment*:
//      segment header (40 B, 8-aligned): SegmentHeader below
//      payload (crc-protected, padded to 8 B):
//        dictionary: dict_count entries of u32 length + bytes (entry 0,
//          the empty string, is implicit and not serialized), padded to 8
//        columns, contiguous, in fixed order (widest first, so every
//          column is naturally aligned inside the 8-aligned payload):
//            u64 id[n]
//            i64 ts[n], subj_pid[n], obj_pid[n], src_port[n],
//                dst_port[n], amount[n]
//            u32 agent[n], subj_exe[n], subj_user[n], obj_exe[n],
//                obj_user[n], obj_path[n], src_ip[n], dst_ip[n],
//                protocol[n]            — dictionary offsets ("compressed
//                                         offsets": strings stored once
//                                         in the dictionary, per-event
//                                         cells are 4-byte codes)
//            u8  op[n], object_type[n], failed[n]
//
//    Writers emit whole segments, so a crash truncates the file inside at
//    most one segment; readers bound-check each segment against the file
//    and stop at the first incomplete one (crash-consistent tail, same
//    contract as v1's last-complete-record rule). A bounds-complete
//    segment whose CRC fails is corruption, not truncation → IoError.

inline constexpr char kLogMagicV1[8] = {'S', 'A', 'Q', 'L',
                                        'L', 'O', 'G', '1'};
inline constexpr char kLogMagicV2[8] = {'S', 'A', 'Q', 'L',
                                        'L', 'O', 'G', '2'};
inline constexpr uint32_t kLogVersionV1 = 1;
inline constexpr uint32_t kLogVersionV2 = 2;
inline constexpr size_t kV2FileHeaderSize = 16;
inline constexpr uint32_t kSegmentMagic = 0x32474553;  // "SEG2"

/// Fixed-layout v2 segment header; memcpy-safe (no padding, 8-aligned).
struct SegmentHeader {
  uint64_t payload_bytes = 0;  ///< payload size incl. trailing pad
  uint32_t magic = kSegmentMagic;
  uint32_t event_count = 0;
  int64_t min_ts = 0;
  int64_t max_ts = 0;
  uint32_t dict_count = 0;  ///< serialized entries (excl. implicit "")
  uint32_t crc32 = 0;       ///< CRC-32C (Castagnoli) of the payload
};
static_assert(sizeof(SegmentHeader) == 40, "segment header layout");

/// CRC-32C (Castagnoli polynomial, reflected — the storage-format CRC
/// with hardware support) over `data`. Uses the SSE4.2 crc32 instruction
/// when the CPU has it (checksumming is on the replay hot path: every
/// segment is verified once per load), slicing-by-8 tables otherwise.
uint32_t Crc32(const void* data, size_t size);

/// Rounds `n` up to the next multiple of 8 (payload/section alignment).
inline constexpr size_t AlignTo8(size_t n) { return (n + 7) & ~size_t{7}; }

/// Sniffs the magic at `path`: returns 1 or 2, or IoError for missing
/// files and non-SAQL content. `replay` and the session ingest path use
/// this to route v1 logs through the row reader and v2 logs through the
/// columnar reader.
Result<int> DetectEventLogVersion(const std::string& path);

}  // namespace saql

#endif  // SAQL_STORAGE_LOG_FORMAT_H_
