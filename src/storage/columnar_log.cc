#include "storage/columnar_log.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "core/interner.h"
#include "storage/event_log.h"

namespace saql {

namespace {

constexpr size_t kSentinelNone = static_cast<size_t>(-1);

void PutBytes(std::string* buf, const void* data, size_t size) {
  buf->append(static_cast<const char*>(data), size);
}

void PutU32(std::string* buf, uint32_t v) { PutBytes(buf, &v, sizeof(v)); }

void PadTo8(std::string* buf) { buf->resize(AlignTo8(buf->size()), '\0'); }

/// Per-event bytes of the fixed-width column section.
constexpr size_t ColumnBytesPerEvent() {
  return 7 * sizeof(int64_t) + 9 * sizeof(uint32_t) + 3 * sizeof(uint8_t);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

ColumnarLogWriter::ColumnarLogWriter(const std::string& path, Options options)
    : options_(options) {
  if (options_.segment_events == 0) options_.segment_events = 4096;
  Result<std::unique_ptr<WritableFile>> file =
      FileBackend::OrReal(options_.backend)->Create(path);
  if (!file.ok()) {
    status_ = file.status();
    return;
  }
  out_ = std::move(*file);
  payload_.assign(kLogMagicV2, sizeof(kLogMagicV2));
  uint32_t version = kLogVersionV2;
  PutU32(&payload_, version);
  PutU32(&payload_, 0);  // reserved
  status_ = out_->Append(payload_.data(), payload_.size());
}

ColumnarLogWriter::~ColumnarLogWriter() { Close(); }

Status ColumnarLogWriter::Append(const Event& event) {
  SAQL_RETURN_IF_ERROR(status_);
  pending_.AppendColumnar(event);
  if (pending_.size() >= options_.segment_events) return Flush();
  return Status::Ok();
}

Status ColumnarLogWriter::AppendBatch(const EventBatch& events) {
  for (const Event& e : events) {
    SAQL_RETURN_IF_ERROR(Append(e));
  }
  return Status::Ok();
}

Status ColumnarLogWriter::WriteBlock(EventBlock* block) {
  SAQL_RETURN_IF_ERROR(status_);
  if (block->empty()) return Status::Ok();
  if (block->columnar() && block->size() >= options_.segment_events) {
    SAQL_RETURN_IF_ERROR(Flush());  // keep order: pending rows come first
    SAQL_RETURN_IF_ERROR(WriteSegment(*block));
    events_written_ += block->size();
    return Status::Ok();
  }
  const Event* rows = block->MutableRows();
  for (size_t i = 0; i < block->size(); ++i) {
    SAQL_RETURN_IF_ERROR(Append(rows[i]));
  }
  return Status::Ok();
}

Status ColumnarLogWriter::Flush() {
  SAQL_RETURN_IF_ERROR(status_);
  if (pending_.empty()) return Status::Ok();
  Status st = WriteSegment(pending_);
  if (st.ok()) events_written_ += pending_.size();
  pending_.Clear();
  return st;
}

Status ColumnarLogWriter::WriteSegment(const EventBlock& block) {
  const size_t n = block.size();
  const EventBlock::Columns& c = block.columns();

  payload_.clear();
  // Dictionary: entry 0 ("") is implicit.
  for (size_t i = 1; i < block.dict_size(); ++i) {
    std::string_view s = block.dict()[i];
    PutU32(&payload_, static_cast<uint32_t>(s.size()));
    PutBytes(&payload_, s.data(), s.size());
  }
  PadTo8(&payload_);
  // Columns, widest first (log_format.h fixes the order).
  PutBytes(&payload_, c.id, n * sizeof(uint64_t));
  PutBytes(&payload_, c.ts, n * sizeof(int64_t));
  PutBytes(&payload_, c.subj_pid, n * sizeof(int64_t));
  PutBytes(&payload_, c.obj_pid, n * sizeof(int64_t));
  PutBytes(&payload_, c.src_port, n * sizeof(int64_t));
  PutBytes(&payload_, c.dst_port, n * sizeof(int64_t));
  PutBytes(&payload_, c.amount, n * sizeof(int64_t));
  PutBytes(&payload_, c.agent, n * sizeof(uint32_t));
  PutBytes(&payload_, c.subj_exe, n * sizeof(uint32_t));
  PutBytes(&payload_, c.subj_user, n * sizeof(uint32_t));
  PutBytes(&payload_, c.obj_exe, n * sizeof(uint32_t));
  PutBytes(&payload_, c.obj_user, n * sizeof(uint32_t));
  PutBytes(&payload_, c.obj_path, n * sizeof(uint32_t));
  PutBytes(&payload_, c.src_ip, n * sizeof(uint32_t));
  PutBytes(&payload_, c.dst_ip, n * sizeof(uint32_t));
  PutBytes(&payload_, c.protocol, n * sizeof(uint32_t));
  PutBytes(&payload_, c.op, n * sizeof(uint8_t));
  PutBytes(&payload_, c.object_type, n * sizeof(uint8_t));
  PutBytes(&payload_, c.failed, n * sizeof(uint8_t));
  PadTo8(&payload_);

  SegmentHeader header;
  header.payload_bytes = payload_.size();
  header.event_count = static_cast<uint32_t>(n);
  block.TsBounds(&header.min_ts, &header.max_ts);
  header.dict_count = static_cast<uint32_t>(block.dict_size() - 1);
  header.crc32 = Crc32(payload_.data(), payload_.size());

  SAQL_RETURN_IF_ERROR(SetStatus(out_->Append(&header, sizeof(header))));
  SAQL_RETURN_IF_ERROR(SetStatus(out_->Append(payload_.data(),
                                              payload_.size())));
  ++segments_written_;
  return Status::Ok();
}

Status ColumnarLogWriter::Sync() {
  SAQL_RETURN_IF_ERROR(status_);
  return SetStatus(out_->Sync());
}

Status ColumnarLogWriter::Close() {
  if (out_ != nullptr) {
    Flush();
    Status st = out_->Close();
    if (!st.ok() && status_.ok()) status_ = st;
    out_.reset();
  }
  return status_;
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

ColumnarLogReader::ColumnarLogReader(const std::string& path, Options options)
    : options_(options), path_(path), loaded_index_(kSentinelNone) {
  if (options_.use_mmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      status_ = Status::IoError("cannot open '" + path + "' for reading");
      return;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      status_ = Status::IoError("cannot stat '" + path + "'");
      return;
    }
    file_size_ = static_cast<size_t>(st.st_size);
    if (file_size_ > 0) {
      void* map = ::mmap(nullptr, file_size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map == MAP_FAILED) {
        // mmap-hostile filesystem: degrade to buffered reads.
        options_.use_mmap = false;
      } else {
        map_ = static_cast<const char*>(map);
        map_size_ = file_size_;
      }
    }
    ::close(fd);
  }
  if (map_ == nullptr) {
    in_.open(path, std::ios::binary);
    if (!in_) {
      status_ = Status::IoError("cannot open '" + path + "' for reading");
      return;
    }
    in_.seekg(0, std::ios::end);
    file_size_ = static_cast<size_t>(in_.tellg());
    in_.seekg(0);
  }
  status_ = BuildIndex();
}

ColumnarLogReader::~ColumnarLogReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
  }
}

Status ColumnarLogReader::BuildIndex() {
  char file_header[kV2FileHeaderSize];
  if (file_size_ < sizeof(file_header)) {
    return Status::IoError("'" + path_ + "' is not a SAQL v2 event log");
  }
  if (map_ != nullptr) {
    std::memcpy(file_header, map_, sizeof(file_header));
  } else {
    in_.read(file_header, sizeof(file_header));
    if (!in_) return Status::IoError("failed reading log header");
  }
  uint32_t version = 0;
  std::memcpy(&version, file_header + sizeof(kLogMagicV2), sizeof(version));
  if (std::memcmp(file_header, kLogMagicV2, sizeof(kLogMagicV2)) != 0) {
    return Status::IoError("'" + path_ + "' is not a SAQL v2 event log");
  }
  if (version != kLogVersionV2) {
    return Status::IoError("unsupported columnar log version " +
                           std::to_string(version));
  }

  uint64_t offset = kV2FileHeaderSize;
  while (offset + sizeof(SegmentHeader) <= file_size_) {
    SegmentHeader header;
    if (map_ != nullptr) {
      std::memcpy(&header, map_ + offset, sizeof(header));
    } else {
      in_.seekg(static_cast<std::streamoff>(offset));
      in_.read(reinterpret_cast<char*>(&header), sizeof(header));
      if (!in_) break;  // short read at the tail
    }
    if (header.magic != kSegmentMagic) {
      return Status::IoError("corrupt segment header at offset " +
                             std::to_string(offset));
    }
    uint64_t payload_offset = offset + sizeof(SegmentHeader);
    if (header.payload_bytes >
            static_cast<uint64_t>(file_size_) - payload_offset ||
        header.payload_bytes <
            header.event_count * ColumnBytesPerEvent()) {
      // Payload extends past EOF (or is impossibly small for its event
      // count): the writer was cut off mid-segment. Crash-consistent
      // tail — keep everything before it.
      break;
    }
    SegmentInfo info;
    info.payload_offset = payload_offset;
    info.payload_bytes = header.payload_bytes;
    info.count = header.event_count;
    info.dict_count = header.dict_count;
    info.crc32 = header.crc32;
    info.min_ts = header.min_ts;
    info.max_ts = header.max_ts;
    index_.push_back(info);
    total_events_ += header.event_count;
    offset = payload_offset + header.payload_bytes;
  }
  crc_checked_.assign(index_.size(), false);
  return Status::Ok();
}

size_t ColumnarLogReader::FirstSegmentAtOrAfter(Timestamp ts) const {
  size_t i = 0;
  while (i < index_.size() && index_[i].max_ts < ts) ++i;
  return i;
}

const char* ColumnarLogReader::PayloadData(size_t i) const {
  if (map_ != nullptr) return map_ + index_[i].payload_offset;
  return payload_buf_.data();
}

Status ColumnarLogReader::LoadSegment(size_t i) {
  SAQL_RETURN_IF_ERROR(status_);
  if (i >= index_.size()) {
    return Status::InvalidArgument("segment index out of range");
  }
  if (loaded_index_ == i) return Status::Ok();
  const SegmentInfo& info = index_[i];

  if (map_ == nullptr) {
    payload_buf_.resize(info.payload_bytes);
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(info.payload_offset));
    in_.read(payload_buf_.data(),
             static_cast<std::streamsize>(info.payload_bytes));
    if (!in_) {
      status_ = Status::IoError("failed reading segment payload");
      return status_;
    }
  }
  const char* payload = PayloadData(i);

  if (!crc_checked_[i]) {
    if (Crc32(payload, info.payload_bytes) != info.crc32) {
      status_ = Status::IoError("corrupt segment (CRC mismatch) at offset " +
                                std::to_string(info.payload_offset));
      return status_;
    }
    crc_checked_[i] = true;
  }

  // Dictionary: dict_count entries of u32 length + bytes.
  loaded_dict_.clear();
  loaded_dict_.push_back(std::string_view{});  // code 0 = ""
  size_t pos = 0;
  for (uint32_t d = 0; d < info.dict_count; ++d) {
    uint32_t len = 0;
    if (pos + sizeof(len) > info.payload_bytes) {
      status_ = Status::IoError("corrupt segment dictionary");
      return status_;
    }
    std::memcpy(&len, payload + pos, sizeof(len));
    pos += sizeof(len);
    if (pos + len > info.payload_bytes) {
      status_ = Status::IoError("corrupt segment dictionary");
      return status_;
    }
    loaded_dict_.emplace_back(payload + pos, len);
    pos += len;
  }
  pos = AlignTo8(pos);

  // Columns at fixed offsets after the dictionary.
  const size_t n = info.count;
  if (pos + n * ColumnBytesPerEvent() > info.payload_bytes) {
    status_ = Status::IoError("corrupt segment (columns truncated)");
    return status_;
  }
  auto take_i64 = [&](const int64_t** col) {
    *col = reinterpret_cast<const int64_t*>(payload + pos);
    pos += n * sizeof(int64_t);
  };
  auto take_u32 = [&](const uint32_t** col) {
    *col = reinterpret_cast<const uint32_t*>(payload + pos);
    pos += n * sizeof(uint32_t);
  };
  auto take_u8 = [&](const uint8_t** col) {
    *col = reinterpret_cast<const uint8_t*>(payload + pos);
    pos += n * sizeof(uint8_t);
  };
  EventBlock::Columns c;
  c.id = reinterpret_cast<const uint64_t*>(payload + pos);
  pos += n * sizeof(uint64_t);
  take_i64(&c.ts);
  take_i64(&c.subj_pid);
  take_i64(&c.obj_pid);
  take_i64(&c.src_port);
  take_i64(&c.dst_port);
  take_i64(&c.amount);
  take_u32(&c.agent);
  take_u32(&c.subj_exe);
  take_u32(&c.subj_user);
  take_u32(&c.obj_exe);
  take_u32(&c.obj_user);
  take_u32(&c.obj_path);
  take_u32(&c.src_ip);
  take_u32(&c.dst_ip);
  take_u32(&c.protocol);
  take_u8(&c.op);
  take_u8(&c.object_type);
  take_u8(&c.failed);

  // Bound-check enums and dictionary codes once per segment, so
  // materialization can index without per-cell checks. Max-reduce then
  // one compare per column: branch-free inner loops the compiler
  // vectorizes.
  uint8_t max_op = 0, max_type = 0;
  for (size_t r = 0; r < n; ++r) {
    max_op = std::max(max_op, c.op[r]);
    max_type = std::max(max_type, c.object_type[r]);
  }
  if (max_op >= kNumEventOps || max_type > 2) {
    status_ = Status::IoError("corrupt segment (bad enum value)");
    return status_;
  }
  const uint32_t dict_total = static_cast<uint32_t>(loaded_dict_.size());
  const uint32_t* code_cols[] = {c.agent,    c.subj_exe, c.subj_user,
                                 c.obj_exe,  c.obj_user, c.obj_path,
                                 c.src_ip,   c.dst_ip,   c.protocol};
  for (const uint32_t* col : code_cols) {
    uint32_t max_code = 0;
    for (size_t r = 0; r < n; ++r) max_code = std::max(max_code, col[r]);
    if (max_code >= dict_total) {
      status_ = Status::IoError(
          "corrupt segment (dictionary code out of range)");
      return status_;
    }
  }

  // Materialize the dictionary into the process interner: one probe per
  // distinct spelling for the whole segment.
  Interner& interner = Interner::Global();
  loaded_syms_gen_ = interner.generation();
  loaded_dict_syms_.resize(loaded_dict_.size());
  for (size_t d = 0; d < loaded_dict_.size(); ++d) {
    loaded_dict_syms_[d] = interner.Intern(loaded_dict_[d]);
  }

  loaded_cols_ = c;
  loaded_index_ = i;
  return Status::Ok();
}

void ColumnarLogReader::BindRange(EventBlock* block, size_t offset,
                                  size_t count) {
  Interner& interner = Interner::Global();
  if (interner.generation() != loaded_syms_gen_) {
    // The interner rotated under us (legal only between runs, but blocks
    // may be handed out across that boundary): refresh the dictionary ids.
    loaded_syms_gen_ = interner.generation();
    for (size_t d = 0; d < loaded_dict_.size(); ++d) {
      loaded_dict_syms_[d] = interner.Intern(loaded_dict_[d]);
    }
  }
  block->BindColumns(loaded_cols_.Slice(offset), count, loaded_dict_.data(),
                     loaded_dict_.size(), loaded_dict_syms_.data(),
                     loaded_syms_gen_);
}

Status ColumnarLogReader::ReadSegment(size_t i, EventBlock* block) {
  SAQL_RETURN_IF_ERROR(LoadSegment(i));
  BindRange(block, 0, index_[i].count);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Convenience round trips.
// ---------------------------------------------------------------------------

Status WriteColumnarEventLog(const std::string& path, const EventBatch& events,
                             ColumnarLogWriter::Options options) {
  ColumnarLogWriter writer(path, options);
  SAQL_RETURN_IF_ERROR(writer.status());
  SAQL_RETURN_IF_ERROR(writer.AppendBatch(events));
  return writer.Close();
}

Result<EventBatch> ReadColumnarEventLog(const std::string& path) {
  ColumnarLogReader reader(path);
  SAQL_RETURN_IF_ERROR(reader.status());
  EventBatch out;
  out.reserve(reader.total_events());
  EventBlock block;
  for (size_t i = 0; i < reader.num_segments(); ++i) {
    SAQL_RETURN_IF_ERROR(reader.ReadSegment(i, &block));
    const Event* rows = block.MutableRows();
    out.insert(out.end(), rows, rows + block.size());
  }
  return out;
}

Result<EventBatch> ReadAnyEventLog(const std::string& path) {
  SAQL_ASSIGN_OR_RETURN(int version, DetectEventLogVersion(path));
  if (version == 2) return ReadColumnarEventLog(path);
  return ReadEventLog(path);
}

}  // namespace saql
