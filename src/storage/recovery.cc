#include "storage/recovery.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "storage/columnar_log.h"
#include "storage/log_format.h"
#include "storage/wal.h"

namespace saql {

namespace {

/// Splits `path` into (directory, basename); directory is "." for bare
/// names.
void SplitPath(const std::string& path, std::string* dir,
               std::string* base) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    *dir = ".";
    *base = path;
  } else {
    *dir = path.substr(0, slash);
    *base = path.substr(slash + 1);
  }
}

/// Size of `path`, or 0 when it does not exist.
uint64_t FileSize(const std::string& path) {
  struct stat st = {};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

Result<std::vector<std::string>> FindWalFiles(const std::string& path) {
  std::string dir, base;
  SplitPath(path, &dir, &base);
  const std::string prefix = base + ".wal.";

  std::vector<std::pair<uint64_t, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot scan directory '" + dir +
                           "' for WAL files");
  }
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind(prefix, 0) != 0) continue;
    std::string suffix = name.substr(prefix.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::stoull(suffix), dir + "/" + name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());

  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [index, p] : found) paths.push_back(std::move(p));
  return paths;
}

Result<RecoveredLog> RecoverDurableLog(const std::string& path) {
  RecoveredLog out;

  // Tier 1: the complete columnar segments. A crash can leave the log
  // file with a torn final segment (the v2 reader's tail rule drops it)
  // or even a torn 16-byte file header (then nothing made it into
  // segments at all).
  if (FileSize(path) >= kV2FileHeaderSize) {
    SAQL_ASSIGN_OR_RETURN(out.events, ReadColumnarEventLog(path));
    out.segment_events = out.events.size();
  }

  // Tier 2: WAL tail replay. Segments hold seqs 1..segment_events (the
  // drainer writes in sequence order), so replay picks up from there.
  SAQL_ASSIGN_OR_RETURN(out.wal_files, FindWalFiles(path));
  uint64_t max_seq = out.segment_events;
  for (const std::string& wal : out.wal_files) {
    // A file torn inside its own header (crash during rotation) holds
    // no records by construction.
    if (FileSize(wal) < 20) continue;
    SAQL_ASSIGN_OR_RETURN(std::vector<WalRecord> records, ReadWal(wal));
    for (WalRecord& r : records) {
      if (r.seq <= max_seq) continue;  // already durable in segments
      if (r.seq != max_seq + 1) {
        return Status::IoError(
            "gap in WAL replay at '" + wal + "': have seq " +
            std::to_string(max_seq) + ", next surviving record is seq " +
            std::to_string(r.seq));
      }
      out.events.push_back(std::move(r.event));
      ++max_seq;
      ++out.wal_events;
    }
  }
  return out;
}

Result<RecoveredLog> CompactRecoveredLog(const std::string& path) {
  SAQL_ASSIGN_OR_RETURN(RecoveredLog rec, RecoverDurableLog(path));

  // Rewrite as a pure v2 log via a temp file so a crash mid-compaction
  // never destroys the recoverable state.
  const std::string tmp = path + ".compact.tmp";
  {
    ColumnarLogWriter writer(tmp);
    SAQL_RETURN_IF_ERROR(writer.status());
    SAQL_RETURN_IF_ERROR(writer.AppendBatch(rec.events));
    SAQL_RETURN_IF_ERROR(writer.Flush());
    SAQL_RETURN_IF_ERROR(writer.Sync());
    SAQL_RETURN_IF_ERROR(writer.Close());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot move compacted log over '" + path +
                           "'");
  }
  for (const std::string& wal : rec.wal_files) ::unlink(wal.c_str());
  return rec;
}

}  // namespace saql
