#include "storage/durable_log.h"

#include <algorithm>
#include <utility>

#include "storage/recovery.h"

namespace saql {

namespace {

std::string WalPath(const std::string& base, uint64_t index) {
  return base + ".wal." + std::to_string(index);
}

}  // namespace

DurableLogWriter::DurableLogWriter(const std::string& path, Options options)
    : path_(path),
      options_(options),
      backend_(FileBackend::OrReal(options.backend)) {
  if (options_.segment_events == 0) options_.segment_events = 4096;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;

  // Stale-WAL hygiene: `<path>.wal.<N>` files with no live writer are the
  // unrecovered tail of a crashed incarnation. Creating fresh WAL files
  // next to them would interleave two incompatible sequence spaces, and
  // truncating the columnar log below silently drops whatever that tail
  // held — so refuse, unless the caller explicitly forces cleanup.
  Result<std::vector<std::string>> stale = FindWalFiles(path_);
  if (!stale.ok()) {
    status_ = stale.status();
    return;
  }
  if (!stale->empty()) {
    if (!options_.force_stale_wal) {
      status_ = Status::FailedPrecondition(
          "stale WAL files exist at '" + path_ + "' (first: '" +
          stale->front() +
          "'): an earlier durable log here was never recovered; run "
          "recovery (RecoverDurableLog/CompactRecoveredLog) or force "
          "cleanup to discard its tail");
      return;
    }
    for (const std::string& wal : *stale) {
      Status st = backend_->Delete(wal);
      if (!st.ok()) {
        status_ = st;
        return;
      }
    }
  }

  ColumnarLogWriter::Options copts;
  copts.segment_events = options_.segment_events;
  copts.backend = backend_;
  columnar_ = std::make_unique<ColumnarLogWriter>(path_, copts);
  if (!columnar_->status().ok()) {
    status_ = columnar_->status();
    return;
  }
  wal_ = std::make_unique<WalWriter>(WalPath(path_, wal_index_),
                                     /*first_seq=*/1, backend_);
  if (!wal_->status().ok()) {
    status_ = wal_->status();
    return;
  }
  drainer_ = std::thread([this] { DrainLoop(); });
}

DurableLogWriter::~DurableLogWriter() { Close(); }

Status DurableLogWriter::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void DurableLogWriter::SetStatusLocked(const Status& st) {
  if (!st.ok() && status_.ok()) {
    status_ = st;
    // Unstick everyone: appenders blocked on queue space must see the
    // failure, the drainer must re-evaluate its wait.
    cv_space_.notify_all();
    cv_drainer_.notify_all();
  }
}

Status DurableLogWriter::Append(const Event& event) {
  std::unique_lock<std::mutex> lock(mu_);
  SAQL_RETURN_IF_ERROR(status_);
  if (closing_ || closed_) {
    return Status::FailedPrecondition("durable log is closed");
  }

  const uint64_t seq = next_seq_;
  const uint64_t before = wal_->bytes_written();
  Status st = wal_->Append(seq, event);
  if (!st.ok()) {
    SetStatusLocked(st);
    return st;
  }
  next_seq_ = seq + 1;
  if (unsynced_bytes_ == 0) window_start_ = std::chrono::steady_clock::now();
  unsynced_bytes_ += wal_->bytes_written() - before;

  switch (options_.sync.mode) {
    case SyncMode::kAlways:
      WalBarrierLocked();
      if (!status_.ok()) return status_;
      break;
    case SyncMode::kGroupCommit:
      if (unsynced_bytes_ >= options_.sync.max_bytes) {
        WalBarrierLocked();
        // A barrier failure surfaces on the *next* append: this event's
        // WAL record was accepted, which is all group commit promises.
      }
      break;
    case SyncMode::kNone:
      break;
  }

  // Hand off to the drainer; block on backpressure.
  cv_space_.wait(lock, [this] {
    return queue_.size() < options_.queue_capacity || !status_.ok() ||
           closing_;
  });
  if (closing_ || closed_) {
    return Status::FailedPrecondition("durable log is closed");
  }
  queue_.push_back(event);
  cv_drainer_.notify_one();

  if (wal_->bytes_written() >= options_.wal_rotate_bytes) {
    RotateWalLocked();
  }
  return status_;
}

Status DurableLogWriter::AppendBatch(const EventBatch& events) {
  for (const Event& e : events) {
    SAQL_RETURN_IF_ERROR(Append(e));
  }
  return Status::Ok();
}

Status DurableLogWriter::SyncWal() {
  std::lock_guard<std::mutex> lock(mu_);
  SAQL_RETURN_IF_ERROR(status_);
  WalBarrierLocked();
  return status_;
}

void DurableLogWriter::WalBarrierLocked() {
  if (wal_ == nullptr) return;
  const uint64_t target = next_seq_ - 1;
  Status st = wal_->Sync();
  if (!st.ok()) {
    SetStatusLocked(st);
    return;
  }
  wal_synced_seq_ = std::max(wal_synced_seq_, target);
  unsynced_bytes_ = 0;
}

void DurableLogWriter::RotateWalLocked() {
  // Seal: make the retiring file fully durable (except under `none`,
  // whose contract defers all WAL durability to segment barriers), then
  // swap in a fresh file continuing the sequence.
  const uint64_t last_seq = next_seq_ - 1;
  if (options_.sync.mode != SyncMode::kNone) {
    WalBarrierLocked();
    if (!status_.ok()) return;
  }
  Status st = wal_->Close();
  if (!st.ok()) {
    SetStatusLocked(st);
    return;
  }
  sealed_.push_back({wal_->path(), last_seq});
  unsynced_bytes_ = 0;  // the open window (if any) died with the seal
  backend_->TripPoint(durable_trip::kWalRotate);
  ++wal_index_;
  wal_ = std::make_unique<WalWriter>(WalPath(path_, wal_index_), next_seq_,
                                     backend_);
  if (!wal_->status().ok()) {
    SetStatusLocked(wal_->status());
    return;
  }
  ++rotations_;
}

void DurableLogWriter::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!queue_.empty()) {
      DrainBatchLocked(lock);
      continue;
    }
    if (closing_) break;
    if (options_.sync.mode == SyncMode::kGroupCommit &&
        unsynced_bytes_ > 0 && status_.ok()) {
      auto deadline = window_start_ + std::chrono::microseconds(
                                          options_.sync.max_delay_us);
      if (cv_drainer_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        if (unsynced_bytes_ > 0 && status_.ok()) WalBarrierLocked();
      }
    } else {
      cv_drainer_.wait(lock);
    }
  }
}

void DurableLogWriter::DrainBatchLocked(std::unique_lock<std::mutex>& lock) {
  std::vector<Event> batch;
  batch.swap(queue_);
  cv_space_.notify_all();

  if (!status_.ok()) return;  // discard: the WAL retains these events

  lock.unlock();
  backend_->TripPoint(durable_trip::kPreSegment);
  Status st;
  for (const Event& e : batch) {
    st = columnar_->Append(e);
    if (!st.ok()) break;
  }

  // Segment barrier: once new segments are fsynced, the WAL files they
  // fully cover are dead weight.
  uint64_t newly_durable = 0;
  if (st.ok() && columnar_->events_written() > seg_durable_seq_) {
    st = columnar_->Sync();
    if (st.ok()) newly_durable = columnar_->events_written();
  }

  std::vector<SealedWal> deletable;
  lock.lock();
  if (!st.ok()) {
    SetStatusLocked(st);
    return;
  }
  if (newly_durable > seg_durable_seq_) {
    seg_durable_seq_ = newly_durable;
    auto covered = [this](const SealedWal& w) {
      return w.last_seq <= seg_durable_seq_;
    };
    for (const SealedWal& w : sealed_) {
      if (covered(w)) deletable.push_back(w);
    }
    sealed_.erase(std::remove_if(sealed_.begin(), sealed_.end(), covered),
                  sealed_.end());
  }
  if (deletable.empty()) return;

  lock.unlock();
  backend_->TripPoint(durable_trip::kPreWalDelete);
  Status del;
  for (const SealedWal& w : deletable) {
    Status one = backend_->Delete(w.path);
    if (!one.ok() && del.ok()) del = one;
  }
  lock.lock();
  if (!del.ok()) SetStatusLocked(del);
}

Status DurableLogWriter::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return status_;
    closing_ = true;
    cv_drainer_.notify_all();
    cv_space_.notify_all();
  }
  if (drainer_.joinable()) drainer_.join();

  std::unique_lock<std::mutex> lock(mu_);
  // The drainer is gone; this thread owns the columnar writer now.
  if (status_.ok() && columnar_ != nullptr) {
    lock.unlock();
    Status st = columnar_->Flush();
    if (st.ok()) st = columnar_->Sync();
    uint64_t durable = columnar_->events_written();
    if (st.ok()) st = columnar_->Close();
    lock.lock();
    if (st.ok()) seg_durable_seq_ = durable;
    SetStatusLocked(st);
  } else if (columnar_ != nullptr) {
    lock.unlock();
    columnar_->Close();
    lock.lock();
  }

  if (wal_ != nullptr) {
    Status st = wal_->Close();
    if (status_.ok()) SetStatusLocked(st);
  }

  // Everything acked is in fsynced segments on the success path — the
  // WAL files are spent. On the error path keep them: they are the
  // recovery story for whatever the segments are missing.
  if (status_.ok()) {
    for (const SealedWal& w : sealed_) backend_->Delete(w.path);
    if (wal_ != nullptr) backend_->Delete(wal_->path());
    sealed_.clear();
  }
  closed_ = true;
  return status_;
}

uint64_t DurableLogWriter::appended_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t DurableLogWriter::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::max(wal_synced_seq_, seg_durable_seq_);
}

uint64_t DurableLogWriter::events_in_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seg_durable_seq_;
}

uint64_t DurableLogWriter::wal_rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace saql
