#ifndef SAQL_STORAGE_REPLAYER_H_
#define SAQL_STORAGE_REPLAYER_H_

#include <memory>
#include <set>
#include <string>

#include "core/event.h"
#include "core/event_block.h"
#include "core/result.h"
#include "storage/columnar_log.h"
#include "storage/event_log.h"
#include "stream/event_source.h"

namespace saql {

/// The paper's stream replayer (Fig. 4): replays stored monitoring data as
/// a live stream so attacks can be reproduced against different queries.
/// The web UI's controls — host selection and start/end time — are the
/// filter options here; `speed` controls pacing:
///
///  - speed == 0: as fast as possible (benchmarks, tests);
///  - speed == 1: real time (1s of event time per wall second);
///  - speed == N: N× faster than real time.
///
/// The log format is auto-detected: v1 row logs replay through the
/// sequential `EventLogReader`; v2 columnar logs replay through the
/// mmap'd `ColumnarLogReader` — the time range seeks (and skips) whole
/// segments via the segment index, and when no per-event work is needed
/// (no host filter, no pacing, segment fully inside the time range) the
/// replayer hands out zero-copy columnar blocks whose rows materialize
/// pre-interned.
class StreamReplayer : public EventSource {
 public:
  struct Filter {
    /// Empty = all hosts.
    std::set<std::string> hosts;
    /// Half-open event-time range; 0/INT64_MAX = unbounded.
    Timestamp start_ts = 0;
    Timestamp end_ts = INT64_MAX;
    /// Replay speed multiplier; 0 disables pacing.
    double speed = 0.0;
    /// v2 logs: mmap the log and alias columns out of the mapping; off =
    /// buffered per-segment reads (ablation baseline / mmap-less
    /// filesystems). Ignored for v1 logs.
    bool use_mmap = true;
  };

  /// Opens `path`; check `status()` before use.
  StreamReplayer(const std::string& path, Filter filter);

  Status status() const { return status_; }

  EventBlock* NextBlock(size_t max_events) override;

  /// Detected log format (1 or 2); 0 when open failed.
  int format_version() const { return format_version_; }

  /// Events skipped by the filter so far (time-range segment skips count
  /// whole segments without touching their payloads).
  uint64_t filtered_out() const { return filtered_out_; }
  uint64_t replayed() const { return replayed_; }

 private:
  bool Accept(const Event& e) const;
  void PaceTo(Timestamp ts);

  EventBlock* NextBlockV1(size_t max_events);
  EventBlock* NextBlockV2(size_t max_events);
  /// Advances seg_/seg_pos_ to the next event range the filter can
  /// accept; returns false at end of log (or on error → status_).
  bool LoadAcceptableSegment();

  std::unique_ptr<EventLogReader> v1_;
  std::unique_ptr<ColumnarLogReader> v2_;
  Filter filter_;
  Status status_;
  int format_version_ = 0;
  uint64_t filtered_out_ = 0;
  uint64_t replayed_ = 0;
  Timestamp first_event_ts_ = INT64_MIN;
  int64_t wall_start_ns_ = 0;

  // v2 cursor.
  size_t seg_ = 0;        ///< current segment index
  size_t seg_pos_ = 0;    ///< next event within the segment
  size_t seg_size_ = 0;   ///< events in the loaded segment
  bool seg_exact_ = false;  ///< loaded segment passes the filter wholesale
  EventBlock seg_block_;  ///< full-segment bind (row-filtered path)
  size_t seg_block_seg_ = static_cast<size_t>(-1);  ///< segment it binds
  EventBlock out_block_;  ///< block handed to the consumer
};

}  // namespace saql

#endif  // SAQL_STORAGE_REPLAYER_H_
