#ifndef SAQL_STORAGE_REPLAYER_H_
#define SAQL_STORAGE_REPLAYER_H_

#include <memory>
#include <set>
#include <string>

#include "core/event.h"
#include "core/result.h"
#include "storage/event_log.h"
#include "stream/event_source.h"

namespace saql {

/// The paper's stream replayer (Fig. 4): replays stored monitoring data as
/// a live stream so attacks can be reproduced against different queries.
/// The web UI's controls — host selection and start/end time — are the
/// filter options here; `speed` controls pacing:
///
///  - speed == 0: as fast as possible (benchmarks, tests);
///  - speed == 1: real time (1s of event time per wall second);
///  - speed == N: N× faster than real time.
class StreamReplayer : public EventSource {
 public:
  struct Filter {
    /// Empty = all hosts.
    std::set<std::string> hosts;
    /// Half-open event-time range; 0/INT64_MAX = unbounded.
    Timestamp start_ts = 0;
    Timestamp end_ts = INT64_MAX;
    /// Replay speed multiplier; 0 disables pacing.
    double speed = 0.0;
  };

  /// Opens `path`; check `status()` before use.
  StreamReplayer(const std::string& path, Filter filter);

  Status status() const { return status_; }

  bool NextBatch(size_t max_events, EventBatch* batch) override;

  /// Events skipped by the filter so far.
  uint64_t filtered_out() const { return filtered_out_; }
  uint64_t replayed() const { return replayed_; }

 private:
  bool Accept(const Event& e) const;
  void PaceTo(Timestamp ts);

  std::unique_ptr<EventLogReader> reader_;
  Filter filter_;
  Status status_;
  uint64_t filtered_out_ = 0;
  uint64_t replayed_ = 0;
  Timestamp first_event_ts_ = INT64_MIN;
  int64_t wall_start_ns_ = 0;
};

}  // namespace saql

#endif  // SAQL_STORAGE_REPLAYER_H_
