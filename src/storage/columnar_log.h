#ifndef SAQL_STORAGE_COLUMNAR_LOG_H_
#define SAQL_STORAGE_COLUMNAR_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "core/event_block.h"
#include "core/result.h"
#include "storage/file_backend.h"
#include "storage/log_format.h"

namespace saql {

/// Writes an event log in the columnar v2 format (storage/log_format.h):
/// events are buffered into an owned `EventBlock` and flushed as
/// dictionary-compressed columnar segments of up to
/// `Options::segment_events` events, each with its own header (count,
/// min/max ts, CRC) so readers can seek by time range and recover from a
/// torn tail.
///
/// Crash semantics match v1: the log survives a process kill up to the
/// last *completely written segment* (plus whatever the destructor-path
/// `Close` managed to flush). The destructor closes, but cannot report —
/// call `Close()` (or read `status()` afterwards) to observe flush
/// failures.
class ColumnarLogWriter {
 public:
  struct Options {
    /// Events per segment. Larger segments amortize headers and widen
    /// dictionary sharing; smaller segments tighten time-range seeks.
    size_t segment_events = 4096;
    /// File layer (nullptr = real files). The durable-ingest pipeline and
    /// the deterministic fault-injection tests run the writer on an
    /// injected backend.
    FileBackend* backend = nullptr;
  };

  /// Creates/truncates `path`. Check `status()` before use.
  ColumnarLogWriter(const std::string& path, Options options);
  explicit ColumnarLogWriter(const std::string& path)
      : ColumnarLogWriter(path, Options()) {}

  /// Closes (flushing the pending partial segment); failures stay
  /// readable through `status()` on a still-live object.
  ~ColumnarLogWriter();

  ColumnarLogWriter(const ColumnarLogWriter&) = delete;
  ColumnarLogWriter& operator=(const ColumnarLogWriter&) = delete;

  Status status() const { return status_; }

  /// Appends one event to the pending segment.
  Status Append(const Event& event);

  /// Appends a batch.
  Status AppendBatch(const EventBatch& events);

  /// Writes `block` out. Columnar blocks whose size is at least the
  /// segment threshold are serialized directly as one segment (after
  /// flushing any pending rows, preserving order); everything else is
  /// appended row-wise to the pending segment.
  Status WriteBlock(EventBlock* block);

  /// Flushes the pending partial segment to the file.
  Status Flush();

  /// Durability barrier: fsyncs everything written so far. Does not
  /// flush the pending partial segment (call `Flush` first when the
  /// pending rows must be covered).
  Status Sync();

  /// Flushes and closes. Idempotent; later calls return the sticky
  /// status.
  Status Close();

  uint64_t events_written() const { return events_written_; }
  uint64_t segments_written() const { return segments_written_; }

 private:
  /// Serializes one columnar block as a segment.
  Status WriteSegment(const EventBlock& block);

  /// Records `st` as the sticky status (first error wins) and returns it.
  Status SetStatus(Status st) {
    if (!st.ok() && status_.ok()) status_ = st;
    return st;
  }

  Options options_;
  std::unique_ptr<WritableFile> out_;
  Status status_;
  EventBlock pending_;
  std::string payload_;  ///< serialization scratch, reused per segment
  uint64_t events_written_ = 0;
  uint64_t segments_written_ = 0;
};

/// Reads a columnar v2 event log as zero-copy blocks. By default the file
/// is `mmap`ed and the blocks' column arrays alias the mapping directly
/// (`Options::use_mmap = false` reads segments into an owned buffer — the
/// ablation baseline and the fallback for filesystems without mmap).
///
/// On open the reader scans the segment headers into an index (offset,
/// count, min/max ts) without touching payloads; a truncated tail —
/// header cut short or payload extending past EOF — ends the index at the
/// last complete segment, mirroring v1's crash-consistent tail rule.
/// Payload CRCs are verified once per segment when it is first loaded;
/// a mismatch is corruption and fails the read.
///
/// Each loaded segment's dictionary is interned into the process
/// `Interner` (one probe per distinct spelling), so blocks handed out
/// here materialize rows with `Event::syms` pre-stamped.
class ColumnarLogReader {
 public:
  struct Options {
    /// Map the file and alias columns straight out of the mapping; off =
    /// buffered per-segment reads.
    bool use_mmap = true;
  };

  /// Opens `path` and builds the segment index; check `status()`.
  ColumnarLogReader(const std::string& path, Options options);
  explicit ColumnarLogReader(const std::string& path)
      : ColumnarLogReader(path, Options()) {}
  ~ColumnarLogReader();

  ColumnarLogReader(const ColumnarLogReader&) = delete;
  ColumnarLogReader& operator=(const ColumnarLogReader&) = delete;

  Status status() const { return status_; }

  bool mmap_active() const { return map_ != nullptr; }

  /// One entry per complete segment, in file order.
  struct SegmentInfo {
    uint64_t payload_offset = 0;  ///< file offset of the payload
    uint64_t payload_bytes = 0;
    uint32_t count = 0;
    uint32_t dict_count = 0;  ///< serialized entries (excl. implicit "")
    uint32_t crc32 = 0;
    Timestamp min_ts = 0;
    Timestamp max_ts = 0;
  };

  size_t num_segments() const { return index_.size(); }
  const SegmentInfo& segment(size_t i) const { return index_[i]; }

  /// Total events across all complete segments.
  uint64_t total_events() const { return total_events_; }

  /// Time-range seek: index of the first segment whose max_ts >= ts (==
  /// num_segments() when every segment ends before `ts`). Segments are in
  /// input order, which sources keep timestamp-ordered.
  size_t FirstSegmentAtOrAfter(Timestamp ts) const;

  /// Loads segment `i`: verifies the CRC (first load), decodes the
  /// dictionary, interns it, and bound-checks the code/enum columns. The
  /// loaded segment stays valid until the next Load or destruction.
  Status LoadSegment(size_t i);

  /// Index of the loaded segment, or num_segments() when none is loaded.
  size_t loaded_segment() const { return loaded_index_; }

  /// Binds `[offset, offset+count)` of the loaded segment into `block` —
  /// zero-copy column views plus the segment dictionary and its interned
  /// ids. Re-interns the dictionary first if the global interner rotated
  /// since the segment was loaded.
  void BindRange(EventBlock* block, size_t offset, size_t count);

  /// Convenience: loads segment `i` and binds it whole.
  Status ReadSegment(size_t i, EventBlock* block);

 private:
  Status BuildIndex();
  /// Returns the payload bytes of segment `i` (mapping alias or the
  /// owned buffer, filled by LoadSegment).
  const char* PayloadData(size_t i) const;

  Options options_;
  std::string path_;
  Status status_;

  // mmap backing (use_mmap) …
  const char* map_ = nullptr;
  size_t map_size_ = 0;
  // … or buffered backing.
  mutable std::ifstream in_;
  std::vector<char> payload_buf_;
  size_t file_size_ = 0;

  std::vector<SegmentInfo> index_;
  uint64_t total_events_ = 0;

  // Loaded-segment state.
  size_t loaded_index_;  // = SIZE_MAX sentinel until first load
  EventBlock::Columns loaded_cols_;
  std::vector<std::string_view> loaded_dict_;
  std::vector<uint32_t> loaded_dict_syms_;
  uint64_t loaded_syms_gen_ = 0;
  std::vector<bool> crc_checked_;
};

/// Convenience: writes `events` to `path` in the columnar v2 format.
Status WriteColumnarEventLog(
    const std::string& path, const EventBatch& events,
    ColumnarLogWriter::Options options = ColumnarLogWriter::Options());

/// Convenience: reads a whole v2 log into rows.
Result<EventBatch> ReadColumnarEventLog(const std::string& path);

/// Convenience: reads a whole log of either format (auto-detected).
Result<EventBatch> ReadAnyEventLog(const std::string& path);

}  // namespace saql

#endif  // SAQL_STORAGE_COLUMNAR_LOG_H_
