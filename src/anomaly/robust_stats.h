#ifndef SAQL_ANOMALY_ROBUST_STATS_H_
#define SAQL_ANOMALY_ROBUST_STATS_H_

#include <cstddef>
#include <vector>

namespace saql {

/// Order statistics and robust outlier scores used by peer-comparison
/// anomaly queries (alternatives to DBSCAN the full SAQL paper mentions).
/// All functions take an unsorted sample vector and do not modify it.

/// p-th percentile (p in [0, 100]) with linear interpolation between closest
/// ranks; 0 for an empty sample.
double Percentile(const std::vector<double>& samples, double p);

/// Median (50th percentile).
double Median(const std::vector<double>& samples);

/// Median absolute deviation (unscaled).
double Mad(const std::vector<double>& samples);

/// Robust z-score of `x`: |x - median| / (1.4826 * MAD). Returns 0 when the
/// MAD is zero.
double RobustZScore(const std::vector<double>& samples, double x);

/// Tukey IQR fence outlier test: x outside [Q1 - k*IQR, Q3 + k*IQR].
bool IqrOutlier(const std::vector<double>& samples, double x,
                double k = 1.5);

}  // namespace saql

#endif  // SAQL_ANOMALY_ROBUST_STATS_H_
