#ifndef SAQL_ANOMALY_INVARIANT_SET_H_
#define SAQL_ANOMALY_INVARIANT_SET_H_

#include <cstddef>
#include <string>

#include "core/value.h"

namespace saql {

/// Invariant learner behind the paper's invariant-based anomaly model
/// (Query 3): accumulate the set of values seen during a training phase of
/// N windows, then report deviations.
///
/// Two modes, as in the SAQL language's `invariant[N][offline|online]`:
///  - offline: after N training windows the invariant is frozen; every later
///    unseen value is a violation (and stays one).
///  - online:  violations are reported, then merged into the invariant so a
///    value alerts at most once (the model keeps learning).
class InvariantSet {
 public:
  enum class Mode { kOffline, kOnline };

  /// `training_windows`: number of windows consumed before detection starts.
  InvariantSet(size_t training_windows, Mode mode);

  /// Feeds one window's observed values. During training this extends the
  /// invariant and returns an empty set. After training it returns the
  /// violating values (`observed diff invariant`); in online mode those are
  /// then absorbed into the invariant.
  StringSet Observe(const StringSet& observed);

  /// True while windows are still being consumed for training.
  bool InTraining() const { return windows_seen_ < training_windows_; }

  /// Number of windows fed so far.
  size_t windows_seen() const { return windows_seen_; }

  /// The learned invariant set.
  const StringSet& invariant() const { return invariant_; }

  Mode mode() const { return mode_; }

  void Reset();

 private:
  size_t training_windows_;
  Mode mode_;
  size_t windows_seen_ = 0;
  StringSet invariant_;
};

}  // namespace saql

#endif  // SAQL_ANOMALY_INVARIANT_SET_H_
