#ifndef SAQL_ANOMALY_DBSCAN_H_
#define SAQL_ANOMALY_DBSCAN_H_

#include <cstddef>
#include <vector>

namespace saql {

/// A point in the clustering space. SAQL's `cluster(...)` construct builds
/// one point per group from the state fields named in `points=`; Query 4
/// clusters 1-D points (per-IP transferred volume), but the implementation
/// is dimension-agnostic.
using ClusterPoint = std::vector<double>;

/// Distance metric for clustering, selected by the query's `distance=`
/// argument: "ed" (Euclidean) or "md" (Manhattan).
enum class DistanceMetric {
  kEuclidean,
  kManhattan,
};

/// Computes the selected distance between two equal-dimension points.
double PointDistance(const ClusterPoint& a, const ClusterPoint& b,
                     DistanceMetric metric);

/// Result of a DBSCAN run. `labels[i]` is the cluster id of point i
/// (0-based), or `kNoise` for outliers.
struct DbscanResult {
  static constexpr int kNoise = -1;

  std::vector<int> labels;
  int num_clusters = 0;

  bool IsOutlier(size_t i) const { return labels[i] == kNoise; }
};

/// Density-based clustering (Ester et al. 1996), the method the paper uses
/// for the outlier-based anomaly model ("DBSCAN(100000, 5)" = eps, minPts).
///
/// Deterministic: points are visited in index order, so cluster ids are
/// stable for a fixed input. Complexity O(n^2) distance evaluations with the
/// plain neighbour scan; an index-accelerated 1-D path (sort + window) is
/// used automatically for one-dimensional inputs, which is the common case
/// for SAQL outlier queries.
class Dbscan {
 public:
  /// `eps` is the neighbourhood radius, `min_pts` the core-point density
  /// threshold (including the point itself, per the original paper).
  Dbscan(double eps, size_t min_pts,
         DistanceMetric metric = DistanceMetric::kEuclidean);

  /// Clusters `points`; all points must share the same dimension.
  DbscanResult Run(const std::vector<ClusterPoint>& points) const;

  double eps() const { return eps_; }
  size_t min_pts() const { return min_pts_; }

 private:
  DbscanResult RunGeneric(const std::vector<ClusterPoint>& points) const;
  DbscanResult Run1D(const std::vector<ClusterPoint>& points) const;

  double eps_;
  size_t min_pts_;
  DistanceMetric metric_;
};

}  // namespace saql

#endif  // SAQL_ANOMALY_DBSCAN_H_
