#ifndef SAQL_ANOMALY_MOVING_STATS_H_
#define SAQL_ANOMALY_MOVING_STATS_H_

#include <cstddef>
#include <deque>

namespace saql {

/// Simple moving average over the last `window` samples, the statistic
/// behind the paper's time-series anomaly model (Query 2 computes a 3-window
/// SMA of per-window network volume). Push O(1), query O(1).
class SimpleMovingAverage {
 public:
  /// `window` must be >= 1.
  explicit SimpleMovingAverage(size_t window);

  /// Adds a sample, evicting the oldest when the window is full.
  void Push(double sample);

  /// Mean of the retained samples; 0 when empty.
  double Mean() const;

  /// Number of samples currently retained (<= window).
  size_t Count() const { return samples_.size(); }

  /// True once `window` samples have been observed.
  bool Full() const { return samples_.size() == window_; }

  /// Sample at `age` windows back (0 = most recent). Precondition:
  /// age < Count().
  double At(size_t age) const;

  void Reset();

 private:
  size_t window_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average with smoothing factor `alpha`
/// (weight of the newest sample). An alternative spike detector the full
/// SAQL paper lists alongside SMA.
class ExponentialMovingAverage {
 public:
  /// `alpha` in (0, 1].
  explicit ExponentialMovingAverage(double alpha);

  void Push(double sample);
  double Mean() const { return mean_; }
  size_t Count() const { return count_; }
  void Reset();

 private:
  double alpha_;
  double mean_ = 0.0;
  size_t count_ = 0;
};

/// Welford online mean/variance, used for z-score style detectors and for
/// aggregate `stddev`. Numerically stable; push O(1).
class OnlineVariance {
 public:
  void Push(double sample);
  size_t Count() const { return count_; }
  double Mean() const { return mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double Variance() const;
  double StdDev() const;
  /// Z-score of `sample` under the current distribution; 0 when stddev is 0.
  double ZScore(double sample) const;
  void Reset();

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace saql

#endif  // SAQL_ANOMALY_MOVING_STATS_H_
