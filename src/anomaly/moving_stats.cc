#include "anomaly/moving_stats.h"

#include <cmath>

namespace saql {

SimpleMovingAverage::SimpleMovingAverage(size_t window)
    : window_(window == 0 ? 1 : window) {}

void SimpleMovingAverage::Push(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  if (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
}

double SimpleMovingAverage::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SimpleMovingAverage::At(size_t age) const {
  return samples_[samples_.size() - 1 - age];
}

void SimpleMovingAverage::Reset() {
  samples_.clear();
  sum_ = 0.0;
}

ExponentialMovingAverage::ExponentialMovingAverage(double alpha)
    : alpha_(alpha <= 0.0 ? 0.1 : (alpha > 1.0 ? 1.0 : alpha)) {}

void ExponentialMovingAverage::Push(double sample) {
  if (count_ == 0) {
    mean_ = sample;
  } else {
    mean_ = alpha_ * sample + (1.0 - alpha_) * mean_;
  }
  ++count_;
}

void ExponentialMovingAverage::Reset() {
  mean_ = 0.0;
  count_ = 0;
}

void OnlineVariance::Push(double sample) {
  ++count_;
  double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineVariance::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineVariance::StdDev() const { return std::sqrt(Variance()); }

double OnlineVariance::ZScore(double sample) const {
  double sd = StdDev();
  if (sd == 0.0) return 0.0;
  return (sample - mean_) / sd;
}

void OnlineVariance::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

}  // namespace saql
