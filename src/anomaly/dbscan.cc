#include "anomaly/dbscan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

namespace saql {

double PointDistance(const ClusterPoint& a, const ClusterPoint& b,
                     DistanceMetric metric) {
  double acc = 0.0;
  switch (metric) {
    case DistanceMetric::kEuclidean:
      for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        acc += d * d;
      }
      return std::sqrt(acc);
    case DistanceMetric::kManhattan:
      for (size_t i = 0; i < a.size(); ++i) {
        acc += std::fabs(a[i] - b[i]);
      }
      return acc;
  }
  return acc;
}

Dbscan::Dbscan(double eps, size_t min_pts, DistanceMetric metric)
    : eps_(eps), min_pts_(min_pts == 0 ? 1 : min_pts), metric_(metric) {}

DbscanResult Dbscan::Run(const std::vector<ClusterPoint>& points) const {
  if (points.empty()) return DbscanResult{};
  if (points[0].size() == 1) return Run1D(points);
  return RunGeneric(points);
}

DbscanResult Dbscan::RunGeneric(
    const std::vector<ClusterPoint>& points) const {
  const size_t n = points.size();
  DbscanResult result;
  result.labels.assign(n, DbscanResult::kNoise);
  std::vector<bool> visited(n, false);

  auto neighbours = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (PointDistance(points[i], points[j], metric_) <= eps_) {
        out.push_back(j);
      }
    }
    return out;
  };

  int cluster_id = 0;
  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    std::vector<size_t> seed = neighbours(i);
    if (seed.size() < min_pts_) continue;  // noise (may be claimed later)
    result.labels[i] = cluster_id;
    std::deque<size_t> frontier(seed.begin(), seed.end());
    while (!frontier.empty()) {
      size_t j = frontier.front();
      frontier.pop_front();
      if (result.labels[j] == DbscanResult::kNoise) {
        result.labels[j] = cluster_id;  // border point
      }
      if (visited[j]) continue;
      visited[j] = true;
      std::vector<size_t> nb = neighbours(j);
      if (nb.size() >= min_pts_) {
        frontier.insert(frontier.end(), nb.begin(), nb.end());
      }
    }
    ++cluster_id;
  }
  result.num_clusters = cluster_id;
  return result;
}

DbscanResult Dbscan::Run1D(const std::vector<ClusterPoint>& points) const {
  // In one dimension an eps-neighbourhood is an interval, so neighbour
  // counting reduces to a two-pointer sweep over the sorted values:
  // O(n log n) total instead of O(n^2).
  const size_t n = points.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return points[a][0] < points[b][0];
  });
  std::vector<double> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = points[order[i]][0];

  // neighbour_count[k] = #points within eps of sorted[k] (inclusive).
  std::vector<size_t> lo(n), hi(n);
  {
    size_t l = 0, h = 0;
    for (size_t k = 0; k < n; ++k) {
      while (sorted[k] - sorted[l] > eps_) ++l;
      if (h < k) h = k;
      while (h + 1 < n && sorted[h + 1] - sorted[k] <= eps_) ++h;
      lo[k] = l;
      hi[k] = h;
    }
  }
  auto is_core = [&](size_t k) { return hi[k] - lo[k] + 1 >= min_pts_; };

  DbscanResult result;
  result.labels.assign(n, DbscanResult::kNoise);
  std::vector<int> sorted_labels(n, DbscanResult::kNoise);
  int cluster_id = -1;
  // Consecutive core points whose gaps are <= eps chain into one cluster;
  // border points attach to the cluster of any core point within eps.
  size_t last_core_in_cluster = 0;
  bool in_cluster = false;
  for (size_t k = 0; k < n; ++k) {
    if (!is_core(k)) continue;
    if (!in_cluster ||
        sorted[k] - sorted[last_core_in_cluster] > eps_) {
      ++cluster_id;
      in_cluster = true;
    }
    sorted_labels[k] = cluster_id;
    last_core_in_cluster = k;
  }
  // Attach border points to the nearest core point's cluster when in range.
  for (size_t k = 0; k < n; ++k) {
    if (sorted_labels[k] != DbscanResult::kNoise) continue;
    // Scan the eps-window for a core point (prefer the nearest).
    int best = DbscanResult::kNoise;
    double best_dist = eps_ + 1.0;
    for (size_t j = lo[k]; j <= hi[k]; ++j) {
      if (j == k || sorted_labels[j] == DbscanResult::kNoise) continue;
      if (!is_core(j)) continue;
      double d = std::fabs(sorted[j] - sorted[k]);
      if (d <= eps_ && d < best_dist) {
        best = sorted_labels[j];
        best_dist = d;
      }
    }
    sorted_labels[k] = best;
  }
  for (size_t k = 0; k < n; ++k) {
    result.labels[order[k]] = sorted_labels[k];
  }
  result.num_clusters = cluster_id + 1;

  // Renumber clusters by first appearance in original index order so the
  // generic and 1-D paths agree on labeling for identical inputs.
  std::vector<int> remap(static_cast<size_t>(result.num_clusters), -1);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    int c = result.labels[i];
    if (c < 0) continue;
    if (remap[static_cast<size_t>(c)] < 0) {
      remap[static_cast<size_t>(c)] = next++;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (result.labels[i] >= 0) {
      result.labels[i] = remap[static_cast<size_t>(result.labels[i])];
    }
  }
  return result;
}

}  // namespace saql
