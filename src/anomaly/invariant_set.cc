#include "anomaly/invariant_set.h"

namespace saql {

InvariantSet::InvariantSet(size_t training_windows, Mode mode)
    : training_windows_(training_windows), mode_(mode) {}

StringSet InvariantSet::Observe(const StringSet& observed) {
  ++windows_seen_;
  if (windows_seen_ <= training_windows_) {
    invariant_.insert(observed.begin(), observed.end());
    return {};
  }
  StringSet violations;
  for (const std::string& v : observed) {
    if (invariant_.find(v) == invariant_.end()) {
      violations.insert(v);
    }
  }
  if (mode_ == Mode::kOnline) {
    invariant_.insert(violations.begin(), violations.end());
  }
  return violations;
}

void InvariantSet::Reset() {
  windows_seen_ = 0;
  invariant_.clear();
}

}  // namespace saql
