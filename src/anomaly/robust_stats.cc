#include "anomaly/robust_stats.h"

#include <algorithm>
#include <cmath>

namespace saql {

double Percentile(const std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double Median(const std::vector<double>& samples) {
  return Percentile(samples, 50.0);
}

double Mad(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double med = Median(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double s : samples) dev.push_back(std::fabs(s - med));
  return Median(dev);
}

double RobustZScore(const std::vector<double>& samples, double x) {
  double mad = Mad(samples);
  if (mad == 0.0) return 0.0;
  double med = Median(samples);
  // 1.4826 scales MAD to the stddev of a normal distribution.
  return std::fabs(x - med) / (1.4826 * mad);
}

bool IqrOutlier(const std::vector<double>& samples, double x, double k) {
  if (samples.size() < 4) return false;
  double q1 = Percentile(samples, 25.0);
  double q3 = Percentile(samples, 75.0);
  double iqr = q3 - q1;
  return x < q1 - k * iqr || x > q3 + k * iqr;
}

}  // namespace saql
