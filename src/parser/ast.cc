#include "parser/ast.h"

#include <sstream>

namespace saql {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kOr:
      return "||";
    case BinOp::kAnd:
      return "&&";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kIn:
      return "in";
    case BinOp::kUnion:
      return "union";
    case BinOp::kDiff:
      return "diff";
    case BinOp::kIntersect:
      return "intersect";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
  }
  return "?";
}

const char* UnOpName(UnOp op) {
  switch (op) {
    case UnOp::kNot:
      return "!";
    case UnOp::kNeg:
      return "-";
    case UnOp::kSize:
      return "| |";
  }
  return "?";
}

const char* ConstraintOpName(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kEq:
      return "=";
    case ConstraintOp::kNe:
      return "!=";
    case ConstraintOp::kLt:
      return "<";
    case ConstraintOp::kLe:
      return "<=";
    case ConstraintOp::kGt:
      return ">";
    case ConstraintOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  e->loc = loc;
  e->span = SourceSpan{loc, loc};
  return e;
}

ExprPtr Expr::MakeRef(std::string base, std::optional<int> history,
                      std::string field, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRef;
  e->base = std::move(base);
  e->history = history;
  e->field = std::move(field);
  e->loc = loc;
  e->span = SourceSpan{loc, loc};
  return e;
}

ExprPtr Expr::MakeCall(std::string callee, std::vector<ExprPtr> args,
                       SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->callee = std::move(callee);
  e->args = std::move(args);
  e->loc = loc;
  e->span = SourceSpan{loc, loc};
  for (const ExprPtr& a : e->args) e->span = SourceSpan::Cover(e->span, a->span);
  return e;
}

ExprPtr Expr::MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->loc = loc;
  e->span = SourceSpan{loc, loc};
  if (e->lhs) e->span = SourceSpan::Cover(e->span, e->lhs->span);
  if (e->rhs) e->span = SourceSpan::Cover(e->span, e->rhs->span);
  return e;
}

ExprPtr Expr::MakeUnary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->lhs = std::move(operand);
  e->loc = loc;
  e->span = SourceSpan{loc, loc};
  if (e->lhs) e->span = SourceSpan::Cover(e->span, e->lhs->span);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->span = span;
  e->literal = literal;
  e->base = base;
  e->history = history;
  e->field = field;
  e->ref_kind = ref_kind;
  e->ref_field = ref_field;
  e->ref_role = ref_role;
  e->ref_index = ref_index;
  e->callee = callee;
  for (const ExprPtr& a : args) e->args.push_back(a->Clone());
  e->bin_op = bin_op;
  e->un_op = un_op;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_string()) {
        os << '"' << literal.ToString() << '"';
      } else {
        os << literal.ToString();
      }
      break;
    case ExprKind::kRef:
      os << base;
      if (history.has_value()) os << '[' << *history << ']';
      if (!field.empty()) os << '.' << field;
      break;
    case ExprKind::kCall: {
      os << callee << '(';
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) os << ", ";
        os << args[i]->ToString();
      }
      os << ')';
      break;
    }
    case ExprKind::kBinary:
      os << '(' << lhs->ToString() << ' ' << BinOpName(bin_op) << ' '
         << rhs->ToString() << ')';
      break;
    case ExprKind::kUnary:
      if (un_op == UnOp::kSize) {
        os << '|' << lhs->ToString() << '|';
      } else {
        os << UnOpName(un_op) << lhs->ToString();
      }
      break;
  }
  return os.str();
}

std::string AttrConstraint::ToString() const {
  std::string v = value.is_string() ? "\"" + value.ToString() + "\""
                                    : value.ToString();
  return field + " " + ConstraintOpName(op) + " " + v;
}

std::string EntityPattern::ToString() const {
  std::string out = EntityTypeName(type);
  if (!var.empty()) out += " " + var;
  if (!constraints.empty()) {
    out += "[";
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (i > 0) out += ", ";
      out += constraints[i].ToString();
    }
    out += "]";
  }
  return out;
}

std::string EventPatternDecl::ToString() const {
  std::string out = subject.ToString() + " " + OpMaskToString(ops) + " " +
                    object.ToString();
  if (!alias.empty()) out += " as " + alias;
  return out;
}

std::string WindowSpec::ToString() const {
  if (kind == Kind::kCount) {
    return "#count(" + std::to_string(count) + ")";
  }
  std::string out = "#time(" + FormatDuration(length);
  if (slide > 0 && slide != length) out += ", " + FormatDuration(slide);
  out += ")";
  return out;
}

std::string TemporalRelation::ToString() const {
  std::string out = "with ";
  for (size_t i = 0; i < sequence.size(); ++i) {
    if (i > 0) {
      out += " ->";
      if (i - 1 < max_gaps.size() && max_gaps[i - 1] > 0) {
        out += "[" + FormatDuration(max_gaps[i - 1]) + "]";
      }
      out += " ";
    }
    out += sequence[i];
  }
  return out;
}

std::string GroupKey::ToString() const {
  return field.empty() ? base : base + "." + field;
}

}  // namespace saql
