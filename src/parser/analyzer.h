#ifndef SAQL_PARSER_ANALYZER_H_
#define SAQL_PARSER_ANALYZER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/field_access.h"
#include "core/result.h"
#include "parser/ast.h"

namespace saql {

/// Where a variable occurrence binds inside an event pattern.
struct EntityBinding {
  int pattern_index = 0;
  EntityRole role = EntityRole::kSubject;
  EntityType type = EntityType::kProcess;
};

/// A group-by key resolved to a concrete event attribute.
struct ResolvedGroupKey {
  enum class Source { kSubject, kObject, kEvent };

  int pattern_index = 0;
  Source source = Source::kSubject;
  std::string field;     ///< concrete attribute name (never empty)
  std::string base;      ///< original variable / alias spelling
  std::string spelling;  ///< `base` or `base.field` as written
  /// Compiled attribute id; kInvalid only for event attributes that resolve
  /// per event (unknown object_* suffixes), which fall back to the
  /// string-keyed read.
  FieldId field_id = FieldId::kInvalid;
};

/// Clustering configuration extracted from the raw `method=` string.
struct ClusterMethod {
  enum class Kind { kDbscan };

  Kind kind = Kind::kDbscan;
  double eps = 0.0;
  int min_pts = 0;
  bool euclidean = true;  ///< from distance= ("ed"); false = Manhattan ("md")
};

/// A validated query plus the symbol tables the execution engine needs.
/// Produced by `AnalyzeQuery`; immutable afterwards.
struct AnalyzedQuery {
  QueryPtr query;

  /// Entity variable → every pattern position it occurs in. Variables that
  /// occur in several patterns (e.g. `f1` written by evt2 and read by evt3
  /// in the paper's Query 1) constrain those events to share the entity.
  std::unordered_map<std::string, std::vector<EntityBinding>> entity_vars;

  /// Event alias (`evt1`) → pattern index.
  std::unordered_map<std::string, int> alias_to_pattern;

  /// Pattern indices in the order the temporal relation requires; identical
  /// to declaration order when the query has no `with` clause (in which case
  /// the match is unordered).
  std::vector<int> temporal_order;
  /// Max event-time gap between consecutive temporal steps (0 = unbounded).
  std::vector<Duration> temporal_gaps;
  /// True when a `with` clause imposes ordering.
  bool ordered = false;

  /// State block info (valid when `query->state` is set).
  std::unordered_map<std::string, int> state_field_index;
  std::vector<ResolvedGroupKey> group_keys;

  /// Names of invariant variables, in declaration order.
  std::vector<std::string> invariant_vars;

  /// Parsed cluster method (valid when `query->cluster` is set).
  ClusterMethod cluster_method;

  /// Convenience accessors.
  bool IsStateful() const { return query->state.has_value(); }
  bool HasInvariant() const { return query->invariant.has_value(); }
  bool HasCluster() const { return query->cluster.has_value(); }
  int NumPatterns() const { return static_cast<int>(query->patterns.size()); }
};

using AnalyzedQueryPtr = std::shared_ptr<const AnalyzedQuery>;

/// Validates `query` and builds its symbol tables. Returns SemanticError
/// with position info on: duplicate aliases, type-inconsistent shared
/// variables, unknown attributes, undeclared aliases in `with`, stateful
/// constructs without a window, invariant/cluster without state, malformed
/// cluster methods, and unresolvable references in state / alert / return
/// expressions.
Result<AnalyzedQueryPtr> AnalyzeQuery(Query query);

/// Parses and analyzes in one step.
Result<AnalyzedQueryPtr> CompileSaql(const std::string& text);

/// Names of the aggregate functions allowed inside state blocks.
bool IsAggregateFunction(const std::string& name);

}  // namespace saql

#endif  // SAQL_PARSER_ANALYZER_H_
