#ifndef SAQL_PARSER_PARSER_H_
#define SAQL_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "parser/ast.h"
#include "parser/token.h"

namespace saql {

/// Recursive-descent parser for the SAQL language (§II-B of the paper).
/// Accepts the paper's Queries 1–4 verbatim; see DESIGN.md §3 for the full
/// construct list. All errors carry `line:col` positions.
///
/// Keywords are contextual: `proc`, `file`, `ip`, `as`, `with`, `state`,
/// `group`, `by`, `invariant`, `cluster`, `alert`, `return`, `distinct` are
/// recognized by position, so they remain usable as ordinary identifiers in
/// expressions.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  /// Parses a complete query. `text` is retained in `Query::text`.
  Result<Query> ParseQuery(const std::string& text);

 private:
  // Clause parsers.
  Status ParseGlobalConstraint(Query* query);
  Status ParseEventPattern(Query* query);
  Result<EntityPattern> ParseEntityPattern();
  Result<std::vector<AttrConstraint>> ParseConstraintList(EntityType type);
  Result<OpMask> ParseOps();
  Status ParseWindow(Query* query);
  Status ParseTemporal(Query* query);
  Status ParseStateBlock(Query* query);
  Status ParseInvariantBlock(Query* query);
  Status ParseClusterSpec(Query* query);
  Status ParseAlert(Query* query);
  Status ParseReturn(Query* query);

  // Expression parsers (precedence climbing).
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOrExpr();
  Result<ExprPtr> ParseAndExpr();
  Result<ExprPtr> ParseCmpExpr();
  Result<ExprPtr> ParseSetExpr();
  Result<ExprPtr> ParseAddExpr();
  Result<ExprPtr> ParseMulExpr();
  Result<ExprPtr> ParseUnaryExpr();
  Result<ExprPtr> ParsePrimary();

  Result<Value> ParseLiteralValue();
  Result<Duration> ParseDurationTokens();
  Result<GroupKey> ParseGroupKey();

  /// True when `kind` is a constraint comparison operator token (`=`,
  /// `==`, `!=`, `<`, `<=`, `>`, `>=`).
  static bool IsConstraintOpToken(TokenKind kind);
  /// Consumes one constraint comparison operator. Shared by entity
  /// constraint lists and global constraint lines so the accepted
  /// operator set cannot drift between the two.
  Result<ConstraintOp> ParseConstraintOp(const std::string& context);

  // Token helpers.
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().Is(kind); }
  bool CheckIdent(const std::string& spelling) const {
    return Peek().IsIdent(spelling);
  }
  bool Match(TokenKind kind);
  Result<Token> Expect(TokenKind kind, const std::string& context);
  Result<Token> ExpectIdent(const std::string& context);
  Status ErrorHere(const std::string& msg) const;
  /// Exclusive end of the most recently consumed token — the natural end
  /// of whatever syntax node just finished parsing.
  SourceLoc PrevEnd() const {
    return pos_ > 0 ? tokens_[pos_ - 1].end : Peek().loc;
  }

  /// True when the current token begins an entity pattern.
  bool AtEntityType() const;
  /// True when the current identifier names a valid event operation and is
  /// followed by an entity-type keyword (used to allow anonymous patterns).
  bool LooksLikeOp(int ahead) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

/// Parses `text` into a query AST (lex + parse).
Result<Query> ParseSaql(const std::string& text);

}  // namespace saql

#endif  // SAQL_PARSER_PARSER_H_
