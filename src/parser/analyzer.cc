#include "parser/analyzer.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "core/string_util.h"
#include "parser/parser.h"

namespace saql {

namespace {

Status SemErr(SourceLoc loc, const std::string& msg) {
  return Status::SemanticError(loc.ToString() + ": " + msg);
}

/// Context in which an expression is being checked; controls which
/// references are legal.
struct ExprContext {
  const AnalyzedQuery* aq = nullptr;
  bool in_state_field = false;  ///< aggregates legal, event refs legal
  bool in_alert = false;        ///< state/invariant/cluster refs legal
  bool in_invariant = false;    ///< invariant vars + ss refs legal
};

class AnalyzerImpl {
 public:
  explicit AnalyzerImpl(Query query)
      : owned_(std::make_shared<Query>(std::move(query))) {}

  Result<AnalyzedQueryPtr> Run() {
    auto aq = std::make_shared<AnalyzedQuery>();
    aq_ = aq.get();
    aq->query = owned_;

    SAQL_RETURN_IF_ERROR(CollectBindings());
    SAQL_RETURN_IF_ERROR(CheckGlobalConstraints());
    SAQL_RETURN_IF_ERROR(CheckPatternConstraints());
    SAQL_RETURN_IF_ERROR(ResolveTemporal());
    SAQL_RETURN_IF_ERROR(CheckWindowRequirements());
    SAQL_RETURN_IF_ERROR(AnalyzeState());
    SAQL_RETURN_IF_ERROR(AnalyzeInvariant());
    SAQL_RETURN_IF_ERROR(AnalyzeCluster());
    SAQL_RETURN_IF_ERROR(AnalyzeAlertAndReturn());
    return AnalyzedQueryPtr(std::move(aq));
  }

 private:
  const Query& query() const { return *owned_; }
  /// Expression checks run on the mutable tree: besides validating, they
  /// record each reference's resolution (RefKind + FieldId / index) on the
  /// node so evaluation never repeats the string-keyed lookups.
  Query& mutable_query() { return *owned_; }

  Status CollectBindings() {
    std::set<std::string> seen_aliases;
    for (int i = 0; i < static_cast<int>(query().patterns.size()); ++i) {
      const EventPatternDecl& p = query().patterns[i];
      if (!seen_aliases.insert(p.alias).second) {
        return SemErr(p.loc, "duplicate event alias '" + p.alias + "'");
      }
      aq_->alias_to_pattern[p.alias] = i;

      auto bind = [&](const EntityPattern& e, EntityRole role) -> Status {
        EntityBinding b;
        b.pattern_index = i;
        b.role = role;
        b.type = e.type;
        auto& occurrences = aq_->entity_vars[e.var];
        if (!occurrences.empty() && occurrences.front().type != e.type) {
          return SemErr(e.loc, "variable '" + e.var +
                                   "' bound to conflicting entity types");
        }
        occurrences.push_back(b);
        return Status::Ok();
      };
      SAQL_RETURN_IF_ERROR(bind(p.subject, EntityRole::kSubject));
      SAQL_RETURN_IF_ERROR(bind(p.object, EntityRole::kObject));
      if (aq_->entity_vars.count(p.alias) != 0 &&
          aq_->alias_to_pattern.count(p.alias) != 0 &&
          aq_->entity_vars.find(p.alias) != aq_->entity_vars.end()) {
        // A name used both as entity variable and event alias is ambiguous.
        if (aq_->entity_vars[p.alias].size() > 0 &&
            seen_aliases.count(p.alias) > 0 &&
            (p.subject.var == p.alias || p.object.var == p.alias)) {
          return SemErr(p.loc, "name '" + p.alias +
                                   "' used as both entity variable and "
                                   "event alias");
        }
      }
    }
    return Status::Ok();
  }

  Status CheckGlobalConstraints() {
    for (const AttrConstraint& c : query().global_constraints) {
      if (!IsValidEventField(c.field)) {
        return SemErr(c.loc, "unknown global constraint field '" + c.field +
                                 "' (expected an event attribute such as "
                                 "agentid)");
      }
    }
    return Status::Ok();
  }

  Status CheckPatternConstraints() {
    for (const EventPatternDecl& p : query().patterns) {
      for (const EntityPattern* e : {&p.subject, &p.object}) {
        for (const AttrConstraint& c : e->constraints) {
          if (!IsValidEntityField(e->type, c.field)) {
            return SemErr(c.loc,
                          std::string("entity type '") +
                              EntityTypeName(e->type) +
                              "' has no attribute '" + c.field + "'");
          }
        }
      }
      if (p.ops == 0) {
        return SemErr(p.loc, "event pattern has no operation");
      }
    }
    return Status::Ok();
  }

  Status ResolveTemporal() {
    if (!query().temporal.has_value()) {
      // Without `with`, a multi-pattern match is unordered; keep declaration
      // order for bookkeeping.
      for (int i = 0; i < aq_->NumPatterns(); ++i) {
        aq_->temporal_order.push_back(i);
      }
      aq_->ordered = false;
      return Status::Ok();
    }
    const TemporalRelation& rel = *query().temporal;
    std::set<std::string> seen;
    for (const std::string& alias : rel.sequence) {
      auto it = aq_->alias_to_pattern.find(alias);
      if (it == aq_->alias_to_pattern.end()) {
        return SemErr(rel.loc,
                      "temporal relation references undeclared event '" +
                          alias + "'");
      }
      if (!seen.insert(alias).second) {
        return SemErr(rel.loc, "event '" + alias +
                                   "' appears twice in temporal relation");
      }
      aq_->temporal_order.push_back(it->second);
    }
    // Patterns not named in `with` still must match; append them unordered.
    for (int i = 0; i < aq_->NumPatterns(); ++i) {
      if (std::find(aq_->temporal_order.begin(), aq_->temporal_order.end(),
                    i) == aq_->temporal_order.end()) {
        aq_->temporal_order.push_back(i);
      }
    }
    aq_->temporal_gaps = rel.max_gaps;
    aq_->ordered = true;
    return Status::Ok();
  }

  Status CheckWindowRequirements() {
    if (query().IsStateful() && !query().window.has_value()) {
      return SemErr(query().state->loc,
                    "stateful query requires a window specification "
                    "(#time or #count)");
    }
    if (query().invariant.has_value() && !query().IsStateful()) {
      return SemErr(query().invariant->loc,
                    "invariant block requires a state block");
    }
    if (query().cluster.has_value() && !query().IsStateful()) {
      return SemErr(query().cluster->loc,
                    "cluster spec requires a state block");
    }
    return Status::Ok();
  }

  Status ResolveGroupKey(const GroupKey& key, ResolvedGroupKey* out) {
    out->base = key.base;
    out->spelling = key.ToString();
    auto ent = aq_->entity_vars.find(key.base);
    if (ent != aq_->entity_vars.end()) {
      const EntityBinding& b = ent->second.front();
      out->pattern_index = b.pattern_index;
      out->source = b.role == EntityRole::kSubject
                        ? ResolvedGroupKey::Source::kSubject
                        : ResolvedGroupKey::Source::kObject;
      out->field =
          key.field.empty() ? DefaultFieldForEntity(b.type) : key.field;
      if (!IsValidEntityField(b.type, out->field)) {
        return SemErr(key.loc, std::string("entity type '") +
                                   EntityTypeName(b.type) +
                                   "' has no attribute '" + out->field + "'");
      }
      out->field_id = ResolveEntityFieldId(b.type, out->field);
      return Status::Ok();
    }
    auto alias = aq_->alias_to_pattern.find(key.base);
    if (alias != aq_->alias_to_pattern.end()) {
      if (key.field.empty()) {
        return SemErr(key.loc, "group-by on an event alias needs a field "
                               "(e.g. evt.agentid)");
      }
      if (!IsValidEventField(key.field)) {
        return SemErr(key.loc,
                      "event has no attribute '" + key.field + "'");
      }
      out->pattern_index = alias->second;
      out->source = ResolvedGroupKey::Source::kEvent;
      out->field = key.field;
      out->field_id = ResolveEventFieldId(key.field);
      return Status::Ok();
    }
    return SemErr(key.loc, "unknown group-by key '" + key.base + "'");
  }

  Status AnalyzeState() {
    if (!query().IsStateful()) return Status::Ok();
    const StateBlock& st = *query().state;
    std::set<std::string> field_names;
    for (int i = 0; i < static_cast<int>(st.fields.size()); ++i) {
      const StateField& f = st.fields[i];
      if (!field_names.insert(f.name).second) {
        return SemErr(f.loc, "duplicate state field '" + f.name + "'");
      }
      aq_->state_field_index[f.name] = i;
    }
    for (const GroupKey& key : st.group_by) {
      ResolvedGroupKey resolved;
      SAQL_RETURN_IF_ERROR(ResolveGroupKey(key, &resolved));
      aq_->group_keys.push_back(std::move(resolved));
    }
    // Check field expressions after the table is complete so a state field
    // may not reference another (aggregates see raw events only).
    ExprContext ctx;
    ctx.aq = aq_;
    ctx.in_state_field = true;
    for (StateField& f : mutable_query().state->fields) {
      SAQL_RETURN_IF_ERROR(CheckExpr(*f.expr, ctx, /*agg_depth=*/0));
      if (!ContainsAggregate(*f.expr)) {
        return SemErr(f.loc, "state field '" + f.name +
                                 "' must contain an aggregate call "
                                 "(avg, sum, count, min, max, stddev, set, "
                                 "count_distinct)");
      }
    }
    return Status::Ok();
  }

  Status AnalyzeInvariant() {
    if (!query().invariant.has_value()) return Status::Ok();
    const InvariantBlock& inv = *query().invariant;
    if (inv.training_windows <= 0) {
      return SemErr(inv.loc, "invariant training window count must be > 0");
    }
    std::set<std::string> declared;
    for (const InvariantStmt& s : inv.stmts) {
      if (s.is_init) {
        if (!declared.insert(s.var).second) {
          return SemErr(s.loc,
                        "invariant variable '" + s.var + "' initialized twice");
        }
        aq_->invariant_vars.push_back(s.var);
      } else if (declared.find(s.var) == declared.end()) {
        return SemErr(s.loc, "invariant update of undeclared variable '" +
                                 s.var + "' (initialize it with ':=')");
      }
    }
    ExprContext ctx;
    ctx.aq = aq_;
    ctx.in_invariant = true;
    for (InvariantStmt& s : mutable_query().invariant->stmts) {
      SAQL_RETURN_IF_ERROR(CheckExpr(*s.expr, ctx, 0));
    }
    return Status::Ok();
  }

  Status AnalyzeCluster() {
    if (!query().cluster.has_value()) return Status::Ok();
    const ClusterSpec& spec = *query().cluster;
    ClusterMethod method;
    if (spec.distance == "ed") {
      method.euclidean = true;
    } else if (spec.distance == "md") {
      method.euclidean = false;
    } else {
      return SemErr(spec.loc, "unknown distance metric '" + spec.distance +
                                  "' (expected \"ed\" or \"md\")");
    }
    // Parse `DBSCAN(eps, minPts)`.
    std::string m = Trim(spec.method);
    size_t open = m.find('(');
    size_t close = m.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return SemErr(spec.loc, "malformed cluster method '" + spec.method +
                                  "' (expected NAME(args))");
    }
    std::string name = ToLower(Trim(m.substr(0, open)));
    std::vector<std::string> args =
        Split(m.substr(open + 1, close - open - 1), ',');
    if (name == "dbscan") {
      method.kind = ClusterMethod::Kind::kDbscan;
      if (args.size() != 2) {
        return SemErr(spec.loc, "DBSCAN expects (eps, minPts)");
      }
      method.eps = std::strtod(Trim(args[0]).c_str(), nullptr);
      method.min_pts =
          static_cast<int>(std::strtol(Trim(args[1]).c_str(), nullptr, 10));
      if (method.eps <= 0 || method.min_pts <= 0) {
        return SemErr(spec.loc, "DBSCAN eps and minPts must be positive");
      }
    } else {
      return SemErr(spec.loc,
                    "unknown cluster method '" + name + "' (supported: "
                    "DBSCAN)");
    }
    aq_->cluster_method = method;

    ExprContext ctx;
    ctx.aq = aq_;
    ctx.in_alert = true;  // cluster points read window state like alerts do
    for (ExprPtr& p : mutable_query().cluster->points) {
      SAQL_RETURN_IF_ERROR(CheckExpr(*p, ctx, 0));
    }
    return Status::Ok();
  }

  Status AnalyzeAlertAndReturn() {
    ExprContext ctx;
    ctx.aq = aq_;
    ctx.in_alert = true;
    if (mutable_query().alert) {
      SAQL_RETURN_IF_ERROR(CheckExpr(*mutable_query().alert, ctx, 0));
    }
    for (ReturnItem& item : mutable_query().returns) {
      SAQL_RETURN_IF_ERROR(CheckExpr(*item.expr, ctx, 0));
    }
    return Status::Ok();
  }

  bool ContainsAggregate(const Expr& e) const {
    if (e.kind == ExprKind::kCall && IsAggregateFunction(ToLower(e.callee))) {
      return true;
    }
    if (e.lhs && ContainsAggregate(*e.lhs)) return true;
    if (e.rhs && ContainsAggregate(*e.rhs)) return true;
    for (const ExprPtr& a : e.args) {
      if (ContainsAggregate(*a)) return true;
    }
    return false;
  }

  /// Validates one reference expression against the query's symbol tables
  /// and records its resolution on the node.
  Status CheckRef(Expr& e, const ExprContext& ctx) {
    const Query& q = query();
    const std::string& base = e.base;

    // State variable reference (`ss[0].f`, `ss.f`).
    if (q.IsStateful() && base == q.state->var) {
      if (e.field.empty()) {
        return SemErr(e.loc, "state reference needs a field (e.g. " + base +
                                 ".field)");
      }
      auto idx = aq_->state_field_index.find(e.field);
      if (idx == aq_->state_field_index.end()) {
        return SemErr(e.loc, "state block has no field '" + e.field + "'");
      }
      int h = e.history.value_or(0);
      if (h < 0 || h >= q.state->history) {
        return SemErr(e.loc, "state history index " + std::to_string(h) +
                                 " out of range (history size " +
                                 std::to_string(q.state->history) + ")");
      }
      if (ctx.in_state_field) {
        return SemErr(e.loc,
                      "state fields cannot reference other state fields");
      }
      e.ref_kind = RefKind::kState;
      e.ref_index = idx->second;
      return Status::Ok();
    }

    // Cluster attribute (`cluster.outlier`).
    if (base == "cluster" && q.cluster.has_value()) {
      std::string f = ToLower(e.field);
      if (f != "outlier" && f != "cluster_id" && f != "cluster_size") {
        return SemErr(e.loc, "unknown cluster attribute '" + e.field +
                                 "' (outlier, cluster_id, cluster_size)");
      }
      if (!ctx.in_alert) {
        return SemErr(e.loc, "cluster attributes are only available in "
                             "alert/return expressions");
      }
      e.ref_kind = RefKind::kCluster;
      return Status::Ok();
    }

    // Invariant variable.
    auto inv = std::find(aq_->invariant_vars.begin(),
                         aq_->invariant_vars.end(), base);
    if (inv != aq_->invariant_vars.end()) {
      if (!e.field.empty()) {
        return SemErr(e.loc, "invariant variable '" + base +
                                 "' has no attributes");
      }
      e.ref_kind = RefKind::kInvariant;
      e.ref_index =
          static_cast<int32_t>(inv - aq_->invariant_vars.begin());
      return Status::Ok();
    }

    // Entity variable.
    auto ent = aq_->entity_vars.find(base);
    if (ent != aq_->entity_vars.end()) {
      const EntityBinding& b = ent->second.front();
      std::string field =
          e.field.empty() ? DefaultFieldForEntity(b.type) : e.field;
      if (!IsValidEntityField(b.type, field)) {
        return SemErr(e.loc, std::string("entity type '") +
                                 EntityTypeName(b.type) +
                                 "' has no attribute '" + field + "'");
      }
      // In stateful alert/return context an entity reference must match a
      // group-by key: per-event values are gone once the window aggregates.
      if (q.IsStateful() && (ctx.in_alert || ctx.in_invariant)) {
        for (size_t i = 0; i < aq_->group_keys.size(); ++i) {
          const ResolvedGroupKey& k = aq_->group_keys[i];
          if (k.base == base &&
              (e.field.empty() || ToLower(e.field) == k.field)) {
            e.ref_kind = RefKind::kGroupKey;
            e.ref_index = static_cast<int32_t>(i);
            return Status::Ok();
          }
        }
        return SemErr(e.loc,
                      "reference '" + e.ToString() +
                          "' in a stateful query must be a group-by key");
      }
      e.ref_kind = RefKind::kEntity;
      e.ref_index = b.pattern_index;
      e.ref_role = b.role;
      e.ref_field = ResolveEntityFieldId(b.type, field);
      return Status::Ok();
    }

    // Event alias.
    auto alias = aq_->alias_to_pattern.find(base);
    if (alias != aq_->alias_to_pattern.end()) {
      if (e.field.empty()) {
        return SemErr(e.loc, "event reference needs a field (e.g. " + base +
                                 ".amount)");
      }
      if (!IsValidEventField(e.field)) {
        return SemErr(e.loc, "event has no attribute '" + e.field + "'");
      }
      if (q.IsStateful() && (ctx.in_alert || ctx.in_invariant)) {
        for (size_t i = 0; i < aq_->group_keys.size(); ++i) {
          const ResolvedGroupKey& k = aq_->group_keys[i];
          if (k.base == base && ToLower(e.field) == k.field) {
            e.ref_kind = RefKind::kGroupKey;
            e.ref_index = static_cast<int32_t>(i);
            return Status::Ok();
          }
        }
        return SemErr(e.loc,
                      "reference '" + e.ToString() +
                          "' in a stateful query must be a group-by key");
      }
      e.ref_kind = RefKind::kEvent;
      e.ref_index = alias->second;
      // kInvalid is possible for object_* spellings that only resolve per
      // event; evaluation falls back to the string-keyed read for those.
      e.ref_field = ResolveEventFieldId(e.field);
      return Status::Ok();
    }

    return SemErr(e.loc, "unknown name '" + base + "'");
  }

  Status CheckExpr(Expr& e, const ExprContext& ctx, int agg_depth) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return Status::Ok();
      case ExprKind::kRef:
        return CheckRef(e, ctx);
      case ExprKind::kCall: {
        std::string callee = ToLower(e.callee);
        if (IsAggregateFunction(callee)) {
          if (!ctx.in_state_field) {
            return SemErr(e.loc, "aggregate '" + e.callee +
                                     "' is only allowed in state fields");
          }
          if (agg_depth > 0) {
            return SemErr(e.loc, "aggregates cannot be nested");
          }
          if (callee == "count") {
            if (e.args.size() > 1) {
              return SemErr(e.loc, "count() takes at most one argument");
            }
          } else if (e.args.size() != 1) {
            return SemErr(e.loc, "aggregate '" + e.callee +
                                     "' takes exactly one argument");
          }
          for (ExprPtr& a : e.args) {
            SAQL_RETURN_IF_ERROR(CheckAggArg(*a, ctx));
          }
          return Status::Ok();
        }
        if (callee == "all") {
          return SemErr(e.loc,
                        "all(...) is only valid as cluster points=...");
        }
        if (callee == "abs" || callee == "sqrt" || callee == "log" ||
            callee == "exp") {
          if (e.args.size() != 1) {
            return SemErr(e.loc, "'" + e.callee + "' takes one argument");
          }
          return CheckExpr(*e.args[0], ctx, agg_depth);
        }
        if (callee == "min2" || callee == "max2" || callee == "pow") {
          if (e.args.size() != 2) {
            return SemErr(e.loc, "'" + e.callee + "' takes two arguments");
          }
          SAQL_RETURN_IF_ERROR(CheckExpr(*e.args[0], ctx, agg_depth));
          return CheckExpr(*e.args[1], ctx, agg_depth);
        }
        return SemErr(e.loc, "unknown function '" + e.callee + "'");
      }
      case ExprKind::kBinary:
        SAQL_RETURN_IF_ERROR(CheckExpr(*e.lhs, ctx, agg_depth));
        return CheckExpr(*e.rhs, ctx, agg_depth);
      case ExprKind::kUnary:
        return CheckExpr(*e.lhs, ctx, agg_depth);
    }
    return Status::Internal("bad expr kind");
  }

  /// Inside an aggregate argument only event/entity references, literals,
  /// and arithmetic are allowed.
  Status CheckAggArg(Expr& e, const ExprContext& ctx) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return Status::Ok();
      case ExprKind::kRef: {
        // Must resolve to an entity variable or event alias, not state.
        if (query().IsStateful() && e.base == query().state->var) {
          return SemErr(e.loc,
                        "aggregate arguments read events, not window state");
        }
        ExprContext inner = ctx;
        inner.in_alert = false;
        inner.in_invariant = false;
        return CheckRef(e, inner);
      }
      case ExprKind::kCall:
        if (IsAggregateFunction(ToLower(e.callee))) {
          return SemErr(e.loc, "aggregates cannot be nested");
        }
        for (ExprPtr& a : e.args) {
          SAQL_RETURN_IF_ERROR(CheckAggArg(*a, ctx));
        }
        return Status::Ok();
      case ExprKind::kBinary:
        SAQL_RETURN_IF_ERROR(CheckAggArg(*e.lhs, ctx));
        return CheckAggArg(*e.rhs, ctx);
      case ExprKind::kUnary:
        return CheckAggArg(*e.lhs, ctx);
    }
    return Status::Internal("bad expr kind");
  }

  std::shared_ptr<Query> owned_;
  AnalyzedQuery* aq_ = nullptr;
};

}  // namespace

bool IsAggregateFunction(const std::string& name) {
  return name == "avg" || name == "sum" || name == "count" ||
         name == "min" || name == "max" || name == "stddev" ||
         name == "set" || name == "count_distinct" || name == "median" ||
         name == "top";
}

Result<AnalyzedQueryPtr> AnalyzeQuery(Query query) {
  AnalyzerImpl impl(std::move(query));
  return impl.Run();
}

Result<AnalyzedQueryPtr> CompileSaql(const std::string& text) {
  SAQL_ASSIGN_OR_RETURN(Query q, ParseSaql(text));
  return AnalyzeQuery(std::move(q));
}

}  // namespace saql
