#include "parser/parser.h"

#include <utility>

#include "core/field_access.h"
#include "core/string_util.h"
#include "parser/lexer.h"

namespace saql {

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
  if (tokens_.empty()) {
    tokens_.push_back(Token{});  // defensive EOF
  }
}

const Token& Parser::Peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  if (p >= tokens_.size()) return tokens_.back();
  return tokens_[p];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Result<Token> Parser::Expect(TokenKind kind, const std::string& context) {
  if (Check(kind)) return Advance();
  return Status::ParseError(Peek().loc.ToString() + ": expected " +
                            TokenKindName(kind) + " " + context + ", got " +
                            Peek().ToString());
}

Result<Token> Parser::ExpectIdent(const std::string& context) {
  return Expect(TokenKind::kIdentifier, context);
}

Status Parser::ErrorHere(const std::string& msg) const {
  return Status::ParseError(Peek().loc.ToString() + ": " + msg);
}

bool Parser::AtEntityType() const {
  const Token& t = Peek();
  return t.IsIdent("proc") || t.IsIdent("process") || t.IsIdent("file") ||
         t.IsIdent("ip");
}

bool Parser::LooksLikeOp(int ahead) const {
  const Token& t = Peek(ahead);
  if (!t.Is(TokenKind::kIdentifier)) return false;
  return ParseEventOp(t.text).ok();
}

Result<Query> Parser::ParseQuery(const std::string& text) {
  Query query;
  query.text = text;
  while (!Check(TokenKind::kEof)) {
    if (AtEntityType()) {
      SAQL_RETURN_IF_ERROR(ParseEventPattern(&query));
    } else if (Check(TokenKind::kHash)) {
      SAQL_RETURN_IF_ERROR(ParseWindow(&query));
    } else if (CheckIdent("with")) {
      SAQL_RETURN_IF_ERROR(ParseTemporal(&query));
    } else if (CheckIdent("state")) {
      SAQL_RETURN_IF_ERROR(ParseStateBlock(&query));
    } else if (CheckIdent("invariant")) {
      SAQL_RETURN_IF_ERROR(ParseInvariantBlock(&query));
    } else if (CheckIdent("cluster")) {
      SAQL_RETURN_IF_ERROR(ParseClusterSpec(&query));
    } else if (CheckIdent("alert")) {
      SAQL_RETURN_IF_ERROR(ParseAlert(&query));
    } else if (CheckIdent("return")) {
      SAQL_RETURN_IF_ERROR(ParseReturn(&query));
    } else if (Check(TokenKind::kIdentifier) &&
               IsConstraintOpToken(Peek(1).kind)) {
      SAQL_RETURN_IF_ERROR(ParseGlobalConstraint(&query));
    } else {
      return ErrorHere("unexpected " + Peek().ToString() +
                       " at query top level");
    }
  }
  if (query.patterns.empty()) {
    return Status::ParseError(Peek().loc.ToString() +
                              ": query declares no event pattern");
  }
  if (query.returns.empty()) {
    return Status::ParseError(Peek().loc.ToString() +
                              ": query has no return clause");
  }
  return query;
}

bool Parser::IsConstraintOpToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kAssign:
    case TokenKind::kEq:
    case TokenKind::kNe:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

Result<ConstraintOp> Parser::ParseConstraintOp(const std::string& context) {
  if (Match(TokenKind::kAssign) || Match(TokenKind::kEq)) {
    return ConstraintOp::kEq;
  }
  if (Match(TokenKind::kNe)) return ConstraintOp::kNe;
  if (Match(TokenKind::kLt)) return ConstraintOp::kLt;
  if (Match(TokenKind::kLe)) return ConstraintOp::kLe;
  if (Match(TokenKind::kGt)) return ConstraintOp::kGt;
  if (Match(TokenKind::kGe)) return ConstraintOp::kGe;
  return ErrorHere("expected comparison operator in " + context);
}

Status Parser::ParseGlobalConstraint(Query* query) {
  // Global lines accept the same operator set as entity constraints
  // (`agentid = server1`, `agentid != lab-host`, `amount > 1000`).
  Token field = Advance();
  SAQL_ASSIGN_OR_RETURN(ConstraintOp op,
                        ParseConstraintOp("global constraint"));
  SAQL_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
  AttrConstraint c;
  c.field = ToLower(field.text);
  c.op = op;
  c.value = std::move(v);
  c.loc = field.loc;
  c.span = SourceSpan{field.loc, PrevEnd()};
  query->global_constraints.push_back(std::move(c));
  return Status::Ok();
}

Result<Value> Parser::ParseLiteralValue() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kString:
      return Value(Advance().text);
    case TokenKind::kInteger:
      return Value(Advance().int_value);
    case TokenKind::kFloat:
      return Value(Advance().float_value);
    case TokenKind::kMinus: {
      Advance();
      const Token& n = Peek();
      if (n.Is(TokenKind::kInteger)) return Value(-Advance().int_value);
      if (n.Is(TokenKind::kFloat)) return Value(-Advance().float_value);
      return ErrorHere("expected number after '-'");
    }
    case TokenKind::kIdentifier:
      if (t.IsIdent("true")) {
        Advance();
        return Value(true);
      }
      if (t.IsIdent("false")) {
        Advance();
        return Value(false);
      }
      // Bare identifiers act as strings (the paper writes `agentid = xxx`).
      return Value(Advance().text);
    default:
      return ErrorHere("expected literal value, got " + t.ToString());
  }
}

Status Parser::ParseEventPattern(Query* query) {
  SourceLoc loc = Peek().loc;
  SAQL_ASSIGN_OR_RETURN(EntityPattern subject, ParseEntityPattern());
  if (subject.type != EntityType::kProcess) {
    return Status::ParseError(loc.ToString() +
                              ": event subject must be a process");
  }
  SAQL_ASSIGN_OR_RETURN(OpMask ops, ParseOps());
  SAQL_ASSIGN_OR_RETURN(EntityPattern object, ParseEntityPattern());

  EventPatternDecl decl;
  decl.subject = std::move(subject);
  decl.ops = ops;
  decl.object = std::move(object);
  decl.loc = loc;
  if (CheckIdent("as")) {
    Advance();
    SAQL_ASSIGN_OR_RETURN(Token alias, ExpectIdent("after 'as'"));
    decl.alias = alias.text;
  } else {
    decl.alias = "_evt" + std::to_string(query->patterns.size());
  }
  decl.span = SourceSpan{loc, PrevEnd()};
  query->patterns.push_back(std::move(decl));
  return Status::Ok();
}

Result<EntityPattern> Parser::ParseEntityPattern() {
  SAQL_ASSIGN_OR_RETURN(Token type_tok, ExpectIdent("entity type"));
  SAQL_ASSIGN_OR_RETURN(EntityType type, ParseEntityType(type_tok.text));

  EntityPattern pattern;
  pattern.type = type;
  pattern.loc = type_tok.loc;

  // An identifier after the type is the variable, unless it reads as an
  // operation followed by another entity type (`proc read file f1`, an
  // anonymous subject).
  if (Check(TokenKind::kIdentifier) && !CheckIdent("as")) {
    bool is_anonymous_subject =
        LooksLikeOp(0) &&
        (Peek(1).IsIdent("proc") || Peek(1).IsIdent("process") ||
         Peek(1).IsIdent("file") || Peek(1).IsIdent("ip") ||
         Peek(1).Is(TokenKind::kOrOr));
    if (!is_anonymous_subject) {
      pattern.var = Advance().text;
    }
  }
  if (pattern.var.empty()) {
    pattern.var = "_e" + std::to_string(anon_counter_++);
  }
  if (Check(TokenKind::kLBracket)) {
    Advance();
    SAQL_ASSIGN_OR_RETURN(pattern.constraints, ParseConstraintList(type));
    SAQL_RETURN_IF_ERROR(
        Expect(TokenKind::kRBracket, "closing entity constraints").status());
  }
  pattern.span = SourceSpan{type_tok.loc, PrevEnd()};
  return pattern;
}

Result<std::vector<AttrConstraint>> Parser::ParseConstraintList(
    EntityType type) {
  std::vector<AttrConstraint> out;
  // Shorthand: a lone string constrains the default field with LIKE
  // semantics (`proc p1["%cmd.exe"]`).
  if (Check(TokenKind::kString) && Peek(1).Is(TokenKind::kRBracket)) {
    Token s = Advance();
    AttrConstraint c;
    c.field = DefaultFieldForEntity(type);
    c.op = ConstraintOp::kEq;
    c.value = Value(s.text);
    c.loc = s.loc;
    c.span = s.span();
    out.push_back(std::move(c));
    return out;
  }
  while (true) {
    SAQL_ASSIGN_OR_RETURN(Token field, ExpectIdent("constraint field"));
    SAQL_ASSIGN_OR_RETURN(ConstraintOp op, ParseConstraintOp("constraint"));
    SAQL_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
    AttrConstraint c;
    c.field = ToLower(field.text);
    c.op = op;
    c.value = std::move(v);
    c.loc = field.loc;
    c.span = SourceSpan{field.loc, PrevEnd()};
    out.push_back(std::move(c));
    if (!Match(TokenKind::kComma) && !Match(TokenKind::kAndAnd)) break;
  }
  return out;
}

Result<OpMask> Parser::ParseOps() {
  OpMask mask = 0;
  while (true) {
    SAQL_ASSIGN_OR_RETURN(Token op_tok, ExpectIdent("event operation"));
    SAQL_ASSIGN_OR_RETURN(EventOp op, ParseEventOp(op_tok.text));
    mask |= OpBit(op);
    if (!Match(TokenKind::kOrOr)) break;
  }
  return mask;
}

Result<Duration> Parser::ParseDurationTokens() {
  const Token& num = Peek();
  double count = 0;
  if (num.Is(TokenKind::kInteger)) {
    count = static_cast<double>(Advance().int_value);
  } else if (num.Is(TokenKind::kFloat)) {
    count = Advance().float_value;
  } else {
    return ErrorHere("expected a number in duration");
  }
  Duration unit = kSecond;
  if (Check(TokenKind::kIdentifier)) {
    SAQL_ASSIGN_OR_RETURN(unit, ParseTimeUnit(Peek().text));
    Advance();
  }
  return static_cast<Duration>(count * static_cast<double>(unit));
}

Status Parser::ParseWindow(Query* query) {
  SourceLoc loc = Peek().loc;
  Advance();  // '#'
  SAQL_ASSIGN_OR_RETURN(Token kind_tok, ExpectIdent("after '#'"));
  WindowSpec spec;
  spec.loc = loc;
  SAQL_RETURN_IF_ERROR(
      Expect(TokenKind::kLParen, "after window kind").status());
  if (kind_tok.IsIdent("time")) {
    spec.kind = WindowSpec::Kind::kTime;
    SAQL_ASSIGN_OR_RETURN(spec.length, ParseDurationTokens());
    if (Match(TokenKind::kComma)) {
      SAQL_ASSIGN_OR_RETURN(spec.slide, ParseDurationTokens());
    }
    if (spec.length <= 0) {
      return Status::ParseError(loc.ToString() +
                                ": window length must be positive");
    }
  } else if (kind_tok.IsIdent("count")) {
    spec.kind = WindowSpec::Kind::kCount;
    SAQL_ASSIGN_OR_RETURN(Token n, Expect(TokenKind::kInteger,
                                          "count window size"));
    spec.count = n.int_value;
    if (spec.count <= 0) {
      return Status::ParseError(loc.ToString() +
                                ": count window size must be positive");
    }
  } else {
    return Status::ParseError(loc.ToString() + ": unknown window kind '" +
                              kind_tok.text + "' (expected time or count)");
  }
  SAQL_RETURN_IF_ERROR(
      Expect(TokenKind::kRParen, "closing window spec").status());
  spec.span = SourceSpan{loc, PrevEnd()};
  if (query->window.has_value()) {
    return Status::ParseError(loc.ToString() +
                              ": duplicate window specification");
  }
  query->window = spec;
  return Status::Ok();
}

Status Parser::ParseTemporal(Query* query) {
  SourceLoc loc = Peek().loc;
  Advance();  // 'with'
  TemporalRelation rel;
  rel.loc = loc;
  SAQL_ASSIGN_OR_RETURN(Token first, ExpectIdent("event alias after 'with'"));
  rel.sequence.push_back(first.text);
  while (Match(TokenKind::kArrow)) {
    Duration gap = 0;
    if (Match(TokenKind::kLBracket)) {
      SAQL_ASSIGN_OR_RETURN(gap, ParseDurationTokens());
      SAQL_RETURN_IF_ERROR(
          Expect(TokenKind::kRBracket, "closing gap bound").status());
    }
    SAQL_ASSIGN_OR_RETURN(Token next, ExpectIdent("event alias after '->'"));
    rel.sequence.push_back(next.text);
    rel.max_gaps.push_back(gap);
  }
  if (rel.sequence.size() < 2) {
    return Status::ParseError(loc.ToString() +
                              ": temporal relation needs at least 2 events");
  }
  if (query->temporal.has_value()) {
    return Status::ParseError(loc.ToString() +
                              ": duplicate temporal relation");
  }
  query->temporal = std::move(rel);
  return Status::Ok();
}

Result<GroupKey> Parser::ParseGroupKey() {
  SAQL_ASSIGN_OR_RETURN(Token base, ExpectIdent("group-by key"));
  GroupKey key;
  key.base = base.text;
  key.loc = base.loc;
  if (Match(TokenKind::kDot)) {
    SAQL_ASSIGN_OR_RETURN(Token field, ExpectIdent("field after '.'"));
    key.field = ToLower(field.text);
  }
  return key;
}

Status Parser::ParseStateBlock(Query* query) {
  SourceLoc loc = Peek().loc;
  Advance();  // 'state'
  StateBlock block;
  block.loc = loc;
  if (Match(TokenKind::kLBracket)) {
    SAQL_ASSIGN_OR_RETURN(Token n,
                          Expect(TokenKind::kInteger, "state history size"));
    block.history = static_cast<int>(n.int_value);
    if (block.history < 1) {
      return Status::ParseError(loc.ToString() +
                                ": state history must be >= 1");
    }
    SAQL_RETURN_IF_ERROR(
        Expect(TokenKind::kRBracket, "closing state history").status());
  }
  SAQL_ASSIGN_OR_RETURN(Token var, ExpectIdent("state variable name"));
  block.var = var.text;
  SAQL_RETURN_IF_ERROR(
      Expect(TokenKind::kLBrace, "opening state block").status());
  while (!Check(TokenKind::kRBrace)) {
    SAQL_ASSIGN_OR_RETURN(Token name, ExpectIdent("state field name"));
    SAQL_RETURN_IF_ERROR(
        Expect(TokenKind::kColonAssign, "after state field name").status());
    SAQL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    StateField field;
    field.name = name.text;
    field.expr = std::move(expr);
    field.loc = name.loc;
    block.fields.push_back(std::move(field));
  }
  Advance();  // '}'
  if (CheckIdent("group")) {
    Advance();
    if (!CheckIdent("by")) return ErrorHere("expected 'by' after 'group'");
    Advance();
    while (true) {
      SAQL_ASSIGN_OR_RETURN(GroupKey key, ParseGroupKey());
      block.group_by.push_back(std::move(key));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  if (block.fields.empty()) {
    return Status::ParseError(loc.ToString() +
                              ": state block declares no fields");
  }
  if (query->state.has_value()) {
    return Status::ParseError(loc.ToString() + ": duplicate state block");
  }
  query->state = std::move(block);
  return Status::Ok();
}

Status Parser::ParseInvariantBlock(Query* query) {
  SourceLoc loc = Peek().loc;
  Advance();  // 'invariant'
  InvariantBlock block;
  block.loc = loc;
  SAQL_RETURN_IF_ERROR(
      Expect(TokenKind::kLBracket, "invariant training window count")
          .status());
  SAQL_ASSIGN_OR_RETURN(Token n,
                        Expect(TokenKind::kInteger, "training window count"));
  block.training_windows = static_cast<int>(n.int_value);
  SAQL_RETURN_IF_ERROR(
      Expect(TokenKind::kRBracket, "closing training count").status());
  if (Match(TokenKind::kLBracket)) {
    SAQL_ASSIGN_OR_RETURN(Token mode, ExpectIdent("invariant mode"));
    if (mode.IsIdent("offline")) {
      block.offline = true;
    } else if (mode.IsIdent("online")) {
      block.offline = false;
    } else {
      return Status::ParseError(mode.loc.ToString() +
                                ": invariant mode must be offline or online");
    }
    SAQL_RETURN_IF_ERROR(
        Expect(TokenKind::kRBracket, "closing invariant mode").status());
  }
  SAQL_RETURN_IF_ERROR(
      Expect(TokenKind::kLBrace, "opening invariant block").status());
  while (!Check(TokenKind::kRBrace)) {
    SAQL_ASSIGN_OR_RETURN(Token var, ExpectIdent("invariant variable"));
    InvariantStmt stmt;
    stmt.var = var.text;
    stmt.loc = var.loc;
    if (Match(TokenKind::kColonAssign)) {
      stmt.is_init = true;
    } else if (Match(TokenKind::kAssign)) {
      stmt.is_init = false;
    } else {
      return ErrorHere("expected ':=' (init) or '=' (update) in invariant");
    }
    SAQL_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
    block.stmts.push_back(std::move(stmt));
  }
  Advance();  // '}'
  if (block.stmts.empty()) {
    return Status::ParseError(loc.ToString() + ": empty invariant block");
  }
  if (query->invariant.has_value()) {
    return Status::ParseError(loc.ToString() + ": duplicate invariant block");
  }
  query->invariant = std::move(block);
  return Status::Ok();
}

Status Parser::ParseClusterSpec(Query* query) {
  SourceLoc loc = Peek().loc;
  Advance();  // 'cluster'
  SAQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'cluster'").status());
  ClusterSpec spec;
  spec.loc = loc;
  bool saw_points = false;
  while (!Check(TokenKind::kRParen)) {
    SAQL_ASSIGN_OR_RETURN(Token key, ExpectIdent("cluster argument name"));
    SAQL_RETURN_IF_ERROR(
        Expect(TokenKind::kAssign, "after cluster argument name").status());
    if (key.IsIdent("points")) {
      SAQL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      // `points=all(ss.amt, ss.cnt)` — unwrap the `all(...)` call so each
      // argument becomes one dimension of the cluster points.
      if (expr->kind == ExprKind::kCall &&
          ToLower(expr->callee) == "all") {
        for (ExprPtr& arg : expr->args) {
          spec.points.push_back(std::move(arg));
        }
      } else {
        spec.points.push_back(std::move(expr));
      }
      saw_points = true;
    } else if (key.IsIdent("distance")) {
      SAQL_ASSIGN_OR_RETURN(Token v,
                            Expect(TokenKind::kString, "distance metric"));
      spec.distance = ToLower(v.text);
    } else if (key.IsIdent("method")) {
      SAQL_ASSIGN_OR_RETURN(Token v,
                            Expect(TokenKind::kString, "cluster method"));
      spec.method = v.text;
    } else {
      return Status::ParseError(key.loc.ToString() +
                                ": unknown cluster argument '" + key.text +
                                "'");
    }
    if (!Match(TokenKind::kComma)) break;
  }
  SAQL_RETURN_IF_ERROR(
      Expect(TokenKind::kRParen, "closing cluster spec").status());
  if (!saw_points) {
    return Status::ParseError(loc.ToString() +
                              ": cluster spec requires points=...");
  }
  if (spec.method.empty()) {
    return Status::ParseError(loc.ToString() +
                              ": cluster spec requires method=...");
  }
  if (query->cluster.has_value()) {
    return Status::ParseError(loc.ToString() + ": duplicate cluster spec");
  }
  query->cluster = std::move(spec);
  return Status::Ok();
}

Status Parser::ParseAlert(Query* query) {
  SourceLoc loc = Peek().loc;
  Advance();  // 'alert'
  if (query->alert) {
    return Status::ParseError(loc.ToString() + ": duplicate alert clause");
  }
  SAQL_ASSIGN_OR_RETURN(query->alert, ParseExpr());
  return Status::Ok();
}

Status Parser::ParseReturn(Query* query) {
  SourceLoc loc = Peek().loc;
  Advance();  // 'return'
  if (!query->returns.empty()) {
    return Status::ParseError(loc.ToString() + ": duplicate return clause");
  }
  if (CheckIdent("distinct")) {
    Advance();
    query->return_distinct = true;
  }
  while (true) {
    SourceLoc item_loc = Peek().loc;
    SAQL_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    ReturnItem item;
    item.label = expr->ToString();
    item.expr = std::move(expr);
    item.loc = item_loc;
    if (CheckIdent("as")) {
      Advance();
      SAQL_ASSIGN_OR_RETURN(Token label, ExpectIdent("return item label"));
      item.label = label.text;
    }
    query->returns.push_back(std::move(item));
    if (!Match(TokenKind::kComma)) break;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOrExpr(); }

Result<ExprPtr> Parser::ParseOrExpr() {
  SAQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
  while (Check(TokenKind::kOrOr)) {
    SourceLoc loc = Advance().loc;
    SAQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
    lhs = Expr::MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAndExpr() {
  SAQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCmpExpr());
  while (Check(TokenKind::kAndAnd)) {
    SourceLoc loc = Advance().loc;
    SAQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCmpExpr());
    lhs = Expr::MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseCmpExpr() {
  SAQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseSetExpr());
  BinOp op;
  if (Check(TokenKind::kEq) || Check(TokenKind::kAssign)) {
    op = BinOp::kEq;
  } else if (Check(TokenKind::kNe)) {
    op = BinOp::kNe;
  } else if (Check(TokenKind::kLt)) {
    op = BinOp::kLt;
  } else if (Check(TokenKind::kLe)) {
    op = BinOp::kLe;
  } else if (Check(TokenKind::kGt)) {
    op = BinOp::kGt;
  } else if (Check(TokenKind::kGe)) {
    op = BinOp::kGe;
  } else if (CheckIdent("in")) {
    op = BinOp::kIn;
  } else {
    return lhs;
  }
  SourceLoc loc = Advance().loc;
  SAQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseSetExpr());
  return Expr::MakeBinary(op, std::move(lhs), std::move(rhs), loc);
}

Result<ExprPtr> Parser::ParseSetExpr() {
  SAQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAddExpr());
  while (CheckIdent("union") || CheckIdent("diff") ||
         CheckIdent("intersect")) {
    Token op_tok = Advance();
    BinOp op = op_tok.IsIdent("union")
                   ? BinOp::kUnion
                   : (op_tok.IsIdent("diff") ? BinOp::kDiff
                                             : BinOp::kIntersect);
    SAQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAddExpr());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs), op_tok.loc);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAddExpr() {
  SAQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMulExpr());
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    Token op_tok = Advance();
    BinOp op = op_tok.Is(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
    SAQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMulExpr());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs), op_tok.loc);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMulExpr() {
  SAQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
         Check(TokenKind::kPercent)) {
    Token op_tok = Advance();
    BinOp op = op_tok.Is(TokenKind::kStar)
                   ? BinOp::kMul
                   : (op_tok.Is(TokenKind::kSlash) ? BinOp::kDiv
                                                   : BinOp::kMod);
    SAQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs), op_tok.loc);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnaryExpr() {
  if (Check(TokenKind::kBang)) {
    SourceLoc loc = Advance().loc;
    SAQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
    return Expr::MakeUnary(UnOp::kNot, std::move(operand), loc);
  }
  if (Check(TokenKind::kMinus)) {
    SourceLoc loc = Advance().loc;
    SAQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
    return Expr::MakeUnary(UnOp::kNeg, std::move(operand), loc);
  }
  if (CheckIdent("not")) {
    SourceLoc loc = Advance().loc;
    SAQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
    return Expr::MakeUnary(UnOp::kNot, std::move(operand), loc);
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      Token tok = Advance();
      ExprPtr e = Expr::MakeLiteral(Value(tok.int_value), tok.loc);
      e->span = tok.span();
      return e;
    }
    case TokenKind::kFloat: {
      Token tok = Advance();
      ExprPtr e = Expr::MakeLiteral(Value(tok.float_value), tok.loc);
      e->span = tok.span();
      return e;
    }
    case TokenKind::kString: {
      Token tok = Advance();
      ExprPtr e = Expr::MakeLiteral(Value(tok.text), tok.loc);
      e->span = tok.span();
      return e;
    }
    case TokenKind::kLParen: {
      Advance();
      SAQL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      SAQL_RETURN_IF_ERROR(
          Expect(TokenKind::kRParen, "closing parenthesis").status());
      return inner;
    }
    case TokenKind::kPipe: {
      SourceLoc loc = Advance().loc;
      SAQL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      SAQL_RETURN_IF_ERROR(
          Expect(TokenKind::kPipe, "closing '|' of size expression")
              .status());
      return Expr::MakeUnary(UnOp::kSize, std::move(inner), loc);
    }
    case TokenKind::kIdentifier:
      break;  // handled below
    default:
      return ErrorHere("expected expression, got " + t.ToString());
  }

  Token ident = Advance();
  if (ident.IsIdent("true")) {
    ExprPtr e = Expr::MakeLiteral(Value(true), ident.loc);
    e->span = ident.span();
    return e;
  }
  if (ident.IsIdent("false")) {
    ExprPtr e = Expr::MakeLiteral(Value(false), ident.loc);
    e->span = ident.span();
    return e;
  }
  if (ident.IsIdent("empty_set")) {
    ExprPtr e = Expr::MakeLiteral(Value(StringSet{}), ident.loc);
    e->span = ident.span();
    return e;
  }
  // Call: `avg(evt.amount)`.
  if (Check(TokenKind::kLParen)) {
    Advance();
    std::vector<ExprPtr> args;
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        SAQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    SAQL_RETURN_IF_ERROR(
        Expect(TokenKind::kRParen, "closing call arguments").status());
    ExprPtr e = Expr::MakeCall(ident.text, std::move(args), ident.loc);
    e->span = SourceSpan{ident.loc, PrevEnd()};
    return e;
  }
  // State history: `ss[1].avg_amount`.
  if (Check(TokenKind::kLBracket)) {
    Advance();
    SAQL_ASSIGN_OR_RETURN(Token idx,
                          Expect(TokenKind::kInteger, "state history index"));
    SAQL_RETURN_IF_ERROR(
        Expect(TokenKind::kRBracket, "closing history index").status());
    std::string field;
    if (Match(TokenKind::kDot)) {
      SAQL_ASSIGN_OR_RETURN(Token f, ExpectIdent("field after '.'"));
      field = f.text;
    }
    ExprPtr e = Expr::MakeRef(ident.text, static_cast<int>(idx.int_value),
                              std::move(field), ident.loc);
    e->span = SourceSpan{ident.loc, PrevEnd()};
    return e;
  }
  // Qualified field: `p1.exe_name`.
  if (Check(TokenKind::kDot)) {
    Advance();
    SAQL_ASSIGN_OR_RETURN(Token f, ExpectIdent("field after '.'"));
    ExprPtr e = Expr::MakeRef(ident.text, std::nullopt, f.text, ident.loc);
    e->span = SourceSpan{ident.loc, f.end};
    return e;
  }
  // Bare reference.
  ExprPtr bare = Expr::MakeRef(ident.text, std::nullopt, "", ident.loc);
  bare->span = ident.span();
  return bare;
}

Result<Query> ParseSaql(const std::string& text) {
  SAQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSaql(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery(text);
}

}  // namespace saql
