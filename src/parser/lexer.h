#ifndef SAQL_PARSER_LEXER_H_
#define SAQL_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "parser/token.h"

namespace saql {

/// Hand-written lexer for the SAQL language (replaces the paper's ANTLR 4
/// generated lexer; see DESIGN.md substitution S1).
///
/// Lexical rules:
///  - `//` starts a line comment; `/* ... */` a block comment.
///  - Strings use double quotes with `\"`, `\\`, `\n`, `\t` escapes.
///  - Identifiers: `[A-Za-z_][A-Za-z0-9_]*`; keywords are not distinguished
///    at the lexical level (the parser resolves them contextually, which is
///    what lets `state`, `cluster`, etc. still be used as variable names).
///  - Numbers: decimal integers and floats (`10`, `1.5`, `1e6`).
class Lexer {
 public:
  explicit Lexer(std::string input);

  /// Lexes the whole input. On success the final token is always kEof.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  Result<Token> LexString();
  Result<Token> LexNumber();
  Token LexIdentifier();

  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }
  void SkipWhitespaceAndComments(Status* status);
  SourceLoc Here() const { return SourceLoc{line_, col_}; }
  Status ErrorHere(const std::string& msg) const;

  std::string input_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// Convenience wrapper: lex `input` into tokens.
Result<std::vector<Token>> TokenizeSaql(const std::string& input);

}  // namespace saql

#endif  // SAQL_PARSER_LEXER_H_
