#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

namespace saql {

Lexer::Lexer(std::string input) : input_(std::move(input)) {}

char Lexer::Peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  return p < input_.size() ? input_[p] : '\0';
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

Status Lexer::ErrorHere(const std::string& msg) const {
  return Status::ParseError(Here().ToString() + ": " + msg);
}

void Lexer::SkipWhitespaceAndComments(Status* status) {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      SourceLoc start = Here();
      Advance();
      Advance();
      bool closed = false;
      while (!AtEnd()) {
        if (Peek() == '*' && Peek(1) == '/') {
          Advance();
          Advance();
          closed = true;
          break;
        }
        Advance();
      }
      if (!closed) {
        *status = Status::ParseError(start.ToString() +
                                     ": unterminated block comment");
        return;
      }
    } else {
      return;
    }
  }
}

Result<Token> Lexer::LexString() {
  SourceLoc loc = Here();
  Advance();  // opening quote
  std::string out;
  while (!AtEnd() && Peek() != '"') {
    char c = Advance();
    if (c == '\\' && !AtEnd()) {
      char esc = Advance();
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case '\\':
          out += '\\';
          break;
        case '"':
          out += '"';
          break;
        default:
          out += esc;
      }
    } else {
      out += c;
    }
  }
  if (AtEnd()) {
    return Status::ParseError(loc.ToString() + ": unterminated string");
  }
  Advance();  // closing quote
  Token t;
  t.kind = TokenKind::kString;
  t.text = std::move(out);
  t.loc = loc;
  return t;
}

Result<Token> Lexer::LexNumber() {
  SourceLoc loc = Here();
  std::string digits;
  bool is_float = false;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
    digits += Advance();
  }
  if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
    is_float = true;
    digits += Advance();
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
  }
  if ((Peek() == 'e' || Peek() == 'E') &&
      (std::isdigit(static_cast<unsigned char>(Peek(1))) ||
       ((Peek(1) == '+' || Peek(1) == '-') &&
        std::isdigit(static_cast<unsigned char>(Peek(2)))))) {
    is_float = true;
    digits += Advance();
    if (Peek() == '+' || Peek() == '-') digits += Advance();
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
  }
  Token t;
  t.loc = loc;
  t.text = digits;
  if (is_float) {
    t.kind = TokenKind::kFloat;
    t.float_value = std::strtod(digits.c_str(), nullptr);
  } else {
    t.kind = TokenKind::kInteger;
    t.int_value = std::strtoll(digits.c_str(), nullptr, 10);
    t.float_value = static_cast<double>(t.int_value);
  }
  return t;
}

Token Lexer::LexIdentifier() {
  SourceLoc loc = Here();
  std::string text;
  while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_')) {
    text += Advance();
  }
  Token t;
  t.kind = TokenKind::kIdentifier;
  t.text = std::move(text);
  t.loc = loc;
  return t;
}

Result<Token> Lexer::Next() {
  Status status;
  SkipWhitespaceAndComments(&status);
  if (!status.ok()) return status;
  SourceLoc loc = Here();
  if (AtEnd()) {
    Token t;
    t.kind = TokenKind::kEof;
    t.loc = loc;
    return t;
  }
  char c = Peek();
  if (c == '"') return LexString();
  if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return LexIdentifier();
  }

  auto simple = [&](TokenKind kind, int len) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    for (int i = 0; i < len; ++i) Advance();
    return t;
  };

  switch (c) {
    case '(':
      return simple(TokenKind::kLParen, 1);
    case ')':
      return simple(TokenKind::kRParen, 1);
    case '[':
      return simple(TokenKind::kLBracket, 1);
    case ']':
      return simple(TokenKind::kRBracket, 1);
    case '{':
      return simple(TokenKind::kLBrace, 1);
    case '}':
      return simple(TokenKind::kRBrace, 1);
    case ',':
      return simple(TokenKind::kComma, 1);
    case '.':
      return simple(TokenKind::kDot, 1);
    case '#':
      return simple(TokenKind::kHash, 1);
    case '+':
      return simple(TokenKind::kPlus, 1);
    case '*':
      return simple(TokenKind::kStar, 1);
    case '/':
      return simple(TokenKind::kSlash, 1);
    case '%':
      return simple(TokenKind::kPercent, 1);
    case '|':
      return Peek(1) == '|' ? simple(TokenKind::kOrOr, 2)
                            : simple(TokenKind::kPipe, 1);
    case '&':
      if (Peek(1) == '&') return simple(TokenKind::kAndAnd, 2);
      return ErrorHere("unexpected '&' (did you mean '&&'?)");
    case '-':
      return Peek(1) == '>' ? simple(TokenKind::kArrow, 2)
                            : simple(TokenKind::kMinus, 1);
    case ':':
      if (Peek(1) == '=') return simple(TokenKind::kColonAssign, 2);
      return ErrorHere("unexpected ':' (did you mean ':='?)");
    case '=':
      return Peek(1) == '=' ? simple(TokenKind::kEq, 2)
                            : simple(TokenKind::kAssign, 1);
    case '!':
      return Peek(1) == '=' ? simple(TokenKind::kNe, 2)
                            : simple(TokenKind::kBang, 1);
    case '<':
      return Peek(1) == '=' ? simple(TokenKind::kLe, 2)
                            : simple(TokenKind::kLt, 1);
    case '>':
      return Peek(1) == '=' ? simple(TokenKind::kGe, 2)
                            : simple(TokenKind::kGt, 1);
    default:
      return ErrorHere(std::string("unexpected character '") + c + "'");
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    SAQL_ASSIGN_OR_RETURN(Token t, Next());
    // Next() leaves the cursor one past the token's last character, so the
    // current position is the token's exclusive end.
    t.end = Here();
    bool eof = t.Is(TokenKind::kEof);
    tokens.push_back(std::move(t));
    if (eof) break;
  }
  return tokens;
}

Result<std::vector<Token>> TokenizeSaql(const std::string& input) {
  Lexer lexer(input);
  return lexer.Tokenize();
}

}  // namespace saql
