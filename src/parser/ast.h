#ifndef SAQL_PARSER_AST_H_
#define SAQL_PARSER_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/field_access.h"
#include "core/time_util.h"
#include "core/value.h"
#include "parser/token.h"

namespace saql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Binary operators in SAQL expressions, in increasing binding strength
/// groups: logical, comparison, set algebra, additive, multiplicative.
enum class BinOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,
  kUnion,
  kDiff,
  kIntersect,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

/// Unary operators: `!x`, `-x`, and the `|x|` size/abs form.
enum class UnOp {
  kNot,
  kNeg,
  kSize,
};

const char* BinOpName(BinOp op);
const char* UnOpName(UnOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// How a kRef node was resolved by the analyzer. Evaluation contexts switch
/// on this to reach the referenced slot directly — matched event + FieldId,
/// state-field index, group-key index — instead of re-running string-keyed
/// symbol-table and attribute lookups for every event.
enum class RefKind : uint8_t {
  kUnresolved = 0,  ///< not analyzed (hand-built AST): resolve by name
  kEntity,          ///< entity variable: pattern index + role + field id
  kEvent,           ///< event alias: pattern index + field id
  kState,           ///< state variable: field index (history on the node)
  kGroupKey,        ///< group-by key: index into the group's key values
  kInvariant,       ///< invariant variable: index into the invariant env
  kCluster,         ///< cluster.* attribute (cold; resolved by name)
};

/// Expression node kinds (closed set; the evaluator switches on this rather
/// than using virtual dispatch so nodes stay simple aggregates).
enum class ExprKind {
  kLiteral,
  kRef,
  kCall,
  kBinary,
  kUnary,
};

/// One expression node. A tagged union in the struct-of-optionals style:
/// only the members for `kind` are meaningful.
class Expr {
 public:
  ExprKind kind;
  SourceLoc loc;
  /// Full source range of the node (binary nodes cover both operands).
  /// `span.begin == loc`; factories seed it from `loc` and the parser
  /// widens composite nodes.
  SourceSpan span;

  // kLiteral
  Value literal;

  // kRef — a possibly-qualified reference:
  //   `p1`            → base="p1"
  //   `p1.exe_name`   → base="p1",   field="exe_name"
  //   `ss[1].avg`     → base="ss",   history=1, field="avg"
  //   `cluster.outlier` → base="cluster", field="outlier"
  std::string base;
  std::optional<int> history;  ///< state history index from `ss[k]`
  std::string field;           ///< empty for a bare reference

  // kRef resolution, filled by the analyzer (see RefKind). `ref_index` is
  // the pattern index (kEntity/kEvent), state-field index (kState),
  // group-key index (kGroupKey), or invariant-variable index (kInvariant).
  RefKind ref_kind = RefKind::kUnresolved;
  FieldId ref_field = FieldId::kInvalid;
  EntityRole ref_role = EntityRole::kSubject;
  int32_t ref_index = -1;

  // kCall — `avg(evt.amount)`, `set(p2.exe_name)`, `all(ss.amt)`, ...
  std::string callee;
  std::vector<ExprPtr> args;

  // kBinary / kUnary
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNot;
  ExprPtr lhs;  ///< also the operand of a unary node
  ExprPtr rhs;

  /// Factory helpers.
  static ExprPtr MakeLiteral(Value v, SourceLoc loc);
  static ExprPtr MakeRef(std::string base, std::optional<int> history,
                         std::string field, SourceLoc loc);
  static ExprPtr MakeCall(std::string callee, std::vector<ExprPtr> args,
                          SourceLoc loc);
  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs,
                            SourceLoc loc);
  static ExprPtr MakeUnary(UnOp op, ExprPtr operand, SourceLoc loc);

  /// Deep copy (used when the scheduler instantiates dependent queries).
  ExprPtr Clone() const;

  /// Unparses back to SAQL-like text for diagnostics and tests.
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

/// Comparison operator inside an attribute constraint.
enum class ConstraintOp {
  kEq,    // = or ==; strings with wildcards use LIKE semantics
  kNe,    // !=
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* ConstraintOpName(ConstraintOp op);

/// One attribute constraint, from `[dstip="XXX.129"]`, `[pid > 100]`, or a
/// global constraint line such as `agentid = server1`.
struct AttrConstraint {
  std::string field;
  ConstraintOp op = ConstraintOp::kEq;
  Value value;
  SourceLoc loc;
  /// Range from the field name through the value token.
  SourceSpan span;

  std::string ToString() const;
};

/// An entity pattern: `proc p1["%cmd.exe"]` or `ip i1[dstip="XXX.129"]`.
/// A bare string constraint applies to the entity's default field with LIKE
/// semantics.
struct EntityPattern {
  EntityType type = EntityType::kProcess;
  std::string var;  ///< empty when anonymous
  std::vector<AttrConstraint> constraints;
  SourceLoc loc;
  /// Range from the type keyword through the closing `]` (or the variable).
  SourceSpan span;

  std::string ToString() const;
};

/// One event pattern declaration:
/// `proc p3 write file f1["%backup1.dmp"] as evt2`.
struct EventPatternDecl {
  EntityPattern subject;
  OpMask ops = 0;
  EntityPattern object;
  std::string alias;  ///< from `as evtN`; auto-generated when omitted
  SourceLoc loc;
  /// Range from the subject's type keyword through the alias (or object).
  SourceSpan span;

  std::string ToString() const;
};

/// Sliding-window specification from `#time(10 min)` / `#count(1000)`.
/// `slide` defaults to the window length (tumbling behaviour), matching the
/// semantics of the paper's queries where `ss[0]`, `ss[1]` are successive
/// windows.
struct WindowSpec {
  enum class Kind { kTime, kCount };

  Kind kind = Kind::kTime;
  Duration length = 0;     ///< for kTime
  Duration slide = 0;      ///< 0 = same as length
  int64_t count = 0;       ///< for kCount
  SourceLoc loc;
  /// Range from `#` through the closing `)`.
  SourceSpan span;

  Duration EffectiveSlide() const { return slide > 0 ? slide : length; }
  std::string ToString() const;
};

/// `with evt1 -> evt2 -> evt3`; `max_gaps[i]` bounds the event-time gap
/// between step i and i+1 (0 = unbounded within the window).
struct TemporalRelation {
  std::vector<std::string> sequence;
  std::vector<Duration> max_gaps;
  SourceLoc loc;

  std::string ToString() const;
};

/// A named aggregation inside a state block: `avg_amount := avg(evt.amount)`.
struct StateField {
  std::string name;
  ExprPtr expr;
  SourceLoc loc;
};

/// One group-by key: an entity variable (default field implied) or a
/// qualified field such as `i.dstip`.
struct GroupKey {
  std::string base;
  std::string field;  ///< empty → default field of the referenced entity
  SourceLoc loc;

  std::string ToString() const;
};

/// `state[3] ss { ... } group by p`.
struct StateBlock {
  int history = 1;  ///< number of retained window states (>=1)
  std::string var;  ///< the state variable, usually "ss"
  std::vector<StateField> fields;
  std::vector<GroupKey> group_by;
  SourceLoc loc;
};

/// One statement inside an invariant block. `a := empty_set` (init, uses
/// `:=`) or `a = a union ss.set_proc` (update, uses `=`).
struct InvariantStmt {
  std::string var;
  bool is_init = false;
  ExprPtr expr;
  SourceLoc loc;
};

/// `invariant[10][offline] { ... }`.
struct InvariantBlock {
  int training_windows = 0;
  bool offline = true;  ///< false → online (keeps learning after training)
  std::vector<InvariantStmt> stmts;
  SourceLoc loc;
};

/// `cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000,5)")`.
struct ClusterSpec {
  std::vector<ExprPtr> points;  ///< the expressions inside `all(...)`
  std::string distance = "ed";
  std::string method;           ///< raw method string, parsed by the engine
  SourceLoc loc;
};

/// One item of the `return` clause.
struct ReturnItem {
  ExprPtr expr;
  std::string label;  ///< display label (defaults to the unparsed expr)
  SourceLoc loc;
};

/// A parsed SAQL query: the direct syntax-tree form of the language
/// described in §II-B of the paper. Produced by `Parser`, validated by
/// `Analyzer`, executed by the engine.
struct Query {
  /// Raw query text, retained for diagnostics and the scheduler's signature.
  std::string text;
  /// Optional query name (set by the API, not the language).
  std::string name;

  std::vector<AttrConstraint> global_constraints;
  std::vector<EventPatternDecl> patterns;
  std::optional<WindowSpec> window;
  std::optional<TemporalRelation> temporal;
  std::optional<StateBlock> state;
  std::optional<InvariantBlock> invariant;
  std::optional<ClusterSpec> cluster;
  ExprPtr alert;  ///< null → rule queries alert on every full match
  bool return_distinct = false;
  std::vector<ReturnItem> returns;

  Query() = default;
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;
  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  /// True when the query has a state block (time-series / invariant /
  /// outlier models); false for pure rule-based queries.
  bool IsStateful() const { return state.has_value(); }
};

using QueryPtr = std::shared_ptr<const Query>;

}  // namespace saql

#endif  // SAQL_PARSER_AST_H_
