#include "parser/token.h"

#include "core/string_util.h"

namespace saql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kHash:
      return "'#'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kOrOr:
      return "'||'";
    case TokenKind::kAndAnd:
      return "'&&'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kColonAssign:
      return "':='";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kBang:
      return "'!'";
  }
  return "?";
}

std::string SourceSpan::ToString() const {
  if (end.line == begin.line && end.col > begin.col) {
    return begin.ToString() + "-" + std::to_string(end.col);
  }
  if (end.line > begin.line) {
    return begin.ToString() + "-" + end.ToString();
  }
  return begin.ToString();
}

bool Token::IsIdent(const std::string& spelling) const {
  return kind == TokenKind::kIdentifier && ToLower(text) == ToLower(spelling);
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return text;
    case TokenKind::kString:
      return "\"" + text + "\"";
    case TokenKind::kInteger:
      return std::to_string(int_value);
    case TokenKind::kFloat:
      return std::to_string(float_value);
    default:
      return TokenKindName(kind);
  }
}

}  // namespace saql
