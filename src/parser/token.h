#ifndef SAQL_PARSER_TOKEN_H_
#define SAQL_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace saql {

/// Lexical token kinds of the SAQL language.
enum class TokenKind {
  kEof,
  kIdentifier,  // proc, p1, avg, agentid — keywords resolved by the parser
  kInteger,     // 10, 1000000
  kFloat,       // 1.5
  kString,      // "%cmd.exe"
  // Punctuation / operators.
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLBrace,      // {
  kRBrace,      // }
  kComma,       // ,
  kDot,         // .
  kHash,        // #
  kPipe,        // |
  kOrOr,        // ||
  kAndAnd,      // &&
  kArrow,       // ->
  kAssign,      // =
  kColonAssign, // :=
  kEq,          // ==
  kNe,          // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kBang,        // !
};

/// Printable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

/// Position of a token in the query text (1-based), carried through to
/// parse/semantic error messages the way ANTLR reports them.
struct SourceLoc {
  int line = 1;
  int col = 1;

  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

/// One lexical token. `text` holds the identifier spelling or the unescaped
/// string contents; numeric values are pre-parsed into `int_value` /
/// `float_value`.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  SourceLoc loc;

  bool Is(TokenKind k) const { return kind == k; }
  /// True for an identifier with the given spelling (case-insensitive, as
  /// SAQL keywords are).
  bool IsIdent(const std::string& spelling) const;

  std::string ToString() const;
};

}  // namespace saql

#endif  // SAQL_PARSER_TOKEN_H_
