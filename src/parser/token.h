#ifndef SAQL_PARSER_TOKEN_H_
#define SAQL_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace saql {

/// Lexical token kinds of the SAQL language.
enum class TokenKind {
  kEof,
  kIdentifier,  // proc, p1, avg, agentid — keywords resolved by the parser
  kInteger,     // 10, 1000000
  kFloat,       // 1.5
  kString,      // "%cmd.exe"
  // Punctuation / operators.
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLBrace,      // {
  kRBrace,      // }
  kComma,       // ,
  kDot,         // .
  kHash,        // #
  kPipe,        // |
  kOrOr,        // ||
  kAndAnd,      // &&
  kArrow,       // ->
  kAssign,      // =
  kColonAssign, // :=
  kEq,          // ==
  kNe,          // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kBang,        // !
};

/// Printable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

/// Position of a token in the query text (1-based), carried through to
/// parse/semantic error messages the way ANTLR reports them.
struct SourceLoc {
  int line = 1;
  int col = 1;

  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

/// Half-open source range `[begin, end)` covering one token or one syntax
/// node. Parse trees carry spans so post-parse passes (analyzer, lint) can
/// point diagnostics at the offending text rather than just its first
/// character.
struct SourceSpan {
  SourceLoc begin;
  SourceLoc end;

  bool IsZero() const { return begin.line == 1 && begin.col == 1 &&
                               end.line == 1 && end.col == 1; }

  /// Smallest span covering both operands (for composite nodes).
  static SourceSpan Cover(const SourceSpan& a, const SourceSpan& b) {
    SourceSpan s = a;
    if (b.begin.line < s.begin.line ||
        (b.begin.line == s.begin.line && b.begin.col < s.begin.col)) {
      s.begin = b.begin;
    }
    if (b.end.line > s.end.line ||
        (b.end.line == s.end.line && b.end.col > s.end.col)) {
      s.end = b.end;
    }
    return s;
  }

  /// Renders "line:col-line:col", collapsing the end when it adds nothing
  /// ("3:5-3:12" on one line, "3:5" when the span is empty).
  std::string ToString() const;
};

/// One lexical token. `text` holds the identifier spelling or the unescaped
/// string contents; numeric values are pre-parsed into `int_value` /
/// `float_value`.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  SourceLoc loc;
  /// One past the token's last character (same line unless the token holds
  /// an embedded newline). Stamped by the lexer driver loop.
  SourceLoc end;

  bool Is(TokenKind k) const { return kind == k; }
  /// True for an identifier with the given spelling (case-insensitive, as
  /// SAQL keywords are).
  bool IsIdent(const std::string& spelling) const;

  SourceSpan span() const { return SourceSpan{loc, end}; }

  std::string ToString() const;
};

}  // namespace saql

#endif  // SAQL_PARSER_TOKEN_H_
