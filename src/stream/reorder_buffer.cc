#include "stream/reorder_buffer.h"

#include <algorithm>

namespace saql {

ReorderBuffer::ReorderBuffer(Duration max_delay)
    : max_delay_(max_delay < 0 ? 0 : max_delay) {}

void ReorderBuffer::Push(const Event& event, EventBatch* out) {
  if (max_ts_seen_ != INT64_MIN &&
      event.ts < max_ts_seen_ - max_delay_) {
    // Beyond the reordering horizon: emit immediately rather than breaking
    // the order of already-released events further.
    ++late_count_;
    out->push_back(event);
    return;
  }
  if (event.ts > max_ts_seen_) max_ts_seen_ = event.ts;
  pending_.emplace(event.ts, event);
  ++buffered_;
  Timestamp horizon = max_ts_seen_ - max_delay_;
  while (!pending_.empty() && pending_.begin()->first <= horizon) {
    out->push_back(std::move(pending_.begin()->second));
    pending_.erase(pending_.begin());
    --buffered_;
  }
}

void ReorderBuffer::Flush(EventBatch* out) {
  for (auto& [ts, e] : pending_) {
    out->push_back(std::move(e));
  }
  pending_.clear();
  buffered_ = 0;
}

ReorderingEventSource::ReorderingEventSource(EventSource* inner,
                                             Duration max_delay)
    : inner_(inner), buffer_(max_delay) {}

bool ReorderingEventSource::RefillStaged(size_t max_events) {
  while (staged_pos_ >= staged_.size()) {
    staged_.clear();
    staged_pos_ = 0;
    if (inner_done_) return false;
    if (!inner_->NextBatch(max_events, &scratch_)) {
      inner_done_ = true;
      buffer_.Flush(&staged_);
      continue;
    }
    for (const Event& e : scratch_) {
      buffer_.Push(e, &staged_);
    }
  }
  return true;
}

EventBlock* ReorderingEventSource::NextBlock(size_t max_events) {
  if (!RefillStaged(max_events)) return nullptr;
  size_t n = std::min(max_events, staged_.size() - staged_pos_);
  block_.ResetBorrowedRows(staged_.data() + staged_pos_, n);
  staged_pos_ += n;
  return &block_;
}

}  // namespace saql
