#ifndef SAQL_STREAM_STREAM_EXECUTOR_H_
#define SAQL_STREAM_STREAM_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/event.h"
#include "core/time_util.h"
#include "stream/event_source.h"

namespace saql {

/// References to events of one pulled batch, in stream order; the unit of
/// batched delivery (`EventProcessor::OnBatch`).
using EventRefs = std::vector<const Event*>;

/// The structural envelope of events a processor can possibly act on: one
/// operation mask per object entity type. The executor's dispatch index
/// routes each event only to processors whose envelope covers the event's
/// (object type, operation) pair; everything else is skipped wholesale.
struct RoutingInterest {
  /// Deliver every event regardless of shape (default for processors that
  /// do not declare an envelope).
  bool all = true;
  /// Operation mask per `EntityType` (indexed by its numeric value); only
  /// consulted when `all` is false.
  OpMask ops_by_type[3] = {0, 0, 0};

  /// Narrows the interest to declared shapes and adds one combination.
  void Add(EntityType type, OpMask ops) {
    all = false;
    ops_by_type[static_cast<size_t>(type)] |= ops;
  }

  bool Wants(EntityType type, EventOp op) const {
    return all ||
           OpMaskContains(ops_by_type[static_cast<size_t>(type)], op);
  }
};

/// Consumer interface over the event stream. Compiled queries (and query
/// groups under the master-dependent scheme) implement this.
class EventProcessor {
 public:
  virtual ~EventProcessor() = default;

  /// Called once per stream event, in timestamp order.
  virtual void OnEvent(const Event& event) = 0;

  /// Batch-level entry point: the events of one pulled batch routed to this
  /// processor, in stream order. The executor calls this once per batch per
  /// processor — one virtual dispatch amortized over the whole batch — and
  /// the default implementation degrades to per-event `OnEvent`.
  virtual void OnBatch(const EventRefs& events) {
    for (const Event* e : events) OnEvent(*e);
  }

  /// Event time has advanced to `ts`; windows ending at or before `ts` can
  /// be finalized. Called after a batch whose events moved the watermark.
  virtual void OnWatermark(Timestamp ts) = 0;

  /// The stream ended; flush remaining state (open windows, partial
  /// matches).
  virtual void OnFinish() = 0;

  /// The structural envelope this processor wants. Declared once, read by
  /// the executor when `Run` builds its dispatch index. Default: all
  /// events.
  virtual RoutingInterest Interest() const { return RoutingInterest{}; }

  /// `count` events of the current batch were withheld by the dispatch
  /// index because they fall outside `Interest()`. Lets processors keep
  /// their ingress accounting identical to broadcast delivery.
  virtual void OnRoutedSkip(uint64_t count) { (void)count; }
};

/// Execution statistics, the accounting behind the concurrent-query
/// benchmarks (paper §II-C: the master-dependent-query scheme reduces
/// per-query data copies).
struct ExecutorStats {
  /// Events pulled from the source.
  uint64_t events = 0;
  /// Event deliveries = sum over events of subscribers it was handed to.
  /// With N independent queries this is N * events; with grouped queries it
  /// is (#groups) * events; with routing enabled, only eligible groups
  /// count.
  uint64_t deliveries = 0;
  /// Batches pulled.
  uint64_t batches = 0;
  /// Deliveries avoided by the dispatch index (event shape outside the
  /// subscriber's interest). deliveries + routed_skips equals what a
  /// broadcast executor would have delivered.
  uint64_t routed_skips = 0;
  /// Watermarks emitted (suppressed when the watermark did not advance).
  uint64_t watermarks = 0;
};

/// Single-threaded push loop: pulls batches from a source and delivers each
/// event to the subscribed processors, followed by a watermark at the batch
/// boundary. (The paper's deployment parallelizes across hosts before the
/// central feed; the engine itself observes one totally-ordered feed, which
/// this models.)
///
/// Delivery is routed, not broadcast: at `Run` start the executor indexes
/// subscribers by the (object type, operation) combinations they declare
/// via `Interest()`, and each event is pushed only to the eligible
/// subscribers — the op/entity dispatch index that makes the shared pass
/// scale with the number of *matching* queries instead of all of them.
/// Batches are interned (`core/interner.h`) before dispatch so equality
/// predicates downstream compare symbol ids.
class StreamExecutor {
 public:
  struct Options {
    /// Route events through the dispatch index; disabled = broadcast to
    /// every subscriber (the ablation baseline).
    bool enable_routing = true;
    /// Intern hot event strings before dispatch.
    bool intern_strings = true;
  };

  StreamExecutor() = default;
  explicit StreamExecutor(Options options) : options_(options) {}

  /// Registers a processor. Subscribers must outlive `Run` (or, for
  /// step-wise drives, stay subscribed until `FinishStream` or an
  /// `Unsubscribe`). May be called mid-stream between batches: the
  /// dispatch index is rebuilt before the next `ProcessBatch`, so a
  /// subscriber added at time T sees only events pushed after T (the
  /// session API's attach-point semantics).
  void Subscribe(EventProcessor* processor);

  /// Removes one processor; it receives no further events, watermarks, or
  /// finish calls. Mid-stream removal is legal between batches only (the
  /// executor is single-threaded; external drivers serialize with
  /// ProcessBatch themselves). No-op when the processor is not subscribed.
  void Unsubscribe(EventProcessor* processor);

  /// Removes all subscribers and resets statistics.
  void Reset();

  /// Pulls `source` to exhaustion, delivering to eligible subscribers, then
  /// calls OnFinish on each. Equivalent to BeginStream + one ProcessBatch /
  /// AdvanceWatermark pair per pulled batch + FinishStream.
  void Run(EventSource* source, size_t batch_size = 1024);

  // Step-wise driving interface. `Run` is built from these; a sharded
  // executor drives each per-shard instance directly so that watermarks can
  // come from the *global* input stream (which every shard substream is a
  // subsequence of) instead of the shard's own events.

  /// Builds the dispatch index and resets per-run watermark state. Call
  /// once after all Subscribe calls, before the first ProcessBatch.
  void BeginStream();

  /// Interns and delivers one batch to eligible subscribers. Does not emit
  /// a watermark; the max event time seen so far is tracked internally.
  void ProcessBatch(Event* batch, size_t count);

  /// Block-native delivery: materializes the block's rows (a no-op for
  /// row-backed blocks; columnar blocks arrive with `Event::syms`
  /// pre-stamped from their dictionary, so the interning pass reduces to
  /// a generation check) and delivers them. Empty blocks are ignored.
  void ProcessBlock(EventBlock* block);

  /// Emits `ts` to all subscribers if it advances the emitted watermark;
  /// returns whether it did. `Run` passes the max event time seen;
  /// external drivers may pass any value ≥ it (closing the same windows
  /// earlier, never different ones).
  bool AdvanceWatermark(Timestamp ts);

  /// Calls OnFinish on all subscribers (end of stream).
  void FinishStream();

  /// Max event timestamp seen since BeginStream (INT64_MIN before any).
  Timestamp max_event_ts() const { return max_event_ts_; }

  /// Last watermark delivered to subscribers (INT64_MIN before any).
  Timestamp emitted_watermark() const { return emitted_watermark_; }

  size_t num_subscribers() const { return processors_.size(); }

  const ExecutorStats& stats() const { return stats_; }

 private:
  /// Builds table_[type][op] → subscriber indices from the subscribers'
  /// declared interests, and sizes the per-subscriber routing scratch.
  void BuildRoutingTable();

  Options options_;
  std::vector<EventProcessor*> processors_;
  std::vector<uint32_t> table_[3][kNumEventOps];
  /// Per-subscriber slice of the current batch, reused across batches.
  std::vector<EventRefs> routed_;
  /// Subscriber set changed since the dispatch index was last built
  /// (mid-stream Subscribe/Unsubscribe); rebuilt lazily by ProcessBatch.
  bool routing_dirty_ = true;
  Timestamp max_event_ts_ = INT64_MIN;
  Timestamp emitted_watermark_ = INT64_MIN;
  ExecutorStats stats_;
};

}  // namespace saql

#endif  // SAQL_STREAM_STREAM_EXECUTOR_H_
