#ifndef SAQL_STREAM_STREAM_EXECUTOR_H_
#define SAQL_STREAM_STREAM_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/event.h"
#include "core/time_util.h"
#include "stream/event_source.h"

namespace saql {

/// Consumer interface over the event stream. Compiled queries (and query
/// groups under the master-dependent scheme) implement this.
class EventProcessor {
 public:
  virtual ~EventProcessor() = default;

  /// Called once per stream event, in timestamp order.
  virtual void OnEvent(const Event& event) = 0;

  /// Event time has advanced to `ts`; windows ending at or before `ts` can
  /// be finalized. Called after each batch.
  virtual void OnWatermark(Timestamp ts) = 0;

  /// The stream ended; flush remaining state (open windows, partial
  /// matches).
  virtual void OnFinish() = 0;
};

/// Execution statistics, the accounting behind the concurrent-query
/// benchmarks (paper §II-C: the master-dependent-query scheme reduces
/// per-query data copies).
struct ExecutorStats {
  /// Events pulled from the source.
  uint64_t events = 0;
  /// Event deliveries = sum over events of subscribers it was handed to.
  /// With N independent queries this is N * events; with grouped queries it
  /// is (#groups) * events.
  uint64_t deliveries = 0;
  /// Batches pulled.
  uint64_t batches = 0;
};

/// Single-threaded push loop: pulls batches from a source and delivers each
/// event to every subscribed processor, followed by a watermark at the
/// batch boundary. (The paper's deployment parallelizes across hosts before
/// the central feed; the engine itself observes one totally-ordered feed,
/// which this models.)
class StreamExecutor {
 public:
  StreamExecutor() = default;

  /// Registers a processor. Subscribers must outlive `Run`.
  void Subscribe(EventProcessor* processor);

  /// Removes all subscribers and resets statistics.
  void Reset();

  /// Pulls `source` to exhaustion, delivering to all subscribers, then
  /// calls OnFinish on each.
  void Run(EventSource* source, size_t batch_size = 1024);

  const ExecutorStats& stats() const { return stats_; }

 private:
  std::vector<EventProcessor*> processors_;
  ExecutorStats stats_;
};

}  // namespace saql

#endif  // SAQL_STREAM_STREAM_EXECUTOR_H_
