#ifndef SAQL_STREAM_WINDOW_H_
#define SAQL_STREAM_WINDOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/time_util.h"
#include "parser/ast.h"

namespace saql {

/// One concrete time window instance `[start, end)`.
struct TimeWindow {
  Timestamp start = 0;
  Timestamp end = 0;

  bool Contains(Timestamp ts) const { return ts >= start && ts < end; }
  bool operator==(const TimeWindow&) const = default;

  std::string ToString() const;
};

/// Maps event timestamps to the sliding windows they belong to, following
/// the SAQL `#time(length[, slide])` semantics:
///
///  - slide == length (the default) gives tumbling windows, which is what
///    the paper's queries use — `ss[0]`, `ss[1]`, `ss[2]` are successive
///    10-minute windows;
///  - slide < length gives overlapping (hopping) windows, in which case an
///    event belongs to ceil(length/slide) windows.
///
/// Window starts are aligned to multiples of the slide from epoch so that
/// all queries with the same spec agree on boundaries (this alignment is
/// what makes master/dependent queries shareable).
class WindowAssigner {
 public:
  /// `spec` must be a time window (count windows are handled by the state
  /// maintainer's match counter, not by time assignment).
  explicit WindowAssigner(const WindowSpec& spec);

  /// All windows containing `ts`, earliest first.
  std::vector<TimeWindow> Assign(Timestamp ts) const;

  /// The single window starting at or before `ts` whose slide-slot contains
  /// it (the newest window containing ts).
  TimeWindow NewestFor(Timestamp ts) const;

  /// True when every window ending at or before `watermark` can be closed.
  bool CanClose(const TimeWindow& w, Timestamp watermark) const {
    return w.end <= watermark;
  }

  Duration length() const { return length_; }
  Duration slide() const { return slide_; }

 private:
  Duration length_;
  Duration slide_;
};

}  // namespace saql

#endif  // SAQL_STREAM_WINDOW_H_
