#include "stream/event_source.h"

#include <algorithm>

namespace saql {

bool EventSource::NextBatch(size_t max_events, EventBatch* batch) {
  batch->clear();
  EventBlock* block;
  // Tolerate sources that (out of contract) report progress with an empty
  // block; an empty block must not read as end-of-stream.
  do {
    block = NextBlock(max_events);
    if (block == nullptr) return false;
  } while (block->empty());
  const Event* rows = block->MutableRows();
  batch->assign(rows, rows + block->size());
  return true;
}

Event* EventSource::NextBatchZeroCopy(size_t max_events, size_t* count) {
  EventBlock* block;
  do {
    block = NextBlock(max_events);
    if (block == nullptr) return nullptr;
  } while (block->empty());
  *count = block->size();
  return block->MutableRows();
}

VectorEventSource::VectorEventSource(EventBatch events)
    : events_(std::move(events)) {}

EventBlock* VectorEventSource::NextBlock(size_t max_events) {
  if (pos_ >= events_.size()) return nullptr;
  size_t n = std::min(max_events, events_.size() - pos_);
  block_.ResetBorrowedRows(events_.data() + pos_, n);
  pos_ += n;
  return &block_;
}

CallbackEventSource::CallbackEventSource(Generator gen)
    : gen_(std::move(gen)) {}

EventBlock* CallbackEventSource::NextBlock(size_t max_events) {
  if (done_) return nullptr;
  EventBatch& rows = block_.ResetOwnedRows();
  for (size_t i = 0; i < max_events; ++i) {
    Event e;
    if (!gen_(&e)) {
      done_ = true;
      break;
    }
    rows.push_back(std::move(e));
  }
  return rows.empty() ? nullptr : &block_;
}

MergingEventSource::MergingEventSource(
    std::vector<std::unique_ptr<EventSource>> inputs) {
  cursors_.reserve(inputs.size());
  for (auto& in : inputs) {
    Cursor c;
    c.source = std::move(in);
    cursors_.push_back(std::move(c));
  }
}

void MergingEventSource::Refill(size_t i, size_t budget) {
  Cursor& c = cursors_[i];
  if (c.pos < c.buffer.size() || c.exhausted) return;
  c.buffer.clear();
  c.pos = 0;
  if (!c.source->NextBatch(std::max<size_t>(budget, 1), &c.buffer)) {
    c.exhausted = true;
  }
}

EventBlock* MergingEventSource::NextBlock(size_t max_events) {
  EventBatch& rows = block_.ResetOwnedRows();
  while (rows.size() < max_events) {
    // Pick the cursor with the smallest current timestamp. The fan-in here
    // (one agent feed per host) is small, so a linear scan beats a heap.
    size_t best = cursors_.size();
    Timestamp best_ts = 0;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      Refill(i, max_events);
      Cursor& c = cursors_[i];
      if (c.exhausted || c.pos >= c.buffer.size()) continue;
      Timestamp ts = c.buffer[c.pos].ts;
      if (best == cursors_.size() || ts < best_ts) {
        best = i;
        best_ts = ts;
      }
    }
    if (best == cursors_.size()) break;  // all exhausted
    rows.push_back(cursors_[best].buffer[cursors_[best].pos]);
    ++cursors_[best].pos;
  }
  return rows.empty() ? nullptr : &block_;
}

}  // namespace saql
