#include "stream/event_source.h"

#include <algorithm>

namespace saql {

VectorEventSource::VectorEventSource(EventBatch events)
    : events_(std::move(events)) {}

bool VectorEventSource::NextBatch(size_t max_events, EventBatch* batch) {
  batch->clear();
  if (pos_ >= events_.size()) return false;
  size_t n = std::min(max_events, events_.size() - pos_);
  batch->insert(batch->end(), events_.begin() + static_cast<long>(pos_),
                events_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return true;
}

Event* VectorEventSource::NextBatchZeroCopy(size_t max_events,
                                            size_t* count) {
  if (pos_ >= events_.size()) return nullptr;
  size_t n = std::min(max_events, events_.size() - pos_);
  Event* begin = events_.data() + pos_;
  pos_ += n;
  *count = n;
  return begin;
}

CallbackEventSource::CallbackEventSource(Generator gen)
    : gen_(std::move(gen)) {}

bool CallbackEventSource::NextBatch(size_t max_events, EventBatch* batch) {
  batch->clear();
  if (done_) return false;
  for (size_t i = 0; i < max_events; ++i) {
    Event e;
    if (!gen_(&e)) {
      done_ = true;
      break;
    }
    batch->push_back(std::move(e));
  }
  return !batch->empty();
}

MergingEventSource::MergingEventSource(
    std::vector<std::unique_ptr<EventSource>> inputs) {
  cursors_.reserve(inputs.size());
  for (auto& in : inputs) {
    Cursor c;
    c.source = std::move(in);
    cursors_.push_back(std::move(c));
  }
  for (size_t i = 0; i < cursors_.size(); ++i) Refill(i);
}

void MergingEventSource::Refill(size_t i) {
  Cursor& c = cursors_[i];
  if (c.pos < c.buffer.size() || c.exhausted) return;
  c.buffer.clear();
  c.pos = 0;
  if (!c.source->NextBatch(4096, &c.buffer)) {
    c.exhausted = true;
  }
}

bool MergingEventSource::NextBatch(size_t max_events, EventBatch* batch) {
  batch->clear();
  while (batch->size() < max_events) {
    // Pick the cursor with the smallest current timestamp. The fan-in here
    // (one agent feed per host) is small, so a linear scan beats a heap.
    size_t best = cursors_.size();
    Timestamp best_ts = 0;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      Refill(i);
      Cursor& c = cursors_[i];
      if (c.exhausted || c.pos >= c.buffer.size()) continue;
      Timestamp ts = c.buffer[c.pos].ts;
      if (best == cursors_.size() || ts < best_ts) {
        best = i;
        best_ts = ts;
      }
    }
    if (best == cursors_.size()) break;  // all exhausted
    batch->push_back(cursors_[best].buffer[cursors_[best].pos]);
    ++cursors_[best].pos;
  }
  return !batch->empty();
}

}  // namespace saql
