#ifndef SAQL_STREAM_REORDER_BUFFER_H_
#define SAQL_STREAM_REORDER_BUFFER_H_

#include <map>
#include <vector>

#include "core/event.h"
#include "core/time_util.h"
#include "stream/event_source.h"

namespace saql {

/// Repairs bounded event-time disorder in a stream. Per-host agent feeds
/// are ordered, but network delivery to the central server can interleave
/// slightly stale events; the buffer holds events for `max_delay` of event
/// time and releases them in timestamp order.
///
/// An event older than the current watermark minus `max_delay` is released
/// immediately (flagged as late via `late_count`), matching the
/// best-effort semantics a real-time detector needs — dropping data would
/// hide attacks.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(Duration max_delay);

  /// Inserts `event` and appends any events that are now safe to release
  /// (older than max event time seen minus max_delay) to `out` in order.
  void Push(const Event& event, EventBatch* out);

  /// Releases everything left, in order.
  void Flush(EventBatch* out);

  /// Events that arrived older than the reordering horizon.
  size_t late_count() const { return late_count_; }

  /// Events currently buffered.
  size_t buffered() const { return buffered_; }

 private:
  Duration max_delay_;
  Timestamp max_ts_seen_ = INT64_MIN;
  std::multimap<Timestamp, Event> pending_;
  size_t late_count_ = 0;
  size_t buffered_ = 0;
};

/// EventSource adapter that repairs bounded disorder of an inner source
/// before it reaches the engine: place between a network-delivered agent
/// feed and `SaqlEngine::Run` when event order is not guaranteed.
class ReorderingEventSource : public EventSource {
 public:
  /// `inner` is not owned and must outlive this source.
  ReorderingEventSource(EventSource* inner, Duration max_delay);

  /// Drains the staging buffer in place: released events are handed out as
  /// block-wrapped slices of the internal `staged_` vector — no per-event
  /// copies on the way to the executor (the buffer repair itself still
  /// copies once from the inner source into the reorder buffer, which is
  /// inherent). The returned block stays valid until the next pull:
  /// `staged_` is only refilled once fully drained.
  EventBlock* NextBlock(size_t max_events) override;

  size_t late_count() const { return buffer_.late_count(); }

 private:
  /// Refills `staged_` from the inner source until it holds releasable
  /// events or the stream (incl. the final flush) is exhausted. Returns
  /// false when nothing is left.
  bool RefillStaged(size_t max_events);

  EventSource* inner_;
  ReorderBuffer buffer_;
  EventBatch staged_;   ///< released events not yet handed out
  size_t staged_pos_ = 0;
  EventBatch scratch_;  ///< raw batch pulled from the inner source
  bool inner_done_ = false;
  EventBlock block_;
};

}  // namespace saql

#endif  // SAQL_STREAM_REORDER_BUFFER_H_
