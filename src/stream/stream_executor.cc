#include "stream/stream_executor.h"

#include "core/interner.h"

namespace saql {

void StreamExecutor::Subscribe(EventProcessor* processor) {
  processors_.push_back(processor);
}

void StreamExecutor::Reset() {
  processors_.clear();
  stats_ = ExecutorStats{};
}

void StreamExecutor::BuildRoutingTable() {
  for (auto& by_op : table_) {
    for (auto& bucket : by_op) bucket.clear();
  }
  for (size_t i = 0; i < processors_.size(); ++i) {
    RoutingInterest interest = processors_[i]->Interest();
    for (size_t type = 0; type < 3; ++type) {
      for (int op = 0; op < kNumEventOps; ++op) {
        if (interest.Wants(static_cast<EntityType>(type),
                           static_cast<EventOp>(op))) {
          table_[type][op].push_back(static_cast<uint32_t>(i));
        }
      }
    }
  }
}

void StreamExecutor::Run(EventSource* source, size_t batch_size) {
  if (options_.enable_routing) BuildRoutingTable();
  const size_t n = processors_.size();
  // Per-subscriber slice of the current batch, reused across batches.
  std::vector<EventRefs> routed(n);
  Timestamp watermark = INT64_MIN;
  Timestamp emitted_watermark = INT64_MIN;
  size_t count = 0;
  while (Event* batch = source->NextBatchZeroCopy(batch_size, &count)) {
    ++stats_.batches;
    if (options_.intern_strings) InternEventSpan(batch, count);
    for (EventRefs& r : routed) r.clear();
    for (size_t k = 0; k < count; ++k) {
      const Event& e = batch[k];
      ++stats_.events;
      if (e.ts > watermark) watermark = e.ts;
      if (options_.enable_routing) {
        const std::vector<uint32_t>& bucket =
            table_[static_cast<size_t>(e.object_type)]
                  [static_cast<size_t>(e.op)];
        for (uint32_t idx : bucket) routed[idx].push_back(&e);
      } else {
        for (EventRefs& r : routed) r.push_back(&e);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!routed[i].empty()) {
        stats_.deliveries += routed[i].size();
        processors_[i]->OnBatch(routed[i]);
      }
      uint64_t skipped = count - routed[i].size();
      if (skipped > 0) {
        stats_.routed_skips += skipped;
        processors_[i]->OnRoutedSkip(skipped);
      }
    }
    // Emit the watermark only when it advanced; re-broadcasting an
    // unchanged watermark would make every stateful query rescan its open
    // windows for nothing.
    if (watermark != INT64_MIN && watermark > emitted_watermark) {
      emitted_watermark = watermark;
      ++stats_.watermarks;
      for (EventProcessor* p : processors_) {
        p->OnWatermark(watermark);
      }
    }
  }
  for (EventProcessor* p : processors_) {
    p->OnFinish();
  }
}

}  // namespace saql
