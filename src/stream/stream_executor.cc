#include "stream/stream_executor.h"

#include "core/interner.h"

namespace saql {

void StreamExecutor::Subscribe(EventProcessor* processor) {
  processors_.push_back(processor);
  routing_dirty_ = true;
}

void StreamExecutor::Unsubscribe(EventProcessor* processor) {
  for (auto it = processors_.begin(); it != processors_.end(); ++it) {
    if (*it == processor) {
      processors_.erase(it);
      routing_dirty_ = true;
      return;
    }
  }
}

void StreamExecutor::Reset() {
  processors_.clear();
  routed_.clear();
  routing_dirty_ = true;
  max_event_ts_ = INT64_MIN;
  emitted_watermark_ = INT64_MIN;
  stats_ = ExecutorStats{};
}

void StreamExecutor::BuildRoutingTable() {
  for (auto& by_op : table_) {
    for (auto& bucket : by_op) bucket.clear();
  }
  if (options_.enable_routing) {
    for (size_t i = 0; i < processors_.size(); ++i) {
      RoutingInterest interest = processors_[i]->Interest();
      for (size_t type = 0; type < 3; ++type) {
        for (int op = 0; op < kNumEventOps; ++op) {
          if (interest.Wants(static_cast<EntityType>(type),
                             static_cast<EventOp>(op))) {
            table_[type][op].push_back(static_cast<uint32_t>(i));
          }
        }
      }
    }
  }
  routed_.assign(processors_.size(), EventRefs{});
  routing_dirty_ = false;
}

void StreamExecutor::BeginStream() {
  BuildRoutingTable();
  max_event_ts_ = INT64_MIN;
  emitted_watermark_ = INT64_MIN;
}

void StreamExecutor::ProcessBatch(Event* batch, size_t count) {
  if (count == 0) return;
  if (routing_dirty_) BuildRoutingTable();
  const size_t n = processors_.size();
  ++stats_.batches;
  if (options_.intern_strings) InternEventSpan(batch, count);
  for (EventRefs& r : routed_) r.clear();
  for (size_t k = 0; k < count; ++k) {
    const Event& e = batch[k];
    ++stats_.events;
    if (e.ts > max_event_ts_) max_event_ts_ = e.ts;
    if (options_.enable_routing) {
      const std::vector<uint32_t>& bucket =
          table_[static_cast<size_t>(e.object_type)]
                [static_cast<size_t>(e.op)];
      for (uint32_t idx : bucket) routed_[idx].push_back(&e);
    } else {
      for (EventRefs& r : routed_) r.push_back(&e);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!routed_[i].empty()) {
      stats_.deliveries += routed_[i].size();
      processors_[i]->OnBatch(routed_[i]);
    }
    uint64_t skipped = count - routed_[i].size();
    if (skipped > 0) {
      stats_.routed_skips += skipped;
      processors_[i]->OnRoutedSkip(skipped);
    }
  }
}

bool StreamExecutor::AdvanceWatermark(Timestamp ts) {
  // Emit the watermark only when it advanced; re-broadcasting an unchanged
  // watermark would make every stateful query rescan its open windows for
  // nothing.
  if (ts == INT64_MIN || ts <= emitted_watermark_) return false;
  emitted_watermark_ = ts;
  ++stats_.watermarks;
  for (EventProcessor* p : processors_) {
    p->OnWatermark(ts);
  }
  return true;
}

void StreamExecutor::FinishStream() {
  for (EventProcessor* p : processors_) {
    p->OnFinish();
  }
}

void StreamExecutor::ProcessBlock(EventBlock* block) {
  if (block->empty()) return;
  ProcessBatch(block->MutableRows(), block->size());
}

void StreamExecutor::Run(EventSource* source, size_t batch_size) {
  BeginStream();
  while (EventBlock* block = source->NextBlock(batch_size)) {
    if (block->empty()) continue;
    ProcessBlock(block);
    AdvanceWatermark(max_event_ts_);
  }
  FinishStream();
}

}  // namespace saql
