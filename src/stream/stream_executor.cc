#include "stream/stream_executor.h"

namespace saql {

void StreamExecutor::Subscribe(EventProcessor* processor) {
  processors_.push_back(processor);
}

void StreamExecutor::Reset() {
  processors_.clear();
  stats_ = ExecutorStats{};
}

void StreamExecutor::Run(EventSource* source, size_t batch_size) {
  EventBatch batch;
  Timestamp watermark = INT64_MIN;
  while (source->NextBatch(batch_size, &batch)) {
    ++stats_.batches;
    for (const Event& e : batch) {
      ++stats_.events;
      for (EventProcessor* p : processors_) {
        ++stats_.deliveries;
        p->OnEvent(e);
      }
      if (e.ts > watermark) watermark = e.ts;
    }
    if (watermark != INT64_MIN) {
      for (EventProcessor* p : processors_) {
        p->OnWatermark(watermark);
      }
    }
  }
  for (EventProcessor* p : processors_) {
    p->OnFinish();
  }
}

}  // namespace saql
