#ifndef SAQL_STREAM_SHARDED_EXECUTOR_H_
#define SAQL_STREAM_SHARDED_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/event.h"
#include "core/time_util.h"
#include "stream/event_source.h"
#include "stream/stream_executor.h"

namespace saql {

/// Hash-partitioned parallel stream execution: one splitter thread pulls
/// the (totally ordered) input stream, routes each event by its subject
/// entity key to one of N shard lanes, and each lane runs its own
/// `StreamExecutor` — with its own subscriber replicas — on a dedicated
/// thread. An optional *global lane* additionally receives every event in
/// input order, for subscribers whose semantics cannot be partitioned
/// (multi-event joins across entities, count windows, alert cooldowns).
///
/// Watermark rule: every lane (shard and global) is advanced with the
/// watermark of the *input* stream — the max event time the splitter has
/// pulled — after each input batch, not with the lane's own max event time.
/// Each shard substream is a timestamp-ordered subsequence of the input, so
/// the input watermark is always ≥ any lane-local watermark and closes the
/// same windows, just without lag on shards that go quiet. This is also
/// what lets a downstream merge stage align per-shard window closes: when
/// every lane has observed watermark W, every window ending at or before W
/// has closed on every shard.
///
/// The splitter copies events into per-lane batches (the source's zero-copy
/// buffer is only valid until the next pull, which happens while lanes are
/// still draining earlier batches). Within a lane, delivery is the same
/// routed zero-copy path as the single-threaded executor. Interning happens
/// once, on the splitter, before partitioning.
///
/// Alert ordering and cross-shard aggregate merging are the subscriber
/// layer's concern (see `SaqlEngine`'s sharded mode); this class only
/// guarantees per-lane event order, the watermark rule above, and that each
/// event reaches exactly one shard (plus the global lane when present).
class ShardedStreamExecutor {
 public:
  /// Upper bound on lanes: each lane is a real thread; a runaway shard
  /// count must not abort the process on thread exhaustion. Drivers
  /// (engine, CLI) clamp with the same constant so replica wiring and
  /// lane count always agree.
  static constexpr size_t kMaxShards = 256;

  struct Options {
    /// Number of hash partitions (shard lanes); clamped to
    /// [1, kMaxShards].
    size_t num_shards = 2;
    /// Per-lane executor options. `intern_strings` is honored once, on the
    /// splitter; lanes inherit it only as a no-op safety (interned events
    /// are skipped by `InternEventSpan`).
    StreamExecutor::Options executor;
    /// Max queued batches per lane before the splitter blocks
    /// (backpressure, bounds memory when one shard lags).
    size_t queue_capacity = 8;
  };

  /// Maps an event to a shard index in [0, num_shards). The default hashes
  /// the subject entity key (agent id, subject pid) — all events *acted* by
  /// one process land on one shard.
  using Partitioner = std::function<size_t(const Event&, size_t num_shards)>;

  explicit ShardedStreamExecutor(Options options);
  ~ShardedStreamExecutor();

  ShardedStreamExecutor(const ShardedStreamExecutor&) = delete;
  ShardedStreamExecutor& operator=(const ShardedStreamExecutor&) = delete;

  /// Registers a processor on shard `shard`'s lane. Processors must be
  /// distinct per shard (they run on different threads) and outlive the
  /// stream (or their `Unsubscribe`). Legal before `BeginStream`/`Run`, or
  /// mid-stream under `Quiesce` (see below): the lane rebuilds its
  /// dispatch index before the next batch, so a processor attached at
  /// time T sees only events pushed after T.
  void SubscribeShard(size_t shard, EventProcessor* processor);

  /// Registers a processor on the global lane (created on first use): it
  /// sees every event, in input order, exactly like a single-threaded
  /// executor would. When the stream is already running, the lane thread
  /// is spawned on the spot (call under `Quiesce`); the lane observes the
  /// stream from this point on.
  void SubscribeGlobal(EventProcessor* processor);

  /// Removes a processor from its lane. Mid-stream removal is legal only
  /// while the pipeline is quiesced (`Quiesce` returned and nothing has
  /// been pushed since).
  void UnsubscribeShard(size_t shard, EventProcessor* processor);
  void UnsubscribeGlobal(EventProcessor* processor);

  /// Replaces the default subject-entity-key partitioner.
  void SetPartitioner(Partitioner partitioner);

  /// Observers of shard-lane progress, both invoked on the lane's thread
  /// *after* the subscribers' callbacks returned: `watermark(shard, ts)`
  /// when a lane applied an advanced input watermark (every window close
  /// for windows ≤ ts has already fired), `finished(shard)` after a lane
  /// flushed end-of-stream. This is what a cross-shard merge stage aligns
  /// on; hooks are not subscribers, so they never appear in the lanes'
  /// delivery/skip accounting. Shard lanes only (the global lane is
  /// single-threaded-semantics by construction and needs no alignment).
  struct ProgressHooks {
    std::function<void(size_t shard, Timestamp ts)> watermark;
    std::function<void(size_t shard)> finished;
    /// Global-lane progress (same semantics, no shard index). Optional;
    /// the cross-shard merge never aligns on the global lane, but a
    /// session's ordered alert flush does.
    std::function<void(Timestamp ts)> global_watermark;
    std::function<void()> global_finished;
  };
  void SetProgressHooks(ProgressHooks hooks);

  /// Pulls `source` to exhaustion through the splitter/lane pipeline and
  /// joins all lane threads. May be called once per instance. Equivalent
  /// to BeginStream + one PushBatch/AdvanceWatermark pair per pulled
  /// batch + FinishStream.
  void Run(EventSource* source, size_t batch_size = 1024);

  // Streaming (push-driven) interface. `Run` is built from these; the
  // engine's session API drives them directly. All of them must be called
  // from one thread (the splitter/session thread).

  /// Starts the lane threads. Call once, after the initial Subscribe
  /// calls.
  void BeginStream();

  /// Interns (when configured) and hash-partitions one batch onto the
  /// lane queues, plus a copy to the global lane when present. Events are
  /// annotated in place (symbol ids); the buffer may be reused as soon as
  /// the call returns (lanes receive copies). Blocks when a lane queue is
  /// full (backpressure).
  void PushBatch(Event* events, size_t count);

  /// Block-native push: materializes the block's rows (columnar blocks
  /// arrive pre-interned from their dictionary) and partitions them.
  /// Empty blocks are ignored.
  void PushBlock(EventBlock* block);

  /// Enqueues watermark `ts` to every lane (shard + global) when it
  /// advances the input watermark; returns whether it did.
  bool AdvanceWatermark(Timestamp ts);

  /// Blocks until every lane has drained its queue and gone idle. While
  /// quiesced — i.e. until the next PushBatch/AdvanceWatermark — the
  /// caller may mutate lane subscriptions (Subscribe/Unsubscribe) and
  /// subscriber state without racing the lane threads.
  void Quiesce();

  /// Closes the lane queues, joins all lane threads (each lane flushes
  /// end-of-stream first). Call once; the instance cannot be restarted.
  void FinishStream();

  /// Max event timestamp the splitter has seen (INT64_MIN before any).
  Timestamp input_max_ts() const { return input_max_ts_; }

  /// Default partitioner: FNV-1a over (agent_id, subject.pid).
  static size_t SubjectKeyShard(const Event& event, size_t num_shards);

  struct SplitterStats {
    uint64_t input_events = 0;
    uint64_t input_batches = 0;
  };

  const SplitterStats& splitter_stats() const { return splitter_stats_; }
  size_t num_shards() const { return lanes_.size(); }
  bool has_global_lane() const { return global_lane_ != nullptr; }

  /// Per-lane executor statistics.
  const ExecutorStats& shard_stats(size_t shard) const;
  /// Global-lane statistics; null when no global processor subscribed.
  const ExecutorStats* global_stats() const;

  /// Element-wise sum over all lanes (shards + global). Routed-skip parity
  /// holds lane by lane — deliveries + routed_skips equals what broadcast
  /// delivery on that lane would have delivered — so it also holds for the
  /// sum.
  ExecutorStats merged_stats() const;

 private:
  /// One batch handed to a lane: the events (owned) and the input-stream
  /// watermark as of the end of the batch.
  struct LaneBatch {
    EventBatch events;
    Timestamp watermark = INT64_MIN;
  };

  /// A lane: bounded queue + executor. The thread pops batches until the
  /// queue closes, then finishes the stream. `index` is set for shard
  /// lanes; the global lane reports through the hooks' global callbacks.
  struct Lane {
    explicit Lane(StreamExecutor::Options opts) : executor(opts) {}

    void Push(LaneBatch&& batch, size_t capacity);
    void Close();
    /// Blocks until the queue is empty and the thread is between batches.
    void WaitIdle();
    void ThreadMain();

    StreamExecutor executor;
    std::mutex mu;
    std::condition_variable can_push;
    std::condition_variable can_pop;
    std::condition_variable idle;
    std::deque<LaneBatch> queue;
    bool closed = false;
    bool busy = false;  ///< thread currently processing a popped batch
    size_t index = 0;
    bool is_global = false;
    bool started = false;  ///< lane thread spawned (mid-stream global lane)
    const ProgressHooks* hooks = nullptr;
  };

  Lane* EnsureGlobalLane();
  void StartLaneThread(Lane* lane);

  Options options_;
  Partitioner partitioner_;
  ProgressHooks hooks_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<Lane> global_lane_;
  std::vector<std::thread> threads_;
  /// Per-lane staging buffers, reused across PushBatch calls.
  std::vector<EventBatch> staged_;
  SplitterStats splitter_stats_;
  Timestamp input_max_ts_ = INT64_MIN;
  Timestamp pushed_watermark_ = INT64_MIN;
  bool streaming_ = false;  ///< between BeginStream and FinishStream
  bool ran_ = false;
};

}  // namespace saql

#endif  // SAQL_STREAM_SHARDED_EXECUTOR_H_
