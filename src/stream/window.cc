#include "stream/window.h"

namespace saql {

std::string TimeWindow::ToString() const {
  return "[" + FormatTimestamp(start) + ", " + FormatTimestamp(end) + ")";
}

WindowAssigner::WindowAssigner(const WindowSpec& spec)
    : length_(spec.length), slide_(spec.EffectiveSlide()) {
  if (length_ <= 0) length_ = kSecond;
  if (slide_ <= 0) slide_ = length_;
}

std::vector<TimeWindow> WindowAssigner::Assign(Timestamp ts) const {
  std::vector<TimeWindow> out;
  // Newest window start containing ts, aligned to the slide grid.
  Timestamp last_start = ts - ((ts % slide_) + slide_) % slide_;
  for (Timestamp start = last_start; start > ts - length_;
       start -= slide_) {
    out.push_back(TimeWindow{start, start + length_});
  }
  // Earliest first.
  std::vector<TimeWindow> ordered(out.rbegin(), out.rend());
  return ordered;
}

TimeWindow WindowAssigner::NewestFor(Timestamp ts) const {
  Timestamp last_start = ts - ((ts % slide_) + slide_) % slide_;
  return TimeWindow{last_start, last_start + length_};
}

}  // namespace saql
