#include "stream/sharded_executor.h"

#include "core/interner.h"

namespace saql {

ShardedStreamExecutor::ShardedStreamExecutor(Options options)
    : options_(options), partitioner_(&SubjectKeyShard) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.num_shards > kMaxShards) options_.num_shards = kMaxShards;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  lanes_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    lanes_.push_back(std::make_unique<Lane>(options_.executor));
  }
  staged_.resize(options_.num_shards);
}

ShardedStreamExecutor::~ShardedStreamExecutor() {
  // A session that dies mid-stream must not leak running lane threads.
  if (streaming_) FinishStream();
}

size_t ShardedStreamExecutor::SubjectKeyShard(const Event& event,
                                              size_t num_shards) {
  // FNV-1a over the subject entity key (agent id, subject pid) — the same
  // identity `EntityKeyOf` uses for subjects, without building the string.
  uint64_t h = 1469598103934665603ull;
  for (char c : event.agent_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  uint64_t pid = static_cast<uint64_t>(event.subject.pid);
  for (int i = 0; i < 8; ++i) {
    h ^= (pid >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % num_shards);
}

void ShardedStreamExecutor::SubscribeShard(size_t shard,
                                           EventProcessor* processor) {
  lanes_[shard]->executor.Subscribe(processor);
}

void ShardedStreamExecutor::SubscribeGlobal(EventProcessor* processor) {
  Lane* lane = EnsureGlobalLane();
  // Subscribe before the lane thread can exist: its BeginStream reads the
  // subscriber list unsynchronized, so the thread must start strictly
  // after (thread creation is the happens-before edge).
  lane->executor.Subscribe(processor);
  if (streaming_ && !lane->started) StartLaneThread(lane);
}

void ShardedStreamExecutor::UnsubscribeShard(size_t shard,
                                             EventProcessor* processor) {
  lanes_[shard]->executor.Unsubscribe(processor);
}

void ShardedStreamExecutor::UnsubscribeGlobal(EventProcessor* processor) {
  if (global_lane_) global_lane_->executor.Unsubscribe(processor);
}

void ShardedStreamExecutor::SetPartitioner(Partitioner partitioner) {
  partitioner_ = std::move(partitioner);
}

void ShardedStreamExecutor::SetProgressHooks(ProgressHooks hooks) {
  hooks_ = std::move(hooks);
}

ShardedStreamExecutor::Lane* ShardedStreamExecutor::EnsureGlobalLane() {
  if (!global_lane_) {
    global_lane_ = std::make_unique<Lane>(options_.executor);
    global_lane_->is_global = true;
  }
  return global_lane_.get();
}

void ShardedStreamExecutor::StartLaneThread(Lane* lane) {
  lane->hooks = &hooks_;
  lane->started = true;
  threads_.emplace_back([lane] { lane->ThreadMain(); });
}

void ShardedStreamExecutor::Lane::Push(LaneBatch&& batch, size_t capacity) {
  {
    std::unique_lock<std::mutex> lock(mu);
    can_push.wait(lock, [&] { return queue.size() < capacity; });
    queue.push_back(std::move(batch));
  }
  can_pop.notify_one();
}

void ShardedStreamExecutor::Lane::Close() {
  {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
  }
  can_pop.notify_all();
}

void ShardedStreamExecutor::Lane::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu);
  idle.wait(lock, [&] { return queue.empty() && !busy; });
}

void ShardedStreamExecutor::Lane::ThreadMain() {
  executor.BeginStream();
  LaneBatch batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu);
      can_pop.wait(lock, [&] { return !queue.empty() || closed; });
      if (queue.empty()) break;  // closed and drained
      batch = std::move(queue.front());
      queue.pop_front();
      busy = true;
    }
    can_push.notify_one();
    executor.ProcessBatch(batch.events.data(), batch.events.size());
    // The *input* watermark, not the lane's own max event time — see the
    // watermark rule in the class comment.
    bool advanced = executor.AdvanceWatermark(batch.watermark);
    if (advanced && hooks != nullptr) {
      if (is_global) {
        if (hooks->global_watermark) hooks->global_watermark(batch.watermark);
      } else if (hooks->watermark) {
        hooks->watermark(index, batch.watermark);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      busy = false;
      if (queue.empty()) idle.notify_all();
    }
  }
  executor.FinishStream();
  if (hooks != nullptr) {
    if (is_global) {
      if (hooks->global_finished) hooks->global_finished();
    } else if (hooks->finished) {
      hooks->finished(index);
    }
  }
}

void ShardedStreamExecutor::BeginStream() {
  if (streaming_ || ran_) return;
  streaming_ = true;
  threads_.reserve(lanes_.size() + 1);
  for (size_t s = 0; s < lanes_.size(); ++s) {
    lanes_[s]->index = s;
    StartLaneThread(lanes_[s].get());
  }
  if (global_lane_) StartLaneThread(global_lane_.get());
}

void ShardedStreamExecutor::PushBatch(Event* events, size_t count) {
  if (!streaming_ || count == 0) return;
  const size_t n = lanes_.size();
  ++splitter_stats_.input_batches;
  splitter_stats_.input_events += count;
  // Intern once, in the caller's buffer, before events fan out: replayed
  // buffers (VectorEventSource) keep the memoization, and every copy
  // below carries the symbol ids with it.
  if (options_.executor.intern_strings) InternEventSpan(events, count);
  for (EventBatch& s : staged_) s.clear();
  for (size_t k = 0; k < count; ++k) {
    const Event& e = events[k];
    if (e.ts > input_max_ts_) input_max_ts_ = e.ts;
    staged_[partitioner_(e, n)].push_back(e);
  }
  // The batch carries the last *advanced* watermark (a no-op for the
  // lane's executor): watermark progress is explicit, via
  // AdvanceWatermark, which also reaches lanes this batch skipped.
  for (size_t s = 0; s < n; ++s) {
    if (staged_[s].empty()) continue;
    lanes_[s]->Push(LaneBatch{std::move(staged_[s]), pushed_watermark_},
                    options_.queue_capacity);
    staged_[s] = EventBatch{};
  }
  if (global_lane_) {
    LaneBatch gb;
    gb.events.assign(events, events + count);
    gb.watermark = pushed_watermark_;
    global_lane_->Push(std::move(gb), options_.queue_capacity);
  }
}

bool ShardedStreamExecutor::AdvanceWatermark(Timestamp ts) {
  if (!streaming_ || ts == INT64_MIN || ts <= pushed_watermark_) {
    return false;
  }
  pushed_watermark_ = ts;
  // Every lane gets the advanced input watermark, even when it received
  // no events — a quiet shard must keep closing windows so the merge
  // stage's alignment can progress.
  for (auto& lane : lanes_) {
    lane->Push(LaneBatch{EventBatch{}, ts}, options_.queue_capacity);
  }
  if (global_lane_) {
    global_lane_->Push(LaneBatch{EventBatch{}, ts}, options_.queue_capacity);
  }
  return true;
}

void ShardedStreamExecutor::Quiesce() {
  if (!streaming_) return;
  for (auto& lane : lanes_) lane->WaitIdle();
  if (global_lane_) global_lane_->WaitIdle();
}

void ShardedStreamExecutor::FinishStream() {
  if (!streaming_) return;
  streaming_ = false;
  ran_ = true;
  for (auto& lane : lanes_) lane->Close();
  if (global_lane_) global_lane_->Close();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ShardedStreamExecutor::PushBlock(EventBlock* block) {
  if (block->empty()) return;
  PushBatch(block->MutableRows(), block->size());
}

void ShardedStreamExecutor::Run(EventSource* source, size_t batch_size) {
  if (ran_ || streaming_) return;
  BeginStream();
  while (EventBlock* block = source->NextBlock(batch_size)) {
    if (block->empty()) continue;
    PushBlock(block);
    AdvanceWatermark(input_max_ts_);
  }
  FinishStream();
}

const ExecutorStats& ShardedStreamExecutor::shard_stats(size_t shard) const {
  return lanes_[shard]->executor.stats();
}

const ExecutorStats* ShardedStreamExecutor::global_stats() const {
  return global_lane_ ? &global_lane_->executor.stats() : nullptr;
}

ExecutorStats ShardedStreamExecutor::merged_stats() const {
  ExecutorStats out;
  auto add = [&out](const ExecutorStats& s) {
    out.events += s.events;
    out.deliveries += s.deliveries;
    out.batches += s.batches;
    out.routed_skips += s.routed_skips;
    out.watermarks += s.watermarks;
  };
  for (const auto& lane : lanes_) add(lane->executor.stats());
  if (global_lane_) add(global_lane_->executor.stats());
  return out;
}

}  // namespace saql
