#include "stream/sharded_executor.h"

#include <thread>

#include "core/interner.h"

namespace saql {

ShardedStreamExecutor::ShardedStreamExecutor(Options options)
    : options_(options), partitioner_(&SubjectKeyShard) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.num_shards > kMaxShards) options_.num_shards = kMaxShards;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  lanes_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    lanes_.push_back(std::make_unique<Lane>(options_.executor));
  }
}

ShardedStreamExecutor::~ShardedStreamExecutor() = default;

size_t ShardedStreamExecutor::SubjectKeyShard(const Event& event,
                                              size_t num_shards) {
  // FNV-1a over the subject entity key (agent id, subject pid) — the same
  // identity `EntityKeyOf` uses for subjects, without building the string.
  uint64_t h = 1469598103934665603ull;
  for (char c : event.agent_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  uint64_t pid = static_cast<uint64_t>(event.subject.pid);
  for (int i = 0; i < 8; ++i) {
    h ^= (pid >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % num_shards);
}

void ShardedStreamExecutor::SubscribeShard(size_t shard,
                                           EventProcessor* processor) {
  lanes_[shard]->executor.Subscribe(processor);
}

void ShardedStreamExecutor::SubscribeGlobal(EventProcessor* processor) {
  EnsureGlobalLane()->executor.Subscribe(processor);
}

void ShardedStreamExecutor::SetPartitioner(Partitioner partitioner) {
  partitioner_ = std::move(partitioner);
}

void ShardedStreamExecutor::SetProgressHooks(ProgressHooks hooks) {
  hooks_ = std::move(hooks);
}

ShardedStreamExecutor::Lane* ShardedStreamExecutor::EnsureGlobalLane() {
  if (!global_lane_) {
    global_lane_ = std::make_unique<Lane>(options_.executor);
  }
  return global_lane_.get();
}

void ShardedStreamExecutor::Lane::Push(LaneBatch&& batch, size_t capacity) {
  {
    std::unique_lock<std::mutex> lock(mu);
    can_push.wait(lock, [&] { return queue.size() < capacity; });
    queue.push_back(std::move(batch));
  }
  can_pop.notify_one();
}

void ShardedStreamExecutor::Lane::Close() {
  {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
  }
  can_pop.notify_all();
}

void ShardedStreamExecutor::Lane::ThreadMain() {
  executor.BeginStream();
  LaneBatch batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu);
      can_pop.wait(lock, [&] { return !queue.empty() || closed; });
      if (queue.empty()) break;  // closed and drained
      batch = std::move(queue.front());
      queue.pop_front();
    }
    can_push.notify_one();
    executor.ProcessBatch(batch.events.data(), batch.events.size());
    // The *input* watermark, not the lane's own max event time — see the
    // watermark rule in the class comment.
    bool advanced = executor.AdvanceWatermark(batch.watermark);
    if (advanced && hooks != nullptr && hooks->watermark) {
      hooks->watermark(index, batch.watermark);
    }
  }
  executor.FinishStream();
  if (hooks != nullptr && hooks->finished) hooks->finished(index);
}

void ShardedStreamExecutor::Run(EventSource* source, size_t batch_size) {
  if (ran_) return;
  ran_ = true;
  const size_t n = lanes_.size();

  std::vector<std::thread> threads;
  threads.reserve(n + 1);
  for (size_t s = 0; s < n; ++s) {
    lanes_[s]->index = s;
    lanes_[s]->hooks = &hooks_;
    threads.emplace_back([l = lanes_[s].get()] { l->ThreadMain(); });
  }
  if (global_lane_) {
    threads.emplace_back([l = global_lane_.get()] { l->ThreadMain(); });
  }

  std::vector<EventBatch> staged(n);
  Timestamp watermark = INT64_MIN;
  size_t count = 0;
  while (Event* batch = source->NextBatchZeroCopy(batch_size, &count)) {
    ++splitter_stats_.input_batches;
    splitter_stats_.input_events += count;
    // Intern once, in the source's own buffer, before events fan out:
    // replayed buffers (VectorEventSource) keep the memoization, and every
    // copy below carries the symbol ids with it.
    if (options_.executor.intern_strings) InternEventSpan(batch, count);
    for (EventBatch& s : staged) s.clear();
    for (size_t k = 0; k < count; ++k) {
      const Event& e = batch[k];
      if (e.ts > watermark) watermark = e.ts;
      staged[partitioner_(e, n)].push_back(e);
    }
    // Every lane gets the advanced input watermark each input batch, even
    // when it received no events — a quiet shard must keep closing windows
    // so the merge stage's alignment can progress.
    for (size_t s = 0; s < n; ++s) {
      lanes_[s]->Push(LaneBatch{std::move(staged[s]), watermark},
                      options_.queue_capacity);
      staged[s] = EventBatch{};
    }
    if (global_lane_) {
      LaneBatch gb;
      gb.events.assign(batch, batch + count);
      gb.watermark = watermark;
      global_lane_->Push(std::move(gb), options_.queue_capacity);
    }
  }
  for (auto& lane : lanes_) lane->Close();
  if (global_lane_) global_lane_->Close();
  for (std::thread& t : threads) t.join();
}

const ExecutorStats& ShardedStreamExecutor::shard_stats(size_t shard) const {
  return lanes_[shard]->executor.stats();
}

const ExecutorStats* ShardedStreamExecutor::global_stats() const {
  return global_lane_ ? &global_lane_->executor.stats() : nullptr;
}

ExecutorStats ShardedStreamExecutor::merged_stats() const {
  ExecutorStats out;
  auto add = [&out](const ExecutorStats& s) {
    out.events += s.events;
    out.deliveries += s.deliveries;
    out.batches += s.batches;
    out.routed_skips += s.routed_skips;
    out.watermarks += s.watermarks;
  };
  for (const auto& lane : lanes_) add(lane->executor.stats());
  if (global_lane_) add(global_lane_->executor.stats());
  return out;
}

}  // namespace saql
