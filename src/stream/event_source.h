#ifndef SAQL_STREAM_EVENT_SOURCE_H_
#define SAQL_STREAM_EVENT_SOURCE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/event.h"
#include "core/event_block.h"

namespace saql {

/// Pull-based producer of the system event stream. In the paper events flow
/// from per-host data collection agents to a central server; here sources
/// are the synthetic enterprise simulator (src/collect) or the stored-event
/// replayer (src/storage).
///
/// The ingestion unit is the **block** (`EventBlock`, core/event_block.h):
/// `NextBlock` is the one virtual every source implements. Columnar
/// sources (the mmap'd event-log replayer) hand out blocks whose columns
/// alias their own storage and whose dictionary is already interned; row
/// sources wrap their rows in a block shim. The historical row-level pulls
/// (`NextBatch`, `NextBatchZeroCopy`) survive as non-virtual adapters over
/// `NextBlock`.
///
/// Sources produce events in non-decreasing timestamp order unless stated
/// otherwise; a `ReorderBuffer` can repair bounded disorder.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Primary pull: returns the next block of up to `max_events` events, or
  /// nullptr at end of stream. The block is owned by the source and stays
  /// valid until the next pull; callers may annotate its rows in place
  /// (the executor fills interned symbol ids — columnar blocks arrive
  /// with them pre-stamped). Sources should not hand out empty blocks;
  /// consumers tolerate them.
  virtual EventBlock* NextBlock(size_t max_events) = 0;

  /// Row adapter: fills `batch` with a copy of the next block's rows
  /// (batch is cleared first). Returns false when the stream is
  /// exhausted.
  bool NextBatch(size_t max_events, EventBatch* batch);

  /// Row adapter, zero-copy where the source allows it: returns the next
  /// block's row view and stores its length in `count`, or nullptr at end
  /// of stream. Rows stay owned by the source and remain valid until the
  /// next pull.
  Event* NextBatchZeroCopy(size_t max_events, size_t* count);
};

/// Source over a pre-materialized vector of events; used by tests and by
/// benchmarks that want the generation cost out of the measured loop.
class VectorEventSource : public EventSource {
 public:
  explicit VectorEventSource(EventBatch events);

  /// Hands out blocks borrowing slices of the owned vector — no per-event
  /// copies. Interned symbol annotations persist across `Reset`, so
  /// replays (benchmarks) intern each event at most once.
  EventBlock* NextBlock(size_t max_events) override;

  /// Rewinds to the beginning (benchmarks reuse one materialized stream).
  void Reset() { pos_ = 0; }

  size_t size() const { return events_.size(); }

 private:
  EventBatch events_;
  size_t pos_ = 0;
  EventBlock block_;
};

/// Adapts a generator function into a source. The function returns false to
/// signal end of stream.
class CallbackEventSource : public EventSource {
 public:
  using Generator = std::function<bool(Event*)>;

  explicit CallbackEventSource(Generator gen);

  EventBlock* NextBlock(size_t max_events) override;

 private:
  Generator gen_;
  bool done_ = false;
  EventBlock block_;
};

/// Merges several timestamp-ordered sources into one ordered stream — the
/// central server's view over all per-host agent feeds.
class MergingEventSource : public EventSource {
 public:
  explicit MergingEventSource(std::vector<std::unique_ptr<EventSource>> inputs);

  EventBlock* NextBlock(size_t max_events) override;

 private:
  struct Cursor {
    std::unique_ptr<EventSource> source;
    EventBatch buffer;
    size_t pos = 0;
    bool exhausted = false;
  };

  /// Ensures cursor `i` has a current event or is marked exhausted,
  /// pulling at most `budget` events from the inner source (the caller's
  /// `max_events` — inner sources must not be drained harder than the
  /// consumer asked for, e.g. a paced replayer behind the merge).
  void Refill(size_t i, size_t budget);

  std::vector<Cursor> cursors_;
  EventBlock block_;
};

}  // namespace saql

#endif  // SAQL_STREAM_EVENT_SOURCE_H_
