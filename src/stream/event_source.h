#ifndef SAQL_STREAM_EVENT_SOURCE_H_
#define SAQL_STREAM_EVENT_SOURCE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/event.h"

namespace saql {

/// Pull-based producer of the system event stream. In the paper events flow
/// from per-host data collection agents to a central server; here sources
/// are the synthetic enterprise simulator (src/collect) or the stored-event
/// replayer (src/storage).
///
/// Sources produce events in non-decreasing timestamp order unless stated
/// otherwise; a `ReorderBuffer` can repair bounded disorder.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Fills `batch` with up to `max_events` next events (append, batch is
  /// cleared first). Returns false when the stream is exhausted and no
  /// events were produced.
  virtual bool NextBatch(size_t max_events, EventBatch* batch) = 0;

  /// Zero-copy pull: returns a pointer to the next run of up to
  /// `max_events` events and stores its length in `count`, or nullptr at
  /// end of stream. The events stay owned by the source and remain valid
  /// until the next pull; callers may annotate them in place (the executor
  /// fills interned symbol ids). Sources backed by contiguous storage
  /// override this to hand out their buffer directly; the default adapter
  /// copies through `NextBatch` into a scratch batch.
  virtual Event* NextBatchZeroCopy(size_t max_events, size_t* count) {
    // Tolerate sources that (out of contract) report progress with an
    // empty batch; an empty scratch must not read as end-of-stream.
    do {
      if (!NextBatch(max_events, &zero_copy_scratch_)) return nullptr;
    } while (zero_copy_scratch_.empty());
    *count = zero_copy_scratch_.size();
    return zero_copy_scratch_.data();
  }

 private:
  /// Scratch buffer for the default (copying) zero-copy adapter. Named to
  /// avoid colliding with subclasses' own scratch buffers.
  EventBatch zero_copy_scratch_;
};

/// Source over a pre-materialized vector of events; used by tests and by
/// benchmarks that want the generation cost out of the measured loop.
class VectorEventSource : public EventSource {
 public:
  explicit VectorEventSource(EventBatch events);

  bool NextBatch(size_t max_events, EventBatch* batch) override;

  /// Hands out slices of the owned vector — no per-event copies. Interned
  /// symbol annotations persist across `Reset`, so replays (benchmarks)
  /// intern each event at most once.
  Event* NextBatchZeroCopy(size_t max_events, size_t* count) override;

  /// Rewinds to the beginning (benchmarks reuse one materialized stream).
  void Reset() { pos_ = 0; }

  size_t size() const { return events_.size(); }

 private:
  EventBatch events_;
  size_t pos_ = 0;
};

/// Adapts a generator function into a source. The function returns false to
/// signal end of stream.
class CallbackEventSource : public EventSource {
 public:
  using Generator = std::function<bool(Event*)>;

  explicit CallbackEventSource(Generator gen);

  bool NextBatch(size_t max_events, EventBatch* batch) override;

 private:
  Generator gen_;
  bool done_ = false;
};

/// Merges several timestamp-ordered sources into one ordered stream — the
/// central server's view over all per-host agent feeds.
class MergingEventSource : public EventSource {
 public:
  explicit MergingEventSource(std::vector<std::unique_ptr<EventSource>> inputs);

  bool NextBatch(size_t max_events, EventBatch* batch) override;

 private:
  struct Cursor {
    std::unique_ptr<EventSource> source;
    EventBatch buffer;
    size_t pos = 0;
    bool exhausted = false;
  };

  /// Ensures cursor `i` has a current event or is marked exhausted.
  void Refill(size_t i);

  std::vector<Cursor> cursors_;
};

}  // namespace saql

#endif  // SAQL_STREAM_EVENT_SOURCE_H_
