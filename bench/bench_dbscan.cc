// E10: DBSCAN scaling — the per-window cost of the outlier model's
// clustering stage. Expected shapes: the 1-D fast path (sort + two-pointer
// sweep, the common case for SAQL outlier queries) scales n·log n, the
// generic path n^2; eps has little effect on the 1-D path.

#include <random>

#include <benchmark/benchmark.h>

#include "anomaly/dbscan.h"

namespace saql {
namespace {

std::vector<ClusterPoint> Points(size_t n, int dims, uint64_t seed = 5) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> cluster_a(1000.0, 50.0);
  std::normal_distribution<double> cluster_b(5000.0, 80.0);
  std::uniform_real_distribution<double> noise(0.0, 100000.0);
  std::vector<ClusterPoint> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ClusterPoint p;
    for (int d = 0; d < dims; ++d) {
      double v = i % 20 == 0 ? noise(rng)
                             : (i % 2 == 0 ? cluster_a(rng) : cluster_b(rng));
      p.push_back(v);
    }
    out.push_back(std::move(p));
  }
  return out;
}

void BM_Dbscan1D(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto points = Points(n, 1);
  Dbscan dbscan(150.0, 5);
  int clusters = 0;
  for (auto _ : state) {
    DbscanResult r = dbscan.Run(points);
    clusters = r.num_clusters;
    benchmark::DoNotOptimize(r.labels.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["points"] = static_cast<double>(n);
  state.counters["clusters"] = clusters;
}
BENCHMARK(BM_Dbscan1D)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_Dbscan2DGeneric(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto points = Points(n, 2);
  Dbscan dbscan(200.0, 5);
  for (auto _ : state) {
    DbscanResult r = dbscan.Run(points);
    benchmark::DoNotOptimize(r.labels.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["points"] = static_cast<double>(n);
}
BENCHMARK(BM_Dbscan2DGeneric)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_DbscanEpsSweep(benchmark::State& state) {
  auto points = Points(10000, 1);
  double eps = static_cast<double>(state.range(0));
  Dbscan dbscan(eps, 5);
  for (auto _ : state) {
    DbscanResult r = dbscan.Run(points);
    benchmark::DoNotOptimize(r.labels.data());
  }
  state.counters["eps"] = eps;
}
BENCHMARK(BM_DbscanEpsSweep)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_DbscanMinPtsSweep(benchmark::State& state) {
  auto points = Points(10000, 1);
  Dbscan dbscan(150.0, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    DbscanResult r = dbscan.Run(points);
    benchmark::DoNotOptimize(r.labels.data());
  }
  state.counters["min_pts"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DbscanMinPtsSweep)
    ->Arg(2)
    ->Arg(5)
    ->Arg(20)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
