// A11: durable-ingestion ablation. Acked events/s through the
// DurableLogWriter pipeline under each sync policy — `none` (WAL never
// synced), `group` (batched commit barrier, the default), `always`
// (fsync per append) — plus recovery time over a 100k-event log, both
// as a pure WAL-tail replay and as the mixed segments-plus-tail shape a
// real crash leaves. Refresh BENCH_throughput.json with:
//   ./bench_durable --benchmark_filter='A11'
//     --benchmark_out=bench_a11.json --benchmark_out_format=json

#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/columnar_log.h"
#include "storage/durable_log.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace saql {
namespace {

constexpr size_t kEvents = 100000;

std::string LogPath() {
  return std::string("/tmp/saql_bench_durable.saqllog");
}

const EventBatch& Events() {
  static const EventBatch* events =
      new EventBatch(bench::NetWriteStream(kEvents, 50, 20));
  return *events;
}

// -------------------------------------------------------------------------
// Ingestion: full pipeline (WAL + drainer + columnar segments), clean
// close. items/s = acked events per second under the policy's ack rule.
// -------------------------------------------------------------------------

void IngestLoop(benchmark::State& state, const char* policy) {
  const EventBatch& events = Events();
  for (auto _ : state) {
    DurableLogWriter::Options opts;
    opts.sync = ParseSyncPolicy(policy).value();
    DurableLogWriter w(LogPath(), opts);
    Status st = w.AppendBatch(events);
    if (st.ok()) st = w.Close();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kEvents));
}

void BM_A11IngestSyncNone(benchmark::State& state) {
  IngestLoop(state, "none");
}
BENCHMARK(BM_A11IngestSyncNone)->Unit(benchmark::kMillisecond);

void BM_A11IngestSyncGroup(benchmark::State& state) {
  IngestLoop(state, "group");
}
BENCHMARK(BM_A11IngestSyncGroup)->Unit(benchmark::kMillisecond);

void BM_A11IngestSyncAlways(benchmark::State& state) {
  IngestLoop(state, "always");
}
BENCHMARK(BM_A11IngestSyncAlways)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------------
// Recovery: RecoverDurableLog over a 100k-event crashed log. Setup
// builds the on-disk state once; the measured loop is recovery only.
// -------------------------------------------------------------------------

/// Worst case: the crash predates every segment fsync — a header-only
/// columnar file and the whole stream in the WAL tail.
void BM_A11RecoverWalTail(benchmark::State& state) {
  const EventBatch& events = Events();
  std::string path = "/tmp/saql_bench_recover_tail.saqllog";
  {
    ColumnarLogWriter seg(path);  // header only, no segments
    if (!seg.Close().ok()) {
      state.SkipWithError("columnar setup failed");
      return;
    }
    WalWriter wal(path + ".wal.0", /*first_seq=*/1);
    for (size_t i = 0; i < events.size(); ++i) {
      if (!wal.Append(i + 1, events[i]).ok()) {
        state.SkipWithError("wal setup failed");
        return;
      }
    }
    if (!wal.Close().ok()) {
      state.SkipWithError("wal close failed");
      return;
    }
  }
  for (auto _ : state) {
    auto rec = RecoverDurableLog(path);
    if (!rec.ok() || rec->events.size() != kEvents) {
      state.SkipWithError("recovery failed");
      return;
    }
    benchmark::DoNotOptimize(rec->events.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kEvents));
}
BENCHMARK(BM_A11RecoverWalTail)->Unit(benchmark::kMillisecond);

/// The typical crash shape: half the stream already fsynced into
/// columnar segments, the rest replayed from the WAL tail.
void BM_A11RecoverSegmentsPlusWalTail(benchmark::State& state) {
  const EventBatch& events = Events();
  const size_t half = events.size() / 2;
  std::string path = "/tmp/saql_bench_recover_mixed.saqllog";
  {
    ColumnarLogWriter seg(path);
    for (size_t i = 0; i < half; ++i) {
      if (!seg.Append(events[i]).ok()) {
        state.SkipWithError("columnar setup failed");
        return;
      }
    }
    if (!seg.Flush().ok() || !seg.Close().ok()) {
      state.SkipWithError("columnar close failed");
      return;
    }
    WalWriter wal(path + ".wal.0", /*first_seq=*/half + 1);
    for (size_t i = half; i < events.size(); ++i) {
      if (!wal.Append(i + 1, events[i]).ok()) {
        state.SkipWithError("wal setup failed");
        return;
      }
    }
    if (!wal.Close().ok()) {
      state.SkipWithError("wal close failed");
      return;
    }
  }
  for (auto _ : state) {
    auto rec = RecoverDurableLog(path);
    if (!rec.ok() || rec->events.size() != kEvents) {
      state.SkipWithError("recovery failed");
      return;
    }
    benchmark::DoNotOptimize(rec->events.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kEvents));
}
BENCHMARK(BM_A11RecoverSegmentsPlusWalTail)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
