// E8: state maintainer cost across window length and group cardinality.
// Sweeps the sliding-window length (1s .. 10min) and the number of groups
// (10 .. 10k) for a sum+count aggregation. Expected shapes: per-event cost
// is roughly flat in window length (aggregation is incremental; longer
// windows just close less often) and grows mildly with group count (hash
// pressure), while windows_closed scales inversely with length.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"

namespace saql {
namespace {

constexpr size_t kStreamSize = 100000;

void BM_WindowLengthSweep(benchmark::State& state) {
  Duration window = static_cast<Duration>(state.range(0)) * kSecond;
  EventBatch events = bench::NetWriteStream(kStreamSize, 100, 50);
  std::string query =
      "proc p write ip i as e #time(" +
      std::to_string(state.range(0)) +
      " s) state ss { amt := sum(e.amount) c := count() } group by p "
      "alert ss.amt > 100000000 return p, ss.amt";
  uint64_t windows = 0;
  for (auto _ : state) {
    SaqlEngine engine;
    Status st = engine.AddQuery(query, "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    engine.SetAlertSink([](const Alert&) {});
    VectorEventSource source(events);
    st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    windows += engine.query_stats()[0].second.windows_closed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
  state.counters["window_s"] =
      static_cast<double>(window) / static_cast<double>(kSecond);
  state.counters["windows_closed"] =
      static_cast<double>(windows) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_WindowLengthSweep)
    ->Arg(1)
    ->Arg(10)
    ->Arg(60)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_GroupCardinalitySweep(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  EventBatch events = bench::NetWriteStream(kStreamSize, groups, 50);
  const char* query =
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 100000000 return p, ss.amt";
  for (auto _ : state) {
    SaqlEngine engine;
    Status st = engine.AddQuery(query, "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    engine.SetAlertSink([](const Alert&) {});
    VectorEventSource source(events);
    st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
  state.counters["groups"] = static_cast<double>(groups);
}
BENCHMARK(BM_GroupCardinalitySweep)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SlidingVsTumbling(benchmark::State& state) {
  // slide = length / range(0): factor 1 is tumbling, 10 means every event
  // lands in 10 windows.
  int overlap = static_cast<int>(state.range(0));
  EventBatch events = bench::NetWriteStream(kStreamSize, 100, 50);
  std::string query =
      "proc p write ip i as e #time(60 s, " +
      std::to_string(60 / overlap) +
      " s) state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 100000000 return p, ss.amt";
  for (auto _ : state) {
    SaqlEngine engine;
    Status st = engine.AddQuery(query, "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    engine.SetAlertSink([](const Alert&) {});
    VectorEventSource source(events);
    st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
  state.counters["windows_per_event"] = static_cast<double>(overlap);
}
BENCHMARK(BM_SlidingVsTumbling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(6)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
