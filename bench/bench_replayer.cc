// E12: event log + stream replayer throughput (the demo's record/replay
// path, Fig. 4). Measures serialized write rate, full-speed replay rate,
// and filtered replay (host selection) — the replayer must outpace the
// engine so it never becomes the bottleneck when reproducing attacks.
//
// A9: replay-format ablation — the engine-facing replay loop (NextBlock,
// row materialization, intern pass) over the same corpus stored as the
// row-at-a-time v1 format, columnar v2 with buffered reads, and columnar
// v2 with mmap zero-copy blocks. Refresh BENCH_throughput.json with:
//   ./bench_replayer --benchmark_filter='A9Replay'
//     --benchmark_out=bench_a9.json --benchmark_out_format=json

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/interner.h"
#include "storage/columnar_log.h"
#include "storage/event_log.h"
#include "storage/replayer.h"

namespace saql {
namespace {

constexpr size_t kLogEvents = 100000;

std::string LogPath() {
  return ::std::string("/tmp/saql_bench_replayer.saqllog");
}

std::string ColumnarLogPath() {
  return ::std::string("/tmp/saql_bench_replayer_v2.saqllog");
}

const EventBatch& Events() {
  static const EventBatch* events =
      new EventBatch(bench::NetWriteStream(kLogEvents, 50, 20));
  return *events;
}

void BM_EventLogWrite(benchmark::State& state) {
  const EventBatch& events = Events();
  for (auto _ : state) {
    Status st = WriteEventLog(LogPath(), events);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_EventLogWrite)->Unit(benchmark::kMillisecond);

void BM_EventLogRead(benchmark::State& state) {
  (void)WriteEventLog(LogPath(), Events());
  for (auto _ : state) {
    Result<EventBatch> events = ReadEventLog(LogPath());
    if (!events.ok()) {
      state.SkipWithError(events.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(events->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_EventLogRead)->Unit(benchmark::kMillisecond);

void BM_ReplayFullSpeed(benchmark::State& state) {
  (void)WriteEventLog(LogPath(), Events());
  for (auto _ : state) {
    StreamReplayer replayer(LogPath(), StreamReplayer::Filter{});
    EventBatch batch;
    size_t total = 0;
    while (replayer.NextBatch(1024, &batch)) total += batch.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_ReplayFullSpeed)->Unit(benchmark::kMillisecond);

void BM_ReplayWithHostFilter(benchmark::State& state) {
  // All bench events carry agent "db-server-01"; filtering for another
  // host exercises the filter-and-skip path on every record.
  (void)WriteEventLog(LogPath(), Events());
  StreamReplayer::Filter filter;
  filter.hosts = {"ws-01"};
  for (auto _ : state) {
    StreamReplayer replayer(LogPath(), filter);
    EventBatch batch;
    while (replayer.NextBatch(1024, &batch)) {
    }
    benchmark::DoNotOptimize(replayer.filtered_out());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_ReplayWithHostFilter)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A9: replay-format ablation. Each variant drives the exact loop the
// engine's `Run` drives — pull a block, materialize rows, run the
// executor's intern pass (a no-op generation check for pre-interned
// columnar blocks) — so the items/s are comparable end-to-end replay
// rates, not raw decode rates.
// ---------------------------------------------------------------------------

void ReplayLoop(benchmark::State& state, const std::string& path,
                bool use_mmap) {
  for (auto _ : state) {
    StreamReplayer::Filter filter;
    filter.use_mmap = use_mmap;
    StreamReplayer replayer(path, filter);
    if (!replayer.status().ok()) {
      state.SkipWithError(replayer.status().ToString().c_str());
      return;
    }
    uint64_t total = 0;
    while (EventBlock* block = replayer.NextBlock(4096)) {
      Event* rows = block->MutableRows();
      InternEventSpan(rows, block->size());
      benchmark::DoNotOptimize(rows);
      total += block->size();
    }
    if (total != kLogEvents) {
      state.SkipWithError("short replay");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}

void BM_A9ReplayRowV1(benchmark::State& state) {
  (void)WriteEventLog(LogPath(), Events());
  ReplayLoop(state, LogPath(), /*use_mmap=*/false);
}
BENCHMARK(BM_A9ReplayRowV1)->Unit(benchmark::kMillisecond);

void BM_A9ReplayColumnarV2(benchmark::State& state) {
  (void)WriteColumnarEventLog(ColumnarLogPath(), Events());
  ReplayLoop(state, ColumnarLogPath(), /*use_mmap=*/false);
}
BENCHMARK(BM_A9ReplayColumnarV2)->Unit(benchmark::kMillisecond);

void BM_A9ReplayColumnarV2Mmap(benchmark::State& state) {
  (void)WriteColumnarEventLog(ColumnarLogPath(), Events());
  ReplayLoop(state, ColumnarLogPath(), /*use_mmap=*/true);
}
BENCHMARK(BM_A9ReplayColumnarV2Mmap)->Unit(benchmark::kMillisecond);

void BM_A9LogWriteColumnarV2(benchmark::State& state) {
  const EventBatch& events = Events();
  for (auto _ : state) {
    Status st = WriteColumnarEventLog(ColumnarLogPath(), events);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_A9LogWriteColumnarV2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
