// E12: event log + stream replayer throughput (the demo's record/replay
// path, Fig. 4). Measures serialized write rate, full-speed replay rate,
// and filtered replay (host selection) — the replayer must outpace the
// engine so it never becomes the bottleneck when reproducing attacks.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/event_log.h"
#include "storage/replayer.h"

namespace saql {
namespace {

constexpr size_t kLogEvents = 100000;

std::string LogPath() {
  return ::std::string("/tmp/saql_bench_replayer.saqllog");
}

const EventBatch& Events() {
  static const EventBatch* events =
      new EventBatch(bench::NetWriteStream(kLogEvents, 50, 20));
  return *events;
}

void BM_EventLogWrite(benchmark::State& state) {
  const EventBatch& events = Events();
  for (auto _ : state) {
    Status st = WriteEventLog(LogPath(), events);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_EventLogWrite)->Unit(benchmark::kMillisecond);

void BM_EventLogRead(benchmark::State& state) {
  (void)WriteEventLog(LogPath(), Events());
  for (auto _ : state) {
    Result<EventBatch> events = ReadEventLog(LogPath());
    if (!events.ok()) {
      state.SkipWithError(events.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(events->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_EventLogRead)->Unit(benchmark::kMillisecond);

void BM_ReplayFullSpeed(benchmark::State& state) {
  (void)WriteEventLog(LogPath(), Events());
  for (auto _ : state) {
    StreamReplayer replayer(LogPath(), StreamReplayer::Filter{});
    EventBatch batch;
    size_t total = 0;
    while (replayer.NextBatch(1024, &batch)) total += batch.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_ReplayFullSpeed)->Unit(benchmark::kMillisecond);

void BM_ReplayWithHostFilter(benchmark::State& state) {
  // All bench events carry agent "db-server-01"; filtering for another
  // host exercises the filter-and-skip path on every record.
  (void)WriteEventLog(LogPath(), Events());
  StreamReplayer::Filter filter;
  filter.hosts = {"ws-01"};
  for (auto _ : state) {
    StreamReplayer replayer(LogPath(), filter);
    EventBatch batch;
    while (replayer.NextBatch(1024, &batch)) {
    }
    benchmark::DoNotOptimize(replayer.filtered_out());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLogEvents));
}
BENCHMARK(BM_ReplayWithHostFilter)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
