#ifndef SAQL_BENCH_BENCH_UTIL_H_
#define SAQL_BENCH_BENCH_UTIL_H_

#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "core/event.h"
#include "core/time_util.h"

namespace saql {
namespace bench {

/// Reads one of the checked-in queries (queries/*.saql).
inline std::string ReadQueryFile(const std::string& filename) {
  std::ifstream in(std::string(SAQL_QUERY_DIR) + "/" + filename);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Synthetic stream of per-process network writes: `procs` processes
/// round-robin over `ips` destination IPs, one event per `gap` of event
/// time, log-normal amounts. Deterministic for a fixed seed.
inline EventBatch NetWriteStream(size_t n, int procs, int ips,
                                 Duration gap = 100 * kMillisecond,
                                 uint64_t seed = 7) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> amount(9.0, 0.7);
  EventBatch out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.id = i + 1;
    e.ts = static_cast<Timestamp>(i) * gap;
    e.agent_id = "db-server-01";
    int p = static_cast<int>(i) % procs;
    e.subject.exe_name = "proc" + std::to_string(p) + ".exe";
    e.subject.pid = 1000 + p;
    e.op = EventOp::kWrite;
    e.object_type = EntityType::kNetwork;
    e.obj_net.src_ip = "10.10.0.9";
    e.obj_net.dst_ip =
        "10.0.0." + std::to_string(static_cast<int>(i) % ips + 1);
    e.obj_net.dst_port = 443;
    e.amount = static_cast<int64_t>(amount(rng));
    out.push_back(std::move(e));
  }
  return out;
}

/// Synthetic stream of process-start events: `parents` parent processes
/// spawning children from a pool of `children` names.
inline EventBatch ProcStartStream(size_t n, int parents, int children,
                                  Duration gap = 100 * kMillisecond) {
  EventBatch out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.id = i + 1;
    e.ts = static_cast<Timestamp>(i) * gap;
    e.agent_id = "host-1";
    int p = static_cast<int>(i) % parents;
    e.subject.exe_name = "parent" + std::to_string(p) + ".exe";
    e.subject.pid = 2000 + p;
    e.op = EventOp::kStart;
    e.object_type = EntityType::kProcess;
    int c = static_cast<int>(i / static_cast<size_t>(parents)) % children;
    e.obj_proc.exe_name = "child" + std::to_string(c) + ".exe";
    e.obj_proc.pid = 3000 + c;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace bench
}  // namespace saql

#endif  // SAQL_BENCH_BENCH_UTIL_H_
