// E13: end-to-end detection latency. Two measurements:
//   1. The wall-clock cost of the single event that completes the paper's
//      Query 1 attack sequence (partial match primed, then the exfil event
//      arrives) — the "needle" latency from event to alert.
//   2. Full-run latency: how long the engine takes to chew through the
//      whole attack stream with all 8 demo queries deployed, and the
//      sustained events/second that implies.
// Expected shape: rule alerts fire within the processing of the matching
// event itself (microseconds); stateful alerts are bounded by the window
// slide, which event-time replay makes visible in alert timestamps rather
// than wall time.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "collect/enterprise_sim.h"
#include "engine/compiled_query.h"
#include "engine/engine.h"

namespace saql {
namespace {

Event MakeEvent(const char* subj, int64_t pid, EventOp op, Timestamp ts) {
  Event e;
  e.ts = ts;
  e.agent_id = "db-server-01";
  e.subject.exe_name = subj;
  e.subject.pid = pid;
  e.op = op;
  return e;
}

void BM_RuleAlertLatency(benchmark::State& state) {
  // Prime Query 1's partial match with the first three steps, then time
  // the completing exfiltration event (forking keeps the 3-step partial
  // alive, so every iteration completes a fresh match).
  Result<AnalyzedQueryPtr> aq =
      CompileSaql(bench::ReadQueryFile("query1_rule.saql"));
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<CompiledQuery>> q =
      CompiledQuery::Create(aq.value(), "q1");
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  uint64_t alerts = 0;
  (*q)->SetAlertSink([&](const Alert&) { ++alerts; });

  Event e1 = MakeEvent("cmd.exe", 11, EventOp::kStart, 100);
  e1.object_type = EntityType::kProcess;
  e1.obj_proc = {12, "osql.exe", "user"};
  Event e2 = MakeEvent("sqlservr.exe", 13, EventOp::kWrite, 200);
  e2.object_type = EntityType::kFile;
  e2.obj_file.path = "C:\\MSSQL\\Backup\\backup1.dmp";
  Event e3 = MakeEvent("sbblv.exe", 14, EventOp::kRead, 300);
  e3.object_type = EntityType::kFile;
  e3.obj_file.path = "C:\\MSSQL\\Backup\\backup1.dmp";
  Event e4 = MakeEvent("sbblv.exe", 14, EventOp::kWrite, 400);
  e4.object_type = EntityType::kNetwork;
  e4.obj_net = {"10.10.0.9", "66.77.88.129", 49001, 443, "tcp"};
  e4.amount = 2500000;

  (*q)->OnEvent(e1);
  (*q)->OnEvent(e2);
  (*q)->OnEvent(e3);
  for (auto _ : state) {
    (*q)->OnEvent(e4);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["alerts"] = static_cast<double>(alerts);
}
BENCHMARK(BM_RuleAlertLatency);

void BM_FullDemoRun(benchmark::State& state) {
  static const EventBatch* stream = [] {
    EnterpriseSimulator::Options opts;
    opts.num_workstations = 3;
    opts.duration = 30 * kMinute;
    opts.events_per_host_per_second = 10;
    opts.attack_offset = 12 * kMinute;
    EnterpriseSimulator sim(opts);
    return new EventBatch(sim.Generate());
  }();
  const char* const files[] = {
      "apt/r1_initial_compromise.saql", "apt/r2_malware_infection.saql",
      "apt/r3_privilege_escalation.saql", "apt/r4_penetration.saql",
      "query1_rule.saql", "apt/a6_invariant_excel.saql",
      "apt/a7_timeseries_network.saql", "apt/a8_outlier_dbscan.saql"};
  uint64_t alerts = 0;
  for (auto _ : state) {
    SaqlEngine engine;
    int i = 0;
    for (const char* f : files) {
      Status st =
          engine.AddQuery(bench::ReadQueryFile(f), "q" + std::to_string(i++));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    engine.SetAlertSink([&](const Alert&) { ++alerts; });
    VectorEventSource source(*stream);
    Status st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream->size()));
  state.counters["alerts_per_run"] =
      static_cast<double>(alerts) / static_cast<double>(state.iterations());
  state.counters["stream_events"] = static_cast<double>(stream->size());
}
BENCHMARK(BM_FullDemoRun)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
