// E7: the master-dependent-query scheme (§II-C) under concurrent load.
// N semantically compatible queries (same structural shape, different
// attribute constraints) run over one stream, with the scheduler's
// grouping enabled vs disabled. The paper reports >20% CPU and ~30%
// memory savings from sharing one stream copy per group; the shapes to
// look for here:
//   - grouped deliveries stay flat as N grows (one per event),
//     ungrouped deliveries grow linearly (N per event);
//   - grouped wall time grows sub-linearly in N because the shared
//     structural filter runs once per event.

#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"

namespace saql {
namespace {

constexpr size_t kStreamSize = 100000;

const EventBatch& Stream() {
  // 60% of events are file ops the net-write queries structurally reject —
  // the shared master filter discards those once per group.
  static const EventBatch* stream = [] {
    EventBatch net = bench::NetWriteStream(kStreamSize * 2 / 5, 50, 20);
    EventBatch out;
    out.reserve(kStreamSize);
    size_t net_i = 0;
    for (size_t i = 0; i < kStreamSize; ++i) {
      if (i % 5 < 2 && net_i < net.size()) {
        out.push_back(net[net_i++]);
      } else {
        Event e;
        e.id = i;
        e.ts = static_cast<Timestamp>(i) * 40 * kMillisecond;
        e.agent_id = "db-server-01";
        e.subject.exe_name = "writer.exe";
        e.subject.pid = 1;
        e.op = EventOp::kRead;
        e.object_type = EntityType::kFile;
        e.obj_file.path = "/data/file" + std::to_string(i % 100);
        out.push_back(std::move(e));
      }
    }
    for (size_t i = 0; i < out.size(); ++i) {
      out[i].ts = static_cast<Timestamp>(i) * 40 * kMillisecond;
      out[i].id = i + 1;
    }
    return new EventBatch(std::move(out));
  }();
  return *stream;
}

std::string NthQuery(int n) {
  return "proc p[\"%proc" + std::to_string(n % 50) +
         ".exe\"] write ip i as e alert e.amount > " +
         std::to_string(50000 + n * 1000) + " return distinct p, i";
}

void RunConcurrent(benchmark::State& state, bool grouping) {
  int num_queries = static_cast<int>(state.range(0));
  const EventBatch& events = Stream();
  uint64_t deliveries = 0;
  uint64_t groups = 0;
  for (auto _ : state) {
    SaqlEngine::Options opts;
    opts.enable_grouping = grouping;
    SaqlEngine engine(opts);
    for (int i = 0; i < num_queries; ++i) {
      Status st = engine.AddQuery(NthQuery(i), "q" + std::to_string(i));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    engine.SetAlertSink([](const Alert&) {});
    VectorEventSource source(events);
    Status st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    deliveries += engine.executor_stats().deliveries;
    groups = engine.num_groups();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
  state.counters["stream_deliveries_per_event"] =
      static_cast<double>(deliveries) /
      static_cast<double>(state.iterations() * kStreamSize);
  state.counters["groups"] = static_cast<double>(groups);
  state.counters["queries"] = static_cast<double>(num_queries);
}

void BM_MasterDependentScheme(benchmark::State& state) {
  RunConcurrent(state, /*grouping=*/true);
}
BENCHMARK(BM_MasterDependentScheme)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_IndependentQueries(benchmark::State& state) {
  RunConcurrent(state, /*grouping=*/false);
}
BENCHMARK(BM_IndependentQueries)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
