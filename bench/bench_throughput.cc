// E6: engine throughput (events/second) per anomaly model type over a
// uniform synthetic stream, against two baselines: the bare streaming
// substrate (no query) and a structural-filter-only query. This is the
// per-model throughput figure of the full SAQL paper's evaluation; the
// expected shape is substrate >> rule > time-series > outlier, with all
// models sustaining well beyond the paper's reported input rates
// (~110K events/s collected from 150 hosts).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"

namespace saql {
namespace {

constexpr size_t kStreamSize = 200000;

const EventBatch& Stream() {
  static const EventBatch* stream =
      new EventBatch(bench::NetWriteStream(kStreamSize, 50, 20));
  return *stream;
}

/// No-query baseline: raw substrate dispatch cost.
class NullProcessor : public EventProcessor {
 public:
  void OnEvent(const Event& event) override {
    benchmark::DoNotOptimize(event.amount);
  }
  void OnWatermark(Timestamp) override {}
  void OnFinish() override {}
};

void BM_SubstrateOnly(benchmark::State& state) {
  // Shared source, rewound per iteration: measures dispatch, not stream
  // copies (and events intern once, as in a live deployment).
  static VectorEventSource* source = new VectorEventSource(Stream());
  for (auto _ : state) {
    StreamExecutor exec;
    NullProcessor p;
    exec.Subscribe(&p);
    source->Reset();
    exec.Run(source);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
}
BENCHMARK(BM_SubstrateOnly)->Unit(benchmark::kMillisecond);

void RunQueryThroughput(benchmark::State& state, const std::string& query) {
  static VectorEventSource* source = new VectorEventSource(Stream());
  for (auto _ : state) {
    SaqlEngine engine;
    Status st = engine.AddQuery(query, "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    engine.SetAlertSink([](const Alert&) {});
    source->Reset();
    st = engine.Run(source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
}

void BM_RuleModel(benchmark::State& state) {
  RunQueryThroughput(state,
                     "proc p[\"%proc7.exe\"] write ip i as e "
                     "alert e.amount > 100000 return p, i");
}
BENCHMARK(BM_RuleModel)->Unit(benchmark::kMillisecond);

void BM_RuleModelSequence(benchmark::State& state) {
  RunQueryThroughput(state,
                     "proc a[\"%proc3.exe\"] write ip i as e1 "
                     "proc b[\"%proc5.exe\"] write ip j as e2 "
                     "with e1 ->[1 s] e2 "
                     "return distinct a, b");
}
BENCHMARK(BM_RuleModelSequence)->Unit(benchmark::kMillisecond);

void BM_TimeSeriesModel(benchmark::State& state) {
  RunQueryThroughput(
      state,
      "proc p write ip i as e #time(10 min) "
      "state[3] ss { avg_amount := avg(e.amount) } group by p "
      "alert (ss[0].avg_amount > (ss[0].avg_amount + |ss[1].avg_amount| + "
      "|ss[2].avg_amount|) / 3) && (ss[0].avg_amount > 10000) "
      "return p, ss[0].avg_amount");
}
BENCHMARK(BM_TimeSeriesModel)->Unit(benchmark::kMillisecond);

void BM_InvariantModel(benchmark::State& state) {
  RunQueryThroughput(
      state,
      "proc p write ip i as e #time(1 min) "
      "state ss { ips := set(i.dstip) } group by p "
      "invariant[10][offline] { a := empty_set a = a union ss.ips } "
      "alert |ss.ips diff a| > 0 "
      "return p, ss.ips");
}
BENCHMARK(BM_InvariantModel)->Unit(benchmark::kMillisecond);

void BM_OutlierModel(benchmark::State& state) {
  RunQueryThroughput(
      state,
      "proc p write ip i as e #time(10 min) "
      "state ss { amt := sum(e.amount) } group by i.dstip "
      "cluster(points=all(ss.amt), distance=\"ed\", "
      "method=\"DBSCAN(100000, 5)\") "
      "alert cluster.outlier && ss.amt > 1000000 "
      "return i.dstip, ss.amt");
}
BENCHMARK(BM_OutlierModel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
