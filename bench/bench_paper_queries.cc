// E1-E4: cost of each of the paper's four queries (§II-B, Queries 1-4)
// over the realistic enterprise stream with the APT attack injected. These
// are the per-model-type data points of the full paper's evaluation; the
// expected shape is rule < time-series < invariant < outlier in per-event
// cost (pattern matching is cheap; DBSCAN per window is the most
// expensive stage).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "collect/enterprise_sim.h"
#include "engine/engine.h"

namespace saql {
namespace {

const EventBatch& AttackStream() {
  static const EventBatch* stream = [] {
    EnterpriseSimulator::Options opts;
    opts.num_workstations = 3;
    opts.duration = 30 * kMinute;
    opts.events_per_host_per_second = 10;
    opts.attack_offset = 12 * kMinute;
    EnterpriseSimulator sim(opts);
    return new EventBatch(sim.Generate());
  }();
  return *stream;
}

void RunPaperQuery(benchmark::State& state, const std::string& file) {
  const EventBatch& events = AttackStream();
  uint64_t alerts = 0;
  for (auto _ : state) {
    SaqlEngine engine;
    Status st = engine.AddQuery(bench::ReadQueryFile(file), "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    VectorEventSource source(events);
    st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    alerts += engine.alerts().size();
    benchmark::DoNotOptimize(engine.alerts());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
  state.counters["alerts_per_run"] =
      static_cast<double>(alerts) / static_cast<double>(state.iterations());
  state.counters["stream_events"] = static_cast<double>(events.size());
}

void BM_Query1_RuleExfiltration(benchmark::State& state) {
  RunPaperQuery(state, "query1_rule.saql");
}
BENCHMARK(BM_Query1_RuleExfiltration)->Unit(benchmark::kMillisecond);

void BM_Query2_TimeSeriesSma(benchmark::State& state) {
  RunPaperQuery(state, "apt/a7_timeseries_network.saql");
}
BENCHMARK(BM_Query2_TimeSeriesSma)->Unit(benchmark::kMillisecond);

void BM_Query3_InvariantApache(benchmark::State& state) {
  RunPaperQuery(state, "query3_invariant.saql");
}
BENCHMARK(BM_Query3_InvariantApache)->Unit(benchmark::kMillisecond);

void BM_Query4_OutlierDbscan(benchmark::State& state) {
  RunPaperQuery(state, "query4_outlier.saql");
}
BENCHMARK(BM_Query4_OutlierDbscan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
