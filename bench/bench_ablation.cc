// Ablations for the design choices DESIGN.md calls out:
//   A1 LIKE fast paths — suffix/prefix/contains patterns take O(1)-ish
//      compares instead of the general backtracking matcher.
//   A2 Executor batch size — watermark (and window-close sweep) frequency
//      is per batch; tiny batches pay for frequent close scans.
//   A3 Reorder buffer — cost of tolerating out-of-order agent feeds.
//   A4 1-D DBSCAN fast path — covered in bench_dbscan (1D vs 2D).
//   A5 Op/entity dispatch routing — events reach only groups whose master
//      pattern can match them vs broadcast to every group.
//   A6 Shard scaling — the hash-partitioned executor at 1/2/4/8 lanes over
//      the 8-query stateful workload (per-shard replicas + cross-shard
//      window merge). The 1-lane point runs the full sharded pipeline
//      (force_sharded_executor), so the sweep isolates scaling from
//      splitter overhead; compare BM_RoutingEnabled/8 for the plain
//      single-threaded executor. Interpret events/s against the `cores`
//      counter — on a 1-core container the sweep can only show queueing
//      overhead, not speedup.
//   A7 Member-side matching — the shared per-group ConstraintIndex vs
//      brute-force member loops at 8/32/128/512 queries over a
//      multi-tenant few-shapes workload (exact-equality tenant
//      constraints + shared numeric residuals). This is the regime the A5
//      sweep exposed: with routing on, residual member matching dominates
//      as queries grow.
//   A8 Dynamic query churn — the session API's mid-stream
//      AddQuery/RemoveQuery (group patching + ConstraintIndex rebuild +
//      dispatch re-registration) at K = 0/4/16/64 queries churned per
//      stream chunk over a static 64-tenant base set. K=0 is the
//      no-churn session baseline; the sweep prices what a live
//      multi-tenant deployment pays for analysts joining and leaving
//      mid-stream.
//   A12 Concurrent sessions — aggregate throughput when 1/2/4/8 isolated
//      tenant sessions of one engine stream from independent threads
//      (shared process-wide interner, per-session everything else), plus
//      the rotation hiccup: the same drive with the live interner
//      rotation policy forced on at every quiesce point, so each push
//      pays the re-intern/re-index heal.
//   Baseline file: run with
//     --benchmark_filter='Routing|ShardScaling|MemberIndex|DynamicChurn|ConcurrentSessions'
//     --benchmark_out=BENCH_throughput.json --benchmark_out_format=json
//   to refresh the checked-in throughput baseline.

#include <atomic>
#include <random>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/interner.h"
#include "core/like_matcher.h"
#include "engine/engine.h"
#include "stream/reorder_buffer.h"

namespace saql {
namespace {

// ---------------------------------------------------------------------------
// A1: LIKE fast paths.
// ---------------------------------------------------------------------------

std::vector<std::string> Paths(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back("C:\\Windows\\System32\\dir" + std::to_string(i % 50) +
                  "\\app" + std::to_string(i % 1000) + ".exe");
  }
  return out;
}

void BM_LikeSuffixFastPath(benchmark::State& state) {
  LikeMatcher m("%cmd.exe");  // suffix fast path
  auto paths = Paths(10000);
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& p : paths) hits += m.Matches(p);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_LikeSuffixFastPath)->Unit(benchmark::kMicrosecond);

void BM_LikeGeneralBacktracking(benchmark::State& state) {
  LikeMatcher m("%c%m%d%.exe");  // forces the general matcher
  auto paths = Paths(10000);
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& p : paths) hits += m.Matches(p);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_LikeGeneralBacktracking)->Unit(benchmark::kMicrosecond);

void BM_LikeExact(benchmark::State& state) {
  LikeMatcher m("c:\\windows\\system32\\dir1\\app1.exe");
  auto paths = Paths(10000);
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& p : paths) hits += m.Matches(p);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_LikeExact)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// A2: executor batch size.
// ---------------------------------------------------------------------------

void BM_BatchSizeSweep(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  static const EventBatch* events =
      new EventBatch(bench::NetWriteStream(100000, 50, 20));
  const char* query =
      "proc p write ip i as e #time(10 s) "
      "state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 100000000 return p, ss.amt";
  for (auto _ : state) {
    SaqlEngine::Options opts;
    opts.batch_size = batch;
    SaqlEngine engine(opts);
    Status st = engine.AddQuery(query, "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    engine.SetAlertSink([](const Alert&) {});
    VectorEventSource source(*events);
    st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_BatchSizeSweep)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A3: reorder buffer overhead.
// ---------------------------------------------------------------------------

void BM_ReorderBufferPassThrough(benchmark::State& state) {
  // Ordered input: measures the pure bookkeeping cost of the buffer.
  static const EventBatch* events =
      new EventBatch(bench::NetWriteStream(100000, 50, 20));
  for (auto _ : state) {
    ReorderBuffer buf(kSecond);
    EventBatch out;
    out.reserve(1024);
    size_t total = 0;
    for (const Event& e : *events) {
      out.clear();
      buf.Push(e, &out);
      total += out.size();
    }
    out.clear();
    buf.Flush(&out);
    total += out.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_ReorderBufferPassThrough)->Unit(benchmark::kMillisecond);

void BM_ReorderBufferShuffledInput(benchmark::State& state) {
  // Bounded disorder: events jittered within +/-500ms.
  static const EventBatch* events = [] {
    EventBatch e = bench::NetWriteStream(100000, 50, 20);
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<Duration> jitter(-500 * kMillisecond,
                                                   500 * kMillisecond);
    for (Event& ev : e) ev.ts += jitter(rng);
    return new EventBatch(std::move(e));
  }();
  for (auto _ : state) {
    ReorderBuffer buf(2 * kSecond);
    EventBatch out;
    size_t total = 0;
    for (const Event& e : *events) {
      out.clear();
      buf.Push(e, &out);
      total += out.size();
    }
    out.clear();
    buf.Flush(&out);
    total += out.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_ReorderBufferShuffledInput)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A5: op/entity dispatch routing vs broadcast delivery.
// ---------------------------------------------------------------------------

/// A realistic concurrent-SOC workload: queries over 8 distinct structural
/// shapes, two per shape (grouping merges them into 8 scheduler groups).
std::vector<std::string> ConcurrentWorkloadQueries(int n) {
  // (subject-suffix, op spelling, object) per structural shape.
  static const char* const kShapes[][2] = {
      {"write", "ip i"},    {"connect", "ip i"},  {"recv", "ip i"},
      {"read", "file f"},   {"write", "file f"},  {"delete", "file f"},
      {"start", "proc q"},  {"kill", "proc q"},
  };
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& shape = kShapes[i % 8];
    out.push_back("proc p[\"%app" + std::to_string(i % 50) +
                  ".exe\"] " + shape[0] + " " + shape[1] +
                  " as e return distinct p");
  }
  return out;
}

/// 30% of events hit one of the workload's 8 shapes; 70% are monitoring
/// noise (chmod/rename/send/execute) no registered query can match — the
/// traffic a dispatch index discards without touching any group.
const EventBatch& ConcurrentWorkloadStream() {
  static const EventBatch* stream = [] {
    constexpr size_t kN = 200000;
    std::mt19937_64 rng(11);
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<int> pick8(0, 7);
    std::uniform_int_distribution<int> pick4(0, 3);
    std::uniform_int_distribution<int> proc(0, 49);
    auto* out = new EventBatch();
    out->reserve(kN);
    for (size_t i = 0; i < kN; ++i) {
      Event e;
      e.id = i + 1;
      e.ts = static_cast<Timestamp>(i) * 10 * kMillisecond;
      e.agent_id = "db-server-01";
      e.subject.pid = 1000 + proc(rng);
      e.subject.exe_name = "app" + std::to_string(proc(rng)) + ".exe";
      if (pct(rng) < 30) {
        static const std::pair<EventOp, EntityType> kShapes[8] = {
            {EventOp::kWrite, EntityType::kNetwork},
            {EventOp::kConnect, EntityType::kNetwork},
            {EventOp::kRecv, EntityType::kNetwork},
            {EventOp::kRead, EntityType::kFile},
            {EventOp::kWrite, EntityType::kFile},
            {EventOp::kDelete, EntityType::kFile},
            {EventOp::kStart, EntityType::kProcess},
            {EventOp::kKill, EntityType::kProcess},
        };
        const auto& [op, type] = kShapes[pick8(rng)];
        e.op = op;
        e.object_type = type;
      } else {
        static const std::pair<EventOp, EntityType> kNoise[4] = {
            {EventOp::kChmod, EntityType::kFile},
            {EventOp::kRename, EntityType::kFile},
            {EventOp::kSend, EntityType::kNetwork},
            {EventOp::kExecute, EntityType::kFile},
        };
        const auto& [op, type] = kNoise[pick4(rng)];
        e.op = op;
        e.object_type = type;
      }
      switch (e.object_type) {
        case EntityType::kProcess:
          e.obj_proc.exe_name = "child" + std::to_string(proc(rng)) + ".exe";
          e.obj_proc.pid = 5000 + proc(rng);
          break;
        case EntityType::kFile:
          e.obj_file.path = "/data/file" + std::to_string(i % 200);
          break;
        case EntityType::kNetwork:
          e.obj_net.src_ip = "10.0.0.1";
          e.obj_net.dst_ip = "10.0.0." + std::to_string(i % 50 + 2);
          e.obj_net.dst_port = 443;
          break;
      }
      e.amount = 1000 + static_cast<int64_t>(i % 1000);
      out->push_back(std::move(e));
    }
    return out;
  }();
  return *stream;
}

void RunRoutingAblation(benchmark::State& state, bool routing) {
  int num_queries = static_cast<int>(state.range(0));
  // One shared source, rewound per iteration: measures the dispatch loop,
  // not stream materialization (and events intern exactly once).
  static VectorEventSource* source =
      new VectorEventSource(ConcurrentWorkloadStream());
  const size_t stream_size = source->size();
  std::vector<std::string> queries = ConcurrentWorkloadQueries(num_queries);
  uint64_t deliveries = 0;
  uint64_t skips = 0;
  for (auto _ : state) {
    SaqlEngine::Options opts;
    opts.enable_routing = routing;
    SaqlEngine engine(opts);
    for (int i = 0; i < num_queries; ++i) {
      Status st = engine.AddQuery(queries[static_cast<size_t>(i)],
                                  "q" + std::to_string(i));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    engine.SetAlertSink([](const Alert&) {});
    source->Reset();
    Status st = engine.Run(source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    deliveries += engine.executor_stats().deliveries;
    skips += engine.executor_stats().routed_skips;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream_size));
  double per_event =
      static_cast<double>(state.iterations()) * stream_size;
  state.counters["deliveries_per_event"] =
      static_cast<double>(deliveries) / per_event;
  state.counters["routed_skips_per_event"] =
      static_cast<double>(skips) / per_event;
  state.counters["queries"] = static_cast<double>(num_queries);
}

void BM_RoutingEnabled(benchmark::State& state) {
  RunRoutingAblation(state, /*routing=*/true);
}
BENCHMARK(BM_RoutingEnabled)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_RoutingDisabledBroadcast(benchmark::State& state) {
  RunRoutingAblation(state, /*routing=*/false);
}
BENCHMARK(BM_RoutingDisabledBroadcast)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A7: shared member-matching constraint index vs brute-force member loops.
// ---------------------------------------------------------------------------

/// Multi-tenant few-shapes workload: `n` stateless queries spread over 4
/// structural shapes (so grouping yields 4 big groups of n/4 members).
/// Each tenant watches its own executable with exact interned equality —
/// the index resolves all of a group's tenants with one symbol probe per
/// event — and every 4th tenant adds a shared numeric residual that the
/// index evaluates once per event instead of once per member.
std::vector<std::string> MemberIndexWorkloadQueries(int n) {
  static const char* const kShapes[][2] = {
      {"write", "ip i"},
      {"read", "file f"},
      {"write", "file f"},
      {"start", "proc q"},
  };
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& shape = kShapes[i % 4];
    std::string subj =
        "exe_name = \"tenant" + std::to_string(i / 4) + ".exe\"";
    if (i % 4 == 1) subj += ", pid > 1000";
    out.push_back("proc p[" + subj + "] " + shape[0] + " " + shape[1] +
                  " as e return distinct p");
  }
  return out;
}

/// Every event hits one of the workload's 4 shapes (the dispatch index
/// forwards nearly everything — member-side matching is the bottleneck
/// under measurement). Subjects cycle over 160 tenant executables, so at
/// 512 queries most events match exactly one member per group.
const EventBatch& MemberIndexWorkloadStream() {
  static const EventBatch* stream = [] {
    constexpr size_t kN = 200000;
    std::mt19937_64 rng(23);
    std::uniform_int_distribution<int> tenant(0, 159);
    std::uniform_int_distribution<int> pick4(0, 3);
    std::uniform_int_distribution<int> pid(900, 1299);
    static const std::pair<EventOp, EntityType> kShapes[4] = {
        {EventOp::kWrite, EntityType::kNetwork},
        {EventOp::kRead, EntityType::kFile},
        {EventOp::kWrite, EntityType::kFile},
        {EventOp::kStart, EntityType::kProcess},
    };
    auto* out = new EventBatch();
    out->reserve(kN);
    for (size_t i = 0; i < kN; ++i) {
      Event e;
      e.id = i + 1;
      e.ts = static_cast<Timestamp>(i) * 10 * kMillisecond;
      e.agent_id = "edge-" + std::to_string(i % 9);
      e.subject.exe_name =
          "tenant" + std::to_string(tenant(rng)) + ".exe";
      e.subject.pid = pid(rng);
      e.subject.user = (i % 2 == 0) ? "svc" : "alice";
      const auto& [op, type] = kShapes[pick4(rng)];
      e.op = op;
      e.object_type = type;
      switch (type) {
        case EntityType::kProcess:
          e.obj_proc.exe_name = "worker.exe";
          e.obj_proc.pid = 4000 + static_cast<int64_t>(i % 50);
          break;
        case EntityType::kFile:
          e.obj_file.path = "/srv/data/file" + std::to_string(i % 200);
          break;
        case EntityType::kNetwork:
          e.obj_net.src_ip = "10.1.9.9";
          e.obj_net.dst_ip = "10.1.0." + std::to_string(i % 40 + 1);
          e.obj_net.dst_port = 443;
          break;
      }
      e.amount = 512 + static_cast<int64_t>(i % 2048);
      out->push_back(std::move(e));
    }
    return out;
  }();
  return *stream;
}

void RunMemberIndexAblation(benchmark::State& state, bool member_index) {
  int num_queries = static_cast<int>(state.range(0));
  static VectorEventSource* source =
      new VectorEventSource(MemberIndexWorkloadStream());
  const size_t stream_size = source->size();
  std::vector<std::string> queries = MemberIndexWorkloadQueries(num_queries);
  size_t indexed_groups = 0;
  for (auto _ : state) {
    SaqlEngine::Options opts;
    opts.enable_member_index = member_index;
    SaqlEngine engine(opts);
    for (int i = 0; i < num_queries; ++i) {
      Status st = engine.AddQuery(queries[static_cast<size_t>(i)],
                                  "t" + std::to_string(i));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    engine.SetAlertSink([](const Alert&) {});
    source->Reset();
    Status st = engine.Run(source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    indexed_groups = engine.num_indexed_groups();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream_size));
  state.counters["queries"] = static_cast<double>(num_queries);
  state.counters["indexed_groups"] = static_cast<double>(indexed_groups);
}

void BM_MemberIndexEnabled(benchmark::State& state) {
  RunMemberIndexAblation(state, /*member_index=*/true);
}
BENCHMARK(BM_MemberIndexEnabled)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_MemberIndexDisabledBrute(benchmark::State& state) {
  RunMemberIndexAblation(state, /*member_index=*/false);
}
BENCHMARK(BM_MemberIndexDisabledBrute)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A8: dynamic query churn through the session API.
// ---------------------------------------------------------------------------

/// A live session over the multi-tenant workload: 64 static tenant
/// queries, the stream pushed in 8 chunks, and at each chunk boundary K
/// fresh tenant queries attach while the previous boundary's K retract —
/// the add path rebuilds the affected group's ConstraintIndex over the
/// widened member list and the remove path tears membership back down, so
/// the sweep isolates the cost of mid-stream query churn against the K=0
/// no-churn session baseline.
void BM_DynamicChurn(benchmark::State& state) {
  const int churn = static_cast<int>(state.range(0));
  constexpr int kBaseQueries = 64;
  constexpr size_t kChunks = 8;
  static EventBatch* stream = new EventBatch(MemberIndexWorkloadStream());
  std::vector<std::string> base = MemberIndexWorkloadQueries(kBaseQueries);
  // Churned query texts, generated outside the timed region: only the
  // parse+compile+attach (and teardown) cost belongs to the measurement.
  std::vector<std::string> fresh;
  {
    std::vector<std::string> all =
        MemberIndexWorkloadQueries(kBaseQueries + churn);
    fresh.assign(all.begin() + kBaseQueries, all.end());
  }
  const size_t chunk = stream->size() / kChunks;
  uint64_t adds = 0, removes = 0;
  for (auto _ : state) {
    SaqlEngine engine;
    engine.SetAlertSink([](const Alert&) {});
    for (int i = 0; i < kBaseQueries; ++i) {
      Status st = engine.AddQuery(base[static_cast<size_t>(i)],
                                  "t" + std::to_string(i));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    auto session = engine.OpenSession();
    if (!session.ok()) {
      state.SkipWithError(session.status().ToString().c_str());
      return;
    }
    std::vector<std::string> last_added;
    for (size_t c = 0; c < kChunks; ++c) {
      size_t begin = c * chunk;
      size_t n = c + 1 == kChunks ? stream->size() - begin : chunk;
      Status st = (*session)->Push(stream->data() + begin, n);
      if (st.ok()) {
        st = (*session)->AdvanceWatermark((*session)->max_event_ts());
      }
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      if (churn == 0 || c + 1 == kChunks) continue;
      for (const std::string& name : last_added) {
        st = (*session)->RemoveQuery(name);
        if (!st.ok()) {
          state.SkipWithError(st.ToString().c_str());
          return;
        }
        ++removes;
      }
      last_added.clear();
      // Fresh tenants in the workload's shapes; names are unique for the
      // session's lifetime, so they carry the chunk number.
      for (int j = 0; j < churn; ++j) {
        std::string name =
            "c" + std::to_string(c) + "_" + std::to_string(j);
        auto h = (*session)->AddQuery(fresh[static_cast<size_t>(j)], name);
        if (!h.ok()) {
          state.SkipWithError(h.status().ToString().c_str());
          return;
        }
        last_added.push_back(name);
        ++adds;
      }
    }
    Status st = (*session)->Close();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream->size()));
  state.counters["churn_per_boundary"] = static_cast<double>(churn);
  state.counters["adds"] = static_cast<double>(adds);
  state.counters["removes"] = static_cast<double>(removes);
  state.counters["base_queries"] = static_cast<double>(kBaseQueries);
}
BENCHMARK(BM_DynamicChurn)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A12: concurrent multi-tenant sessions.
// ---------------------------------------------------------------------------

/// K sessions of one engine, each driven from its own thread over the
/// full multi-tenant stream (16 tenant queries, single-lane sessions so
/// the sweep measures session concurrency, not shard parallelism).
/// Items processed = K * stream size per iteration, so events/s is the
/// *aggregate* across tenants. `rotate_bytes != 0` forces the live
/// interner rotation policy (1 byte = rotate at every quiesce check):
/// every push rotates the global table and every session re-interns its
/// constraint symbols and rebuilds its probe groups at its next push —
/// the worst-case rotation hiccup, reported via the `rotations` counter.
void RunConcurrentSessions(benchmark::State& state, size_t rotate_bytes) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  static constexpr size_t kChunk = 4096;
  static EventBatch* stream = new EventBatch(MemberIndexWorkloadStream());
  std::vector<std::string> queries = MemberIndexWorkloadQueries(16);
  uint64_t rotations = 0;
  for (auto _ : state) {
    SaqlEngine::Options opts;
    opts.interner_rotate_bytes = rotate_bytes;
    SaqlEngine engine(opts);
    engine.SetAlertSink([](const Alert&) {});
    for (size_t i = 0; i < queries.size(); ++i) {
      Status st = engine.AddQuery(queries[i], "t" + std::to_string(i));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    const uint64_t gen_before = Interner::Global().generation();
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&engine, &failed] {
        auto session = engine.OpenSession();
        if (!session.ok()) {
          failed = true;
          return;
        }
        for (size_t pos = 0; pos < stream->size(); pos += kChunk) {
          size_t n = std::min(kChunk, stream->size() - pos);
          Status st = (*session)->Push(stream->data() + pos, n);
          if (st.ok()) {
            st = (*session)->AdvanceWatermark((*session)->max_event_ts());
          }
          if (!st.ok()) {
            failed = true;
            break;
          }
        }
        if (!(*session)->Close().ok()) failed = true;
      });
    }
    for (std::thread& t : threads) t.join();
    if (failed.load()) {
      state.SkipWithError("session drive failed");
      return;
    }
    rotations += Interner::Global().generation() - gen_before;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sessions) *
                          static_cast<int64_t>(stream->size()));
  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["rotations"] = static_cast<double>(rotations);
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void BM_ConcurrentSessions(benchmark::State& state) {
  RunConcurrentSessions(state, /*rotate_bytes=*/0);
}
BENCHMARK(BM_ConcurrentSessions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ConcurrentSessionsRotating(benchmark::State& state) {
  RunConcurrentSessions(state, /*rotate_bytes=*/1);
}
BENCHMARK(BM_ConcurrentSessionsRotating)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// A6: shard scaling (hash-partitioned executor, 1/2/4/8 lanes).
// ---------------------------------------------------------------------------

/// 8 stateful single-pattern queries, one per structural shape of the
/// concurrent workload: per-process sum of op volume in 10-second tumbling
/// windows. Stateful + time-windowed = the shard-mergeable class, so every
/// query runs replicated across all lanes with cross-shard window merging
/// (no global lane in this sweep).
std::vector<std::string> ShardScalingQueries() {
  static const char* const kShapes[][2] = {
      {"write", "ip i"},    {"connect", "ip i"},  {"recv", "ip i"},
      {"read", "file f"},   {"write", "file f"},  {"delete", "file f"},
      {"start", "proc q"},  {"kill", "proc q"},
  };
  std::vector<std::string> out;
  out.reserve(8);
  for (int i = 0; i < 8; ++i) {
    const auto& shape = kShapes[i];
    out.push_back(std::string("proc p ") + shape[0] + " " + shape[1] +
                  " as e #time(10 s) "
                  "state ss { amt := sum(e.amount) } group by p "
                  "alert ss.amt > 1000000000000 return p, ss.amt");
  }
  return out;
}

void BM_ShardScaling(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  static VectorEventSource* source =
      new VectorEventSource(ConcurrentWorkloadStream());
  const size_t stream_size = source->size();
  std::vector<std::string> queries = ShardScalingQueries();
  for (auto _ : state) {
    SaqlEngine::Options opts;
    opts.num_shards = shards;
    // 1 lane still runs the splitter/lane/merge pipeline so the sweep
    // measures scaling, not pipeline-vs-direct overhead.
    opts.force_sharded_executor = true;
    SaqlEngine engine(opts);
    for (size_t i = 0; i < queries.size(); ++i) {
      Status st = engine.AddQuery(queries[i], "q" + std::to_string(i));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    engine.SetAlertSink([](const Alert&) {});
    source->Reset();
    Status st = engine.Run(source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream_size));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ShardScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
