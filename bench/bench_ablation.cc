// Ablations for the design choices DESIGN.md calls out:
//   A1 LIKE fast paths — suffix/prefix/contains patterns take O(1)-ish
//      compares instead of the general backtracking matcher.
//   A2 Executor batch size — watermark (and window-close sweep) frequency
//      is per batch; tiny batches pay for frequent close scans.
//   A3 Reorder buffer — cost of tolerating out-of-order agent feeds.
//   A4 1-D DBSCAN fast path — covered in bench_dbscan (1D vs 2D).

#include <random>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/like_matcher.h"
#include "engine/engine.h"
#include "stream/reorder_buffer.h"

namespace saql {
namespace {

// ---------------------------------------------------------------------------
// A1: LIKE fast paths.
// ---------------------------------------------------------------------------

std::vector<std::string> Paths(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back("C:\\Windows\\System32\\dir" + std::to_string(i % 50) +
                  "\\app" + std::to_string(i % 1000) + ".exe");
  }
  return out;
}

void BM_LikeSuffixFastPath(benchmark::State& state) {
  LikeMatcher m("%cmd.exe");  // suffix fast path
  auto paths = Paths(10000);
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& p : paths) hits += m.Matches(p);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_LikeSuffixFastPath)->Unit(benchmark::kMicrosecond);

void BM_LikeGeneralBacktracking(benchmark::State& state) {
  LikeMatcher m("%c%m%d%.exe");  // forces the general matcher
  auto paths = Paths(10000);
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& p : paths) hits += m.Matches(p);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_LikeGeneralBacktracking)->Unit(benchmark::kMicrosecond);

void BM_LikeExact(benchmark::State& state) {
  LikeMatcher m("c:\\windows\\system32\\dir1\\app1.exe");
  auto paths = Paths(10000);
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& p : paths) hits += m.Matches(p);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_LikeExact)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// A2: executor batch size.
// ---------------------------------------------------------------------------

void BM_BatchSizeSweep(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  static const EventBatch* events =
      new EventBatch(bench::NetWriteStream(100000, 50, 20));
  const char* query =
      "proc p write ip i as e #time(10 s) "
      "state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 100000000 return p, ss.amt";
  for (auto _ : state) {
    SaqlEngine::Options opts;
    opts.batch_size = batch;
    SaqlEngine engine(opts);
    Status st = engine.AddQuery(query, "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    engine.SetAlertSink([](const Alert&) {});
    VectorEventSource source(*events);
    st = engine.Run(&source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_BatchSizeSweep)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A3: reorder buffer overhead.
// ---------------------------------------------------------------------------

void BM_ReorderBufferPassThrough(benchmark::State& state) {
  // Ordered input: measures the pure bookkeeping cost of the buffer.
  static const EventBatch* events =
      new EventBatch(bench::NetWriteStream(100000, 50, 20));
  for (auto _ : state) {
    ReorderBuffer buf(kSecond);
    EventBatch out;
    out.reserve(1024);
    size_t total = 0;
    for (const Event& e : *events) {
      out.clear();
      buf.Push(e, &out);
      total += out.size();
    }
    out.clear();
    buf.Flush(&out);
    total += out.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_ReorderBufferPassThrough)->Unit(benchmark::kMillisecond);

void BM_ReorderBufferShuffledInput(benchmark::State& state) {
  // Bounded disorder: events jittered within +/-500ms.
  static const EventBatch* events = [] {
    EventBatch e = bench::NetWriteStream(100000, 50, 20);
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<Duration> jitter(-500 * kMillisecond,
                                                   500 * kMillisecond);
    for (Event& ev : e) ev.ts += jitter(rng);
    return new EventBatch(std::move(e));
  }();
  for (auto _ : state) {
    ReorderBuffer buf(2 * kSecond);
    EventBatch out;
    size_t total = 0;
    for (const Event& e : *events) {
      out.clear();
      buf.Push(e, &out);
      total += out.size();
    }
    out.clear();
    buf.Flush(&out);
    total += out.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_ReorderBufferShuffledInput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
