// E9: multievent matcher scaling — per-event cost as a function of the
// temporal sequence length and the live partial-match population. Expected
// shapes: cost grows with sequence length (more steps to try) and with the
// number of live partials (each event probes every partial expecting its
// shape); gap bounds and pruning keep the population flat over time.

#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/compiled_pattern.h"
#include "engine/multievent_matcher.h"
#include "parser/analyzer.h"

namespace saql {
namespace {

/// Builds a k-step sequence query over process-start events:
/// parent0 starts child, parent1 starts child, ... with e0 -> e1 -> ...
std::string SequenceQuery(int steps) {
  std::string q;
  for (int i = 0; i < steps; ++i) {
    // Each step is selective (1-in-20 children), as real kill-chain
    // patterns are; otherwise the benchmark measures match-emission volume
    // rather than matching cost.
    q += "proc s" + std::to_string(i) + "[\"%parent" + std::to_string(i) +
         ".exe\"] start proc o" + std::to_string(i) + "[\"%child" +
         std::to_string(i % 20) + ".exe\"] as e" + std::to_string(i) + " ";
  }
  q += "with e0";
  for (int i = 1; i < steps; ++i) q += " -> e" + std::to_string(i);
  q += " return s0";
  return q;
}

struct CompiledMatcher {
  AnalyzedQueryPtr aq;
  std::vector<CompiledPattern> patterns;
  std::unique_ptr<MultieventMatcher> matcher;
};

CompiledMatcher Build(const std::string& query,
                      MultieventMatcher::Options options = {}) {
  CompiledMatcher out;
  out.aq = CompileSaql(query).value();
  for (const EventPatternDecl& p : out.aq->query->patterns) {
    out.patterns.emplace_back(p);
  }
  out.matcher = std::make_unique<MultieventMatcher>(out.aq, &out.patterns,
                                                    options);
  return out;
}

void BM_SequenceLength(benchmark::State& state) {
  int steps = static_cast<int>(state.range(0));
  EventBatch events = bench::ProcStartStream(20000, steps, 20);
  std::string query = SequenceQuery(steps);
  // Bound the partial population the way a windowed query would: partials
  // older than 10 seconds of event time cannot complete.
  MultieventMatcher::Options options;
  options.match_horizon = 10 * kSecond;
  uint64_t matches = 0;
  for (auto _ : state) {
    CompiledMatcher m = Build(query, options);
    std::vector<PatternMatch> out;
    size_t i = 0;
    for (const Event& e : events) {
      out.clear();
      m.matcher->OnEvent(e, &out);
      matches += out.size();
      if (++i % 1024 == 0) m.matcher->Prune(e.ts);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["matches"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SequenceLength)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_PartialMatchPopulation(benchmark::State& state) {
  // Selectivity of the first pattern controls the live population: every
  // `parent0` start opens a partial; the closing pattern never matches, so
  // the cap and horizon govern the population.
  size_t cap = static_cast<size_t>(state.range(0));
  EventBatch events = bench::ProcStartStream(20000, 2, 20);
  MultieventMatcher::Options options;
  options.max_partial_matches = cap;
  options.match_horizon = kHour;  // population governed by the cap alone
  std::string query =
      "proc a[\"%parent0.exe\"] start proc b as e1 "
      "proc c[\"%never.exe\"] start proc d as e2 "
      "with e1 -> e2 return a";
  for (auto _ : state) {
    CompiledMatcher m = Build(query, options);
    std::vector<PatternMatch> out;
    for (const Event& e : events) {
      out.clear();
      m.matcher->OnEvent(e, &out);
    }
    benchmark::DoNotOptimize(m.matcher->live_partials());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
  state.counters["partial_cap"] = static_cast<double>(cap);
}
BENCHMARK(BM_PartialMatchPopulation)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_SharedVariableBinding(benchmark::State& state) {
  // Shared-variable sequences pay key construction + binding checks.
  EventBatch events;
  size_t n = 50000;
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.id = i;
    e.ts = static_cast<Timestamp>(i) * 10 * kMillisecond;
    e.agent_id = "h";
    e.subject.exe_name = i % 2 == 0 ? "writer.exe" : "reader.exe";
    e.subject.pid = 100 + static_cast<int64_t>(i % 7);
    e.op = i % 2 == 0 ? EventOp::kWrite : EventOp::kRead;
    e.object_type = EntityType::kFile;
    e.obj_file.path = "/data/f" + std::to_string((i / 2) % 200);
    events.push_back(std::move(e));
  }
  std::string query =
      "proc a[\"%writer.exe\"] write file f as e1 "
      "proc b[\"%reader.exe\"] read file f as e2 "
      "with e1 ->[1 s] e2 return a, b, f";
  MultieventMatcher::Options options;
  options.match_horizon = 2 * kSecond;
  uint64_t matches = 0;
  for (auto _ : state) {
    CompiledMatcher m = Build(query, options);
    std::vector<PatternMatch> out;
    size_t i = 0;
    for (const Event& e : events) {
      out.clear();
      m.matcher->OnEvent(e, &out);
      matches += out.size();
      if (++i % 1024 == 0) m.matcher->Prune(e.ts);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
  state.counters["matches"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SharedVariableBinding)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
