// E11: query compile cost (lex + parse + semantic analysis) for the four
// paper queries and for synthetically large queries. Compilation happens
// once per registered query, so absolute numbers only need to be "cheap
// relative to stream startup" — microseconds.

#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parser/analyzer.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace saql {
namespace {

void RunCompileBench(benchmark::State& state, const std::string& text) {
  for (auto _ : state) {
    Result<AnalyzedQueryPtr> aq = CompileSaql(text);
    if (!aq.ok()) {
      state.SkipWithError(aq.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(aq.value().get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["query_bytes"] = static_cast<double>(text.size());
}

void BM_CompileQuery1(benchmark::State& state) {
  RunCompileBench(state, bench::ReadQueryFile("query1_rule.saql"));
}
BENCHMARK(BM_CompileQuery1);

void BM_CompileQuery2(benchmark::State& state) {
  RunCompileBench(state, bench::ReadQueryFile("query2_timeseries.saql"));
}
BENCHMARK(BM_CompileQuery2);

void BM_CompileQuery3(benchmark::State& state) {
  RunCompileBench(state, bench::ReadQueryFile("query3_invariant.saql"));
}
BENCHMARK(BM_CompileQuery3);

void BM_CompileQuery4(benchmark::State& state) {
  RunCompileBench(state, bench::ReadQueryFile("query4_outlier.saql"));
}
BENCHMARK(BM_CompileQuery4);

void BM_LexOnlyQuery1(benchmark::State& state) {
  std::string text = bench::ReadQueryFile("query1_rule.saql");
  for (auto _ : state) {
    Result<std::vector<Token>> tokens = TokenizeSaql(text);
    benchmark::DoNotOptimize(tokens.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LexOnlyQuery1);

void BM_CompileLargeSequence(benchmark::State& state) {
  // Synthetic query with range(0) event patterns chained by `with`.
  int patterns = static_cast<int>(state.range(0));
  std::string text;
  for (int i = 0; i < patterns; ++i) {
    text += "proc p" + std::to_string(i) + "[\"%app" + std::to_string(i) +
            ".exe\"] write file f" + std::to_string(i) + " as e" +
            std::to_string(i) + "\n";
  }
  text += "with e0";
  for (int i = 1; i < patterns; ++i) text += " -> e" + std::to_string(i);
  text += "\nreturn p0";
  RunCompileBench(state, text);
  state.counters["patterns"] = static_cast<double>(patterns);
}
BENCHMARK(BM_CompileLargeSequence)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
