// E6b ablation: SAQL's incremental state maintainer vs a buffer-and-
// recompute baseline modeled after general-purpose CEP engines. The paper
// (§I) argues existing stream systems "have to make multiple copies of the
// data for the queries"; this benchmark makes the cost concrete:
//
//   - kIncremental: the SAQL engine folds each matched event into per-group
//     aggregates in place (one pass, no event retention).
//   - kBuffered: the baseline copies every structurally matching event into
//     each window's buffer and recomputes group aggregates at window close
//     (what a windowed query on a generic event buffer does).
//
// Expected shape: buffered time grows with window length (larger replays)
// and its peak memory is proportional to events-per-window, while the
// incremental engine's state is O(groups), independent of window length.

#include <map>
#include <unordered_map>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"
#include "stream/window.h"

namespace saql {
namespace {

constexpr size_t kStreamSize = 200000;

const EventBatch& Stream() {
  static const EventBatch* stream =
      new EventBatch(bench::NetWriteStream(kStreamSize, 100, 20));
  return *stream;
}

/// The baseline: buffer event copies per window, recompute at close.
/// Implements the same query as the benchmark's SAQL text — per-process
/// sum of network-write volume with a threshold alert.
class BufferedWindowEvaluator : public EventProcessor {
 public:
  explicit BufferedWindowEvaluator(Duration window_len)
      : assigner_(MakeSpec(window_len)) {}

  void OnEvent(const Event& event) override {
    if (event.op != EventOp::kWrite ||
        event.object_type != EntityType::kNetwork) {
      return;
    }
    for (const TimeWindow& w : assigner_.Assign(event.ts)) {
      auto& buf = buffers_[w.end];
      buf.window = w;
      buf.events.push_back(event);  // the data copy the paper calls out
      ++events_copied_;
    }
    size_t total = 0;
    for (const auto& [end, b] : buffers_) total += b.events.size();
    peak_buffered_ = std::max(peak_buffered_, total);
  }

  void OnWatermark(Timestamp ts) override {
    while (!buffers_.empty() && buffers_.begin()->first <= ts) {
      Close(buffers_.begin()->second);
      buffers_.erase(buffers_.begin());
    }
  }

  void OnFinish() override {
    for (auto& [end, b] : buffers_) Close(b);
    buffers_.clear();
  }

  uint64_t alerts() const { return alerts_; }
  uint64_t events_copied() const { return events_copied_; }
  size_t peak_buffered() const { return peak_buffered_; }

 private:
  struct Buffer {
    TimeWindow window;
    EventBatch events;
  };

  static WindowSpec MakeSpec(Duration len) {
    WindowSpec spec;
    spec.kind = WindowSpec::Kind::kTime;
    spec.length = len;
    return spec;
  }

  void Close(const Buffer& buf) {
    // Recompute per-group sums from the retained events.
    std::unordered_map<std::string, int64_t> sums;
    for (const Event& e : buf.events) {
      sums[e.subject.exe_name] += e.amount;
    }
    for (const auto& [group, sum] : sums) {
      if (sum > 100000000) ++alerts_;
    }
  }

  WindowAssigner assigner_;
  std::map<Timestamp, Buffer> buffers_;
  uint64_t alerts_ = 0;
  uint64_t events_copied_ = 0;
  size_t peak_buffered_ = 0;
};

void BM_BufferedBaseline(benchmark::State& state) {
  Duration window = static_cast<Duration>(state.range(0)) * kSecond;
  // Shared source, rewound per iteration: measures the evaluator, not
  // per-iteration stream copies (events intern once).
  static VectorEventSource* source = new VectorEventSource(Stream());
  size_t peak = 0;
  for (auto _ : state) {
    StreamExecutor exec;
    BufferedWindowEvaluator baseline(window);
    exec.Subscribe(&baseline);
    source->Reset();
    exec.Run(source);
    peak = baseline.peak_buffered();
    benchmark::DoNotOptimize(baseline.alerts());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
  state.counters["window_s"] = static_cast<double>(state.range(0));
  state.counters["peak_buffered_events"] = static_cast<double>(peak);
}
BENCHMARK(BM_BufferedBaseline)
    ->Arg(10)
    ->Arg(60)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalEngine(benchmark::State& state) {
  static VectorEventSource* source = new VectorEventSource(Stream());
  std::string query =
      "proc p write ip i as e #time(" + std::to_string(state.range(0)) +
      " s) state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 100000000 return p, ss.amt";
  for (auto _ : state) {
    SaqlEngine engine;
    Status st = engine.AddQuery(query, "q");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    engine.SetAlertSink([](const Alert&) {});
    source->Reset();
    st = engine.Run(source);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kStreamSize));
  state.counters["window_s"] = static_cast<double>(state.range(0));
  state.counters["peak_buffered_events"] = 0;  // no event retention
}
BENCHMARK(BM_IncrementalEngine)
    ->Arg(10)
    ->Arg(60)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saql

BENCHMARK_MAIN();
