#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library,
# examples, and benches using the compile_commands.json that CMake exports.
#
#   usage: scripts/run_clang_tidy.sh [build-dir]
#
# The build dir defaults to ./build and must already be configured
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on, see CMakeLists.txt).
# Exits nonzero on any finding: .clang-tidy sets WarningsAsErrors '*',
# so CI can use this script directly as a gate.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"$build_dir\" -S \"$repo_root\"" >&2
  exit 2
fi

runner=""
for candidate in run-clang-tidy run-clang-tidy-18 run-clang-tidy-17 \
                 run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    runner="$candidate"
    break
  fi
done

# Lint first-party translation units only; generated/third-party files in
# the build tree are excluded by matching on the source directories.
files_regex="$repo_root/(src|examples|bench|tests)/.*"

if [[ -n "$runner" ]]; then
  exec "$runner" -p "$build_dir" -quiet "$files_regex"
fi

# Fallback without the parallel runner: invoke clang-tidy sequentially.
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH" >&2
  exit 2
fi
status=0
while IFS= read -r file; do
  clang-tidy -p "$build_dir" --quiet "$file" || status=1
done < <(find "$repo_root/src" "$repo_root/examples" -name '*.cc' -o \
         -name '*.cpp' | sort)
exit "$status"
