// Continuous network monitoring with stateful SAQL queries: per-process
// volume accounting, spike detection, connection-fanout tracking, and peer
// comparison — the kind of always-on queries §I motivates (time-critical
// anomaly detection over the event feed of a whole enterprise).
//
//   $ ./network_monitor [minutes]

#include <cstdlib>
#include <iostream>

#include "cli/table.h"
#include "collect/enterprise_sim.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  int minutes = argc > 1 ? std::atoi(argv[1]) : 40;
  if (minutes < 20) minutes = 20;

  // Volume report: total bytes per process per 10-minute window (no alert
  // condition: every closed window group reports).
  const char* kVolumeReport = R"q(
    proc p write ip i as evt #time(10 min)
    state ss {
      total := sum(evt.amount)
      flows := count()
    } group by p
    alert ss.total > 5000000
    return p, ss.total as bytes, ss.flows as flows
  )q";

  // Spike detection: 3-window moving average per process (paper Query 2
  // shape with a cold-start-safe SMA).
  const char* kSpike = R"q(
    proc p write ip i as evt #time(10 min)
    state[3] ss {
      avg_amount := avg(evt.amount)
    } group by p
    alert (ss[0].avg_amount > 3 * (|ss[1].avg_amount| + |ss[2].avg_amount|) / 2) && (ss[0].avg_amount > 50000)
    return p, ss[0].avg_amount, ss[1].avg_amount
  )q";

  // Port-scan heuristic: one process connecting to many distinct ports in
  // a one-minute window.
  const char* kFanout = R"q(
    proc p connect ip i as evt #time(1 min)
    state ss {
      ports := count_distinct(i.dport)
    } group by p
    alert ss.ports > 10
    return p, ss.ports as distinct_ports
  )q";

  // Peer comparison across destination IPs (paper Query 4 shape, relaxed
  // to all processes).
  const char* kPeers = R"q(
    proc p write ip i as evt #time(10 min)
    state ss {
      amt := sum(evt.amount)
    } group by i.dstip
    cluster(points=all(ss.amt), distance="ed", method="DBSCAN(500000, 4)")
    alert cluster.outlier && ss.amt > 2000000
    return i.dstip, ss.amt
  )q";

  saql::SaqlEngine engine;
  struct Entry {
    const char* name;
    const char* text;
  } queries[] = {{"volume-report", kVolumeReport},
                 {"spike", kSpike},
                 {"port-fanout", kFanout},
                 {"peer-outlier", kPeers}};
  for (const Entry& e : queries) {
    saql::Status st = engine.AddQuery(e.text, e.name);
    if (!st.ok()) {
      std::cerr << "cannot register " << e.name << ": " << st << "\n";
      return 1;
    }
  }

  saql::EnterpriseSimulator::Options opts;
  opts.num_workstations = 4;
  opts.duration = minutes * saql::kMinute;
  opts.attack_offset = (minutes / 2) * saql::kMinute;
  saql::EnterpriseSimulator sim(opts);
  auto source = sim.MakeSource();

  std::cout << "monitoring " << sim.hosts().size() << " hosts for "
            << minutes << " simulated minutes...\n\n";
  engine.SetAlertSink([](const saql::Alert& a) {
    std::cout << a.ToString() << "\n";
  });
  saql::Status st = engine.Run(source.get());
  if (!st.ok()) {
    std::cerr << "run failed: " << st << "\n";
    return 1;
  }

  std::cout << "\n=== per-query summary ===\n";
  saql::TextTable table({"query", "events-matched", "windows", "alerts"});
  for (const auto& [name, qs] : engine.query_stats()) {
    table.AddRow({name, std::to_string(qs.matches),
                  std::to_string(qs.windows_closed),
                  std::to_string(qs.alerts)});
  }
  std::cout << table.Render();
  std::cout << "scheduler: " << engine.num_queries() << " queries -> "
            << engine.num_groups() << " stream subscriptions\n";
  return 0;
}
