// Full reproduction of the paper's demonstration (§III): deploy the 8 SAQL
// queries — one rule query per APT step plus three advanced anomaly
// queries — over the enterprise stream with the five-step attack injected,
// and report which step each alert exposes.
//
//   $ ./apt_detection [minutes] [workstations]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "cli/table.h"
#include "collect/enterprise_sim.h"
#include "engine/engine.h"

namespace {

std::string ReadQuery(const std::string& relative) {
  std::ifstream in(std::string(SAQL_QUERY_DIR) + "/" + relative);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct DemoQuery {
  const char* name;
  const char* file;
  const char* detects;
};

constexpr DemoQuery kQueries[] = {
    {"r1-initial-compromise", "apt/r1_initial_compromise.saql",
     "c1: malicious email attachment lands"},
    {"r2-malware-infection", "apt/r2_malware_infection.saql",
     "c2: Excel macro drops and starts backdoor"},
    {"r3-privilege-escalation", "apt/r3_privilege_escalation.saql",
     "c3: credential dumper reads SAM"},
    {"r4-penetration", "apt/r4_penetration.saql",
     "c4: VBScript drops backdoor on DB server"},
    {"r5-exfiltration", "query1_rule.saql",
     "c5: database dump shipped to attacker (paper Query 1)"},
    {"a6-invariant-excel", "apt/a6_invariant_excel.saql",
     "c2 via invariant model (no attack knowledge)"},
    {"a7-timeseries-network", "apt/a7_timeseries_network.saql",
     "c5 via time-series SMA model (no attack knowledge)"},
    {"a8-outlier-dbscan", "apt/a8_outlier_dbscan.saql",
     "c5 via DBSCAN peer comparison (paper Query 4)"},
};

}  // namespace

int main(int argc, char** argv) {
  int minutes = argc > 1 ? std::atoi(argv[1]) : 30;
  int workstations = argc > 2 ? std::atoi(argv[2]) : 3;
  if (minutes < 16) minutes = 16;  // attack needs room after its offset

  saql::EnterpriseSimulator::Options opts;
  opts.num_workstations = workstations;
  opts.duration = minutes * saql::kMinute;
  opts.attack_offset = 12 * saql::kMinute;
  opts.events_per_host_per_second = 10;
  saql::EnterpriseSimulator sim(opts);
  auto source = sim.MakeSource();

  std::cout << "=== SAQL demo: 5-step APT attack over "
            << sim.hosts().size() << " hosts, " << minutes
            << " minutes of monitoring data ===\n\nattack script:\n";
  for (const saql::AptStep& step : sim.attack_steps()) {
    std::cout << "  c" << step.step << ": " << step.description << " ("
              << step.events.size() << " events)\n";
  }

  saql::SaqlEngine engine;
  for (const DemoQuery& q : kQueries) {
    saql::Status st = engine.AddQuery(ReadQuery(q.file), q.name);
    if (!st.ok()) {
      std::cerr << "cannot register " << q.name << ": " << st << "\n";
      return 1;
    }
  }

  std::map<std::string, int> counts;
  engine.SetAlertSink([&](const saql::Alert& alert) {
    ++counts[alert.query_name];
    std::cout << "  " << alert.ToString() << "\n";
  });

  std::cout << "\nalerts as the stream is processed:\n";
  saql::Status st = engine.Run(source.get());
  if (!st.ok()) {
    std::cerr << "run failed: " << st << "\n";
    return 1;
  }

  std::cout << "\n=== detection summary ===\n";
  saql::TextTable table({"query", "detects", "alerts"});
  for (const DemoQuery& q : kQueries) {
    table.AddRow({q.name, q.detects, std::to_string(counts[q.name])});
  }
  std::cout << table.Render();

  std::cout << "\nstream: " << engine.executor_stats().events
            << " events, " << engine.num_queries() << " queries in "
            << engine.num_groups()
            << " scheduler groups (master-dependent scheme)\n";
  if (!engine.errors().empty()) {
    std::cout << "errors:\n" << engine.errors().ToString();
  }

  // The demo succeeds when every step is detected.
  bool all = true;
  for (const DemoQuery& q : kQueries) {
    if (counts[q.name] == 0) {
      std::cout << "MISSING detection: " << q.name << "\n";
      all = false;
    }
  }
  std::cout << (all ? "\nall 5 attack steps detected by all 8 queries.\n"
                    : "\nsome steps went undetected.\n");
  return all ? 0 : 2;
}
