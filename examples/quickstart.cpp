// Quickstart: compile one SAQL query, run it over a simulated enterprise
// event stream, and print the alerts.
//
//   $ ./quickstart
//
// The query is the simplest useful rule: flag any process writing data to
// a non-intranet address from the database server.

#include <iostream>

#include "collect/enterprise_sim.h"
#include "engine/engine.h"

int main() {
  // 1. A query in the SAQL language (§II-B of the paper). Rule-based
  //    queries alert on every pattern match.
  const char* kQuery = R"(
    agentid = "db-server-01"
    proc p write ip i as evt
    alert evt.amount > 1000000
    return distinct p, i, evt.amount as bytes
  )";

  // 2. The engine compiles queries and executes them over a stream.
  saql::SaqlEngine engine;
  saql::Status st = engine.AddQuery(kQuery, "big-db-upload");
  if (!st.ok()) {
    std::cerr << "query rejected: " << st << "\n";
    return 1;
  }

  // 3. Alerts arrive through a sink as the stream flows.
  engine.SetAlertSink([](const saql::Alert& alert) {
    std::cout << alert.ToString() << "\n";
  });

  // 4. Any EventSource works: here, 20 simulated minutes of a small
  //    enterprise with the paper's APT attack injected.
  saql::EnterpriseSimulator::Options opts;
  opts.num_workstations = 2;
  opts.duration = 20 * saql::kMinute;
  opts.attack_offset = 8 * saql::kMinute;
  saql::EnterpriseSimulator sim(opts);
  auto source = sim.MakeSource();

  st = engine.Run(source.get());
  if (!st.ok()) {
    std::cerr << "run failed: " << st << "\n";
    return 1;
  }

  std::cout << "\nprocessed " << engine.executor_stats().events
            << " events\n";
  if (!engine.errors().empty()) {
    std::cout << "errors:\n" << engine.errors().ToString();
  }
  return 0;
}
