// The SAQL command-line UI (Fig. 3 of the paper): interactively register
// queries, simulate or replay monitoring data, and inspect alerts.
//
//   $ ./saql_shell
//   saql> load queries/query1_rule.saql exfil
//   saql> simulate 30
//   saql> alerts
//   saql> quit

#include <iostream>

#include "cli/shell.h"

int main() {
  saql::QueryShell shell(std::cin, std::cout);
  shell.Run();
  return 0;
}
