// The SAQL command-line UI (Fig. 3 of the paper): interactively register
// queries, simulate or replay monitoring data, and inspect alerts — either
// as one-shot batch runs, or against a live push-driven engine session
// that queries can join and leave mid-stream (the deployed-monitor mode).
//
//   $ ./saql_shell [--shards=N] [--member-index=on|off]
//   saql> load queries/query1_rule.saql exfil
//   saql> simulate 30                  # one-shot batch run
//   saql> open --shards=2              # ... or go live
//   saql> push 16                      # stream simulated traffic in
//   saql> add lateral proc p["%osql.exe"] start proc q as e return p, q
//   saql> push 16                      # 'lateral' sees only these events
//   saql> remove exfil                 # retract; final stats retained
//   saql> stats
//   saql> close
//   saql> quit
//
// --shards=N runs every simulate/replay/open on N hash-partitioned
// executor lanes (also settable per session with the `shards` command).
// --member-index=off falls back to brute-force member matching (the
// ablation baseline; also settable per session with the `index` command).

#include <cstdlib>
#include <iostream>
#include <string>

#include "cli/shell.h"

int main(int argc, char** argv) {
  saql::QueryShell shell(std::cin, std::cout);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      char* end = nullptr;
      long n = std::strtol(arg.c_str() + 9, &end, 10);
      if (n <= 0 || end == nullptr || *end != '\0') {
        std::cerr << "invalid value in '" << arg
                  << "' (expected --shards=N with N >= 1)\n";
        return 2;
      }
      shell.SetNumShards(static_cast<size_t>(n));
    } else if (arg.rfind("--member-index=", 0) == 0) {
      std::string v = arg.substr(15);
      if (v != "on" && v != "off") {
        std::cerr << "invalid value in '" << arg
                  << "' (expected --member-index=on|off)\n";
        return 2;
      }
      shell.SetMemberIndex(v == "on");
    } else {
      std::cerr << "unknown flag '" << arg
                << "' (supported: --shards=N, --member-index=on|off)\n";
      return 2;
    }
  }
  shell.Run();
  // Nonzero after a durability failure (failed record/recover, or a live
  // recording that ended in error) so scripts can detect data loss.
  return shell.exit_code();
}
