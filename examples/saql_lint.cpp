// saql_lint — CI-friendly static analysis for SAQL query files.
//
//   $ ./saql_lint queries/*.saql queries/apt/*.saql
//   $ ./saql_lint --fleet --json queries/*.saql > lint.json
//
// Each file is compiled and run through QueryAnalysis::Lint; every
// diagnostic prints as `file: severity CODE at span: message`. With
// --fleet, the compiled set additionally runs through the cross-query
// FleetAnalysis pass (SA050 duplicates, SA051 subsumption, routing-envelope
// overlap). The exit code makes it a build gate:
//
//   0  every file compiled and no error-severity diagnostics
//   1  at least one error-severity diagnostic (provably broken query)
//   2  a file failed to open or compile, or no files were given
//
// Warnings, hints, and placement notes print but do not fail the gate;
// pass --errors-only to silence them (CI logs stay readable, the gate is
// unchanged). --json switches stdout to a single stable JSON document
// (schema documented in --help) for CI artifact upload; compile/IO
// failures still go to stderr.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fleet_analysis.h"
#include "analysis/query_analysis.h"
#include "engine/compiled_query.h"
#include "parser/analyzer.h"

namespace {

void PrintHelp(std::ostream& os) {
  os << "usage: saql_lint [flags] <file.saql...>\n"
        "\n"
        "Static analysis for SAQL query files: per-query satisfiability,\n"
        "dead-pattern, window/aggregate, and type/dataflow checks, plus\n"
        "optional cross-query fleet analysis.\n"
        "\n"
        "flags:\n"
        "  --errors-only  print only error-severity diagnostics (the exit\n"
        "                 code is unchanged; warnings still count in the\n"
        "                 summary line)\n"
        "  --fleet        also run the cross-query pass over the whole\n"
        "                 file set: SA050 exact duplicates, SA051\n"
        "                 subsumption, and the routing-envelope overlap\n"
        "                 table\n"
        "  --json         emit one JSON document on stdout instead of\n"
        "                 text: {\"files\", \"errors\", \"warnings\",\n"
        "                 \"diagnostics\": [{\"file\", \"code\",\n"
        "                 \"severity\", \"span\": {\"begin\": {\"line\",\n"
        "                 \"col\"}, \"end\": {\"line\", \"col\"}},\n"
        "                 \"message\", \"fix_hint\"}]} — span is null for\n"
        "                 whole-query findings; the field order and names\n"
        "                 are stable\n"
        "  --help         this text\n"
        "\n"
        "exit codes:\n"
        "  0  every file compiled; no error-severity diagnostics\n"
        "  1  at least one error-severity diagnostic\n"
        "  2  unreadable/uncompilable file, no files given, or an unknown\n"
        "     flag\n";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonDiagnostic(std::ostream& os, const std::string& file,
                          const saql::Diagnostic& d, bool* first) {
  if (!*first) os << ",";
  *first = false;
  os << "\n    {\"file\": \"" << JsonEscape(file) << "\", \"code\": \""
     << d.code << "\", \"severity\": \"" << saql::SeverityName(d.severity)
     << "\", \"span\": ";
  if (d.span.IsZero()) {
    os << "null";
  } else {
    os << "{\"begin\": {\"line\": " << d.span.begin.line
       << ", \"col\": " << d.span.begin.col
       << "}, \"end\": {\"line\": " << d.span.end.line
       << ", \"col\": " << d.span.end.col << "}}";
  }
  os << ", \"message\": \"" << JsonEscape(d.message) << "\", \"fix_hint\": \""
     << JsonEscape(d.fix_hint) << "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool errors_only = false;
  bool fleet = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--errors-only") {
      errors_only = true;
    } else if (arg == "--fleet") {
      fleet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintHelp(std::cout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg
                << "' (supported: --errors-only --fleet --json --help)\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: saql_lint [--errors-only] [--fleet] [--json] "
                 "<file.saql...>\n(--help for details)\n";
    return 2;
  }

  size_t total_errors = 0;
  size_t total_warnings = 0;
  bool io_or_compile_failure = false;
  // (file, diagnostic) pairs in emission order, for the JSON document.
  std::vector<std::pair<std::string, saql::Diagnostic>> emitted;
  std::vector<saql::FleetAnalysis::Member> members;

  auto emit = [&](const std::string& file, const saql::Diagnostic& d) {
    if (d.severity == saql::Severity::kError) {
      ++total_errors;
    } else if (d.severity == saql::Severity::kWarning) {
      ++total_warnings;
    } else if (errors_only) {
      return;
    }
    if (json) {
      emitted.emplace_back(file, d);
    } else {
      std::cout << file << ": " << d.ToString() << "\n";
    }
  };

  for (const std::string& path : files) {
    std::ifstream f(path);
    if (!f) {
      std::cerr << path << ": cannot open\n";
      io_or_compile_failure = true;
      continue;
    }
    std::ostringstream text;
    text << f.rdbuf();
    saql::Result<saql::AnalyzedQueryPtr> analyzed =
        saql::CompileSaql(text.str());
    if (!analyzed.ok()) {
      std::cerr << path << ": compile error: " << analyzed.status() << "\n";
      io_or_compile_failure = true;
      continue;
    }
    saql::Result<std::unique_ptr<saql::CompiledQuery>> query =
        saql::CompiledQuery::Create(*analyzed, path, {});
    if (!query.ok()) {
      std::cerr << path << ": compile error: " << query.status() << "\n";
      io_or_compile_failure = true;
      continue;
    }
    for (const saql::Diagnostic& d : saql::QueryAnalysis::Lint(**query)) {
      emit(path, d);
    }
    if (fleet) members.push_back({path, *analyzed});
  }

  saql::FleetReport report;
  if (fleet) {
    report = saql::FleetAnalysis::Analyze(members);
    for (size_t i = 0; i < report.findings.size(); ++i) {
      for (const saql::Diagnostic& d : report.findings[i]) {
        emit(report.names[i], d);
      }
    }
  }

  if (json) {
    std::cout << "{\n  \"files\": " << files.size()
              << ",\n  \"errors\": " << total_errors
              << ",\n  \"warnings\": " << total_warnings
              << ",\n  \"diagnostics\": [";
    bool first = true;
    for (const auto& [file, d] : emitted) {
      AppendJsonDiagnostic(std::cout, file, d, &first);
    }
    std::cout << (first ? "" : "\n  ") << "]\n}\n";
  } else {
    if (fleet) std::cout << report.ToString();
    std::cout << files.size() << " file(s): " << total_errors << " error(s), "
              << total_warnings << " warning(s)\n";
  }
  if (io_or_compile_failure) return 2;
  return total_errors > 0 ? 1 : 0;
}
