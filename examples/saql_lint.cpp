// saql_lint — CI-friendly static analysis for SAQL query files.
//
//   $ ./saql_lint queries/*.saql queries/apt/*.saql
//
// Each file is compiled and run through QueryAnalysis::Lint; every
// diagnostic prints as `file: severity CODE at span: message`. The exit
// code makes it a build gate:
//
//   0  every file compiled and no error-severity diagnostics
//   1  at least one error-severity diagnostic (provably broken query)
//   2  a file failed to open or compile, or no files were given
//
// Warnings, hints, and placement notes print but do not fail the gate;
// pass --errors-only to silence them (CI logs stay readable, the gate is
// unchanged).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/query_analysis.h"
#include "engine/compiled_query.h"
#include "parser/analyzer.h"

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool errors_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--errors-only") {
      errors_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg
                << "' (supported: --errors-only)\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: saql_lint [--errors-only] <file.saql...>\n";
    return 2;
  }

  size_t total_errors = 0;
  size_t total_warnings = 0;
  bool io_or_compile_failure = false;
  for (const std::string& path : files) {
    std::ifstream f(path);
    if (!f) {
      std::cerr << path << ": cannot open\n";
      io_or_compile_failure = true;
      continue;
    }
    std::ostringstream text;
    text << f.rdbuf();
    saql::Result<saql::AnalyzedQueryPtr> analyzed =
        saql::CompileSaql(text.str());
    if (!analyzed.ok()) {
      std::cerr << path << ": compile error: " << analyzed.status() << "\n";
      io_or_compile_failure = true;
      continue;
    }
    saql::Result<std::unique_ptr<saql::CompiledQuery>> query =
        saql::CompiledQuery::Create(*analyzed, path, {});
    if (!query.ok()) {
      std::cerr << path << ": compile error: " << query.status() << "\n";
      io_or_compile_failure = true;
      continue;
    }
    for (const saql::Diagnostic& d :
         saql::QueryAnalysis::Lint(**query)) {
      if (d.severity == saql::Severity::kError) {
        ++total_errors;
      } else if (d.severity == saql::Severity::kWarning) {
        ++total_warnings;
      } else if (errors_only) {
        continue;
      }
      std::cout << path << ": " << d.ToString() << "\n";
    }
  }

  std::cout << files.size() << " file(s): " << total_errors
            << " error(s), " << total_warnings << " warning(s)\n";
  if (io_or_compile_failure) return 2;
  return total_errors > 0 ? 1 : 0;
}
