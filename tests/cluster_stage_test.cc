#include "engine/cluster_stage.h"

#include <gtest/gtest.h>

#include "anomaly/dbscan.h"
#include "parser/analyzer.h"

namespace saql {
namespace {

/// Builds the analyzed Query-4-style query and synthetic group inputs with
/// a single state field `amt`.
class ClusterStageHarness {
 public:
  ClusterStageHarness() {
    aq_ = CompileSaql(
              "proc p write ip i as e #time(10 min) "
              "state ss { amt := sum(e.amount) } group by i.dstip "
              "cluster(points=all(ss.amt), distance=\"ed\", "
              "method=\"DBSCAN(1000, 3)\") "
              "alert cluster.outlier return i.dstip, ss.amt")
              .value();
  }

  /// Adds a group whose ss.amt is `amount` (null when `has_value` false).
  void AddGroup(double amount, bool has_value = true) {
    auto history = std::make_unique<std::deque<WindowState>>();
    WindowState ws;
    ws.window = TimeWindow{0, 10 * kMinute};
    ws.fields.push_back(has_value ? Value(amount) : Value::Null());
    history->push_front(std::move(ws));
    auto keys = std::make_unique<std::vector<Value>>();
    keys->push_back(Value("10.0.0." + std::to_string(groups_.size())));
    ClusterGroupInput input;
    input.history = history.get();
    input.key_values = keys.get();
    histories_.push_back(std::move(history));
    keys_.push_back(std::move(keys));
    groups_.push_back(input);
  }

  std::vector<ClusterOutcome> Run() {
    errors_.clear();
    return RunClusterStage(*aq_, groups_, [this](const Status& s) {
      errors_.push_back(s);
    });
  }

  const std::vector<Status>& errors() const { return errors_; }

 private:
  AnalyzedQueryPtr aq_;
  std::vector<std::unique_ptr<std::deque<WindowState>>> histories_;
  std::vector<std::unique_ptr<std::vector<Value>>> keys_;
  std::vector<ClusterGroupInput> groups_;
  std::vector<Status> errors_;
};

TEST(ClusterStageTest, FlagsFarGroupAsOutlier) {
  ClusterStageHarness h;
  for (int i = 0; i < 5; ++i) h.AddGroup(10000 + i * 100);
  h.AddGroup(9'000'000);
  auto outcomes = h.Run();
  ASSERT_EQ(outcomes.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(outcomes[static_cast<size_t>(i)].valid);
    EXPECT_FALSE(outcomes[static_cast<size_t>(i)].outlier);
  }
  EXPECT_TRUE(outcomes[5].valid);
  EXPECT_TRUE(outcomes[5].outlier);
  EXPECT_EQ(outcomes[5].cluster_id, DbscanResult::kNoise);
}

TEST(ClusterStageTest, ClusterSizeReported) {
  ClusterStageHarness h;
  for (int i = 0; i < 4; ++i) h.AddGroup(5000 + i * 10);
  auto outcomes = h.Run();
  for (const ClusterOutcome& o : outcomes) {
    EXPECT_TRUE(o.valid);
    EXPECT_EQ(o.cluster_id, 0);
    EXPECT_EQ(o.cluster_size, 4);
  }
}

TEST(ClusterStageTest, NullPointExcludesGroupSilently) {
  ClusterStageHarness h;
  for (int i = 0; i < 4; ++i) h.AddGroup(5000 + i * 10);
  h.AddGroup(0.0, /*has_value=*/false);  // null amt (empty window)
  auto outcomes = h.Run();
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_FALSE(outcomes[4].valid);  // excluded, cluster.* reads null
  EXPECT_TRUE(h.errors().empty());  // nulls are not errors
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(outcomes[static_cast<size_t>(i)].valid);
  }
}

TEST(ClusterStageTest, EmptyGroupsYieldNoOutcomes) {
  ClusterStageHarness h;
  auto outcomes = h.Run();
  EXPECT_TRUE(outcomes.empty());
}

TEST(ClusterStageTest, AllGroupsNullYieldsAllInvalid) {
  ClusterStageHarness h;
  h.AddGroup(0, false);
  h.AddGroup(0, false);
  auto outcomes = h.Run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].valid);
  EXPECT_FALSE(outcomes[1].valid);
}

TEST(ClusterStageTest, SparsePeersAllNoise) {
  ClusterStageHarness h;
  h.AddGroup(1000);
  h.AddGroup(100000);
  h.AddGroup(900000);
  auto outcomes = h.Run();
  // min_pts=3, all mutually > eps apart: everything is noise.
  for (const ClusterOutcome& o : outcomes) {
    EXPECT_TRUE(o.valid);
    EXPECT_TRUE(o.outlier);
    EXPECT_EQ(o.cluster_size, 0);
  }
}

}  // namespace
}  // namespace saql
