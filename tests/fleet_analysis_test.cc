// Fleet analyzer tests: pinned SA050/SA051 positives and negatives,
// routing-envelope cells, the cooldown gate on subsumption, and the
// differential soundness harness — the analyzer's cross-query claims are
// *executable*, so every claimed relation is checked against the engine:
// SA050 pairs must raise identical alert multisets and SA051 pairs must
// raise a subset, over randomized streams at 1 and 4 shards. A single
// counterexample means the canonicalizer is unsound, not merely noisy.

#include <algorithm>
#include <cctype>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/fleet_analysis.h"
#include "analysis/query_analysis.h"
#include "engine/engine.h"
#include "parser/analyzer.h"
#include "stream/event_source.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

AnalyzedQueryPtr Compile(const std::string& text) {
  Result<AnalyzedQueryPtr> aq = CompileSaql(text);
  EXPECT_TRUE(aq.ok()) << text << "\n" << aq.status();
  return aq.ok() ? *aq : nullptr;
}

FleetReport Analyze2(const std::string& name_a, const std::string& text_a,
                     const std::string& name_b, const std::string& text_b) {
  AnalyzedQueryPtr a = Compile(text_a);
  AnalyzedQueryPtr b = Compile(text_b);
  if (a == nullptr || b == nullptr) return {};
  return FleetAnalysis::Analyze({{name_a, a}, {name_b, b}});
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// SA050: exact duplicates up to renaming.
// ---------------------------------------------------------------------------

TEST(FleetAnalysisTest, SA050AcrossRenamingCaseAndFieldSpelling) {
  // Renamed variables, case-flipped LIKE patterns, and the polymorphic
  // `name` spelling for the file path: one canonical query.
  FleetReport r = Analyze2(
      "a",
      "proc browser[\"%java.exe\"] write file dropper[path = \"%mal.exe\"] "
      "as evt\nreturn browser, dropper",
      "b",
      "proc p1[\"%JAVA.EXE\"] write file f1[name = \"%MAL.EXE\"] as e1\n"
      "return p1, f1");
  ASSERT_EQ(r.relations.size(), 1u) << r.ToString();
  EXPECT_EQ(r.relations[0].kind, FleetRelation::Kind::kDuplicate);
  EXPECT_EQ(r.relations[0].a, 0u);
  EXPECT_EQ(r.relations[0].b, 1u);
  EXPECT_TRUE(r.findings[0].empty());  // the incumbent is not blamed
  const Diagnostic* d = Find(r.findings[1], "SA050");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("exact duplicate of fleet query 'a'"),
            std::string::npos);
  EXPECT_NE(r.ToString().find("SA050 'b' duplicates 'a'"), std::string::npos);
  EXPECT_TRUE(r.HasFindings());
}

TEST(FleetAnalysisTest, SA050ConstraintOrderInsensitive) {
  FleetReport r = Analyze2(
      "a",
      "proc p[exe_name = \"%sql%\", pid != 4] write ip i[dstip = \"%.129\"] "
      "as e\nreturn p, i",
      "b",
      "proc q[pid != 4, exe_name = \"%sql%\"] write ip j[dstip = \"%.129\"] "
      "as ev\nreturn q, j");
  ASSERT_EQ(r.relations.size(), 1u) << r.ToString();
  EXPECT_EQ(r.relations[0].kind, FleetRelation::Kind::kDuplicate);
}

TEST(FleetAnalysisTest, SA050StatefulDuplicateStillDetected) {
  // Canonical equality is sound for stateful queries too (identical
  // inputs, identical aggregates, identical alerts).
  const char* a =
      "proc p write ip as evt\n"
      "#time(1 min)\n"
      "state ss { amt := sum(evt.amount) } group by p\n"
      "alert ss[0].amt > 1000\n"
      "return p, ss[0].amt";
  const char* b =
      "proc proc_b write ip as e2\n"
      "#time(1 min)\n"
      "state win { amt := sum(e2.amount) } group by proc_b\n"
      "alert win[0].amt > 1000\n"
      "return proc_b, win[0].amt";
  FleetReport r = Analyze2("a", a, "b", b);
  ASSERT_EQ(r.relations.size(), 1u) << r.ToString();
  EXPECT_EQ(r.relations[0].kind, FleetRelation::Kind::kDuplicate);
}

TEST(FleetAnalysisTest, NoSA050WhenAnyPieceDiffers) {
  // Different constraint value.
  EXPECT_TRUE(Analyze2("a",
                       "proc p[\"%java.exe\"] write file f as e\nreturn p, f",
                       "b",
                       "proc p[\"%ruby.exe\"] write file f as e\nreturn p, f")
                  .relations.empty());
  // Different op.
  EXPECT_TRUE(Analyze2("a",
                       "proc p[\"%x%\"] write file f[\"%y%\"] as e\nreturn f",
                       "b",
                       "proc p[\"%x%\"] read file f[\"%y%\"] as e\nreturn f")
                  .relations.empty());
  // Different alert threshold (stateful: shape differs, and SA051 must
  // not fire either — tighter constraints change aggregate inputs).
  const char* tmpl =
      "proc p write ip as evt\n"
      "#time(1 min)\n"
      "state ss { amt := sum(evt.amount) } group by p\n"
      "alert ss[0].amt > %s\n"
      "return p, ss[0].amt";
  char qa[512], qb[512];
  std::snprintf(qa, sizeof(qa), tmpl, "1000000");
  std::snprintf(qb, sizeof(qb), tmpl, "2000000");
  EXPECT_TRUE(Analyze2("a", qa, "b", qb).relations.empty());
}

// ---------------------------------------------------------------------------
// SA051: one-way containment (stateless only).
// ---------------------------------------------------------------------------

TEST(FleetAnalysisTest, SA051ConstraintDroppingBothDirections) {
  const char* tight =
      "proc p[\"%cmd.exe\"] write file f[path = \"/tmp/%\"] as e\n"
      "return p, f";
  const char* wide = "proc q write file g[path = \"/tmp/%\"] as ev\n"
                     "return q, g";

  // Tight registered first: the incoming wide query "subsumes" it.
  FleetReport r = Analyze2("tight", tight, "wide", wide);
  ASSERT_EQ(r.relations.size(), 1u) << r.ToString();
  EXPECT_EQ(r.relations[0].kind, FleetRelation::Kind::kSubsumes);
  EXPECT_EQ(r.relations[0].a, 0u);  // tight is the subsumed side
  EXPECT_EQ(r.relations[0].b, 1u);
  const Diagnostic* d = Find(r.findings[1], "SA051");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("subsumes fleet query 'tight'"),
            std::string::npos);
  EXPECT_NE(r.ToString().find("'tight' is subsumed by 'wide'"),
            std::string::npos);

  // Wide registered first: the incoming tight query is "subsumed by" it.
  FleetReport r2 = Analyze2("wide", wide, "tight", tight);
  ASSERT_EQ(r2.relations.size(), 1u) << r2.ToString();
  EXPECT_EQ(r2.relations[0].a, 1u);
  EXPECT_EQ(r2.relations[0].b, 0u);
  const Diagnostic* d2 = Find(r2.findings[1], "SA051");
  ASSERT_NE(d2, nullptr);
  EXPECT_NE(d2->message.find("subsumed by fleet query 'wide'"),
            std::string::npos);
}

TEST(FleetAnalysisTest, SA051OpWidening) {
  FleetReport r = Analyze2(
      "tight", "proc p[\"%x%\"] write file f[\"%y%\"] as e\nreturn p, f",
      "wide",
      "proc q[\"%x%\"] read || write file g[\"%y%\"] as ev\nreturn q, g");
  ASSERT_EQ(r.relations.size(), 1u) << r.ToString();
  EXPECT_EQ(r.relations[0].kind, FleetRelation::Kind::kSubsumes);
  EXPECT_EQ(r.relations[0].a, 0u);
}

TEST(FleetAnalysisTest, SA051NumericGlobalIntervals) {
  FleetReport r = Analyze2(
      "tight",
      "amount > 1000\nproc p[\"%z.exe\"] write ip i as e\nreturn p, i",
      "wide", "amount > 10\nproc q[\"%z.exe\"] write ip j as ev\nreturn q, j");
  ASSERT_EQ(r.relations.size(), 1u) << r.ToString();
  EXPECT_EQ(r.relations[0].kind, FleetRelation::Kind::kSubsumes);
  EXPECT_EQ(r.relations[0].a, 0u);
}

TEST(FleetAnalysisTest, SA051NeverFiresForStatefulQueries) {
  // A tighter filter changes the aggregate's *inputs*: sum() over fewer
  // events can dip below a threshold the wide query would cross, and vice
  // versa — containment does not hold, so the analyzer must stay silent.
  const char* tight =
      "proc p[\"%sql%\"] write ip as evt\n"
      "#time(1 min)\n"
      "state ss { amt := sum(evt.amount) } group by p\n"
      "alert ss[0].amt > 1000\n"
      "return p, ss[0].amt";
  const char* wide =
      "proc p write ip as evt\n"
      "#time(1 min)\n"
      "state ss { amt := sum(evt.amount) } group by p\n"
      "alert ss[0].amt > 1000\n"
      "return p, ss[0].amt";
  EXPECT_TRUE(Analyze2("tight", tight, "wide", wide).relations.empty());
}

TEST(FleetAnalysisTest, SA051RespectsTheSubsumptionOption) {
  AnalyzedQueryPtr tight = Compile(
      "proc p[\"%cmd.exe\"] write file f as e\nreturn p, f");
  AnalyzedQueryPtr wide = Compile("proc q write file g as ev\nreturn q, g");
  ASSERT_TRUE(tight != nullptr && wide != nullptr);
  FleetOptions opts;
  opts.subsumption = false;
  FleetReport r = FleetAnalysis::Analyze({{"t", tight}, {"w", wide}}, opts);
  EXPECT_TRUE(r.relations.empty()) << r.ToString();
  // Duplicates are containment in both directions — never gated.
  FleetReport r2 = FleetAnalysis::Analyze({{"a", wide}, {"b", wide}}, opts);
  ASSERT_EQ(r2.relations.size(), 1u);
  EXPECT_EQ(r2.relations[0].kind, FleetRelation::Kind::kDuplicate);
}

TEST(FleetAnalysisTest, RoutingEnvelopeCells) {
  AnalyzedQueryPtr q1 =
      Compile("proc p[\"%a%\"] write file f as e\nreturn p, f");
  AnalyzedQueryPtr q2 =
      Compile("proc p[\"%b%\"] write file f[\"%x%\"] as e\nreturn p, f");
  AnalyzedQueryPtr q3 = Compile("proc p write ip i as e\nreturn p, i");
  ASSERT_TRUE(q1 != nullptr && q2 != nullptr && q3 != nullptr);
  FleetReport r = FleetAnalysis::Analyze({{"q1", q1}, {"q2", q2}, {"q3", q3}});
  ASSERT_FALSE(r.cells.empty());
  // Cells are sorted by member count, most-shared first.
  EXPECT_EQ(r.cells[0].object_type, EntityType::kFile);
  EXPECT_EQ(r.cells[0].op, EventOp::kWrite);
  EXPECT_EQ(r.cells[0].members, (std::vector<size_t>{0, 1}));
  EXPECT_NE(r.ToString().find("file/write: 2 (q1, q2)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration: the fleet pass runs at AddQuery time.
// ---------------------------------------------------------------------------

TEST(FleetAnalysisTest, EngineAddQuerySurfacesFleetFindings) {
  SaqlEngine engine(SaqlEngine::Options{});
  std::vector<Diagnostic> diags;
  ASSERT_TRUE(engine
                  .AddQuery("proc p[\"%m.exe\"] write file f as e\n"
                            "return p, f",
                            "first", &diags)
                  .ok());
  EXPECT_EQ(Find(diags, "SA050"), nullptr);
  // A duplicate attaches (warning, not rejection) and names the incumbent.
  ASSERT_TRUE(engine
                  .AddQuery("proc q[\"%M.EXE\"] write file g as ev\n"
                            "return q, g",
                            "second", &diags)
                  .ok());
  const Diagnostic* dup = Find(diags, "SA050");
  ASSERT_NE(dup, nullptr);
  EXPECT_NE(dup->message.find("'first'"), std::string::npos);
}

TEST(FleetAnalysisTest, EngineCooldownDisablesSubsumptionOnly) {
  SaqlEngine::Options opts;
  opts.query_options.alert_cooldown = 5 * kSecond;
  SaqlEngine engine(opts);
  std::vector<Diagnostic> diags;
  ASSERT_TRUE(engine
                  .AddQuery("proc p[\"%cmd.exe\"] write file f as e\n"
                            "return p, f",
                            "tight", &diags)
                  .ok());
  // Under a cooldown, a wider query may alert where the tight one is
  // suppressed and vice versa — SA051's containment claim is void.
  ASSERT_TRUE(engine
                  .AddQuery("proc q write file g as ev\nreturn q, g", "wide",
                            &diags)
                  .ok());
  EXPECT_EQ(Find(diags, "SA051"), nullptr);
  // SA050 stays: identical queries suppress identically.
  ASSERT_TRUE(engine
                  .AddQuery("proc r[\"%CMD.EXE\"] write file h as e3\n"
                            "return r, h",
                            "dup", &diags)
                  .ok());
  EXPECT_NE(Find(diags, "SA050"), nullptr);
}

// ---------------------------------------------------------------------------
// Differential soundness harness.
//
// Generates labeled query pairs — duplicates-by-construction (renaming,
// case flips, constraint reordering, name/path respelling), subsumed-by-
// construction (constraint dropping, pattern widening, op widening,
// numeric-bound loosening), and unrelated controls — asserts the analyzer
// claims exactly the constructed relation, then executes every claimed
// pair over a randomized event stream at 1 and 4 shards and checks the
// semantic contract the diagnostic text promises:
//
//   SA050  identical alert multisets, keyed (ts, group, values)
//   SA051  the tight query's alert multiset ⊆ the wide query's
//
// Alert labels are excluded from the key on purpose: renamed return
// variables change labels but not semantics.
// ---------------------------------------------------------------------------

struct GenPair {
  enum Kind { kDuplicate, kSubsume, kControl };
  Kind kind;
  std::string tag;      // generator recipe, for failure messages
  std::string a;        // kSubsume: the tight side
  std::string b;        // kSubsume: the wide side
};

struct QueryParts {
  std::string subj_pat;   // LIKE pattern for the subject proc
  std::string op;         // "write" | "read"
  bool file_obj;          // file object (vs ip)
  std::string obj_field;  // "path" | "name" / "dstip"
  std::string obj_pat;
  int amount_bound;       // -1: no global; else `amount > N`
};

std::string Render(const QueryParts& p, const char* pv, const char* ov,
                   const char* ev, bool upper) {
  auto casefold = [&](std::string s) {
    if (upper) {
      for (char& c : s) c = static_cast<char>(std::toupper(c));
    }
    return s;
  };
  std::ostringstream q;
  if (p.amount_bound >= 0) q << "amount > " << p.amount_bound << "\n";
  q << "proc " << pv << "[\"" << casefold(p.subj_pat) << "\"] " << p.op << " ";
  if (p.file_obj) {
    q << "file " << ov << "[" << p.obj_field << " = \"" << casefold(p.obj_pat)
      << "\"]";
  } else {
    q << "ip " << ov << "[dstip = \"" << casefold(p.obj_pat) << "\"]";
  }
  q << " as " << ev << "\nreturn " << pv << ", " << ov;
  return q.str();
}

GenPair MakePair(std::mt19937* rng, GenPair::Kind kind) {
  auto pick = [&](std::initializer_list<const char*> xs) {
    std::vector<const char*> v(xs);
    return std::string(v[(*rng)() % v.size()]);
  };
  QueryParts base;
  base.subj_pat =
      pick({"%chrome.exe", "%java.exe", "%cmd.exe", "%winword.exe"});
  base.op = pick({"write", "read"});
  base.file_obj = (*rng)() % 3 != 0;
  base.obj_field = "path";
  base.obj_pat = base.file_obj ? pick({"%mal.exe", "%drop.dll", "/tmp/%"})
                               : pick({"10.0.0.%", "%.129", "66.77.%"});
  base.amount_bound = (*rng)() % 2 == 0 ? 100 + int((*rng)() % 900) : -1;

  GenPair out;
  out.kind = kind;
  out.a = Render(base, "p", "obj", "e", false);
  QueryParts other = base;
  if (kind == GenPair::kDuplicate) {
    // Renaming alone is always applied; case flips and the file `name`
    // respelling ride along randomly.
    bool upper = (*rng)() % 2 == 0;
    if (base.file_obj && (*rng)() % 2 == 0) other.obj_field = "name";
    out.tag = std::string("dup") + (upper ? "+case" : "") +
              (other.obj_field == "name" ? "+name-spelling" : "");
    out.b = Render(other, "q2", "o2", "ev2", upper);
  } else if (kind == GenPair::kSubsume) {
    switch ((*rng)() % 4) {
      case 0:  // widen the subject pattern to match-all
        other.subj_pat = "%";
        out.tag = "sub+subj-widen";
        break;
      case 1:  // widen the object pattern to match-all
        other.obj_pat = "%";
        out.tag = "sub+obj-widen";
        break;
      case 2:  // widen write → read || write (reads stay reads)
        other.op = base.op == "write" ? "read || write" : "read || start";
        out.tag = "sub+op-widen";
        break;
      default:  // loosen (or drop) the numeric bound
        if (base.amount_bound < 0) {
          base.amount_bound = 500;  // re-render the tight side with a bound
          out.a = Render(base, "p", "obj", "e", false);
          other.amount_bound = -1;
          out.tag = "sub+bound-drop";
        } else {
          other.amount_bound = base.amount_bound / 10;
          out.tag = "sub+bound-loosen";
        }
        break;
    }
    out.b = Render(other, "q2", "o2", "ev2", false);
  } else {
    // Unrelated: flip the op AND use a disjoint object pattern, so
    // neither direction can be contained.
    other.op = base.op == "write" ? "read" : "write";
    other.obj_pat = base.file_obj ? "%benign.log" : "192.168.%";
    out.tag = "control";
    out.b = Render(other, "q2", "o2", "ev2", false);
  }
  return out;
}

EventBatch RandomStream(std::mt19937* rng, size_t n) {
  const char* exes[] = {"chrome.exe", "java.exe",    "cmd.exe",
                        "CHROME.EXE", "winword.exe", "svchost.exe"};
  const char* paths[] = {"/tmp/mal.exe", "/x/drop.dll", "/tmp/a.log",
                         "/var/benign.log", "/usr/lib/z.so"};
  const char* ips[] = {"10.0.0.5", "192.168.1.129", "66.77.1.2",
                       "172.16.3.4"};
  const char* hosts[] = {"h1", "h2", "h3", "h4"};
  EventBatch batch;
  Timestamp ts = 1'000'000;
  for (size_t i = 0; i < n; ++i) {
    ts += 1 + Timestamp((*rng)() % (200 * kMillisecond));
    EventBuilder b;
    b.Id(i + 1)
        .At(ts)
        .OnHost(hosts[(*rng)() % 4])
        .Subject(exes[(*rng)() % 6], 100 + int64_t((*rng)() % 8))
        .Op((*rng)() % 2 == 0 ? EventOp::kWrite : EventOp::kRead)
        .Amount(int64_t((*rng)() % 2000));
    if ((*rng)() % 3 != 0) {
      b.FileObject(paths[(*rng)() % 5]);
    } else {
      b.NetObject(ips[(*rng)() % 4]);
    }
    batch.push_back(b.Build());
  }
  return batch;
}

/// Runs both queries of a pair over `stream` and returns the two keyed
/// alert multisets (sorted), labels excluded.
std::pair<std::vector<std::string>, std::vector<std::string>> RunPair(
    const GenPair& pair, const EventBatch& stream, size_t shards) {
  SaqlEngine::Options opts;
  opts.num_shards = shards;
  SaqlEngine engine(opts);
  EXPECT_TRUE(engine.AddQuery(pair.a, "qa").ok()) << pair.a;
  EXPECT_TRUE(engine.AddQuery(pair.b, "qb").ok()) << pair.b;
  VectorEventSource source(stream);
  EXPECT_TRUE(engine.Run(&source).ok());
  std::vector<std::string> ka, kb;
  for (const Alert& a : engine.alerts()) {
    std::string key = std::to_string(a.ts) + "|" + a.group;
    for (const auto& [label, value] : a.values) key += "|" + value.ToString();
    (a.query_name == "qa" ? ka : kb).push_back(std::move(key));
  }
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return {std::move(ka), std::move(kb)};
}

TEST(FleetDifferentialTest, ClaimedRelationsHoldUnderExecution) {
  std::mt19937 rng(0xF1EE7);
  std::vector<GenPair> pairs;
  for (int i = 0; i < 110; ++i) pairs.push_back(MakePair(&rng, GenPair::kDuplicate));
  for (int i = 0; i < 110; ++i) pairs.push_back(MakePair(&rng, GenPair::kSubsume));
  for (int i = 0; i < 40; ++i) pairs.push_back(MakePair(&rng, GenPair::kControl));

  size_t executed = 0;
  size_t alerting_pairs = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const GenPair& pair = pairs[i];
    SCOPED_TRACE(pair.tag + " #" + std::to_string(i) + "\n--- a ---\n" +
                 pair.a + "\n--- b ---\n" + pair.b);
    AnalyzedQueryPtr a = Compile(pair.a);
    AnalyzedQueryPtr b = Compile(pair.b);
    ASSERT_TRUE(a != nullptr && b != nullptr);

    // 1. The analyzer must claim exactly the constructed relation.
    FleetReport report = FleetAnalysis::Analyze({{"qa", a}, {"qb", b}});
    if (pair.kind == GenPair::kControl) {
      EXPECT_TRUE(report.relations.empty()) << report.ToString();
      continue;
    }
    ASSERT_EQ(report.relations.size(), 1u) << report.ToString();
    if (pair.kind == GenPair::kDuplicate) {
      EXPECT_EQ(report.relations[0].kind, FleetRelation::Kind::kDuplicate);
    } else {
      EXPECT_EQ(report.relations[0].kind, FleetRelation::Kind::kSubsumes);
      EXPECT_EQ(report.relations[0].a, 0u);  // tight side is subsumed
    }

    // 2. The claim must hold on a real stream, at 1 and at 4 shards.
    EventBatch stream = RandomStream(&rng, 250);
    for (size_t shards : {1u, 4u}) {
      auto [ka, kb] = RunPair(pair, stream, shards);
      if (pair.kind == GenPair::kDuplicate) {
        EXPECT_EQ(ka, kb) << "duplicate pair diverged at " << shards
                          << " shard(s)";
      } else {
        EXPECT_TRUE(std::includes(kb.begin(), kb.end(), ka.begin(), ka.end()))
            << "tight query alerted outside the wide query at " << shards
            << " shard(s): |tight|=" << ka.size() << " |wide|=" << kb.size();
      }
      if (!ka.empty() || !kb.empty()) ++alerting_pairs;
    }
    ++executed;
  }
  // The harness is only meaningful if the claims were actually exercised:
  // every claimed pair ran, and a healthy fraction produced alerts.
  EXPECT_EQ(executed, 220u);
  EXPECT_GT(alerting_pairs, 100u);
}

}  // namespace
}  // namespace saql
