// Write-ahead-log coverage: record round trips, the sync-policy parser,
// torn-tail detection by length and by CRC, and the crash-consistent
// read contract the recovery path relies on.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/file_backend.h"
#include "storage/wal.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

EventBatch SampleEvents() {
  EventBatch out;
  out.push_back(EventBuilder()
                    .Id(1)
                    .At(10 * kSecond)
                    .OnHost("h1")
                    .Subject("cmd.exe", 42)
                    .Op(EventOp::kStart)
                    .ProcObject("osql.exe", 43)
                    .Build());
  out.push_back(EventBuilder()
                    .Id(2)
                    .At(20 * kSecond)
                    .OnHost("h2")
                    .Subject("sqlservr.exe", 50)
                    .Op(EventOp::kWrite)
                    .FileObject("C:\\MSSQL\\backup1.dmp")
                    .Amount(5000000)
                    .Build());
  out.push_back(EventBuilder()
                    .Id(3)
                    .At(30 * kSecond)
                    .OnHost("h1")
                    .Subject("sbblv.exe", 60)
                    .Op(EventOp::kWrite)
                    .NetObject("66.77.88.129", 443)
                    .Amount(123456)
                    .Build());
  return out;
}

TEST(SyncPolicyTest, ParsesTheShellFlagGrammar) {
  auto always = ParseSyncPolicy("always");
  ASSERT_TRUE(always.ok());
  EXPECT_EQ(always->mode, SyncMode::kAlways);
  EXPECT_STREQ(always->name(), "always");

  auto none = ParseSyncPolicy("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->mode, SyncMode::kNone);

  auto group = ParseSyncPolicy("group");
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->mode, SyncMode::kGroupCommit);
  EXPECT_EQ(group->max_delay_us, SyncPolicy().max_delay_us);

  auto tuned = ParseSyncPolicy("group:500");
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ(tuned->max_delay_us, 500);
  EXPECT_EQ(tuned->max_bytes, SyncPolicy().max_bytes);

  auto full = ParseSyncPolicy("group:1000:4096");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->max_delay_us, 1000);
  EXPECT_EQ(full->max_bytes, 4096u);

  EXPECT_FALSE(ParseSyncPolicy("").ok());
  EXPECT_FALSE(ParseSyncPolicy("sometimes").ok());
  EXPECT_FALSE(ParseSyncPolicy("group:").ok());
  EXPECT_FALSE(ParseSyncPolicy("group:12:").ok());
  EXPECT_FALSE(ParseSyncPolicy("group:12:0").ok());
  EXPECT_FALSE(ParseSyncPolicy("group:12:34:56").ok());
}

TEST(WalTest, RoundTripPreservesSeqAndEvents) {
  std::string path = TempPath("roundtrip.wal.0");
  EventBatch events = SampleEvents();
  {
    WalWriter w(path, /*first_seq=*/7);
    ASSERT_TRUE(w.status().ok()) << w.status();
    for (size_t i = 0; i < events.size(); ++i) {
      ASSERT_TRUE(w.Append(7 + i, events[i]).ok());
    }
    EXPECT_EQ(w.records_written(), 3u);
    EXPECT_TRUE(w.Sync().ok());
    EXPECT_TRUE(w.Close().ok());
  }
  auto records = ReadWal(path);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].seq, 7 + i);
    EXPECT_EQ((*records)[i].event.id, events[i].id);
    EXPECT_EQ((*records)[i].event.ts, events[i].ts);
    EXPECT_EQ((*records)[i].event.agent_id, events[i].agent_id);
    EXPECT_EQ((*records)[i].event.subject, events[i].subject);
    EXPECT_EQ((*records)[i].event.amount, events[i].amount);
  }
}

TEST(WalTest, EmptyWalReadsEmpty) {
  std::string path = TempPath("empty.wal.0");
  WalWriter w(path, 1);
  ASSERT_TRUE(w.status().ok());
  EXPECT_TRUE(w.Close().ok());
  auto records = ReadWal(path);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, RejectsNonWalFile) {
  std::string path = TempPath("not_a_wal.bin");
  std::ofstream(path, std::ios::binary) << "definitely not a WAL header";
  EXPECT_FALSE(ReadWal(path).ok());
  EXPECT_FALSE(ReadWal(TempPath("missing.wal.0")).ok());
}

// Byte-level truncation (what a crash leaves after losing unsynced
// pages): the reader returns the complete-record prefix, regardless of
// where the cut lands.
TEST(WalTest, TruncatedTailEndsReplayAtLastCompleteRecord) {
  std::string path = TempPath("torn.wal.0");
  EventBatch events = SampleEvents();
  {
    WalWriter w(path, 1);
    for (size_t i = 0; i < events.size(); ++i) w.Append(1 + i, events[i]);
    ASSERT_TRUE(w.Close().ok());
  }
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  // Cut at every byte boundary from "just the header" to "whole file":
  // replay must never fail and never exceed the surviving prefix.
  size_t last_count = 0;
  for (size_t cut = 20; cut <= data.size(); ++cut) {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << data.substr(0, cut);
    uint64_t consumed = 0;
    auto records = ReadWal(path, &consumed);
    ASSERT_TRUE(records.ok()) << "cut=" << cut << ": " << records.status();
    EXPECT_GE(records->size(), last_count) << "cut=" << cut;
    EXPECT_LE(consumed, cut) << "cut=" << cut;
    last_count = records->size();
  }
  EXPECT_EQ(last_count, events.size());
}

// A flipped byte in the last record is caught by the CRC and the record
// dropped — the torn-tail rule, not a hard error.
TEST(WalTest, CorruptFinalRecordIsDroppedByCrc) {
  std::string path = TempPath("crc.wal.0");
  EventBatch events = SampleEvents();
  {
    WalWriter w(path, 1);
    for (size_t i = 0; i < events.size(); ++i) w.Append(1 + i, events[i]);
    ASSERT_TRUE(w.Close().ok());
  }
  // Flip a byte near the end (inside the final record's payload).
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  auto size = static_cast<long>(f.tellg());
  f.seekp(size - 3);
  f.put('\xff');
  f.close();

  auto records = ReadWal(path);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ(records->size(), events.size() - 1);
}

// WAL writing through the fault backend: a torn mid-record crash leaves
// a file whose replay yields exactly the records fully appended before
// the crash.
TEST(WalTest, InjectedTornWriteReplaysCompletedRecordsOnly) {
  std::string path = TempPath("fault_torn.wal.0");
  FaultInjectionFileBackend fs;
  EventBatch events = SampleEvents();
  // Find the byte size of header + 2 records with a probe file.
  uint64_t two_records;
  {
    WalWriter probe(TempPath("fault_probe.wal.0"), 1, &fs);
    probe.Append(1, events[0]);
    probe.Append(2, events[1]);
    two_records = fs.bytes_appended();
  }
  fs.CrashAfterBytes("fault_torn", two_records + 9);

  WalWriter w(path, 1, &fs);
  ASSERT_TRUE(w.status().ok());
  EXPECT_TRUE(w.Append(1, events[0]).ok());
  EXPECT_TRUE(w.Append(2, events[1]).ok());
  EXPECT_FALSE(w.Append(3, events[2]).ok());  // torn 9 bytes in
  EXPECT_TRUE(fs.crashed());
  w.Close();

  auto records = ReadWal(path);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].seq, 1u);
  EXPECT_EQ((*records)[1].seq, 2u);
}

}  // namespace
}  // namespace saql
