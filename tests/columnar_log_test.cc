// Format v2 (columnar segments) coverage: exact round trips including a
// randomized property corpus (empty attributes, all object types, rotated
// interner generations), crash-consistent truncation recovery at segment
// granularity, CRC corruption detection, time-range seeks over the
// segment index, pre-interned symbol stamping, and the writer's
// destruction-path flush semantics.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "core/interner.h"
#include "storage/columnar_log.h"
#include "storage/event_log.h"
#include "storage/log_format.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameEvents(const EventBatch& a, const EventBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].agent_id, b[i].agent_id);
    EXPECT_EQ(a[i].subject, b[i].subject);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].object_type, b[i].object_type);
    EXPECT_EQ(a[i].obj_proc, b[i].obj_proc);
    EXPECT_EQ(a[i].obj_file, b[i].obj_file);
    EXPECT_EQ(a[i].obj_net, b[i].obj_net);
    EXPECT_EQ(a[i].amount, b[i].amount);
    EXPECT_EQ(a[i].failed, b[i].failed);
  }
}

EventBatch SampleEvents() {
  EventBatch out;
  out.push_back(EventBuilder()
                    .Id(1)
                    .At(10 * kSecond)
                    .OnHost("h1")
                    .Subject("cmd.exe", 42)
                    .Op(EventOp::kStart)
                    .ProcObject("osql.exe", 43)
                    .Build());
  out.push_back(EventBuilder()
                    .Id(2)
                    .At(20 * kSecond)
                    .OnHost("h2")
                    .Subject("sqlservr.exe", 50)
                    .Op(EventOp::kWrite)
                    .FileObject("C:\\MSSQL\\backup1.dmp")
                    .Amount(5000000)
                    .Build());
  out.push_back(EventBuilder()
                    .Id(3)
                    .At(30 * kSecond)
                    .OnHost("h1")
                    .Subject("sbblv.exe", 60)
                    .Op(EventOp::kWrite)
                    .NetObject("66.77.88.129", 443)
                    .Amount(123456)
                    .Build());
  return out;
}

/// Random event mix: every object type, occasional empty strings (empty
/// agent, empty user, empty path), failures, and repeated spellings so
/// dictionaries actually dedup.
EventBatch RandomCorpus(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  EventBatch out;
  out.reserve(n);
  Timestamp ts = 0;
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.id = i + 1;
    ts += pick(0, 3) * kSecond;  // repeated and advancing timestamps
    e.ts = ts;
    e.agent_id = pick(0, 9) == 0 ? "" : "host-" + std::to_string(pick(0, 3));
    e.subject.pid = pick(1, 500);
    e.subject.exe_name = "Proc" + std::to_string(pick(0, 5)) + ".EXE";
    e.subject.user = pick(0, 7) == 0 ? "" : "user" + std::to_string(pick(0, 2));
    e.op = static_cast<EventOp>(pick(0, kNumEventOps - 1));
    switch (pick(0, 2)) {
      case 0:
        e.object_type = EntityType::kProcess;
        e.obj_proc.pid = pick(1, 500);
        e.obj_proc.exe_name = "child" + std::to_string(pick(0, 4));
        e.obj_proc.user = "svc";
        break;
      case 1:
        e.object_type = EntityType::kFile;
        e.obj_file.path =
            pick(0, 9) == 0 ? "" : "/var/data/f" + std::to_string(pick(0, 9));
        break;
      default:
        e.object_type = EntityType::kNetwork;
        e.obj_net.src_ip = "10.0.0." + std::to_string(pick(1, 9));
        e.obj_net.dst_ip = "192.168.1." + std::to_string(pick(1, 9));
        e.obj_net.src_port = pick(1024, 65535);
        e.obj_net.dst_port = pick(1, 1023);
        e.obj_net.protocol = pick(0, 1) ? "tcp" : "udp";
        break;
    }
    e.amount = pick(0, 1000000);
    e.failed = pick(0, 9) == 0;
    out.push_back(std::move(e));
  }
  return out;
}

TEST(ColumnarLogTest, RoundTripPreservesAllFields) {
  std::string path = TempPath("v2_roundtrip.saqllog");
  EventBatch original = SampleEvents();
  ASSERT_TRUE(WriteColumnarEventLog(path, original).ok());
  Result<EventBatch> loaded = ReadColumnarEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSameEvents(original, *loaded);
}

TEST(ColumnarLogTest, AutoDetectReadsBothFormats) {
  EventBatch original = SampleEvents();
  std::string v1 = TempPath("any_v1.saqllog");
  std::string v2 = TempPath("any_v2.saqllog");
  ASSERT_TRUE(WriteEventLog(v1, original).ok());
  ASSERT_TRUE(WriteColumnarEventLog(v2, original).ok());
  ASSERT_EQ(DetectEventLogVersion(v1).value(), 1);
  ASSERT_EQ(DetectEventLogVersion(v2).value(), 2);
  Result<EventBatch> from_v1 = ReadAnyEventLog(v1);
  Result<EventBatch> from_v2 = ReadAnyEventLog(v2);
  ASSERT_TRUE(from_v1.ok());
  ASSERT_TRUE(from_v2.ok());
  ExpectSameEvents(original, *from_v1);
  ExpectSameEvents(original, *from_v2);
}

TEST(ColumnarLogTest, EmptyLogReadsEmpty) {
  std::string path = TempPath("v2_empty.saqllog");
  ASSERT_TRUE(WriteColumnarEventLog(path, {}).ok());
  Result<EventBatch> loaded = ReadColumnarEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->empty());
}

TEST(ColumnarLogTest, MissingFileFails) {
  EXPECT_EQ(ReadColumnarEventLog("/nonexistent/nope.saqllog").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(DetectEventLogVersion("/nonexistent/nope.saqllog").status().code(),
            StatusCode::kIoError);
}

TEST(ColumnarLogTest, RejectsNonLogFile) {
  std::string path = TempPath("v2_not_a_log.txt");
  std::ofstream(path) << "hello world, definitely not a SAQL log";
  EXPECT_EQ(ReadColumnarEventLog(path).status().code(), StatusCode::kIoError);
  EXPECT_EQ(ReadAnyEventLog(path).status().code(), StatusCode::kIoError);
}

// Round-trip property: random corpora, multiple segment sizes (forcing
// multi-segment logs and partial tail segments), both read modes.
TEST(ColumnarLogTest, RoundTripPropertyRandomCorpora) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    EventBatch original = RandomCorpus(seed, 50 + seed * 37);
    for (size_t segment_events : {7u, 64u, 100000u}) {
      std::string path = TempPath("v2_prop.saqllog");
      ColumnarLogWriter::Options wopts;
      wopts.segment_events = segment_events;
      ASSERT_TRUE(WriteColumnarEventLog(path, original, wopts).ok());
      for (bool use_mmap : {true, false}) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " seg " +
                     std::to_string(segment_events) +
                     (use_mmap ? " mmap" : " buffered"));
        ColumnarLogReader::Options ropts;
        ropts.use_mmap = use_mmap;
        ColumnarLogReader reader(path, ropts);
        ASSERT_TRUE(reader.status().ok()) << reader.status();
        EXPECT_EQ(reader.total_events(), original.size());
        EventBatch loaded;
        EventBlock block;
        for (size_t i = 0; i < reader.num_segments(); ++i) {
          ASSERT_TRUE(reader.ReadSegment(i, &block).ok());
          const Event* rows = block.MutableRows();
          loaded.insert(loaded.end(), rows, rows + block.size());
        }
        ExpectSameEvents(original, loaded);
      }
    }
  }
}

// Blocks from the reader come with Event::syms pre-stamped from the
// segment dictionary, exactly as InternEventStrings would stamp them.
TEST(ColumnarLogTest, ReplayedRowsArrivePreInterned) {
  std::string path = TempPath("v2_preinterned.saqllog");
  EventBatch original = SampleEvents();
  ASSERT_TRUE(WriteColumnarEventLog(path, original).ok());
  ColumnarLogReader reader(path);
  ASSERT_TRUE(reader.status().ok());
  EventBlock block;
  ASSERT_TRUE(reader.ReadSegment(0, &block).ok());
  Event* rows = block.MutableRows();
  Interner& interner = Interner::Global();
  uint32_t gen = static_cast<uint32_t>(interner.generation());
  for (size_t i = 0; i < block.size(); ++i) {
    Event expected = original[i];
    InternEventStrings(&expected);
    EXPECT_EQ(rows[i].syms.gen, gen);
    EXPECT_EQ(rows[i].syms.agent, expected.syms.agent);
    EXPECT_EQ(rows[i].syms.subj_exe, expected.syms.subj_exe);
    EXPECT_EQ(rows[i].syms.subj_user, expected.syms.subj_user);
    EXPECT_EQ(rows[i].syms.obj_exe, expected.syms.obj_exe);
    EXPECT_EQ(rows[i].syms.obj_user, expected.syms.obj_user);
    EXPECT_EQ(rows[i].syms.obj_path, expected.syms.obj_path);
  }
}

// Rotating the interner between reads re-interns the dictionary under the
// new generation; spellings and field values are unaffected.
TEST(ColumnarLogTest, RotatedInternerGenerationsReintern) {
  std::string path = TempPath("v2_rotate.saqllog");
  EventBatch original = RandomCorpus(99, 120);
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 32;
  ASSERT_TRUE(WriteColumnarEventLog(path, original, wopts).ok());

  ColumnarLogReader reader(path);
  ASSERT_TRUE(reader.status().ok());
  EventBlock block;
  ASSERT_TRUE(reader.ReadSegment(0, &block).ok());
  (void)block.MutableRows();

  Interner::Global().Rotate();
  uint32_t gen_after = static_cast<uint32_t>(Interner::Global().generation());

  // Re-bind the already-loaded segment and read the rest: every row must
  // carry the fresh generation and ids consistent with the new table.
  EventBatch loaded;
  for (size_t i = 0; i < reader.num_segments(); ++i) {
    ASSERT_TRUE(reader.ReadSegment(i, &block).ok());
    Event* rows = block.MutableRows();
    for (size_t r = 0; r < block.size(); ++r) {
      EXPECT_EQ(rows[r].syms.gen, gen_after);
      EXPECT_EQ(rows[r].syms.agent,
                Interner::Global().Find(rows[r].agent_id));
      loaded.push_back(rows[r]);
    }
  }
  ExpectSameEvents(original, loaded);
}

// Truncating mid-segment recovers to the last complete segment — v1's
// crash-consistent tail rule at segment granularity.
TEST(ColumnarLogTest, TruncationMidSegmentStopsAtLastCompleteSegment) {
  std::string path = TempPath("v2_truncate.saqllog");
  EventBatch original = RandomCorpus(7, 96);
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 32;  // 3 segments
  ASSERT_TRUE(WriteColumnarEventLog(path, original, wopts).ok());

  ColumnarLogReader probe(path);
  ASSERT_TRUE(probe.status().ok());
  ASSERT_EQ(probe.num_segments(), 3u);
  // Cut into the middle of the last segment's payload, then into its
  // header: both recover 2 segments (64 events). Cutting into the second
  // segment leaves 1.
  struct Case {
    uint64_t keep_bytes;
    size_t segments;
  } cases[] = {
      {probe.segment(2).payload_offset + probe.segment(2).payload_bytes / 2,
       2},
      {probe.segment(2).payload_offset - sizeof(SegmentHeader) / 2, 2},
      {probe.segment(1).payload_offset + 5, 1},
  };
  std::ifstream src(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(src)),
                   std::istreambuf_iterator<char>());
  src.close();
  for (const Case& c : cases) {
    SCOPED_TRACE("keep " + std::to_string(c.keep_bytes));
    std::string cut = TempPath("v2_truncate_cut.saqllog");
    std::ofstream(cut, std::ios::binary | std::ios::trunc)
        << full.substr(0, c.keep_bytes);
    ColumnarLogReader reader(cut);
    ASSERT_TRUE(reader.status().ok()) << reader.status();
    EXPECT_EQ(reader.num_segments(), c.segments);
    Result<EventBatch> loaded = ReadColumnarEventLog(cut);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_EQ(loaded->size(), c.segments * 32);
    for (size_t i = 0; i < loaded->size(); ++i) {
      EXPECT_EQ((*loaded)[i].id, original[i].id);
    }
  }
}

// A bounds-complete segment with a flipped payload byte is corruption,
// not truncation: the CRC fails the read.
TEST(ColumnarLogTest, CrcMismatchIsAnError) {
  std::string path = TempPath("v2_crc.saqllog");
  EventBatch original = RandomCorpus(11, 64);
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 32;
  ASSERT_TRUE(WriteColumnarEventLog(path, original, wopts).ok());
  ColumnarLogReader probe(path);
  ASSERT_TRUE(probe.status().ok());
  uint64_t flip_at = probe.segment(0).payload_offset +
                     probe.segment(0).payload_bytes / 2;
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(flip_at));
  char b = static_cast<char>(f.get());
  f.seekp(static_cast<std::streamoff>(flip_at));
  f.put(static_cast<char>(b ^ 0x5A));
  f.close();
  EXPECT_EQ(ReadColumnarEventLog(path).status().code(),
            StatusCode::kIoError);
}

TEST(ColumnarLogTest, SegmentIndexSupportsTimeRangeSeek) {
  std::string path = TempPath("v2_seek.saqllog");
  EventBatch events;
  for (int i = 0; i < 90; ++i) {
    events.push_back(EventBuilder()
                         .Id(static_cast<uint64_t>(i + 1))
                         .At(i * kSecond)
                         .OnHost("h")
                         .Subject("p")
                         .FileObject("/f")
                         .Build());
  }
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 30;  // segments cover [0,29], [30,59], [60,89] s
  ASSERT_TRUE(WriteColumnarEventLog(path, events, wopts).ok());
  ColumnarLogReader reader(path);
  ASSERT_TRUE(reader.status().ok());
  ASSERT_EQ(reader.num_segments(), 3u);
  EXPECT_EQ(reader.FirstSegmentAtOrAfter(0), 0u);
  EXPECT_EQ(reader.FirstSegmentAtOrAfter(29 * kSecond), 0u);
  EXPECT_EQ(reader.FirstSegmentAtOrAfter(30 * kSecond), 1u);
  EXPECT_EQ(reader.FirstSegmentAtOrAfter(65 * kSecond), 2u);
  EXPECT_EQ(reader.FirstSegmentAtOrAfter(90 * kSecond), 3u);
  EXPECT_EQ(reader.segment(1).min_ts, 30 * kSecond);
  EXPECT_EQ(reader.segment(1).max_ts, 59 * kSecond);
}

// WriteBlock is the block-native write path (log rewrite/compaction):
// whole columnar blocks read from one log serialize directly as segments
// of another — including borrowed (reader-bound) blocks — while pending
// rows flush first so order is preserved; small/row-backed blocks fold
// into the pending segment.
TEST(ColumnarLogTest, WriteBlockRewritesLogsSegmentDirect) {
  EventBatch original = RandomCorpus(21, 96);
  std::string src_path = TempPath("v2_rewrite_src.saqllog");
  std::string dst_path = TempPath("v2_rewrite_dst.saqllog");
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 32;
  ASSERT_TRUE(WriteColumnarEventLog(src_path, original, wopts).ok());

  ColumnarLogReader reader(src_path);
  ASSERT_TRUE(reader.status().ok());
  ColumnarLogWriter writer(dst_path, wopts);
  // A couple of row-backed events first: they land in the pending
  // segment and must be flushed ahead of the first direct segment.
  EventBatch head = {original[0], original[1]};
  EventBlock row_block;
  row_block.ResetBorrowedRows(head.data(), head.size());
  ASSERT_TRUE(writer.WriteBlock(&row_block).ok());
  EventBlock block;
  for (size_t i = 0; i < reader.num_segments(); ++i) {
    ASSERT_TRUE(reader.ReadSegment(i, &block).ok());
    ASSERT_TRUE(writer.WriteBlock(&block).ok());  // direct: 32 >= threshold
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.events_written(), original.size() + 2);
  // 1 flushed pending (the 2 head rows) + 3 direct segments.
  EXPECT_EQ(writer.segments_written(), 4u);

  Result<EventBatch> loaded = ReadColumnarEventLog(dst_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EventBatch expected = head;
  expected.insert(expected.end(), original.begin(), original.end());
  ExpectSameEvents(expected, *loaded);
}

TEST(ColumnarLogTest, WriterCountsEventsAndSegments) {
  std::string path = TempPath("v2_counts.saqllog");
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 2;
  ColumnarLogWriter w(path, wopts);
  ASSERT_TRUE(w.status().ok());
  ASSERT_TRUE(w.AppendBatch(SampleEvents()).ok());
  ASSERT_TRUE(w.Close().ok());
  EXPECT_EQ(w.events_written(), 3u);
  EXPECT_EQ(w.segments_written(), 2u);  // 2 + the flushed partial 1
}

// The destructor closes: a writer dropped without Close must still have
// flushed its pending partial segment to disk.
TEST(ColumnarLogTest, DestructorFlushesPendingSegment) {
  std::string path = TempPath("v2_dtor.saqllog");
  EventBatch original = SampleEvents();
  {
    ColumnarLogWriter w(path);  // segment_events = 4096: all pending
    ASSERT_TRUE(w.AppendBatch(original).ok());
    // No Close(): destruction must flush.
  }
  Result<EventBatch> loaded = ReadColumnarEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSameEvents(original, *loaded);
}

// Flush failures surface through status() instead of being swallowed
// (the destructor runs the same Close). Disk-full is injected through
// the FileBackend seam — deterministic everywhere, unlike the old
// /dev/full fixture, and exercising exactly the path production errors
// take.
TEST(ColumnarLogTest, FlushFailureOnFullDiskSurfacesInStatus) {
  FaultInjectionFileBackend fs;
  fs.FailAppendsAfterBytes(8 * 1024);
  ColumnarLogWriter::Options opts;
  opts.backend = &fs;
  ColumnarLogWriter w(TempPath("full_disk_v2.log"), opts);
  ASSERT_TRUE(w.status().ok()) << w.status();
  EventBatch events = SampleEvents();
  for (int i = 0; i < 2000; ++i) w.AppendBatch(events);
  EXPECT_FALSE(w.Close().ok());
  EXPECT_EQ(w.status().code(), StatusCode::kIoError);
  // Idempotent: a later (destructor-path) Close keeps the error.
  EXPECT_EQ(w.Close().code(), StatusCode::kIoError);
}

TEST(EventLogWriterTest, FlushFailureOnFullDiskSurfacesInStatus) {
  FaultInjectionFileBackend fs;
  fs.FailAppendsAfterBytes(8 * 1024);
  EventLogWriter w(TempPath("full_disk_v1.log"), &fs);
  ASSERT_TRUE(w.status().ok()) << w.status();
  EventBatch events = SampleEvents();
  for (int i = 0; i < 2000; ++i) w.AppendBatch(events);
  EXPECT_FALSE(w.Close().ok());
  EXPECT_EQ(w.status().code(), StatusCode::kIoError);
  EXPECT_EQ(w.Close().code(), StatusCode::kIoError);
}

// A writer hitting the wall mid-stream keeps every complete segment it
// managed to write: the reader recovers the prefix, not nothing.
TEST(ColumnarLogTest, FullDiskKeepsCompleteSegmentPrefixReadable) {
  FaultInjectionFileBackend fs;
  fs.FailAppendsAfterBytes(64 * 1024);
  EventBatch original = RandomCorpus(11, 4000);
  std::string path = TempPath("full_disk_prefix.log");
  ColumnarLogWriter::Options opts;
  opts.segment_events = 256;
  opts.backend = &fs;
  ColumnarLogWriter w(path, opts);
  uint64_t accepted = 0;
  for (const Event& e : original) {
    if (!w.Append(e).ok()) break;
    ++accepted;
  }
  EXPECT_LT(accepted, original.size());  // the wall was actually hit
  uint64_t in_segments = w.events_written();
  w.Close();
  Result<EventBatch> loaded = ReadColumnarEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), in_segments);
  ExpectSameEvents(
      EventBatch(original.begin(), original.begin() + in_segments),
      *loaded);
}

}  // namespace
}  // namespace saql
