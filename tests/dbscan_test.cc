#include "anomaly/dbscan.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

namespace saql {
namespace {

std::vector<ClusterPoint> Points1D(std::initializer_list<double> xs) {
  std::vector<ClusterPoint> out;
  for (double x : xs) out.push_back({x});
  return out;
}

TEST(DistanceTest, EuclideanAndManhattan) {
  ClusterPoint a{0.0, 0.0};
  ClusterPoint b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(PointDistance(a, b, DistanceMetric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(PointDistance(a, b, DistanceMetric::kManhattan), 7.0);
}

TEST(DbscanTest, EmptyInput) {
  Dbscan d(1.0, 2);
  DbscanResult r = d.Run({});
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.num_clusters, 0);
}

TEST(DbscanTest, SingleDenseClusterNoOutliers) {
  Dbscan d(2.0, 3);
  DbscanResult r = d.Run(Points1D({1, 2, 3, 4, 5}));
  EXPECT_EQ(r.num_clusters, 1);
  for (size_t i = 0; i < 5; ++i) EXPECT_FALSE(r.IsOutlier(i));
}

TEST(DbscanTest, FarPointIsOutlier) {
  // Mirrors the paper's Query 4: peer hosts move similar volumes; the
  // exfiltration IP's volume is far away.
  Dbscan d(100000, 5);
  std::vector<ClusterPoint> pts =
      Points1D({500000, 510000, 495000, 505000, 502000, 498000,
                25000000});  // the dump target
  DbscanResult r = d.Run(pts);
  EXPECT_EQ(r.num_clusters, 1);
  for (size_t i = 0; i + 1 < pts.size(); ++i) EXPECT_FALSE(r.IsOutlier(i));
  EXPECT_TRUE(r.IsOutlier(pts.size() - 1));
}

TEST(DbscanTest, TwoSeparatedClusters) {
  Dbscan d(1.5, 2);
  DbscanResult r = d.Run(Points1D({0, 1, 2, 100, 101, 102}));
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_EQ(r.labels[1], r.labels[2]);
  EXPECT_EQ(r.labels[3], r.labels[4]);
  EXPECT_NE(r.labels[0], r.labels[3]);
}

TEST(DbscanTest, AllNoiseWhenSparse) {
  Dbscan d(0.1, 2);
  DbscanResult r = d.Run(Points1D({0, 10, 20, 30}));
  EXPECT_EQ(r.num_clusters, 0);
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(r.IsOutlier(i));
}

TEST(DbscanTest, MinPtsCountsThePointItself) {
  // Two points within eps: each neighbourhood has size 2, so min_pts=2
  // makes both core.
  Dbscan d(1.0, 2);
  DbscanResult r = d.Run(Points1D({0.0, 0.5}));
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_FALSE(r.IsOutlier(0));
  EXPECT_FALSE(r.IsOutlier(1));
}

TEST(DbscanTest, BorderPointJoinsCluster) {
  // 0,1,2 are mutually close (core with min_pts=3); 3.5 is within eps of 2
  // only -> border point, not core, but joins the cluster.
  Dbscan d(1.6, 3);
  DbscanResult r = d.Run(Points1D({0, 1, 2, 3.5}));
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_FALSE(r.IsOutlier(3));
  EXPECT_EQ(r.labels[3], r.labels[2]);
}

TEST(DbscanTest, TwoDimensionalClusters) {
  Dbscan d(1.5, 3, DistanceMetric::kEuclidean);
  std::vector<ClusterPoint> pts = {
      {0, 0}, {1, 0}, {0, 1},      // cluster A
      {10, 10}, {11, 10}, {10, 11},  // cluster B
      {100, -50},                  // outlier
  };
  DbscanResult r = d.Run(pts);
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_TRUE(r.IsOutlier(6));
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_NE(r.labels[0], r.labels[3]);
}

TEST(DbscanTest, ManhattanMetricChangesNeighbourhoods) {
  // Points at L1 distance 2, L2 distance sqrt(2) ~ 1.41.
  std::vector<ClusterPoint> pts = {{0, 0}, {1, 1}, {2, 2}};
  Dbscan euclid(1.5, 2, DistanceMetric::kEuclidean);
  Dbscan manhattan(1.5, 2, DistanceMetric::kManhattan);
  EXPECT_EQ(euclid.Run(pts).num_clusters, 1);
  EXPECT_EQ(manhattan.Run(pts).num_clusters, 0);
}

TEST(DbscanTest, OneDFastPathAgreesWithGeneric) {
  // Cross-validate the sorted 1-D sweep against the generic O(n^2) path by
  // lifting the same values into 2-D with a constant second coordinate.
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> dist(0.0, 1000.0);
  std::vector<ClusterPoint> pts1d, pts2d;
  for (int i = 0; i < 300; ++i) {
    double x = dist(rng);
    pts1d.push_back({x});
    pts2d.push_back({x, 0.0});
  }
  Dbscan d(25.0, 4);
  DbscanResult a = d.Run(pts1d);
  DbscanResult b = d.Run(pts2d);
  ASSERT_EQ(a.labels.size(), b.labels.size());
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  for (size_t i = 0; i < a.labels.size(); ++i) {
    EXPECT_EQ(a.IsOutlier(i), b.IsOutlier(i)) << "point " << i;
  }
  // Labels must be identical after first-appearance renumbering.
  EXPECT_EQ(a.labels, b.labels);
}

TEST(DbscanTest, DeterministicAcrossRuns) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<ClusterPoint> pts;
  for (int i = 0; i < 200; ++i) pts.push_back({dist(rng)});
  Dbscan d(3.0, 4);
  DbscanResult r1 = d.Run(pts);
  DbscanResult r2 = d.Run(pts);
  EXPECT_EQ(r1.labels, r2.labels);
}

/// Property sweep over eps: growing eps can only merge clusters, never
/// create new outliers.
class DbscanEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(DbscanEpsSweep, LargerEpsNeverIncreasesOutliers) {
  std::mt19937_64 rng(42);
  std::normal_distribution<double> cluster_a(100.0, 5.0);
  std::normal_distribution<double> cluster_b(500.0, 5.0);
  std::vector<ClusterPoint> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({cluster_a(rng)});
  for (int i = 0; i < 50; ++i) pts.push_back({cluster_b(rng)});

  double eps = GetParam();
  Dbscan small(eps, 4);
  Dbscan bigger(eps * 2, 4);
  auto outliers = [](const DbscanResult& r) {
    return std::count(r.labels.begin(), r.labels.end(),
                      DbscanResult::kNoise);
  };
  EXPECT_GE(outliers(small.Run(pts)), outliers(bigger.Run(pts)));
}

INSTANTIATE_TEST_SUITE_P(EpsValues, DbscanEpsSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 50.0));

}  // namespace
}  // namespace saql
