// Edge-case properties of the shared member-matching ConstraintIndex:
// duplicate and contradictory constraints, empty conjunctions, un-interned
// and rotated-generation events, case-normalization agreement between
// Interner symbols and LikeMatcher exact matches, and the allocation-free
// guarantee of the exact-equality un-interned fallback.

#include "engine/constraint_index.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_counter.h"
#include "core/interner.h"
#include "engine/compiled_query.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

using testing::BitAt;
using testing::BruteForceMatches;
using testing::CompileQuery;

/// Asserts index agreement with brute force for every member on `event`.
void ExpectAgreement(const ConstraintIndex& index,
                     const std::vector<CompiledQuery*>& members,
                     const Event& event, const char* label) {
  ConstraintIndex::MatchResult result;
  index.Match(event, &result);
  for (size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(BitAt(result.matched, i), BruteForceMatches(*members[i], event))
        << label << " member " << i;
  }
}

Event NetWrite(const std::string& exe, const std::string& ip) {
  return EventBuilder()
      .At(kSecond)
      .OnHost("h1")
      .Subject(exe, 1234)
      .Op(EventOp::kWrite)
      .NetObject(ip)
      .Build();
}

TEST(ConstraintIndexPropertyTest, DuplicateConstraintsShareOneSlot) {
  // Three members, all testing the same exact subject equality (one also
  // duplicates it inside its own conjunction): the index must collapse
  // them into a single slot and still match each member correctly.
  auto q1 = CompileQuery("proc p[exe_name = \"a.exe\"] write ip i as e return p",
                    "q1");
  auto q2 = CompileQuery("proc p[exe_name = \"A.EXE\"] write ip i as e return p",
                    "q2");  // case variant: same predicate
  auto q3 = CompileQuery(
      "proc p[exe_name = \"a.exe\", exe_name = \"a.exe\"] write ip i as e "
      "return p",
      "q3");
  std::vector<CompiledQuery*> members = {q1.get(), q2.get(), q3.get()};
  auto index = ConstraintIndex::Build(members);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_slots(), 1u);
  EXPECT_EQ(index->total_constraints(), 4u);
  EXPECT_EQ(index->num_probe_slots(), 1u);

  for (bool intern : {false, true}) {
    Event hit = NetWrite("a.exe", "1.1.1.1");
    Event miss = NetWrite("b.exe", "1.1.1.1");
    if (intern) {
      InternEventStrings(&hit);
      InternEventStrings(&miss);
    }
    ExpectAgreement(*index, members, hit, intern ? "hit/int" : "hit/raw");
    ExpectAgreement(*index, members, miss, intern ? "miss/int" : "miss/raw");
    ConstraintIndex::MatchResult r;
    index->Match(hit, &r);
    EXPECT_EQ(r.matched[0], 0b111u);
    index->Match(miss, &r);
    EXPECT_EQ(r.matched[0], 0u);
  }
}

TEST(ConstraintIndexPropertyTest, ContradictoryConjunctionNeverMatches) {
  // Two exact equalities on the same field cannot both hold; the probe
  // group refutes the member whichever value the event carries. Numeric
  // contradictions must behave the same through residual slots.
  auto q1 = CompileQuery(
      "proc p[exe_name = \"a.exe\", exe_name = \"b.exe\"] write ip i as e "
      "return p",
      "q1");
  auto q2 = CompileQuery("proc p[pid > 100, pid <= 50] write ip i as e return p",
                    "q2");
  auto q3 = CompileQuery("proc p[exe_name = \"a.exe\"] write ip i as e return p",
                    "q3");
  std::vector<CompiledQuery*> members = {q1.get(), q2.get(), q3.get()};
  auto index = ConstraintIndex::Build(members);
  ASSERT_NE(index, nullptr);
  for (bool intern : {false, true}) {
    for (const char* exe : {"a.exe", "b.exe", "c.exe"}) {
      Event e = NetWrite(exe, "1.1.1.1");
      if (intern) InternEventStrings(&e);
      ConstraintIndex::MatchResult r;
      index->Match(e, &r);
      EXPECT_FALSE(BitAt(r.matched, 0)) << exe;  // eq contradiction
      EXPECT_FALSE(BitAt(r.matched, 1)) << exe;  // numeric contradiction
      ExpectAgreement(*index, members, e, exe);
    }
  }
}

TEST(ConstraintIndexPropertyTest, EmptyConjunctionMatchesEverything) {
  auto q1 = CompileQuery("proc p write ip i as e return p", "q1");
  auto q2 = CompileQuery("proc p[exe_name = \"a.exe\"] write ip i as e return p",
                    "q2");
  std::vector<CompiledQuery*> members = {q1.get(), q2.get()};
  auto index = ConstraintIndex::Build(members);
  ASSERT_NE(index, nullptr);
  Event e = NetWrite("whatever.exe", "9.9.9.9");
  ConstraintIndex::MatchResult r;
  index->Match(e, &r);
  EXPECT_TRUE(BitAt(r.matched, 0));
  EXPECT_FALSE(BitAt(r.matched, 1));
}

TEST(ConstraintIndexPropertyTest, NotIndexableShapes) {
  // Multi-pattern members route through the multievent matcher: no index.
  auto multi = CompileQuery(
      "proc p1 start proc p2 as e1\n"
      "proc p2 write ip i as e2\n"
      "with e1 -> e2\n"
      "return p1",
      "multi");
  auto single = CompileQuery("proc p write ip i as e return p", "single");
  std::vector<CompiledQuery*> both = {multi.get(), single.get()};
  EXPECT_EQ(ConstraintIndex::Build(both), nullptr);
  // Fewer than two members: nothing to share.
  std::vector<CompiledQuery*> one = {single.get()};
  EXPECT_EQ(ConstraintIndex::Build(one), nullptr);
}

TEST(ConstraintIndexPropertyTest, RotatedGenerationEventsReinternAndAgree) {
  // Events interned before an Interner::Rotate carry stale symbol ids.
  // The documented lifecycle — re-intern event buffers (InternEventSpan
  // re-interns stale generations) and recompile queries after rotating —
  // must restore exact index/brute agreement.
  EventBatch events;
  events.push_back(NetWrite("a.exe", "1.1.1.1"));
  events.push_back(NetWrite("b.exe", "1.1.1.1"));
  InternEventSpan(events.data(), events.size());

  Interner::Global().Rotate();
  // Recompile after rotation (compiled constraints capture symbol ids).
  auto q1 = CompileQuery("proc p[exe_name = \"a.exe\"] write ip i as e return p",
                    "q1");
  auto q2 = CompileQuery("proc p[user = \"u\"] write ip i as e return p", "q2");
  std::vector<CompiledQuery*> members = {q1.get(), q2.get()};
  auto index = ConstraintIndex::Build(members);
  ASSERT_NE(index, nullptr);

  // Stale-generation buffers re-intern in place, as the executor would.
  InternEventSpan(events.data(), events.size());
  EXPECT_EQ(events[0].syms.gen, Interner::Global().generation());
  ConstraintIndex::MatchResult r;
  index->Match(events[0], &r);
  EXPECT_TRUE(BitAt(r.matched, 0));
  index->Match(events[1], &r);
  EXPECT_FALSE(BitAt(r.matched, 0));
  for (const Event& e : events) {
    ExpectAgreement(*index, members, e, "post-rotation");
  }
}

TEST(ConstraintIndexPropertyTest, CaseNormalizationAgreesWithLikeMatcher) {
  // Interned symbol comparison and the LikeMatcher string fallback must
  // make the same case-insensitive decision for exact eq and ne, so an
  // event matches identically whether or not it was interned.
  auto eq = CompileQuery("proc p[exe_name = \"CMD.exe\"] write ip i as e return p",
                    "eq");
  auto ne = CompileQuery("proc p[exe_name != \"cmd.EXE\"] write ip i as e return p",
                    "ne");
  std::vector<CompiledQuery*> members = {eq.get(), ne.get()};
  auto index = ConstraintIndex::Build(members);
  ASSERT_NE(index, nullptr);
  for (const char* exe : {"cmd.exe", "CMD.EXE", "CmD.exE", "cmd.exe2"}) {
    Event raw = NetWrite(exe, "1.1.1.1");
    Event interned = raw;
    InternEventStrings(&interned);
    ConstraintIndex::MatchResult r_raw, r_int;
    index->Match(raw, &r_raw);
    index->Match(interned, &r_int);
    EXPECT_EQ(r_raw.matched[0], r_int.matched[0]) << exe;
    ExpectAgreement(*index, members, raw, exe);
    ExpectAgreement(*index, members, interned, exe);
  }
}

TEST(ConstraintIndexPropertyTest,
     ExactEqUninternedFallbackDoesNotAllocate) {
  // Satellite fix pin: exact string equality on an event whose symbols
  // were never interned falls back to the LikeMatcher string path — that
  // path (and the whole index walk) must stay allocation-free, exactly
  // like LikeMatcherTest.MatchesDoesNotAllocate.
  CompiledConstraint subj_eq("exe_name", ConstraintOp::kEq,
                             Value("cmd.exe"), EntityType::kProcess);
  CompiledConstraint file_eq("name", ConstraintOp::kEq,
                             Value("/data/f1"), EntityType::kFile);
  CompiledConstraint agent_eq("agentid", ConstraintOp::kEq,
                              Value("host1"));
  Event e = EventBuilder()
                .At(kSecond)
                .OnHost("HOST1")
                .Subject("CMD.EXE", 7)
                .Op(EventOp::kWrite)
                .FileObject("/data/F1")
                .Build();
  ASSERT_EQ(e.syms.agent, Interner::kUnset);  // never interned

  // Warm up any lazy internals, then measure.
  ASSERT_TRUE(subj_eq.MatchesEntity(e, EntityRole::kSubject));
  ASSERT_TRUE(file_eq.MatchesEntity(e, EntityRole::kObject));
  ASSERT_TRUE(agent_eq.MatchesEvent(e));
  size_t hits = 0;
  size_t before = testing::HeapAllocs();
  for (int i = 0; i < 1000; ++i) {
    hits += subj_eq.MatchesEntity(e, EntityRole::kSubject);
    hits += file_eq.MatchesEntity(e, EntityRole::kObject);
    hits += agent_eq.MatchesEvent(e);
  }
  size_t after = testing::HeapAllocs();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(hits, 3000u);

  // The index walk over un-interned events is allocation-free too, once
  // its result scratch has warmed up.
  auto q1 = CompileQuery("proc p[exe_name = \"cmd.exe\"] write file f as ev "
                    "return p",
                    "q1");
  auto q2 = CompileQuery("proc p[exe_name = \"other.exe\"] write file f as ev "
                    "return p",
                    "q2");
  std::vector<CompiledQuery*> members = {q1.get(), q2.get()};
  auto index = ConstraintIndex::Build(members);
  ASSERT_NE(index, nullptr);
  ConstraintIndex::MatchResult r;
  index->Match(e, &r);  // warm-up sizes the bitsets
  before = testing::HeapAllocs();
  for (int i = 0; i < 1000; ++i) index->Match(e, &r);
  after = testing::HeapAllocs();
  EXPECT_EQ(after - before, 0u);
  EXPECT_TRUE(BitAt(r.matched, 0));
  EXPECT_FALSE(BitAt(r.matched, 1));
}

}  // namespace
}  // namespace saql
