#include "stream/window.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

WindowSpec TimeSpec(Duration length, Duration slide = 0) {
  WindowSpec w;
  w.kind = WindowSpec::Kind::kTime;
  w.length = length;
  w.slide = slide;
  return w;
}

TEST(WindowAssignerTest, TumblingAssignsExactlyOne) {
  WindowAssigner a(TimeSpec(10 * kMinute));
  auto ws = a.Assign(25 * kMinute);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].start, 20 * kMinute);
  EXPECT_EQ(ws[0].end, 30 * kMinute);
  EXPECT_TRUE(ws[0].Contains(25 * kMinute));
}

TEST(WindowAssignerTest, BoundaryBelongsToNextWindow) {
  WindowAssigner a(TimeSpec(10 * kMinute));
  auto ws = a.Assign(20 * kMinute);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].start, 20 * kMinute);
}

TEST(WindowAssignerTest, HoppingAssignsMultiple) {
  // 10-minute window sliding every 5 minutes: each event is in 2 windows.
  WindowAssigner a(TimeSpec(10 * kMinute, 5 * kMinute));
  auto ws = a.Assign(12 * kMinute);
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].start, 5 * kMinute);   // earliest first
  EXPECT_EQ(ws[1].start, 10 * kMinute);
  for (const TimeWindow& w : ws) {
    EXPECT_TRUE(w.Contains(12 * kMinute)) << w.ToString();
  }
}

TEST(WindowAssignerTest, FineSlideCount) {
  WindowAssigner a(TimeSpec(10 * kSecond, 2 * kSecond));
  auto ws = a.Assign(100 * kSecond);
  EXPECT_EQ(ws.size(), 5u);  // length/slide windows
}

TEST(WindowAssignerTest, WindowsAlignToSlideGrid) {
  WindowAssigner a(TimeSpec(10 * kMinute));
  // Two queries with the same spec agree on boundaries regardless of when
  // their first event arrives (this enables master/dependent sharing).
  auto w1 = a.Assign(3 * kMinute + 17);
  auto w2 = a.Assign(9 * kMinute + 55 * kSecond);
  EXPECT_EQ(w1[0].start, w2[0].start);
}

TEST(WindowAssignerTest, NewestForMatchesAssign) {
  WindowAssigner a(TimeSpec(10 * kMinute, 5 * kMinute));
  Timestamp ts = 23 * kMinute;
  TimeWindow newest = a.NewestFor(ts);
  auto all = a.Assign(ts);
  EXPECT_EQ(newest, all.back());
}

TEST(WindowAssignerTest, CanCloseComparesEnd) {
  WindowAssigner a(TimeSpec(10 * kMinute));
  TimeWindow w{0, 10 * kMinute};
  EXPECT_FALSE(a.CanClose(w, 9 * kMinute));
  EXPECT_TRUE(a.CanClose(w, 10 * kMinute));
}

/// Property sweep: every assigned window contains the timestamp, windows
/// are distinct, and count == ceil(length/slide).
class WindowSweep
    : public ::testing::TestWithParam<std::pair<Duration, Duration>> {};

TEST_P(WindowSweep, AssignInvariants) {
  auto [length, slide] = GetParam();
  WindowAssigner a(TimeSpec(length, slide));
  for (Timestamp ts : {Timestamp{0}, Timestamp{1}, 7 * kSecond,
                       63 * kSecond, 3600 * kSecond, 86400 * kSecond}) {
    auto ws = a.Assign(ts);
    // A length-L interval on a slide-S grid contains floor(L/S) or
    // floor(L/S)+1 grid points depending on phase (exactly L/S when S
    // divides L).
    size_t lo = static_cast<size_t>(length / a.slide());
    size_t hi = length % a.slide() == 0 ? lo : lo + 1;
    EXPECT_GE(ws.size(), lo);
    EXPECT_LE(ws.size(), hi);
    for (size_t i = 0; i < ws.size(); ++i) {
      EXPECT_TRUE(ws[i].Contains(ts)) << ws[i].ToString() << " ts=" << ts;
      EXPECT_EQ(ws[i].end - ws[i].start, length);
      if (i > 0) EXPECT_GT(ws[i].start, ws[i - 1].start);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, WindowSweep,
    ::testing::Values(std::make_pair(10 * kSecond, Duration{0}),
                      std::make_pair(10 * kSecond, 5 * kSecond),
                      std::make_pair(10 * kSecond, 3 * kSecond),
                      std::make_pair(kMinute, 10 * kSecond),
                      std::make_pair(10 * kMinute, kMinute)));

}  // namespace
}  // namespace saql
